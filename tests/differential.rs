//! Differential correctness: the cycle-level SIMT simulator must leave
//! exactly the same memory contents as a per-thread reference
//! interpreter — for every benchmark in the suite and under every
//! architecture variant (scalar execution and compression are
//! microarchitectural and must never change architectural state).

use gscalar::core::{Arch, Runner, Workload};
use gscalar::sim::memory::GlobalMemory;
use gscalar::sim::reference::run_reference;
use gscalar::sim::{ArchConfig, Gpu, GpuConfig};
use gscalar::workloads::{suite, Scale};

fn reference_memory(w: &Workload) -> GlobalMemory {
    let mut mem = w.memory.clone();
    run_reference(&w.kernel, w.launch, &mut mem);
    mem
}

fn simulated_memory(w: &Workload, arch: ArchConfig) -> GlobalMemory {
    let mut mem = w.memory.clone();
    let mut gpu = Gpu::new(GpuConfig::test_small(), arch);
    gpu.run(&w.kernel, w.launch, &mut mem);
    mem
}

#[test]
fn every_benchmark_matches_the_reference_interpreter() {
    for w in suite(Scale::Test) {
        let expect = reference_memory(&w);
        let got = simulated_memory(&w, ArchConfig::baseline());
        assert!(
            got.content_eq(&expect),
            "{}: SIMT simulation diverges from reference at {:?}",
            w.abbr,
            got.first_difference(&expect)
        );
    }
}

#[test]
fn architecture_variants_never_change_results() {
    // Scalar execution, compression, and the +3-cycle latency are
    // performance/power features; architectural results must be
    // identical across all four evaluated designs.
    for w in suite(Scale::Test) {
        let baseline = simulated_memory(&w, Arch::Baseline.config());
        for arch in [Arch::AluScalar, Arch::GScalarNoDivergent, Arch::GScalar] {
            let got = simulated_memory(&w, arch.config());
            assert!(
                got.content_eq(&baseline),
                "{}: {} changed architectural results at {:?}",
                w.abbr,
                arch,
                got.first_difference(&baseline)
            );
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let runner = Runner::new(GpuConfig::test_small());
    for w in suite(Scale::Test).into_iter().take(4) {
        let a = runner.run(&w, Arch::GScalar);
        let b = runner.run(&w, Arch::GScalar);
        assert_eq!(a.stats, b.stats, "{} is nondeterministic", w.abbr);
    }
}

#[test]
fn warp64_configuration_still_matches_reference() {
    let mut cfg = GpuConfig::test_small();
    cfg.warp_size = 64;
    for w in suite(Scale::Test) {
        let expect = reference_memory(&w);
        let mut mem = w.memory.clone();
        let mut gpu = Gpu::new(cfg.clone(), ArchConfig::baseline());
        gpu.run(&w.kernel, w.launch, &mut mem);
        assert!(
            mem.content_eq(&expect),
            "{}: warp-64 simulation diverges at {:?}",
            w.abbr,
            mem.first_difference(&expect)
        );
    }
}
