//! The CPI-stack accounting identity, end to end: for every run — full
//! suite and randomized divergent/looping kernels alike — each
//! (SM, scheduler) ledger charges exactly one slot per cycle, so the
//! analyzer's stacks reconcile to `cycles × ledgers` at kernel, per-SM
//! and per-scheduler granularity, serial and parallel byte-identically.

use gscalar::analyze::CpiStack;
use gscalar::core::Arch;
use gscalar::isa::{CmpOp, Kernel, KernelBuilder, LaunchConfig, Operand, SReg};
use gscalar::sim::memory::GlobalMemory;
use gscalar::sim::{Gpu, GpuConfig, RunObserver, Stats};
use gscalar::workloads::{suite, Scale};
use proptest::prelude::*;

/// A multi-SM configuration so idle-skip bulk charging, per-SM merge
/// and the parallel engine all participate.
fn multi_sm_config(threads: usize) -> GpuConfig {
    let mut cfg = GpuConfig::test_small();
    cfg.num_sms = 4;
    cfg.exec_threads = threads;
    cfg
}

struct PerSmCapture {
    per_sm: Vec<Stats>,
}

impl RunObserver for PerSmCapture {
    fn sample(&mut self, _cycle: u64, _stats: &Stats) {}

    fn finish(&mut self, _cycle: u64, _merged: &Stats, per_sm: &[Stats]) {
        self.per_sm = per_sm.to_vec();
    }
}

/// Runs the kernel and returns (merged, per-SM) statistics.
fn run_with_per_sm(
    kernel: &Kernel,
    launch: LaunchConfig,
    init: &GlobalMemory,
    threads: usize,
) -> (Stats, Vec<Stats>) {
    let mut gpu = Gpu::new(multi_sm_config(threads), Arch::Baseline.config());
    let mut mem = init.clone();
    let mut capture = PerSmCapture { per_sm: Vec::new() };
    let stats = gpu.run_observed(
        kernel,
        launch,
        &mut mem,
        &mut gscalar::trace::Tracer::off(),
        0,
        0,
        &mut capture,
    );
    (stats, capture.per_sm)
}

/// Asserts the accounting identity at every granularity.
fn assert_reconciles(merged: &Stats, per_sm: &[Stats], num_sms: usize, what: &str) {
    let kernel = CpiStack::kernel(merged, num_sms);
    assert!(kernel.cycles > 0, "{what}: run simulated nothing");
    kernel
        .reconcile()
        .unwrap_or_else(|e| panic!("{what}: kernel stack: {e}"));
    // Per-SM and per-scheduler views split exactly the same slots.
    let mut sm_total = 0;
    for (i, sm) in per_sm.iter().enumerate() {
        let st = CpiStack::sm(sm, merged.cycles);
        st.reconcile()
            .unwrap_or_else(|e| panic!("{what}: sm{i} stack: {e}"));
        sm_total += st.total_slots();
        for (s, sc) in sm.sched.iter().enumerate() {
            CpiStack::scheduler(sc, merged.cycles, 1)
                .reconcile()
                .unwrap_or_else(|e| panic!("{what}: sm{i}/sched{s} stack: {e}"));
        }
    }
    assert_eq!(
        sm_total,
        kernel.total_slots(),
        "{what}: per-SM stacks must partition the kernel stack"
    );
}

#[test]
fn suite_stacks_reconcile_at_test_scale() {
    for w in suite(Scale::Test) {
        let (merged, per_sm) = run_with_per_sm(&w.kernel, w.launch, &w.memory, 1);
        assert_reconciles(&merged, &per_sm, 4, &w.abbr);
    }
}

#[test]
fn suite_stacks_reconcile_on_the_full_chip_config() {
    // The gtx480 config (15 SMs, GTO) on a couple of benchmarks: the
    // same identity must hold where the bottleneck binary runs.
    let cfg = GpuConfig::gtx480();
    for w in suite(Scale::Test).into_iter().take(2) {
        let mut gpu = Gpu::new(cfg.clone(), Arch::Baseline.config());
        let mut mem = w.memory.clone();
        let mut capture = PerSmCapture { per_sm: Vec::new() };
        let merged = gpu.run_observed(
            &w.kernel,
            w.launch,
            &mut mem,
            &mut gscalar::trace::Tracer::off(),
            0,
            0,
            &mut capture,
        );
        assert_reconciles(&merged, &capture.per_sm, cfg.num_sms, &w.abbr);
    }
}

/// One randomly chosen kernel body step (divergence, loops, memory).
#[derive(Debug, Clone)]
enum Step {
    AddImm(u32),
    XorTid,
    Load,
    Store,
    Diverge(u32),
    Loop(u32),
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (1u32..1000).prop_map(Step::AddImm),
        Just(Step::XorTid),
        Just(Step::Load),
        Just(Step::Store),
        (1u32..31).prop_map(Step::Diverge),
        (2u32..5).prop_map(Step::Loop),
    ]
}

/// Builds a kernel with tid-disjoint global accesses mixing ALU work,
/// loads, stores, divergence, and loops according to `steps`.
fn build_kernel(steps: &[Step]) -> Kernel {
    let base = 0x10_0000u32;
    let mut b = KernelBuilder::new("rand");
    let tid = b.s2r(SReg::TidX);
    let ctaid = b.s2r(SReg::CtaIdX);
    let ntid = b.s2r(SReg::NTidX);
    let gid = b.imad(ctaid.into(), ntid.into(), tid.into());
    let off = b.shl(gid.into(), Operand::Imm(2));
    let addr = b.iadd(off.into(), Operand::Imm(base));
    let acc = b.mov(Operand::Imm(1));
    for step in steps {
        match step {
            Step::AddImm(k) => {
                let t = b.iadd(acc.into(), Operand::Imm(*k));
                b.mov_to(acc, t.into());
            }
            Step::XorTid => {
                let t = b.xor(acc.into(), tid.into());
                b.mov_to(acc, t.into());
            }
            Step::Load => {
                let v = b.ld_global(addr, 0);
                let t = b.iadd(acc.into(), v.into());
                b.mov_to(acc, t.into());
            }
            Step::Store => {
                b.st_global(addr, acc, 0);
            }
            Step::Diverge(k) => {
                let p = b.isetp(CmpOp::Lt, tid.into(), Operand::Imm(*k));
                b.if_else(
                    p.into(),
                    |b| {
                        let t = b.iadd(acc.into(), Operand::Imm(7));
                        b.mov_to(acc, t.into());
                    },
                    |b| {
                        let t = b.xor(acc.into(), Operand::Imm(3));
                        b.mov_to(acc, t.into());
                    },
                );
            }
            Step::Loop(n) => {
                let i = b.mov(Operand::Imm(0));
                b.while_loop(
                    |b| b.isetp(CmpOp::Lt, i.into(), Operand::Imm(*n)).into(),
                    |b| {
                        let t = b.iadd(acc.into(), i.into());
                        b.mov_to(acc, t.into());
                        let t2 = b.iadd(i.into(), Operand::Imm(1));
                        b.mov_to(i, t2.into());
                    },
                );
            }
        }
    }
    b.st_global(addr, acc, 0);
    b.exit();
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_kernels_reconcile_serial_and_parallel(
        steps in proptest::collection::vec(step_strategy(), 1..10),
        ctas in 1u32..7,
        warps in 1u32..3,
    ) {
        let kernel = build_kernel(&steps);
        let launch = LaunchConfig::linear(ctas, warps * 32);
        let mut init = GlobalMemory::new();
        for t in 0..u64::from(ctas * warps * 32) {
            init.write_u32(0x10_0000 + t * 4, (t * 17 + 3) as u32);
        }
        let (serial, serial_per_sm) = run_with_per_sm(&kernel, launch, &init, 1);
        assert_reconciles(&serial, &serial_per_sm, 4, "serial");
        // The new ledgers obey the determinism contract too: a 4-thread
        // run carries byte-identical stats (sched ledgers, MSHR
        // occupancy histogram and all) at every granularity.
        let (parallel, parallel_per_sm) = run_with_per_sm(&kernel, launch, &init, 4);
        prop_assert_eq!(&serial, &parallel);
        prop_assert_eq!(&serial_per_sm, &parallel_per_sm);
        assert_reconciles(&parallel, &parallel_per_sm, 4, "parallel");
    }
}
