//! Directional assertions for the paper's headline claims, checked on
//! the real benchmark suite. Magnitudes are asserted loosely (this is a
//! reproduction on a rebuilt simulator), but every *ordering* the paper
//! reports must hold.

use gscalar::core::{Arch, Runner};
use gscalar::power::RfScheme;
use gscalar::sim::GpuConfig;
use gscalar::workloads::{by_abbr, Scale};

fn runner() -> Runner {
    Runner::new(GpuConfig::gtx480())
}

#[test]
fn backprop_is_the_star_benchmark() {
    // Section 5.3: BP is compute-intensive, SFU-heavy, with most SFU
    // instructions scalar; G-Scalar's largest efficiency win.
    let w = by_abbr("BP", Scale::Full).expect("BP exists");
    let r = runner();
    let base = r.run(&w, Arch::Baseline);
    let gs = r.run(&w, Arch::GScalar);
    // A large majority of SFU lane-ops are gated by scalar execution.
    assert!(
        (gs.exec_sfu_fraction_of(&base)) < 0.2,
        "G-Scalar should gate most of BP's SFU lanes"
    );
    // Efficiency improves by a lot (paper: +79%).
    let gain = gs.ipc_per_watt() / base.ipc_per_watt();
    assert!(gain > 1.3, "BP gain {gain:.2} too small");
    // And IPC barely moves (paper: ~1%).
    let ipc = gs.stats.ipc() / base.stats.ipc();
    assert!(ipc > 0.9, "BP IPC ratio {ipc:.2}");
}

trait SfuFraction {
    fn exec_sfu_fraction_of(&self, base: &Self) -> f64;
}

impl SfuFraction for gscalar::core::RunReport {
    fn exec_sfu_fraction_of(&self, base: &Self) -> f64 {
        self.stats.exec.sfu_lane_ops as f64 / base.stats.exec.sfu_lane_ops.max(1) as f64
    }
}

#[test]
fn lbm_divergent_scalar_doubles_eligibility() {
    // Section 5.2: "Especially for LBM, supporting divergent scalar
    // instructions can double the number of instructions eligible for
    // scalar execution."
    let w = by_abbr("LBM", Scale::Full).expect("LBM exists");
    let base = runner().run(&w, Arch::Baseline);
    let i = &base.stats.instr;
    let without_div = i.eligible_alu + i.eligible_sfu + i.eligible_mem + i.eligible_half;
    assert!(
        i.eligible_divergent >= without_div,
        "LBM divergent-scalar ({}) should at least match all other classes ({})",
        i.eligible_divergent,
        without_div
    );
    // And LBM is heavily divergent (paper: ~50%).
    assert!(base.stats.divergent_fraction() > 0.35);
}

#[test]
fn scalar_rf_bank_is_a_bottleneck_only_for_prior_work() {
    // Section 4.1: the single scalar bank serializes bursts of scalar
    // instructions; G-Scalar's 16 per-bank BVR arrays do not.
    let w = by_abbr("BT", Scale::Full).expect("BT exists"); // scalar-heavy
    let r = runner();
    let alu = r.run(&w, Arch::AluScalar);
    let gs = r.run(&w, Arch::GScalar);
    assert!(
        alu.stats.pipe.scalar_bank_serializations > 0,
        "prior-work design must show scalar-bank serialization"
    );
    assert_eq!(
        gs.stats.pipe.scalar_bank_serializations, 0,
        "G-Scalar has no dedicated scalar bank to serialize on"
    );
}

#[test]
fn rf_scheme_ordering_holds_on_value_similar_benchmarks() {
    // Figure 12: ours < scalar-only < baseline; ours ≤ W-C on average.
    let r = runner();
    let mut ours_sum = 0.0;
    let mut wc_sum = 0.0;
    let mut scalar_sum = 0.0;
    let mut n = 0.0;
    for abbr in ["BT", "MQ", "MM", "MV"] {
        let w = by_abbr(abbr, Scale::Full).expect("benchmark exists");
        let rows = r.rf_power_normalized(&w);
        let get = |s: RfScheme| rows.iter().find(|(x, _)| *x == s).expect("scheme").1;
        let ours = get(RfScheme::ByteWise);
        let scalar = get(RfScheme::ScalarRf);
        assert!(ours < 1.0, "{abbr}: ours {ours} must beat the baseline");
        assert!(
            ours < scalar,
            "{abbr}: ours {ours} must beat scalar-only {scalar}"
        );
        ours_sum += ours;
        wc_sum += get(RfScheme::WarpedCompression);
        scalar_sum += scalar;
        n += 1.0;
    }
    assert!(
        ours_sum / n <= wc_sum / n + 0.02,
        "ours ({:.3}) should be at least on par with W-C ({:.3})",
        ours_sum / n,
        wc_sum / n
    );
    assert!(scalar_sum / n < 1.0);
}

#[test]
fn compression_ratio_comparison() {
    // Section 5.3: the byte-wise scheme's aggregate compression ratio
    // edges out BDI (paper: 2.17 vs 2.13).
    let r = runner();
    let mut raw = 0.0;
    let mut ours = 0.0;
    let mut bdi = 0.0;
    for abbr in ["BT", "BP", "MQ", "MM", "ST", "MV"] {
        let w = by_abbr(abbr, Scale::Full).expect("benchmark exists");
        let s = r.run(&w, Arch::Baseline).stats;
        raw += s.rf.raw_bytes as f64;
        ours += s.rf.ours_bytes as f64;
        bdi += s.rf.bdi_bytes as f64;
    }
    let ours_ratio = raw / ours;
    let bdi_ratio = raw / bdi;
    assert!(ours_ratio > 1.5, "ours ratio {ours_ratio:.2}");
    assert!(
        ours_ratio > bdi_ratio * 0.98,
        "ours ({ours_ratio:.2}) should be at least on par with BDI ({bdi_ratio:.2})"
    );
}

#[test]
fn decompress_move_overhead_is_small() {
    // Section 3.3: the hardware-assisted move adds ~2% dynamic
    // instructions on average; allow up to 6% per benchmark.
    let r = runner();
    for abbr in ["HW", "LBM", "SAD", "HS"] {
        let w = by_abbr(abbr, Scale::Full).expect("benchmark exists");
        let s = r.run(&w, Arch::GScalar).stats;
        let frac = s.instr.decompress_moves as f64 / s.instr.warp_instrs as f64;
        assert!(
            frac < 0.06,
            "{abbr}: decompress-move overhead {:.1}%",
            100.0 * frac
        );
    }
}

#[test]
fn three_cycle_latency_costs_little_ipc() {
    // Section 5.4: mean IPC degradation 1.7%; LC worst but still
    // acceptable. Allow ≤12% per benchmark at our occupancies.
    let r = runner();
    for abbr in ["BP", "MM", "ST", "LC"] {
        let w = by_abbr(abbr, Scale::Full).expect("benchmark exists");
        let base = r.run(&w, Arch::Baseline);
        let gs = r.run(&w, Arch::GScalar);
        let ratio = gs.stats.ipc() / base.stats.ipc();
        assert!(ratio > 0.88, "{abbr}: IPC ratio {ratio:.3}");
    }
}
