//! Umbrella crate for the G-Scalar reproduction (HPCA 2017).
//!
//! Re-exports every sub-crate under one roof so examples, integration
//! tests, and downstream users can depend on a single crate:
//!
//! * [`isa`] — SIMT ISA, kernels, CFG analysis, builder DSL, assembler.
//! * [`compress`] — byte-wise register value compression and BDI baseline.
//! * [`sim`] — cycle-level Fermi-like GPU simulator.
//! * [`power`] — GPUWattch-style event-energy power model.
//! * [`core`] — G-Scalar architecture variants and the simulation runner.
//! * [`workloads`] — 17 synthetic Parboil/Rodinia-like benchmarks.
//! * [`trace`] — cycle-level trace events, sinks, and exporters.
//! * [`metrics`] — metrics registry, run manifests, regression compare.
//! * [`hostprof`] — host-side self-profiling (wall-time phase timers).
//! * [`live`] — streaming NDJSON run telemetry, SSE server, dashboard.
//! * [`sweep`] — parallel, fault-isolated experiment-execution engine.
//! * [`analyze`] — CPI stacks, critical-path attribution, what-if projections.

pub use gscalar_analyze as analyze;
pub use gscalar_compress as compress;
pub use gscalar_core as core;
pub use gscalar_hostprof as hostprof;
pub use gscalar_isa as isa;
pub use gscalar_live as live;
pub use gscalar_metrics as metrics;
pub use gscalar_power as power;
pub use gscalar_sim as sim;
pub use gscalar_sweep as sweep;
pub use gscalar_trace as trace;
pub use gscalar_workloads as workloads;
