#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, the full test suite,
# and a fast benchmark smoke run gated against a checked-in baseline.
# Everything runs offline — the workspace has no registry dependencies
# (proptest/criterion resolve to in-repo shims).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== cargo test"
cargo test -q --workspace --offline

echo "== bench smoke + regression compare"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
./target/release/probe --scale test --json "$tmp/probe.json" > /dev/null
./target/release/report compare ci/baseline "$tmp"

echo "ci: all green"
