#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, the full test suite,
# and a fast benchmark smoke run gated against a checked-in baseline.
# Everything runs offline — the workspace has no registry dependencies
# (proptest/criterion resolve to in-repo shims).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== cargo test"
cargo test -q --workspace --offline

echo "== bench smoke + regression compare"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
./target/release/probe --scale test --json "$tmp/probe.json" > /dev/null
./target/release/report compare ci/baseline "$tmp"

echo "== profile smoke"
# Separate subdirectory: the compare above globs $tmp/*.json and must
# not see the profile manifest. The binary itself exits non-zero when
# the per-PC attribution fails to reconcile with the aggregate stats.
./target/release/profile DIV --out "$tmp/profile" \
    --json "$tmp/profile/profile.json" > /dev/null
test -s "$tmp/profile/profile_divergent_annotated.txt"
test -s "$tmp/profile/profile_divergent_report.md"
# Manifest is schema-valid (report rejects unknown schemas) and carries
# a non-empty per-PC table.
./target/release/report aggregate "$tmp/profile" > /dev/null
grep -q '"profile/k00/pc' "$tmp/profile/profile.json"

echo "ci: all green"
