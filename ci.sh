#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, the full test suite,
# and a fast benchmark smoke run gated against a checked-in baseline.
# Everything runs offline — the workspace has no registry dependencies
# (proptest/criterion resolve to in-repo shims).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo doc (deny warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --offline --quiet

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== cargo test"
cargo test -q --workspace --offline

echo "== bench smoke + regression compare"
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
# Two workers: exercises the parallel sweep path in CI; manifests are
# schedule-independent, so the baseline compare is unaffected.
./target/release/probe --scale test --threads 2 --json "$tmp/probe.json" > /dev/null

echo "== bottleneck smoke (CPI reconciliation, golden manifest, parallel bytes)"
# The binary exits non-zero when any CPI stack fails exact
# reconciliation; its deterministic manifest is pinned byte-for-byte
# against the committed golden and must be byte-identical under the
# parallel execution engine.
./target/release/bottleneck --scale test --deterministic \
    --json "$tmp/bottleneck.json" > /dev/null
cmp ci/baseline/bottleneck.json "$tmp/bottleneck.json"
./target/release/bottleneck --scale test --deterministic --sim-threads 4 \
    --json "$tmp/bottleneck-par.json" > /dev/null
cmp "$tmp/bottleneck.json" "$tmp/bottleneck-par.json"
rm "$tmp/bottleneck-par.json" "$tmp/bottleneck-par.host.json"

# Metric-level gate over both smoke manifests (probe + bottleneck).
./target/release/report compare ci/baseline "$tmp"

echo "== parallel execution engine (byte-identical manifests)"
# The in-process parallel engine must produce byte-identical reports at
# any --sim-threads setting (same stats, same digests, same manifest).
./target/release/probe --scale test --deterministic \
    --json "$tmp/engine-serial.json" > /dev/null
./target/release/probe --scale test --deterministic --sim-threads 4 \
    --json "$tmp/engine-par.json" > /dev/null
cmp "$tmp/engine-serial.json" "$tmp/engine-par.json"
rm "$tmp/engine-serial.json" "$tmp/engine-par.json"

echo "== sweep smoke (parallel run, resume, deterministic manifests)"
./target/release/sweep probe --scale test --threads 2 --out "$tmp/sweep" 2> /dev/null
# Deterministic manifests: the parallel sweep writes the same bytes a
# serial standalone run does.
./target/release/probe --scale test --deterministic \
    --json "$tmp/serial-probe.json" > /dev/null
cmp "$tmp/sweep/probe.json" "$tmp/serial-probe.json"
# Rerun over the same results dir: everything must resume, not re-run.
# (Capture first: grep -q closing the pipe early would SIGPIPE the
# sweep under pipefail.)
rerun=$(./target/release/sweep probe --scale test --threads 2 --out "$tmp/sweep" 2>&1)
grep -q "0 executed" <<< "$rerun"

echo "== hostprof off-path (deterministic manifests unchanged at 1/2/4 threads)"
# Host-side profiling must never perturb simulated results: with
# --hostprof, deterministic manifests stay byte-identical to the plain
# serial run at every thread count. Real timings land in the
# *.host.json side channel instead, which is never part of the gate.
./target/release/probe --scale test --deterministic --hostprof \
    --json "$tmp/hp-t1.json" > /dev/null
./target/release/probe --scale test --deterministic --hostprof --sim-threads 2 \
    --json "$tmp/hp-t2.json" > /dev/null
./target/release/probe --scale test --deterministic --hostprof --sim-threads 4 \
    --json "$tmp/hp-t4.json" > /dev/null
cmp "$tmp/serial-probe.json" "$tmp/hp-t1.json"
cmp "$tmp/serial-probe.json" "$tmp/hp-t2.json"
cmp "$tmp/serial-probe.json" "$tmp/hp-t4.json"
test -s "$tmp/hp-t1.host.json"
rm "$tmp"/hp-t[124].json "$tmp"/hp-t[124].host.json

echo "== live telemetry (stream advisory, manifests byte-identical)"
# --live must never change simulated results: deterministic manifests
# stay byte-identical to the plain serial run, serially and under the
# parallel execution engine. The stream itself must parse strictly
# line-by-line with at least one snapshot and a terminal record
# (`watch check`), and the dashboard must render from the file.
# Subdirectory: compare globs over $tmp/*.json must never see these.
mkdir -p "$tmp/live"
./target/release/probe --scale test --deterministic \
    --live "$tmp/live/probe.ndjson" --live-interval 256 \
    --json "$tmp/live/live-on.json" > /dev/null
cmp "$tmp/serial-probe.json" "$tmp/live/live-on.json"
./target/release/probe --scale test --deterministic --sim-threads 4 \
    --live "$tmp/live/probe-par.ndjson" --live-interval 256 \
    --json "$tmp/live/live-par.json" > /dev/null
cmp "$tmp/serial-probe.json" "$tmp/live/live-par.json"
./target/release/watch check "$tmp/live/probe.ndjson" > /dev/null
./target/release/watch check "$tmp/live/probe-par.ndjson" > /dev/null
# Capture first: grep -q closing the pipe early would SIGPIPE the
# renderer under pipefail.
frame=$(./target/release/watch "$tmp/live/probe.ndjson" --once)
grep -q "records" <<< "$frame"

echo "== throughput smoke + trend (informational, never gates)"
# Wall-clock throughput is machine-dependent; the compare against the
# committed trend file prints deltas (host/* is informational in the
# comparator) but a failure here must not break CI on jitter alone.
./target/release/throughput --scale test \
    --json "$tmp/throughput/BENCH_throughput.json" > /dev/null
./target/release/report compare BENCH_throughput.json \
    "$tmp/throughput/BENCH_throughput.json" || \
    echo "throughput trend compare: informational only, not gating"

echo "== profile smoke"
# Separate subdirectory: the compare above globs $tmp/*.json and must
# not see the profile manifest. The binary itself exits non-zero when
# the per-PC attribution fails to reconcile with the aggregate stats.
./target/release/profile DIV --out "$tmp/profile" \
    --json "$tmp/profile/profile.json" > /dev/null
test -s "$tmp/profile/profile_divergent_annotated.txt"
test -s "$tmp/profile/profile_divergent_report.md"
# Manifest is schema-valid (report rejects unknown schemas) and carries
# a non-empty per-PC table.
./target/release/report aggregate "$tmp/profile" > /dev/null
grep -q '"profile/k00/pc' "$tmp/profile/profile.json"

echo "ci: all green"
