#!/usr/bin/env bash
# Tier-1 gate: formatting, lints, release build, and the full test
# suite. Everything runs offline — the workspace has no registry
# dependencies (proptest/criterion resolve to in-repo shims).
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace --offline

echo "== cargo test"
cargo test -q --workspace --offline

echo "ci: all green"
