//! Golden-file pins on the NDJSON record schema (v1).
//!
//! These strings are the wire format: external tooling (`tail`, `jq`,
//! dashboards) may depend on exact key names and layout, so any change
//! that breaks a line here is a schema change and must bump
//! [`gscalar_live::LIVE_SCHEMA_VERSION`].

use gscalar_live::LiveRecord;

#[test]
fn run_records_match_golden_lines() {
    let start = LiveRecord::RunStart {
        run: 3,
        workload: "backprop".into(),
        arch: "G-Scalar".into(),
        sms: 15,
        t_s: 0.25,
    };
    assert_eq!(
        start.to_json_line(),
        r#"{"arch":"G-Scalar","run":3,"sms":15,"t_s":0.25,"type":"run_start","v":1,"workload":"backprop"}"#
    );
    let end = LiveRecord::RunEnd {
        run: 3,
        cycle: 20480,
        ipc: 12.5,
        warp_instrs: 9000,
        t_s: 1.5,
    };
    assert_eq!(
        end.to_json_line(),
        r#"{"cycle":20480,"ipc":12.5,"run":3,"t_s":1.5,"type":"run_end","v":1,"warp_instrs":9000}"#
    );
}

#[test]
fn snapshot_matches_golden_line() {
    let snap = LiveRecord::Snapshot {
        run: 3,
        cycle: 8192,
        ipc: 10.5,
        issued: 4096,
        warp_instrs: 4000,
        scalar_rate: 0.25,
        compression_ratio: 1.5,
        mshr_mean: 2.5,
        mshr_max: 8,
        per_sm_ipc: vec![0.5, 0.75],
        stalls: [("mem".to_string(), 100u64), ("none".to_string(), 0)]
            .into_iter()
            .collect(),
        pool: (7, 2, 40),
        t_s: 0.5,
    };
    assert_eq!(
        snap.to_json_line(),
        concat!(
            r#"{"compression_ratio":1.5,"cycle":8192,"ipc":10.5,"issued":4096,"#,
            r#""mshr_max":8,"mshr_mean":2.5,"per_sm_ipc":[0.5,0.75],"#,
            r#""pool":{"epochs":40,"failed_steals":2,"steals":7},"run":3,"#,
            r#""scalar_rate":0.25,"stalls":{"mem":100,"none":0},"t_s":0.5,"#,
            r#""type":"snapshot","v":1,"warp_instrs":4000}"#
        )
    );
}

#[test]
fn sweep_lifecycle_records_match_golden_lines() {
    assert_eq!(
        LiveRecord::SweepStart {
            jobs: 18,
            budget_cycles: 360_000,
            t_s: 0.0,
        }
        .to_json_line(),
        r#"{"budget_cycles":360000,"jobs":18,"t_s":0,"type":"sweep_start","v":1}"#
    );
    assert_eq!(
        LiveRecord::JobStart {
            job: "fig01_divergence/BP".into(),
            budget: 20_000,
            t_s: 0.0,
        }
        .to_json_line(),
        r#"{"budget":20000,"job":"fig01_divergence/BP","t_s":0,"type":"job_start","v":1}"#
    );
    assert_eq!(
        LiveRecord::JobRetry {
            job: "fig01_divergence/BP".into(),
            attempt: 1,
            kind: "panic".into(),
            message: "index out of bounds".into(),
            t_s: 0.0,
        }
        .to_json_line(),
        concat!(
            r#"{"attempt":1,"job":"fig01_divergence/BP","kind":"panic","#,
            r#""message":"index out of bounds","t_s":0,"type":"job_retry","v":1}"#
        )
    );
    assert_eq!(
        LiveRecord::JobEnd {
            job: "fig01_divergence/BP".into(),
            status: "ok".into(),
            attempts: 2,
            sim_cycles: 18_000,
            wall_s: 0.0,
            done: 1,
            total: 18,
            progress: 0.0625,
            eta_s: 0.0,
            t_s: 0.0,
        }
        .to_json_line(),
        concat!(
            r#"{"attempts":2,"done":1,"eta_s":0,"job":"fig01_divergence/BP","#,
            r#""progress":0.0625,"sim_cycles":18000,"status":"ok","t_s":0,"#,
            r#""total":18,"type":"job_end","v":1,"wall_s":0}"#
        )
    );
    assert_eq!(
        LiveRecord::SweepEnd {
            done: 18,
            total: 18,
            failed: 1,
            wall_s: 0.0,
            t_s: 0.0,
        }
        .to_json_line(),
        r#"{"done":18,"failed":1,"t_s":0,"total":18,"type":"sweep_end","v":1,"wall_s":0}"#
    );
    assert_eq!(
        LiveRecord::StreamEnd {
            records: 42,
            dropped: 0,
            t_s: 0.0,
        }
        .to_json_line(),
        r#"{"dropped":0,"records":42,"t_s":0,"type":"stream_end","v":1}"#
    );
}

#[test]
fn golden_lines_parse_back() {
    for line in [
        r#"{"arch":"G-Scalar","run":3,"sms":15,"t_s":0.25,"type":"run_start","v":1,"workload":"backprop"}"#,
        r#"{"budget_cycles":360000,"jobs":18,"t_s":0,"type":"sweep_start","v":1}"#,
        r#"{"dropped":0,"records":42,"t_s":0,"type":"stream_end","v":1}"#,
    ] {
        let rec = LiveRecord::parse(line).expect(line);
        assert_eq!(rec.to_json_line(), line, "re-serialization drifts");
    }
}
