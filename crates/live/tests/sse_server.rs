//! End-to-end exercise of the SSE sink: bind an ephemeral port, emit
//! records, and speak raw HTTP from a client socket — both endpoints.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use gscalar_live::{Dashboard, LiveHandle, LiveRecord, StreamConfig};

fn det_cfg() -> StreamConfig {
    StreamConfig {
        deterministic: true,
        ..StreamConfig::default()
    }
}

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(conn, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").unwrap();
    let mut body = String::new();
    // The server closes the connection at end of response, so read to
    // EOF is well-defined for both JSON and (closed-stream) SSE.
    conn.read_to_string(&mut body).expect("read response");
    body
}

/// Waits until the server has buffered `n` lines (the writer thread is
/// asynchronous), then returns.
fn await_drain(handle: &LiveHandle, addr: std::net::SocketAddr, n: usize) {
    for _ in 0..400 {
        let body = get(addr, "/runs");
        if body.lines().next().is_some() && handle.dropped() == 0 {
            // /runs only counts per-run records; poll the merged count
            // via a cheap heuristic: records fields sum.
            let total: u64 = body
                .match_indices("\"records\":")
                .map(|(i, _)| {
                    body[i + 10..]
                        .chars()
                        .take_while(char::is_ascii_digit)
                        .collect::<String>()
                        .parse::<u64>()
                        .unwrap_or(0)
                })
                .sum();
            if total >= n as u64 {
                return;
            }
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("server never buffered {n} records");
}

#[test]
fn serves_run_list_and_sse_stream() {
    let (handle, addr) =
        LiveHandle::serve("127.0.0.1:0".parse().unwrap(), det_cfg()).expect("bind");
    handle.emit(&LiveRecord::RunStart {
        run: 1,
        workload: "backprop".into(),
        arch: "G-Scalar".into(),
        sms: 4,
        t_s: 0.0,
    });
    handle.emit(&LiveRecord::Snapshot {
        run: 1,
        cycle: 4096,
        ipc: 8.0,
        issued: 100,
        warp_instrs: 90,
        scalar_rate: 0.2,
        compression_ratio: 1.4,
        mshr_mean: 1.0,
        mshr_max: 2,
        per_sm_ipc: vec![0.5; 4],
        stalls: [("mem".to_string(), 10u64)].into_iter().collect(),
        pool: (0, 0, 0),
        t_s: 0.0,
    });
    handle.emit(&LiveRecord::RunEnd {
        run: 1,
        cycle: 9000,
        ipc: 9.0,
        warp_instrs: 200,
        t_s: 0.0,
    });
    await_drain(&handle, addr, 3);

    // GET /runs lists the run with its workload.
    let body = get(addr, "/runs");
    let json = body.lines().last().expect("json body");
    assert!(json.contains("\"run\":1"), "{body}");
    assert!(json.contains("\"workload\":\"backprop\""), "{body}");
    assert!(json.contains("\"records\":3"), "{body}");

    // Unknown paths 404.
    assert!(get(addr, "/nope").starts_with("HTTP/1.0 404"));
    assert!(get(addr, "/runs/xyz/stream").starts_with("HTTP/1.0 404"));

    // Close the stream, then subscribe: full history replays and the
    // end event terminates the connection.
    handle.close();
    let sse = get(addr, "/runs/all/stream");
    assert!(sse.contains("Content-Type: text/event-stream"), "{sse}");
    let mut dash = Dashboard::new();
    let mut data_lines = 0;
    for line in sse.lines() {
        if let Some(payload) = line.strip_prefix("data: ") {
            if payload == "{}" {
                continue; // the end event's payload
            }
            dash.feed_line(payload).expect(payload);
            data_lines += 1;
        }
    }
    assert_eq!(data_lines, 4, "3 records + stream_end: {sse}");
    assert!(dash.ended());
    let rendered = dash.render(100);
    assert!(rendered.contains("backprop"), "{rendered}");
    assert!(sse.contains("event: end"), "{sse}");

    // Per-run filtering returns only that run's records (+ end event).
    let sse_one = get(addr, "/runs/1/stream");
    let count = sse_one
        .lines()
        .filter(|l| l.starts_with("data: {") && l.contains("\"run\":1"))
        .count();
    assert_eq!(count, 3, "{sse_one}");
}

#[test]
fn live_subscriber_sees_records_pushed_after_connecting() {
    let (handle, addr) =
        LiveHandle::serve("127.0.0.1:0".parse().unwrap(), det_cfg()).expect("bind");
    handle.emit(&LiveRecord::SweepStart {
        jobs: 1,
        budget_cycles: 0,
        t_s: 0.0,
    });
    await_drain(&handle, addr, 0);

    // Subscribe first, then emit more and close from another thread.
    let pusher = {
        let h = handle.clone();
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            h.emit(&LiveRecord::SweepEnd {
                done: 1,
                total: 1,
                failed: 0,
                wall_s: 0.0,
                t_s: 0.0,
            });
            h.close();
        })
    };
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    write!(conn, "GET /runs/all/stream HTTP/1.0\r\n\r\n").unwrap();
    let reader = BufReader::new(conn);
    let mut seen_end = false;
    let mut payloads = Vec::new();
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if let Some(p) = line.strip_prefix("data: ") {
            payloads.push(p.to_string());
        }
        if line == "event: end" {
            seen_end = true;
        }
    }
    pusher.join().unwrap();
    assert!(seen_end, "no end event: {payloads:?}");
    assert!(
        payloads
            .iter()
            .any(|p| p.contains("\"type\":\"sweep_end\"")),
        "sweep_end pushed after subscribe was not delivered: {payloads:?}"
    );
    assert!(
        payloads
            .iter()
            .any(|p| p.contains("\"type\":\"stream_end\"")),
        "{payloads:?}"
    );
}
