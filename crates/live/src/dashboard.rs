//! Folds a telemetry stream into a renderable dashboard model.
//!
//! The `watch` binary feeds NDJSON lines (from a file tail or an SSE
//! subscription) into a [`Dashboard`], which keeps the latest view of
//! every run and of the sweep, then renders a plain-text terminal
//! dashboard: per-run throughput and stall mix, a sweep progress bar,
//! and the ETA. Keeping the fold/render logic here (not in the binary)
//! makes it unit-testable without a terminal.

use std::collections::BTreeMap;

use crate::record::LiveRecord;

/// Rolling view of one simulation run.
#[derive(Debug, Default, Clone)]
struct RunView {
    workload: String,
    arch: String,
    sms: u64,
    cycle: u64,
    ipc: f64,
    scalar_rate: f64,
    compression_ratio: f64,
    mshr_mean: f64,
    per_sm_ipc: Vec<f64>,
    stalls: BTreeMap<String, u64>,
    /// (cycle, t_s) of the previous snapshot, for throughput.
    prev: Option<(u64, f64)>,
    /// Simulated cycles per wall second between the last two samples.
    cycles_per_s: Option<f64>,
    ended: bool,
}

/// Rolling view of the sweep.
#[derive(Debug, Default, Clone)]
struct SweepView {
    total: u64,
    done: u64,
    failed: u64,
    retried: u64,
    progress: f64,
    eta_s: f64,
    last_job: String,
    last_status: String,
    ended: bool,
}

/// Accumulates stream records into the latest dashboard state.
#[derive(Debug, Default, Clone)]
pub struct Dashboard {
    runs: BTreeMap<u64, RunView>,
    sweep: Option<SweepView>,
    counts: BTreeMap<&'static str, u64>,
    records: u64,
    dropped: u64,
    stream_ended: bool,
}

impl Dashboard {
    /// Creates an empty dashboard.
    #[must_use]
    pub fn new() -> Self {
        Dashboard::default()
    }

    /// Parses and folds one NDJSON line.
    ///
    /// # Errors
    ///
    /// Returns the parse error for a malformed line (the line is not
    /// folded; the caller decides whether that is fatal, as `watch
    /// check` does).
    pub fn feed_line(&mut self, line: &str) -> Result<(), String> {
        let rec = LiveRecord::parse(line)?;
        self.feed(&rec);
        Ok(())
    }

    /// Folds one record.
    pub fn feed(&mut self, rec: &LiveRecord) {
        self.records += 1;
        *self.counts.entry(rec.type_name()).or_insert(0) += 1;
        match rec {
            LiveRecord::RunStart {
                run,
                workload,
                arch,
                sms,
                ..
            } => {
                let v = self.runs.entry(*run).or_default();
                v.workload.clone_from(workload);
                v.arch.clone_from(arch);
                v.sms = *sms;
            }
            LiveRecord::Snapshot {
                run,
                cycle,
                ipc,
                scalar_rate,
                compression_ratio,
                mshr_mean,
                per_sm_ipc,
                stalls,
                t_s,
                ..
            } => {
                let v = self.runs.entry(*run).or_default();
                if let Some((pc, pt)) = v.prev {
                    let dt = t_s - pt;
                    if dt > 0.0 && *cycle > pc {
                        v.cycles_per_s = Some((*cycle - pc) as f64 / dt);
                    }
                }
                v.prev = Some((*cycle, *t_s));
                v.cycle = *cycle;
                v.ipc = *ipc;
                v.scalar_rate = *scalar_rate;
                v.compression_ratio = *compression_ratio;
                v.mshr_mean = *mshr_mean;
                v.per_sm_ipc.clone_from(per_sm_ipc);
                v.stalls.clone_from(stalls);
            }
            LiveRecord::RunEnd {
                run, cycle, ipc, ..
            } => {
                let v = self.runs.entry(*run).or_default();
                v.cycle = *cycle;
                v.ipc = *ipc;
                v.ended = true;
            }
            LiveRecord::SweepStart { jobs, .. } => {
                let v = self.sweep.get_or_insert_with(SweepView::default);
                v.total = *jobs;
            }
            LiveRecord::JobStart { job, .. } => {
                let v = self.sweep.get_or_insert_with(SweepView::default);
                v.last_job.clone_from(job);
                v.last_status = "running".into();
            }
            LiveRecord::JobRetry { job, .. } => {
                let v = self.sweep.get_or_insert_with(SweepView::default);
                v.retried += 1;
                v.last_job.clone_from(job);
                v.last_status = "retry".into();
            }
            LiveRecord::JobEnd {
                job,
                status,
                done,
                total,
                progress,
                eta_s,
                ..
            } => {
                let v = self.sweep.get_or_insert_with(SweepView::default);
                v.done = *done;
                v.total = *total;
                v.progress = *progress;
                v.eta_s = *eta_s;
                v.last_job.clone_from(job);
                v.last_status.clone_from(status);
                if status != "ok" {
                    v.failed += 1;
                }
            }
            LiveRecord::SweepEnd {
                done,
                total,
                failed,
                ..
            } => {
                let v = self.sweep.get_or_insert_with(SweepView::default);
                v.done = *done;
                v.total = *total;
                v.failed = *failed;
                v.progress = 1.0;
                v.eta_s = 0.0;
                v.ended = true;
            }
            LiveRecord::StreamEnd { dropped, .. } => {
                self.dropped = *dropped;
                self.stream_ended = true;
            }
        }
    }

    /// Whether the terminal `stream_end` record has been seen.
    #[must_use]
    pub fn ended(&self) -> bool {
        self.stream_ended
    }

    /// Records folded so far, by record type.
    #[must_use]
    pub fn counts(&self) -> &BTreeMap<&'static str, u64> {
        &self.counts
    }

    /// Renders the dashboard as plain text, `width` columns wide.
    #[must_use]
    pub fn render(&self, width: usize) -> String {
        let width = width.clamp(40, 200);
        let mut out = String::new();
        out.push_str(&format!(
            "g-scalar live — {} records{}{}\n",
            self.records,
            if self.dropped > 0 {
                format!(", {} DROPPED", self.dropped)
            } else {
                String::new()
            },
            if self.stream_ended { " (ended)" } else { "" },
        ));
        if let Some(sw) = &self.sweep {
            let frac = if sw.ended { 1.0 } else { sw.progress };
            out.push_str(&format!(
                "sweep  {} {:>4}/{:<4} jobs  failed {}  retried {}  eta {}\n",
                bar(frac, width.saturating_sub(34).min(40)),
                sw.done,
                sw.total,
                sw.failed,
                sw.retried,
                fmt_eta(sw.eta_s, sw.ended),
            ));
            if !sw.last_job.is_empty() {
                out.push_str(&format!(
                    "       last: {} [{}]\n",
                    sw.last_job, sw.last_status
                ));
            }
        }
        // Show in-flight runs first, then the most recent finished ones.
        let mut live: Vec<(&u64, &RunView)> = self.runs.iter().filter(|(_, v)| !v.ended).collect();
        let mut finished: Vec<(&u64, &RunView)> =
            self.runs.iter().filter(|(_, v)| v.ended).collect();
        finished.reverse();
        live.extend(finished);
        for (id, v) in live.into_iter().take(8) {
            out.push_str(&format!(
                "run {:>3} {:<14} {:<9} cyc {:>10}  ipc {:>6.2}  scalar {:>5.1}%  comp {:>4.2}x  mshr {:>4.1}  {}\n",
                id,
                truncate(&v.workload, 14),
                truncate(&v.arch, 9),
                v.cycle,
                v.ipc,
                v.scalar_rate * 100.0,
                v.compression_ratio,
                v.mshr_mean,
                match (v.ended, v.cycles_per_s) {
                    (true, _) => "done".to_string(),
                    (false, Some(r)) => format!("{:.0} cyc/s", r),
                    (false, None) => "-".to_string(),
                },
            ));
            if !v.ended && !v.stalls.is_empty() {
                out.push_str(&format!("        stalls: {}\n", stall_mix(&v.stalls)));
            }
        }
        out
    }
}

/// `####----` progress bar of `cols` characters.
fn bar(frac: f64, cols: usize) -> String {
    let cols = cols.max(10);
    let filled = ((frac.clamp(0.0, 1.0)) * cols as f64).round() as usize;
    let mut s = String::with_capacity(cols + 2);
    s.push('[');
    for i in 0..cols {
        s.push(if i < filled { '#' } else { '-' });
    }
    s.push(']');
    s
}

fn fmt_eta(eta_s: f64, ended: bool) -> String {
    if ended {
        return "done".to_string();
    }
    if eta_s <= 0.0 {
        return "-".to_string();
    }
    if eta_s >= 60.0 {
        format!("{:.0}m{:02.0}s", (eta_s / 60.0).floor(), eta_s % 60.0)
    } else {
        format!("{eta_s:.1}s")
    }
}

/// The top stall reasons as `label p%` pairs, largest first.
fn stall_mix(stalls: &BTreeMap<String, u64>) -> String {
    let total: u64 = stalls.values().sum();
    if total == 0 {
        return "none".to_string();
    }
    let mut v: Vec<(&String, &u64)> = stalls.iter().filter(|(_, c)| **c > 0).collect();
    v.sort_by(|a, b| b.1.cmp(a.1).then(a.0.cmp(b.0)));
    v.into_iter()
        .take(4)
        .map(|(k, c)| format!("{k} {:.0}%", *c as f64 * 100.0 / total as f64))
        .collect::<Vec<String>>()
        .join("  ")
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!(
            "{}…",
            &s[..s
                .char_indices()
                .take(n - 1)
                .last()
                .map_or(0, |(i, c)| i + c.len_utf8())]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(run: u64, cycle: u64, t_s: f64) -> LiveRecord {
        LiveRecord::Snapshot {
            run,
            cycle,
            ipc: 8.0,
            issued: cycle / 2,
            warp_instrs: cycle / 3,
            scalar_rate: 0.25,
            compression_ratio: 1.6,
            mshr_mean: 2.0,
            mshr_max: 4,
            per_sm_ipc: vec![0.5; 4],
            stalls: [
                ("mem".to_string(), 60u64),
                ("sync".to_string(), 30),
                ("none".to_string(), 0),
            ]
            .into_iter()
            .collect(),
            pool: (0, 0, 0),
            t_s,
        }
    }

    #[test]
    fn folds_runs_and_computes_throughput() {
        let mut d = Dashboard::new();
        d.feed(&LiveRecord::RunStart {
            run: 1,
            workload: "backprop".into(),
            arch: "G-Scalar".into(),
            sms: 4,
            t_s: 0.0,
        });
        d.feed(&snapshot(1, 1000, 1.0));
        d.feed(&snapshot(1, 3000, 2.0));
        let text = d.render(100);
        assert!(text.contains("backprop"), "{text}");
        assert!(text.contains("2000 cyc/s"), "{text}");
        assert!(text.contains("mem 67%"), "{text}");
        d.feed(&LiveRecord::RunEnd {
            run: 1,
            cycle: 5000,
            ipc: 9.0,
            warp_instrs: 100,
            t_s: 3.0,
        });
        let text = d.render(100);
        assert!(text.contains("done"), "{text}");
        assert!(!d.ended());
    }

    #[test]
    fn folds_sweep_progress_and_stream_end() {
        let mut d = Dashboard::new();
        d.feed(&LiveRecord::SweepStart {
            jobs: 4,
            budget_cycles: 0,
            t_s: 0.0,
        });
        d.feed(&LiveRecord::JobStart {
            job: "fig01/BP".into(),
            budget: 100,
            t_s: 0.0,
        });
        d.feed(&LiveRecord::JobEnd {
            job: "fig01/BP".into(),
            status: "panic".into(),
            attempts: 2,
            sim_cycles: 0,
            wall_s: 0.1,
            done: 1,
            total: 4,
            progress: 0.25,
            eta_s: 90.0,
            t_s: 0.2,
        });
        let text = d.render(100);
        assert!(text.contains("1/4"), "{text}");
        assert!(text.contains("failed 1"), "{text}");
        assert!(text.contains("1m30s"), "{text}");
        assert!(text.contains("fig01/BP [panic]"), "{text}");
        d.feed(&LiveRecord::StreamEnd {
            records: 4,
            dropped: 7,
            t_s: 1.0,
        });
        assert!(d.ended());
        let text = d.render(100);
        assert!(text.contains("7 DROPPED"), "{text}");
        assert_eq!(d.counts().get("job_end"), Some(&1));
    }

    #[test]
    fn feed_line_surfaces_parse_errors_without_folding() {
        let mut d = Dashboard::new();
        assert!(d.feed_line("garbage").is_err());
        assert_eq!(d.counts().len(), 0);
        assert!(d
            .feed_line(
                &LiveRecord::SweepEnd {
                    done: 1,
                    total: 1,
                    failed: 0,
                    wall_s: 0.0,
                    t_s: 0.0,
                }
                .to_json_line()
            )
            .is_ok());
        assert_eq!(d.counts().get("sweep_end"), Some(&1));
    }

    #[test]
    fn bar_and_eta_formatting() {
        assert_eq!(bar(0.5, 10), "[#####-----]");
        assert_eq!(fmt_eta(0.0, false), "-");
        assert_eq!(fmt_eta(5.25, false), "5.2s");
        assert_eq!(fmt_eta(125.0, false), "2m05s");
        assert_eq!(fmt_eta(10.0, true), "done");
    }
}
