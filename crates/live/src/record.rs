//! The typed NDJSON record vocabulary of the live telemetry stream.
//!
//! Every line of a stream is one JSON object with two envelope fields:
//! `"v"` (the [`crate::LIVE_SCHEMA_VERSION`]) and
//! `"type"` (the record discriminant). Serialization goes through
//! [`gscalar_metrics::json::Json`], whose sorted-key `Display` makes
//! every line byte-deterministic for a given record value — the
//! property the golden-file schema test pins.
//!
//! Wall-clock fields (`t_s`, `wall_s`, `eta_s`) are *redacted to zero*
//! by the emitting [`LiveHandle`](crate::LiveHandle) when the stream is
//! deterministic; the record layer itself is pure data.

use std::collections::BTreeMap;

use gscalar_metrics::json::Json;

use crate::LIVE_SCHEMA_VERSION;

/// One telemetry record: a line of the NDJSON stream.
#[derive(Debug, Clone, PartialEq)]
pub enum LiveRecord {
    /// A simulation run started.
    RunStart {
        /// Stream-unique run id.
        run: u64,
        /// Workload name (e.g. `"backprop"`).
        workload: String,
        /// Architecture label (e.g. `"G-Scalar"`).
        arch: String,
        /// Number of SMs in the simulated chip.
        sms: u64,
        /// Seconds since the stream opened (0 when deterministic).
        t_s: f64,
    },
    /// Periodic in-flight sample of one run, cumulative since cycle 0.
    Snapshot {
        /// Run id this sample belongs to.
        run: u64,
        /// Simulated cycle of the sample boundary.
        cycle: u64,
        /// Cumulative thread-level IPC.
        ipc: f64,
        /// Warp instructions issued so far.
        issued: u64,
        /// Warp instructions executed so far.
        warp_instrs: u64,
        /// Fraction of warp instructions executed on the scalar path.
        scalar_rate: f64,
        /// Register-file compression ratio (raw bytes / compressed).
        compression_ratio: f64,
        /// Mean MSHR occupancy over sampled fills.
        mshr_mean: f64,
        /// Peak MSHR occupancy observed.
        mshr_max: u64,
        /// Cumulative IPC of each SM, indexed by SM id.
        per_sm_ipc: Vec<f64>,
        /// Scheduler-idle cycles by stall reason label.
        stalls: BTreeMap<String, u64>,
        /// Work-stealing pool counters: (steals, failed steals, epochs).
        pool: (u64, u64, u64),
        /// Seconds since the stream opened (0 when deterministic).
        t_s: f64,
    },
    /// A simulation run finished normally.
    RunEnd {
        /// Run id.
        run: u64,
        /// Final cycle count.
        cycle: u64,
        /// Final thread-level IPC.
        ipc: f64,
        /// Total warp instructions executed.
        warp_instrs: u64,
        /// Seconds since the stream opened (0 when deterministic).
        t_s: f64,
    },
    /// A sweep over a job grid started.
    SweepStart {
        /// Number of jobs about to execute (after resume filtering).
        jobs: u64,
        /// Sum of per-job cycle budgets (0 when unbudgeted).
        budget_cycles: u64,
        /// Seconds since the stream opened (0 when deterministic).
        t_s: f64,
    },
    /// A sweep job began its first attempt.
    JobStart {
        /// Job id (`<experiment>/<cell>`).
        job: String,
        /// The job's simulated-cycle budget (0 = unbudgeted).
        budget: u64,
        /// Seconds since the stream opened (0 when deterministic).
        t_s: f64,
    },
    /// A failed attempt is about to be retried.
    JobRetry {
        /// Job id.
        job: String,
        /// 1-based number of the attempt that just failed.
        attempt: u64,
        /// Failure kind (`"panic"`, `"budget"`, `"error"`).
        kind: String,
        /// Failure message.
        message: String,
        /// Seconds since the stream opened (0 when deterministic).
        t_s: f64,
    },
    /// A sweep job finished (successfully or not).
    JobEnd {
        /// Job id.
        job: String,
        /// Final status: `"ok"`, `"panic"`, `"budget"`, or `"error"`.
        status: String,
        /// Total attempts made.
        attempts: u64,
        /// Simulated cycles the job ran (0 on failure).
        sim_cycles: u64,
        /// Wall seconds the final attempt took (0 when deterministic).
        wall_s: f64,
        /// Jobs finished so far, including this one.
        done: u64,
        /// Total jobs in the sweep.
        total: u64,
        /// Budget-weighted progress fraction in `[0, 1]`.
        progress: f64,
        /// Estimated seconds remaining (0 when deterministic).
        eta_s: f64,
        /// Seconds since the stream opened (0 when deterministic).
        t_s: f64,
    },
    /// The sweep finished.
    SweepEnd {
        /// Jobs that executed.
        done: u64,
        /// Total jobs in the sweep.
        total: u64,
        /// Jobs that exhausted their retries and failed.
        failed: u64,
        /// Wall seconds for the whole sweep (0 when deterministic).
        wall_s: f64,
        /// Seconds since the stream opened (0 when deterministic).
        t_s: f64,
    },
    /// Terminal record: the stream closed. Always the last line.
    StreamEnd {
        /// Records written to the sink, excluding this one.
        records: u64,
        /// Records dropped because the bounded buffer was full.
        dropped: u64,
        /// Seconds since the stream opened (0 when deterministic).
        t_s: f64,
    },
}

fn num(v: f64) -> Json {
    Json::Num(if v.is_finite() { v } else { 0.0 })
}

fn int(v: u64) -> Json {
    Json::Num(v as f64)
}

fn s(v: &str) -> Json {
    Json::Str(v.to_string())
}

impl LiveRecord {
    /// The record's `"type"` discriminant.
    #[must_use]
    pub fn type_name(&self) -> &'static str {
        match self {
            LiveRecord::RunStart { .. } => "run_start",
            LiveRecord::Snapshot { .. } => "snapshot",
            LiveRecord::RunEnd { .. } => "run_end",
            LiveRecord::SweepStart { .. } => "sweep_start",
            LiveRecord::JobStart { .. } => "job_start",
            LiveRecord::JobRetry { .. } => "job_retry",
            LiveRecord::JobEnd { .. } => "job_end",
            LiveRecord::SweepEnd { .. } => "sweep_end",
            LiveRecord::StreamEnd { .. } => "stream_end",
        }
    }

    /// The run id this record belongs to, if it is a per-run record.
    #[must_use]
    pub fn run_id(&self) -> Option<u64> {
        match self {
            LiveRecord::RunStart { run, .. }
            | LiveRecord::Snapshot { run, .. }
            | LiveRecord::RunEnd { run, .. } => Some(*run),
            _ => None,
        }
    }

    /// Serializes to one NDJSON line (no trailing newline). Keys are
    /// emitted in sorted order, so the output is byte-deterministic.
    #[must_use]
    pub fn to_json_line(&self) -> String {
        let mut fields: Vec<(String, Json)> = vec![
            ("v".into(), int(LIVE_SCHEMA_VERSION)),
            ("type".into(), s(self.type_name())),
        ];
        match self {
            LiveRecord::RunStart {
                run,
                workload,
                arch,
                sms,
                t_s,
            } => {
                fields.push(("run".into(), int(*run)));
                fields.push(("workload".into(), s(workload)));
                fields.push(("arch".into(), s(arch)));
                fields.push(("sms".into(), int(*sms)));
                fields.push(("t_s".into(), num(*t_s)));
            }
            LiveRecord::Snapshot {
                run,
                cycle,
                ipc,
                issued,
                warp_instrs,
                scalar_rate,
                compression_ratio,
                mshr_mean,
                mshr_max,
                per_sm_ipc,
                stalls,
                pool,
                t_s,
            } => {
                fields.push(("run".into(), int(*run)));
                fields.push(("cycle".into(), int(*cycle)));
                fields.push(("ipc".into(), num(*ipc)));
                fields.push(("issued".into(), int(*issued)));
                fields.push(("warp_instrs".into(), int(*warp_instrs)));
                fields.push(("scalar_rate".into(), num(*scalar_rate)));
                fields.push(("compression_ratio".into(), num(*compression_ratio)));
                fields.push(("mshr_mean".into(), num(*mshr_mean)));
                fields.push(("mshr_max".into(), int(*mshr_max)));
                fields.push((
                    "per_sm_ipc".into(),
                    Json::Arr(per_sm_ipc.iter().map(|v| num(*v)).collect()),
                ));
                fields.push((
                    "stalls".into(),
                    Json::Obj(stalls.iter().map(|(k, v)| (k.clone(), int(*v))).collect()),
                ));
                let (steals, failed, epochs) = pool;
                fields.push((
                    "pool".into(),
                    Json::obj([
                        ("steals".to_string(), int(*steals)),
                        ("failed_steals".to_string(), int(*failed)),
                        ("epochs".to_string(), int(*epochs)),
                    ]),
                ));
                fields.push(("t_s".into(), num(*t_s)));
            }
            LiveRecord::RunEnd {
                run,
                cycle,
                ipc,
                warp_instrs,
                t_s,
            } => {
                fields.push(("run".into(), int(*run)));
                fields.push(("cycle".into(), int(*cycle)));
                fields.push(("ipc".into(), num(*ipc)));
                fields.push(("warp_instrs".into(), int(*warp_instrs)));
                fields.push(("t_s".into(), num(*t_s)));
            }
            LiveRecord::SweepStart {
                jobs,
                budget_cycles,
                t_s,
            } => {
                fields.push(("jobs".into(), int(*jobs)));
                fields.push(("budget_cycles".into(), int(*budget_cycles)));
                fields.push(("t_s".into(), num(*t_s)));
            }
            LiveRecord::JobStart { job, budget, t_s } => {
                fields.push(("job".into(), s(job)));
                fields.push(("budget".into(), int(*budget)));
                fields.push(("t_s".into(), num(*t_s)));
            }
            LiveRecord::JobRetry {
                job,
                attempt,
                kind,
                message,
                t_s,
            } => {
                fields.push(("job".into(), s(job)));
                fields.push(("attempt".into(), int(*attempt)));
                fields.push(("kind".into(), s(kind)));
                fields.push(("message".into(), s(message)));
                fields.push(("t_s".into(), num(*t_s)));
            }
            LiveRecord::JobEnd {
                job,
                status,
                attempts,
                sim_cycles,
                wall_s,
                done,
                total,
                progress,
                eta_s,
                t_s,
            } => {
                fields.push(("job".into(), s(job)));
                fields.push(("status".into(), s(status)));
                fields.push(("attempts".into(), int(*attempts)));
                fields.push(("sim_cycles".into(), int(*sim_cycles)));
                fields.push(("wall_s".into(), num(*wall_s)));
                fields.push(("done".into(), int(*done)));
                fields.push(("total".into(), int(*total)));
                fields.push(("progress".into(), num(*progress)));
                fields.push(("eta_s".into(), num(*eta_s)));
                fields.push(("t_s".into(), num(*t_s)));
            }
            LiveRecord::SweepEnd {
                done,
                total,
                failed,
                wall_s,
                t_s,
            } => {
                fields.push(("done".into(), int(*done)));
                fields.push(("total".into(), int(*total)));
                fields.push(("failed".into(), int(*failed)));
                fields.push(("wall_s".into(), num(*wall_s)));
                fields.push(("t_s".into(), num(*t_s)));
            }
            LiveRecord::StreamEnd {
                records,
                dropped,
                t_s,
            } => {
                fields.push(("records".into(), int(*records)));
                fields.push(("dropped".into(), int(*dropped)));
                fields.push(("t_s".into(), num(*t_s)));
            }
        }
        Json::obj(fields).to_string()
    }

    /// Parses one NDJSON line back into a record.
    ///
    /// # Errors
    ///
    /// Returns a message when the line is not valid JSON, declares an
    /// unsupported schema version, has an unknown `"type"`, or misses
    /// a required field.
    pub fn parse(line: &str) -> Result<LiveRecord, String> {
        let doc = Json::parse(line)?;
        let v = doc
            .get("v")
            .and_then(Json::as_f64)
            .ok_or("record missing numeric 'v'")? as u64;
        if v != LIVE_SCHEMA_VERSION {
            return Err(format!(
                "unsupported live schema {v} (expected {LIVE_SCHEMA_VERSION})"
            ));
        }
        let ty = doc
            .get("type")
            .and_then(Json::as_str)
            .ok_or("record missing string 'type'")?;
        let f = |k: &str| -> Result<f64, String> {
            doc.get(k)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("{ty} record missing numeric {k:?}"))
        };
        let u = |k: &str| -> Result<u64, String> { f(k).map(|v| v as u64) };
        let st = |k: &str| -> Result<String, String> {
            doc.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{ty} record missing string {k:?}"))
        };
        match ty {
            "run_start" => Ok(LiveRecord::RunStart {
                run: u("run")?,
                workload: st("workload")?,
                arch: st("arch")?,
                sms: u("sms")?,
                t_s: f("t_s")?,
            }),
            "snapshot" => {
                let per_sm_ipc = match doc.get("per_sm_ipc") {
                    Some(Json::Arr(items)) => items
                        .iter()
                        .map(|j| {
                            j.as_f64()
                                .ok_or_else(|| "non-numeric per_sm_ipc entry".to_string())
                        })
                        .collect::<Result<Vec<f64>, String>>()?,
                    _ => return Err("snapshot record missing array 'per_sm_ipc'".into()),
                };
                let stalls = doc
                    .get("stalls")
                    .and_then(Json::as_obj)
                    .ok_or("snapshot record missing object 'stalls'")?
                    .iter()
                    .map(|(k, v)| {
                        v.as_f64()
                            .map(|n| (k.clone(), n as u64))
                            .ok_or_else(|| format!("non-numeric stall count {k:?}"))
                    })
                    .collect::<Result<BTreeMap<String, u64>, String>>()?;
                let pool_obj = doc.get("pool");
                let pf = |k: &str| {
                    pool_obj
                        .and_then(|p| p.get(k))
                        .and_then(Json::as_f64)
                        .unwrap_or(0.0) as u64
                };
                Ok(LiveRecord::Snapshot {
                    run: u("run")?,
                    cycle: u("cycle")?,
                    ipc: f("ipc")?,
                    issued: u("issued")?,
                    warp_instrs: u("warp_instrs")?,
                    scalar_rate: f("scalar_rate")?,
                    compression_ratio: f("compression_ratio")?,
                    mshr_mean: f("mshr_mean")?,
                    mshr_max: u("mshr_max")?,
                    per_sm_ipc,
                    stalls,
                    pool: (pf("steals"), pf("failed_steals"), pf("epochs")),
                    t_s: f("t_s")?,
                })
            }
            "run_end" => Ok(LiveRecord::RunEnd {
                run: u("run")?,
                cycle: u("cycle")?,
                ipc: f("ipc")?,
                warp_instrs: u("warp_instrs")?,
                t_s: f("t_s")?,
            }),
            "sweep_start" => Ok(LiveRecord::SweepStart {
                jobs: u("jobs")?,
                budget_cycles: u("budget_cycles")?,
                t_s: f("t_s")?,
            }),
            "job_start" => Ok(LiveRecord::JobStart {
                job: st("job")?,
                budget: u("budget")?,
                t_s: f("t_s")?,
            }),
            "job_retry" => Ok(LiveRecord::JobRetry {
                job: st("job")?,
                attempt: u("attempt")?,
                kind: st("kind")?,
                message: st("message")?,
                t_s: f("t_s")?,
            }),
            "job_end" => Ok(LiveRecord::JobEnd {
                job: st("job")?,
                status: st("status")?,
                attempts: u("attempts")?,
                sim_cycles: u("sim_cycles")?,
                wall_s: f("wall_s")?,
                done: u("done")?,
                total: u("total")?,
                progress: f("progress")?,
                eta_s: f("eta_s")?,
                t_s: f("t_s")?,
            }),
            "sweep_end" => Ok(LiveRecord::SweepEnd {
                done: u("done")?,
                total: u("total")?,
                failed: u("failed")?,
                wall_s: f("wall_s")?,
                t_s: f("t_s")?,
            }),
            "stream_end" => Ok(LiveRecord::StreamEnd {
                records: u("records")?,
                dropped: u("dropped")?,
                t_s: f("t_s")?,
            }),
            other => Err(format!("unknown live record type {other:?}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_record_round_trips() {
        let records = vec![
            LiveRecord::RunStart {
                run: 1,
                workload: "backprop".into(),
                arch: "G-Scalar".into(),
                sms: 15,
                t_s: 0.5,
            },
            LiveRecord::Snapshot {
                run: 1,
                cycle: 8192,
                ipc: 12.25,
                issued: 4000,
                warp_instrs: 3900,
                scalar_rate: 0.31,
                compression_ratio: 1.75,
                mshr_mean: 2.5,
                mshr_max: 8,
                per_sm_ipc: vec![0.5, 0.75],
                stalls: [("mem".to_string(), 100u64), ("sync".to_string(), 5)]
                    .into_iter()
                    .collect(),
                pool: (3, 1, 40),
                t_s: 1.0,
            },
            LiveRecord::RunEnd {
                run: 1,
                cycle: 20000,
                ipc: 13.0,
                warp_instrs: 9000,
                t_s: 2.0,
            },
            LiveRecord::SweepStart {
                jobs: 6,
                budget_cycles: 120_000,
                t_s: 0.0,
            },
            LiveRecord::JobStart {
                job: "fig01/BP".into(),
                budget: 20_000,
                t_s: 0.1,
            },
            LiveRecord::JobRetry {
                job: "fig01/BP".into(),
                attempt: 1,
                kind: "panic".into(),
                message: "boom".into(),
                t_s: 0.2,
            },
            LiveRecord::JobEnd {
                job: "fig01/BP".into(),
                status: "ok".into(),
                attempts: 2,
                sim_cycles: 18_000,
                wall_s: 0.4,
                done: 1,
                total: 6,
                progress: 0.166_5,
                eta_s: 2.0,
                t_s: 0.5,
            },
            LiveRecord::SweepEnd {
                done: 6,
                total: 6,
                failed: 1,
                wall_s: 3.0,
                t_s: 3.0,
            },
            LiveRecord::StreamEnd {
                records: 42,
                dropped: 0,
                t_s: 3.0,
            },
        ];
        for r in records {
            let line = r.to_json_line();
            let back = LiveRecord::parse(&line).unwrap_or_else(|e| panic!("{line}: {e}"));
            assert_eq!(back, r, "round trip of {line}");
            // Envelope fields are always present.
            let doc = Json::parse(&line).unwrap();
            assert_eq!(doc.get("v").and_then(Json::as_f64), Some(1.0));
            assert_eq!(
                doc.get("type").and_then(Json::as_str),
                Some(r.type_name()),
                "type field"
            );
        }
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(LiveRecord::parse("not json").is_err());
        assert!(LiveRecord::parse("{}").is_err());
        assert!(LiveRecord::parse("{\"v\":99,\"type\":\"run_end\"}").is_err());
        assert!(LiveRecord::parse("{\"v\":1,\"type\":\"nope\"}").is_err());
        assert!(LiveRecord::parse("{\"v\":1,\"type\":\"run_end\"}").is_err());
    }

    #[test]
    fn non_finite_floats_are_sanitized() {
        let r = LiveRecord::RunEnd {
            run: 0,
            cycle: 1,
            ipc: f64::NAN,
            warp_instrs: 0,
            t_s: f64::INFINITY,
        };
        let line = r.to_json_line();
        let back = LiveRecord::parse(&line).unwrap();
        if let LiveRecord::RunEnd { ipc, t_s, .. } = back {
            assert_eq!(ipc, 0.0);
            assert_eq!(t_s, 0.0);
        } else {
            panic!("wrong variant");
        }
    }
}
