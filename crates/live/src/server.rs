//! A deliberately small single-threaded HTTP/SSE server for live
//! streams — the first slice of the sweep-as-a-service API.
//!
//! Endpoints (HTTP/1.0, one request per connection):
//!
//! * `GET /runs` — JSON array of the runs seen so far (`run` id,
//!   `workload`, record count, whether the run is still in flight).
//! * `GET /runs/<id>/stream` — Server-Sent Events: every record of run
//!   `<id>` already buffered is replayed as one `data:` event, then new
//!   records are pushed as they arrive; when the stream closes the
//!   server sends `event: end` and drops the connection. The pseudo-id
//!   `all` subscribes to the merged stream (every record, including
//!   sweep lifecycle events), which is what `watch <addr>` uses.
//!
//! The server keeps the full record history in memory, so late
//! subscribers see the whole stream; it accepts one connection at a
//! time (a streaming subscriber parks the acceptor), which matches its
//! in-repo single-watcher use. It runs on a detached thread and lives
//! until process exit.

use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use gscalar_metrics::json::Json;

/// How often pollers (acceptor, SSE pushers) re-check shared state.
const POLL: Duration = Duration::from_millis(25);

#[derive(Default)]
struct RunMeta {
    workload: String,
    records: u64,
    ended: bool,
}

#[derive(Default)]
struct ServerState {
    /// Every line pushed, in arrival order.
    lines: Vec<String>,
    /// Per-run bookkeeping, keyed by run id.
    runs: BTreeMap<u64, RunMeta>,
    closed: bool,
}

/// State shared between the stream's writer thread (producer) and the
/// server's acceptor thread (consumer).
pub(crate) struct ServerShared {
    state: Mutex<ServerState>,
}

impl ServerShared {
    /// Binds `addr`, spawns the detached acceptor thread, and returns
    /// the shared state plus the actual bound address.
    pub(crate) fn bind(addr: SocketAddr) -> std::io::Result<(Arc<ServerShared>, SocketAddr)> {
        let listener = TcpListener::bind(addr)?;
        let bound = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(ServerShared {
            state: Mutex::new(ServerState::default()),
        });
        let srv = Arc::clone(&shared);
        std::thread::spawn(move || loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    // Connection handling is best-effort: a broken
                    // client must not take the server down.
                    let _ = srv.handle(stream);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL);
                }
                Err(_) => std::thread::sleep(POLL),
            }
        });
        Ok((shared, bound))
    }

    /// Appends one record line (called by the stream writer thread).
    pub(crate) fn push(&self, line: &str) {
        let mut st = self.state.lock().expect("server state poisoned");
        if let Ok(doc) = Json::parse(line) {
            let ty = doc.get("type").and_then(Json::as_str).unwrap_or("");
            if let Some(run) = doc.get("run").and_then(Json::as_f64) {
                let meta = st.runs.entry(run as u64).or_default();
                meta.records += 1;
                match ty {
                    "run_start" => {
                        meta.workload = doc
                            .get("workload")
                            .and_then(Json::as_str)
                            .unwrap_or("")
                            .to_string();
                    }
                    "run_end" => meta.ended = true,
                    _ => {}
                }
            }
        }
        st.lines.push(line.to_string());
    }

    /// Marks the stream closed (called once, after the terminal record).
    pub(crate) fn close(&self) {
        self.state.lock().expect("server state poisoned").closed = true;
    }

    fn handle(&self, stream: TcpStream) -> std::io::Result<()> {
        stream.set_nonblocking(false)?;
        stream.set_read_timeout(Some(Duration::from_millis(500)))?;
        let mut reader = BufReader::new(stream.try_clone()?);
        let mut request_line = String::new();
        reader.read_line(&mut request_line)?;
        let path = match request_line.split_whitespace().collect::<Vec<_>>()[..] {
            ["GET", p, ..] => p.to_string(),
            _ => {
                return respond(stream, "400 Bad Request", "text/plain", "bad request\n");
            }
        };
        // Drain the remaining request headers (best-effort).
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => break,
                Ok(_) if line == "\r\n" || line == "\n" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
        if path == "/runs" {
            let body = self.runs_json();
            return respond(stream, "200 OK", "application/json", &body);
        }
        if let Some(rest) = path.strip_prefix("/runs/") {
            if let Some(id) = rest.strip_suffix("/stream") {
                let filter = match id {
                    "all" => None,
                    n => match n.parse::<u64>() {
                        Ok(v) => Some(v),
                        Err(_) => {
                            return respond(
                                stream,
                                "404 Not Found",
                                "text/plain",
                                "unknown run id\n",
                            );
                        }
                    },
                };
                return self.stream_sse(stream, filter);
            }
        }
        respond(stream, "404 Not Found", "text/plain", "not found\n")
    }

    fn runs_json(&self) -> String {
        let st = self.state.lock().expect("server state poisoned");
        let runs: Vec<Json> = st
            .runs
            .iter()
            .map(|(id, meta)| {
                Json::obj([
                    ("run".to_string(), Json::Num(*id as f64)),
                    ("workload".to_string(), Json::Str(meta.workload.clone())),
                    ("records".to_string(), Json::Num(meta.records as f64)),
                    ("live".to_string(), Json::Bool(!meta.ended && !st.closed)),
                ])
            })
            .collect();
        format!("{}\n", Json::Arr(runs))
    }

    /// Replays buffered records for `filter` (None = all) as SSE, then
    /// follows the live stream until it closes or the client hangs up.
    fn stream_sse(&self, mut stream: TcpStream, filter: Option<u64>) -> std::io::Result<()> {
        stream.write_all(
            b"HTTP/1.0 200 OK\r\nContent-Type: text/event-stream\r\nCache-Control: no-cache\r\n\r\n",
        )?;
        let matches = |line: &str| match filter {
            None => true,
            Some(id) => Json::parse(line)
                .ok()
                .and_then(|d| d.get("run").and_then(Json::as_f64))
                .is_some_and(|r| r as u64 == id),
        };
        let mut sent = 0usize;
        loop {
            let (batch, closed) = {
                let st = self.state.lock().expect("server state poisoned");
                let batch: Vec<String> = st.lines[sent.min(st.lines.len())..].to_vec();
                (batch, st.closed)
            };
            sent += batch.len();
            for line in &batch {
                if matches(line) {
                    stream.write_all(format!("data: {line}\n\n").as_bytes())?;
                }
            }
            if closed {
                stream.write_all(b"event: end\ndata: {}\n\n")?;
                stream.flush()?;
                return Ok(());
            }
            stream.flush()?;
            std::thread::sleep(POLL);
        }
    }
}

fn respond(
    mut stream: TcpStream,
    status: &str,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.0 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}
