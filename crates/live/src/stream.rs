//! The bounded, non-blocking telemetry stream behind [`LiveHandle`].
//!
//! Emitters (simulation observers, the sweep engine) serialize records
//! and push the lines into a bounded in-memory queue; a background
//! writer thread drains the queue into the sink (NDJSON file, in-memory
//! vector, or the SSE server). The hot path therefore never blocks on
//! I/O: when the queue is full the line is **dropped** and a drop
//! counter incremented — the terminal [`StreamEnd`](LiveRecord)
//! record reports how many lines were lost.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::record::LiveRecord;
use crate::server::ServerShared;

/// Configuration of a live stream.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Redact wall-clock fields (`t_s`, `wall_s`, `eta_s`) to zero, the
    /// same contract `--deterministic` applies to manifests.
    pub deterministic: bool,
    /// Snapshot cadence in simulated cycles for run observers.
    pub snapshot_interval: u64,
    /// Bounded queue capacity in lines; excess lines are dropped.
    pub capacity: usize,
}

/// Default snapshot cadence: one sample every 4096 simulated cycles.
pub const DEFAULT_SNAPSHOT_INTERVAL: u64 = 4096;

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            deterministic: false,
            snapshot_interval: DEFAULT_SNAPSHOT_INTERVAL,
            capacity: 4096,
        }
    }
}

/// Where drained lines go.
enum Sink {
    File(BufWriter<File>),
    Memory(Arc<Mutex<Vec<String>>>),
    Server(Arc<ServerShared>),
}

impl Sink {
    fn write_line(&mut self, line: &str) {
        match self {
            Sink::File(w) => {
                // A failed write must never take the simulation down;
                // the stream is advisory. Errors surface as a short
                // file, which `watch check` flags.
                let _ = writeln!(w, "{line}");
            }
            Sink::Memory(v) => v
                .lock()
                .expect("memory sink poisoned")
                .push(line.to_string()),
            Sink::Server(s) => s.push(line),
        }
    }

    fn flush(&mut self) {
        match self {
            Sink::File(w) => {
                let _ = w.flush();
            }
            Sink::Memory(_) => {}
            Sink::Server(s) => s.close(),
        }
    }
}

struct QueueState {
    queue: VecDeque<String>,
    /// Lines handed to the writer thread (excludes drops).
    emitted: u64,
    dropped: u64,
    closed: bool,
}

impl QueueState {
    /// Enqueues `line`, dropping it when the queue holds `capacity`
    /// lines already. Returns whether the line was accepted.
    fn push_line(&mut self, capacity: usize, line: String) -> bool {
        if self.queue.len() >= capacity {
            self.dropped += 1;
            return false;
        }
        self.queue.push_back(line);
        self.emitted += 1;
        true
    }
}

struct Inner {
    state: Mutex<QueueState>,
    cv: Condvar,
    cfg: StreamConfig,
    opened: Instant,
    next_run: AtomicU64,
    writer: Mutex<Option<JoinHandle<()>>>,
    memory: Option<Arc<Mutex<Vec<String>>>>,
}

/// A cloneable handle onto one live telemetry stream.
///
/// All clones share the same queue, sink, and run-id counter; any clone
/// may emit from any thread. [`close`](LiveHandle::close) (idempotent)
/// flushes the queue, appends the terminal `stream_end` record, and
/// joins the writer thread.
///
/// # Examples
///
/// ```
/// use gscalar_live::{LiveHandle, LiveRecord, StreamConfig};
///
/// let h = LiveHandle::memory(StreamConfig {
///     deterministic: true,
///     ..StreamConfig::default()
/// });
/// h.emit(&LiveRecord::SweepStart { jobs: 2, budget_cycles: 0, t_s: h.now_s() });
/// h.close();
/// let lines = h.collected().unwrap();
/// assert_eq!(lines.len(), 2); // sweep_start + stream_end
/// assert!(lines[0].contains("\"type\":\"sweep_start\""));
/// assert!(lines[1].contains("\"type\":\"stream_end\""));
/// ```
#[derive(Clone)]
pub struct LiveHandle {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for LiveHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let st = self.inner.state.lock().expect("live state poisoned");
        f.debug_struct("LiveHandle")
            .field("deterministic", &self.inner.cfg.deterministic)
            .field("emitted", &st.emitted)
            .field("dropped", &st.dropped)
            .field("closed", &st.closed)
            .finish()
    }
}

impl LiveHandle {
    fn start(cfg: StreamConfig, mut sink: Sink) -> LiveHandle {
        let memory = match &sink {
            Sink::Memory(v) => Some(Arc::clone(v)),
            _ => None,
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                emitted: 0,
                dropped: 0,
                closed: false,
            }),
            cv: Condvar::new(),
            cfg,
            opened: Instant::now(),
            next_run: AtomicU64::new(1),
            writer: Mutex::new(None),
            memory,
        });
        let drain = Arc::clone(&inner);
        let handle = std::thread::spawn(move || loop {
            let (batch, end) = {
                let mut st = drain.state.lock().expect("live state poisoned");
                while st.queue.is_empty() && !st.closed {
                    st = drain.cv.wait(st).expect("live state poisoned");
                }
                let batch: Vec<String> = st.queue.drain(..).collect();
                let end = if st.closed {
                    Some((st.emitted, st.dropped))
                } else {
                    None
                };
                (batch, end)
            };
            for line in &batch {
                sink.write_line(line);
            }
            if let Some((records, dropped)) = end {
                let t_s = if drain.cfg.deterministic {
                    0.0
                } else {
                    drain.opened.elapsed().as_secs_f64()
                };
                let terminal = LiveRecord::StreamEnd {
                    records,
                    dropped,
                    t_s,
                };
                sink.write_line(&terminal.to_json_line());
                sink.flush();
                return;
            }
        });
        *inner.writer.lock().expect("live writer poisoned") = Some(handle);
        LiveHandle { inner }
    }

    /// Opens a stream writing NDJSON lines to `path` (truncating any
    /// existing file so a stream is always one self-contained session).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the file cannot be created.
    pub fn file(path: &Path, cfg: StreamConfig) -> std::io::Result<LiveHandle> {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir)?;
        }
        let f = File::create(path)?;
        Ok(LiveHandle::start(cfg, Sink::File(BufWriter::new(f))))
    }

    /// Opens a stream collecting lines in memory (for tests).
    #[must_use]
    pub fn memory(cfg: StreamConfig) -> LiveHandle {
        LiveHandle::start(cfg, Sink::Memory(Arc::new(Mutex::new(Vec::new()))))
    }

    /// Opens a stream served over HTTP/SSE on `addr` (see
    /// [`server`](crate::server) for the endpoints). Returns the handle
    /// and the actual bound address (useful with port 0).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the listener cannot bind.
    pub fn serve(addr: SocketAddr, cfg: StreamConfig) -> std::io::Result<(LiveHandle, SocketAddr)> {
        let (shared, bound) = ServerShared::bind(addr)?;
        Ok((LiveHandle::start(cfg, Sink::Server(shared)), bound))
    }

    /// Serializes and enqueues `rec`. Never blocks: when the bounded
    /// queue is full the record is dropped and counted.
    pub fn emit(&self, rec: &LiveRecord) {
        let line = rec.to_json_line();
        let mut st = self.inner.state.lock().expect("live state poisoned");
        if st.closed {
            return;
        }
        if !st.push_line(self.inner.cfg.capacity, line) {
            return;
        }
        drop(st);
        self.inner.cv.notify_one();
    }

    /// Allocates the next stream-unique run id.
    #[must_use]
    pub fn next_run_id(&self) -> u64 {
        self.inner.next_run.fetch_add(1, Ordering::Relaxed)
    }

    /// Seconds since the stream opened — or `0.0` in deterministic
    /// mode, redacting wall clocks from every record built with it.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        if self.inner.cfg.deterministic {
            0.0
        } else {
            self.inner.opened.elapsed().as_secs_f64()
        }
    }

    /// Passes `seconds` through, or `0.0` in deterministic mode. Used
    /// for wall-derived fields (`wall_s`, `eta_s`) computed elsewhere.
    #[must_use]
    pub fn redact(&self, seconds: f64) -> f64 {
        if self.inner.cfg.deterministic {
            0.0
        } else {
            seconds
        }
    }

    /// Whether wall-clock fields are redacted.
    #[must_use]
    pub fn deterministic(&self) -> bool {
        self.inner.cfg.deterministic
    }

    /// Snapshot cadence (simulated cycles) run observers should use.
    #[must_use]
    pub fn snapshot_interval(&self) -> u64 {
        self.inner.cfg.snapshot_interval.max(1)
    }

    /// Records dropped so far because the queue was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner
            .state
            .lock()
            .expect("live state poisoned")
            .dropped
    }

    /// Closes the stream: drains the queue, writes the terminal
    /// `stream_end` record, flushes the sink, and joins the writer
    /// thread. Idempotent; later [`emit`](LiveHandle::emit)s are
    /// silently ignored.
    pub fn close(&self) {
        {
            let mut st = self.inner.state.lock().expect("live state poisoned");
            if st.closed {
                return;
            }
            st.closed = true;
        }
        self.inner.cv.notify_all();
        let handle = self
            .inner
            .writer
            .lock()
            .expect("live writer poisoned")
            .take();
        if let Some(h) = handle {
            let _ = h.join();
        }
    }

    /// The lines collected so far by a [`memory`](LiveHandle::memory)
    /// sink (`None` for file/server sinks). Call after
    /// [`close`](LiveHandle::close) for the complete stream.
    #[must_use]
    pub fn collected(&self) -> Option<Vec<String>> {
        self.inner
            .memory
            .as_ref()
            .map(|v| v.lock().expect("memory sink poisoned").clone())
    }
}

/// Opens a stream on a CLI `--live` target: a parseable socket address
/// (e.g. `127.0.0.1:8080`) starts the SSE server, anything else is
/// treated as an NDJSON file path.
///
/// # Errors
///
/// Returns a human-readable message when the file or listener cannot
/// be opened.
pub fn open_target(target: &str, cfg: StreamConfig) -> Result<LiveHandle, String> {
    if let Ok(addr) = target.parse::<SocketAddr>() {
        let (handle, bound) = LiveHandle::serve(addr, cfg)
            .map_err(|e| format!("--live: cannot serve on {addr}: {e}"))?;
        eprintln!("live: serving SSE on http://{bound}/runs/all/stream");
        Ok(handle)
    } else {
        LiveHandle::file(&PathBuf::from(target), cfg)
            .map_err(|e| format!("--live: cannot open {target}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn det_cfg() -> StreamConfig {
        StreamConfig {
            deterministic: true,
            ..StreamConfig::default()
        }
    }

    #[test]
    fn memory_stream_preserves_order_and_appends_terminal() {
        let h = LiveHandle::memory(det_cfg());
        for i in 0..10 {
            h.emit(&LiveRecord::JobStart {
                job: format!("j{i}"),
                budget: 0,
                t_s: h.now_s(),
            });
        }
        h.close();
        let lines = h.collected().unwrap();
        assert_eq!(lines.len(), 11);
        for (i, line) in lines[..10].iter().enumerate() {
            match LiveRecord::parse(line).unwrap() {
                LiveRecord::JobStart { job, t_s, .. } => {
                    assert_eq!(job, format!("j{i}"));
                    assert_eq!(t_s, 0.0, "deterministic stream leaks wall clock");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
        match LiveRecord::parse(&lines[10]).unwrap() {
            LiveRecord::StreamEnd {
                records, dropped, ..
            } => {
                assert_eq!(records, 10);
                assert_eq!(dropped, 0);
            }
            other => panic!("unexpected terminal {other:?}"),
        }
    }

    #[test]
    fn full_queue_drops_instead_of_blocking() {
        // Stall the writer by holding the state lock, so the queue
        // genuinely fills; `push_line` is exactly what `emit` runs
        // under that same lock.
        let h = LiveHandle::memory(StreamConfig {
            capacity: 2,
            ..det_cfg()
        });
        {
            let mut st = h.inner.state.lock().unwrap();
            let accepted: Vec<bool> = (0..5).map(|i| st.push_line(2, format!("l{i}"))).collect();
            assert_eq!(accepted, [true, true, false, false, false]);
            assert_eq!(st.dropped, 3);
            assert_eq!(st.emitted, 2);
        }
        h.close();
        // The terminal record reports the drops.
        let lines = h.collected().unwrap();
        let last = lines.last().unwrap();
        match LiveRecord::parse(last).unwrap() {
            LiveRecord::StreamEnd { dropped, .. } => assert_eq!(dropped, 3),
            other => panic!("unexpected terminal {other:?}"),
        }
    }

    #[test]
    fn close_is_idempotent_and_emits_after_close_are_ignored() {
        let h = LiveHandle::memory(det_cfg());
        h.close();
        h.close();
        h.emit(&LiveRecord::SweepEnd {
            done: 0,
            total: 0,
            failed: 0,
            wall_s: 0.0,
            t_s: 0.0,
        });
        let lines = h.collected().unwrap();
        assert_eq!(lines.len(), 1, "only the terminal record: {lines:?}");
    }

    #[test]
    fn run_ids_are_unique_across_clones() {
        let h = LiveHandle::memory(det_cfg());
        let h2 = h.clone();
        let a = h.next_run_id();
        let b = h2.next_run_id();
        assert_ne!(a, b);
        h.close();
    }

    #[test]
    fn file_sink_writes_ndjson() {
        let path = std::env::temp_dir().join("gscalar-live-file-sink.ndjson");
        let h = LiveHandle::file(&path, det_cfg()).unwrap();
        h.emit(&LiveRecord::SweepStart {
            jobs: 1,
            budget_cycles: 0,
            t_s: 0.0,
        });
        h.close();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(LiveRecord::parse(lines[0]).is_ok());
        assert!(lines[1].contains("stream_end"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn open_target_treats_non_addresses_as_paths() {
        let path = std::env::temp_dir().join("gscalar-live-open-target.ndjson");
        let h = open_target(path.to_str().unwrap(), det_cfg()).unwrap();
        h.close();
        assert!(path.exists());
        std::fs::remove_file(&path).ok();
    }
}
