//! # gscalar-live — streaming run telemetry
//!
//! Everything the simulator's other observability layers produce
//! (traces, metrics, profiles, host timings) is post-hoc: nothing is
//! visible before a run or sweep finishes. This crate adds the live
//! channel: a schema-versioned **NDJSON stream** of typed
//! [`LiveRecord`]s — periodic interval [`Snapshot`](LiveRecord)s
//! sampled through the simulator's `RunObserver` hook, and sweep
//! lifecycle events (job started / retried / finished, with a
//! budget-weighted ETA) — written through a **bounded non-blocking
//! buffer** ([`LiveHandle`]) so the simulation hot path never stalls
//! on I/O. When the buffer is full, records are dropped and counted;
//! the terminal `stream_end` record reports the loss.
//!
//! Two sinks ship in-repo, both zero-dependency:
//!
//! * an append-only NDJSON **file** you can `tail -f` or feed to
//!   `watch <path>`, and
//! * a single-threaded **HTTP/SSE server** (`GET /runs`,
//!   `GET /runs/<id>/stream`) — the first slice of the
//!   sweep-as-a-service API — which `watch <addr>` subscribes to.
//!
//! ## Determinism contract
//!
//! Telemetry is an *observer*: enabling it must leave stats, traces,
//! profiles, and manifests byte-identical, serially and at any thread
//! count (the cadence adaptation lives on the observer side, never in
//! the engine's sampling interval). In `--deterministic` mode every
//! wall-clock field of the stream (`t_s`, `wall_s`, `eta_s`) is
//! redacted to zero, the same rule applied to `.host.json` side
//! channels. Record *order* between concurrent jobs may vary with
//! thread count — the stream is a side channel, not a comparison
//! artifact.
//!
//! ## Process-wide installation
//!
//! Binaries open one stream and [`install`] its handle; library layers
//! (the core runner) consult [`installed`] and attach an observer when
//! a stream is present, so the 18 experiment binaries need no
//! per-call-site plumbing.

pub mod dashboard;
pub mod progress;
pub mod record;
pub mod server;
pub mod stream;

pub use dashboard::Dashboard;
pub use progress::EtaTracker;
pub use record::LiveRecord;
pub use stream::{open_target, LiveHandle, StreamConfig, DEFAULT_SNAPSHOT_INTERVAL};

use std::sync::Mutex;

/// Version stamped into every record's `"v"` field; bumped on
/// incompatible schema changes.
pub const LIVE_SCHEMA_VERSION: u64 = 1;

static INSTALLED: Mutex<Option<LiveHandle>> = Mutex::new(None);

/// Installs `handle` as the process-wide live stream consulted by
/// [`installed`]. Returns the previously installed handle, if any.
pub fn install(handle: LiveHandle) -> Option<LiveHandle> {
    INSTALLED
        .lock()
        .expect("live registry poisoned")
        .replace(handle)
}

/// The process-wide live stream, if one is installed.
#[must_use]
pub fn installed() -> Option<LiveHandle> {
    INSTALLED.lock().expect("live registry poisoned").clone()
}

/// Removes and returns the process-wide live stream.
pub fn uninstall() -> Option<LiveHandle> {
    INSTALLED.lock().expect("live registry poisoned").take()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn install_registry_round_trips() {
        // One test owns the global to avoid cross-test races.
        assert!(installed().is_none());
        let h = LiveHandle::memory(StreamConfig::default());
        assert!(install(h.clone()).is_none());
        let got = installed().expect("installed");
        got.emit(&LiveRecord::SweepStart {
            jobs: 1,
            budget_cycles: 0,
            t_s: 0.0,
        });
        assert!(uninstall().is_some());
        assert!(installed().is_none());
        h.close();
        assert_eq!(h.collected().unwrap().len(), 2);
    }
}
