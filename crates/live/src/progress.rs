//! Budget-weighted sweep progress and ETA.
//!
//! A sweep's jobs are far from uniform: a full-scale budgeted cell can
//! simulate millions of cycles while a test-scale one finishes in
//! thousands. Counting finished *jobs* therefore produces wildly wrong
//! ETAs. [`EtaTracker`] instead weights each job by its simulated-cycle
//! budget — a number that is known up front and deterministic — and
//! projects the remaining wall time from the elapsed time per unit of
//! completed weight. Unbudgeted jobs get the mean non-zero budget (or
//! weight 1 when the sweep has no budgets at all), which degrades
//! gracefully to plain job-count ETA.

/// Tracks weighted completion across a fixed set of jobs.
#[derive(Debug, Clone)]
pub struct EtaTracker {
    weights: Vec<f64>,
    done: Vec<bool>,
    done_weight: f64,
    total_weight: f64,
}

impl EtaTracker {
    /// Creates a tracker for jobs with the given cycle `budgets`
    /// (0 = unbudgeted).
    #[must_use]
    pub fn new(budgets: &[u64]) -> Self {
        let nonzero: Vec<f64> = budgets
            .iter()
            .filter(|b| **b > 0)
            .map(|b| *b as f64)
            .collect();
        let fallback = if nonzero.is_empty() {
            1.0
        } else {
            nonzero.iter().sum::<f64>() / nonzero.len() as f64
        };
        let weights: Vec<f64> = budgets
            .iter()
            .map(|b| if *b > 0 { *b as f64 } else { fallback })
            .collect();
        let total_weight = weights.iter().sum::<f64>().max(f64::MIN_POSITIVE);
        EtaTracker {
            done: vec![false; weights.len()],
            weights,
            done_weight: 0.0,
            total_weight,
        }
    }

    /// Marks job `idx` complete (idempotent).
    pub fn complete(&mut self, idx: usize) {
        if let Some(flag) = self.done.get_mut(idx) {
            if !*flag {
                *flag = true;
                self.done_weight += self.weights[idx];
            }
        }
    }

    /// Weighted completion fraction in `[0, 1]`.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        (self.done_weight / self.total_weight).clamp(0.0, 1.0)
    }

    /// Projects remaining seconds from `elapsed_s` wall time; `0.0`
    /// until something completes.
    #[must_use]
    pub fn eta_s(&self, elapsed_s: f64) -> f64 {
        let p = self.fraction();
        if p <= 0.0 {
            return 0.0;
        }
        (elapsed_s * (1.0 - p) / p).max(0.0)
    }

    /// Number of jobs tracked.
    #[must_use]
    pub fn total(&self) -> usize {
        self.weights.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weighted_eta_reflects_budgets_not_job_counts() {
        // Two tiny jobs and one huge one: after the tiny pair, a
        // job-count ETA would say 1/3 remains; the weighted one knows
        // almost everything is still ahead.
        let mut t = EtaTracker::new(&[100, 100, 9800]);
        t.complete(0);
        t.complete(1);
        assert!((t.fraction() - 0.02).abs() < 1e-12);
        let eta = t.eta_s(2.0);
        assert!((eta - 98.0).abs() < 1e-9, "eta {eta}");
    }

    #[test]
    fn unbudgeted_jobs_use_mean_nonzero_budget() {
        let mut t = EtaTracker::new(&[0, 200, 400]);
        // Fallback weight is 300, total 900.
        t.complete(0);
        assert!((t.fraction() - 300.0 / 900.0).abs() < 1e-12);
    }

    #[test]
    fn all_unbudgeted_degrades_to_job_counts() {
        let mut t = EtaTracker::new(&[0, 0, 0, 0]);
        t.complete(2);
        assert!((t.fraction() - 0.25).abs() < 1e-12);
        assert!((t.eta_s(1.0) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn complete_is_idempotent_and_bounds_hold() {
        let mut t = EtaTracker::new(&[10, 10]);
        t.complete(0);
        t.complete(0);
        assert!((t.fraction() - 0.5).abs() < 1e-12);
        t.complete(1);
        assert_eq!(t.fraction(), 1.0);
        assert_eq!(t.eta_s(5.0), 0.0);
        // Out-of-range completions are ignored.
        t.complete(99);
        assert_eq!(t.fraction(), 1.0);
    }

    #[test]
    fn empty_tracker_is_safe() {
        let t = EtaTracker::new(&[]);
        assert_eq!(t.fraction(), 0.0);
        assert_eq!(t.eta_s(1.0), 0.0);
        assert_eq!(t.total(), 0);
    }
}
