//! Encoding histograms backing the paper's Figure 8 (register-file
//! access distribution by operand value similarity).

use std::fmt;

use crate::encoding::Encoding;

/// Histogram of register-file accesses by value-similarity category.
///
/// Categories follow Figure 8: `scalar`, `3-byte`, `2-byte`, `1-byte`,
/// `other` (no uniform byte prefix), plus `divergent` for accesses made
/// by divergent instructions (counted separately regardless of value
/// similarity, as the paper does).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EncodingHistogram {
    /// Accesses to scalar registers.
    pub scalar: u64,
    /// Accesses with a uniform 3-byte prefix.
    pub b3: u64,
    /// Accesses with a uniform 2-byte prefix.
    pub b2: u64,
    /// Accesses with a uniform 1-byte prefix.
    pub b1: u64,
    /// Accesses with no uniform prefix.
    pub other: u64,
    /// Accesses made by divergent instructions.
    pub divergent: u64,
}

impl EncodingHistogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a non-divergent access with the given encoding.
    pub fn record(&mut self, enc: Encoding) {
        match enc {
            Encoding::Scalar => self.scalar += 1,
            Encoding::B321 => self.b3 += 1,
            Encoding::B32 => self.b2 += 1,
            Encoding::B3 => self.b1 += 1,
            Encoding::None => self.other += 1,
        }
    }

    /// Records an access made by a divergent instruction.
    pub fn record_divergent(&mut self) {
        self.divergent += 1;
    }

    /// Total accesses recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.scalar + self.b3 + self.b2 + self.b1 + self.other + self.divergent
    }

    /// Fraction of accesses in each category, in Figure 8 order:
    /// `[scalar, 3-byte, 2-byte, 1-byte, other, divergent]`.
    ///
    /// Returns all zeros when nothing was recorded.
    #[must_use]
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total();
        if t == 0 {
            return [0.0; 6];
        }
        let t = t as f64;
        [
            self.scalar as f64 / t,
            self.b3 as f64 / t,
            self.b2 as f64 / t,
            self.b1 as f64 / t,
            self.other as f64 / t,
            self.divergent as f64 / t,
        ]
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &EncodingHistogram) {
        self.scalar += other.scalar;
        self.b3 += other.b3;
        self.b2 += other.b2;
        self.b1 += other.b1;
        self.other += other.other;
        self.divergent += other.divergent;
    }
}

impl fmt::Display for EncodingHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [s, b3, b2, b1, o, d] = self.fractions();
        write!(
            f,
            "scalar {:.1}% | 3-byte {:.1}% | 2-byte {:.1}% | 1-byte {:.1}% | other {:.1}% | divergent {:.1}%",
            s * 100.0,
            b3 * 100.0,
            b2 * 100.0,
            b1 * 100.0,
            o * 100.0,
            d * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_mapping_matches_figure8_labels() {
        let mut h = EncodingHistogram::new();
        h.record(Encoding::Scalar);
        h.record(Encoding::B321); // "3-byte"
        h.record(Encoding::B32); // "2-byte"
        h.record(Encoding::B3); // "1-byte"
        h.record(Encoding::None);
        h.record_divergent();
        assert_eq!(h.scalar, 1);
        assert_eq!(h.b3, 1);
        assert_eq!(h.b2, 1);
        assert_eq!(h.b1, 1);
        assert_eq!(h.other, 1);
        assert_eq!(h.divergent, 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = EncodingHistogram::new();
        for _ in 0..3 {
            h.record(Encoding::Scalar);
        }
        h.record(Encoding::None);
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((h.fractions()[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = EncodingHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fractions(), [0.0; 6]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EncodingHistogram::new();
        a.record(Encoding::Scalar);
        let mut b = EncodingHistogram::new();
        b.record(Encoding::Scalar);
        b.record_divergent();
        a.merge(&b);
        assert_eq!(a.scalar, 2);
        assert_eq!(a.divergent, 1);
    }

    #[test]
    fn display_shows_percentages() {
        let mut h = EncodingHistogram::new();
        h.record(Encoding::Scalar);
        h.record(Encoding::None);
        let s = h.to_string();
        assert!(s.contains("scalar 50.0%"));
    }
}
