//! Encoding histograms backing the paper's Figure 8 (register-file
//! access distribution by operand value similarity).

use std::fmt;

use crate::encoding::Encoding;

/// Histogram of register-file accesses by value-similarity category.
///
/// Categories follow Figure 8: `scalar`, `3-byte`, `2-byte`, `1-byte`,
/// `other` (no uniform byte prefix), plus `divergent` for accesses made
/// by divergent instructions (counted separately regardless of value
/// similarity, as the paper does). The first five buckets are indexed
/// by [`Encoding::bucket`] — the one mapping shared with the trace
/// encoding tags — and the sixth is [`EncodingHistogram::DIVERGENT`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EncodingHistogram {
    counts: [u64; 6],
}

impl EncodingHistogram {
    /// Bucket index of the divergent category (the only one not
    /// addressed through [`Encoding::bucket`]).
    pub const DIVERGENT: usize = 5;

    /// Metric/export labels, index-aligned with the buckets.
    pub const LABELS: [&'static str; 6] = ["scalar", "b3", "b2", "b1", "other", "divergent"];

    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A histogram with explicit per-bucket counts, in bucket order
    /// (`[scalar, b3, b2, b1, other, divergent]`); mainly for tests.
    #[must_use]
    pub fn from_counts(counts: [u64; 6]) -> Self {
        EncodingHistogram { counts }
    }

    /// Records a non-divergent access with the given encoding.
    pub fn record(&mut self, enc: Encoding) {
        self.counts[enc.bucket()] += 1;
    }

    /// Records an access made by a divergent instruction.
    pub fn record_divergent(&mut self) {
        self.counts[Self::DIVERGENT] += 1;
    }

    /// Count in bucket `i` (see [`Encoding::bucket`] /
    /// [`EncodingHistogram::DIVERGENT`]).
    #[must_use]
    pub fn count(&self, i: usize) -> u64 {
        self.counts[i]
    }

    /// Accesses recorded for `enc` (non-divergent).
    #[must_use]
    pub fn count_of(&self, enc: Encoding) -> u64 {
        self.counts[enc.bucket()]
    }

    /// Accesses recorded as divergent.
    #[must_use]
    pub fn divergent(&self) -> u64 {
        self.counts[Self::DIVERGENT]
    }

    /// `(label, count)` pairs in bucket order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        Self::LABELS
            .iter()
            .zip(self.counts.iter())
            .map(|(l, c)| (*l, *c))
    }

    /// Total accesses recorded.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of accesses in each category, in Figure 8 order:
    /// `[scalar, 3-byte, 2-byte, 1-byte, other, divergent]`.
    ///
    /// Returns all zeros when nothing was recorded.
    #[must_use]
    pub fn fractions(&self) -> [f64; 6] {
        let t = self.total();
        if t == 0 {
            return [0.0; 6];
        }
        let t = t as f64;
        self.counts.map(|c| c as f64 / t)
    }

    /// Adds another histogram into this one.
    pub fn merge(&mut self, other: &EncodingHistogram) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }
}

impl fmt::Display for EncodingHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [s, b3, b2, b1, o, d] = self.fractions();
        write!(
            f,
            "scalar {:.1}% | 3-byte {:.1}% | 2-byte {:.1}% | 1-byte {:.1}% | other {:.1}% | divergent {:.1}%",
            s * 100.0,
            b3 * 100.0,
            b2 * 100.0,
            b1 * 100.0,
            o * 100.0,
            d * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_mapping_matches_figure8_labels() {
        let mut h = EncodingHistogram::new();
        h.record(Encoding::Scalar);
        h.record(Encoding::B321); // "3-byte"
        h.record(Encoding::B32); // "2-byte"
        h.record(Encoding::B3); // "1-byte"
        h.record(Encoding::None);
        h.record_divergent();
        assert_eq!(h.count_of(Encoding::Scalar), 1);
        assert_eq!(h.count_of(Encoding::B321), 1);
        assert_eq!(h.count_of(Encoding::B32), 1);
        assert_eq!(h.count_of(Encoding::B3), 1);
        assert_eq!(h.count_of(Encoding::None), 1);
        assert_eq!(h.divergent(), 1);
        assert_eq!(h.total(), 6);
    }

    #[test]
    fn bucket_edges_are_pinned() {
        // One shared mapping serves the histogram, the metric labels,
        // and the trace encoding tags: pin index ↔ label ↔ encoding.
        assert_eq!(
            EncodingHistogram::LABELS,
            ["scalar", "b3", "b2", "b1", "other", "divergent"]
        );
        assert_eq!(EncodingHistogram::DIVERGENT, 5);
        let mut h = EncodingHistogram::new();
        h.record(Encoding::B32);
        h.record_divergent();
        assert_eq!(h.count(Encoding::B32.bucket()), 1);
        assert_eq!(h.count(2), 1);
        assert_eq!(h.count(5), 1);
        let pairs: Vec<_> = h.iter().collect();
        assert_eq!(pairs[2], ("b2", 1));
        assert_eq!(pairs[5], ("divergent", 1));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut h = EncodingHistogram::new();
        for _ in 0..3 {
            h.record(Encoding::Scalar);
        }
        h.record(Encoding::None);
        let sum: f64 = h.fractions().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!((h.fractions()[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = EncodingHistogram::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.fractions(), [0.0; 6]);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = EncodingHistogram::new();
        a.record(Encoding::Scalar);
        let mut b = EncodingHistogram::new();
        b.record(Encoding::Scalar);
        b.record_divergent();
        a.merge(&b);
        assert_eq!(a.count_of(Encoding::Scalar), 2);
        assert_eq!(a.divergent(), 1);
        assert_eq!(a, EncodingHistogram::from_counts([2, 0, 0, 0, 0, 1]));
    }

    #[test]
    fn display_shows_percentages() {
        let mut h = EncodingHistogram::new();
        h.record(Encoding::Scalar);
        h.record(Encoding::None);
        let s = h.to_string();
        assert!(s.contains("scalar 50.0%"));
    }
}
