//! Architectural per-register compression metadata: EBR, BVR, `D` and
//! `FS` bits, with the read/write semantics of paper Sections 3.3–4.3.

use crate::bytewise;
use crate::encoding::Encoding;
use crate::full_mask;

/// Number of lanes each SRAM array covers per byte plane in the
/// reordered layout (and per word group in the baseline layout).
const LANES_PER_ARRAY_GROUP: usize = 4;

/// Configuration for a [`RegFileMeta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetaConfig {
    /// Lanes per warp (32 for the GTX 480 baseline, 64 for Figure 10).
    pub warp_size: usize,
    /// Whether compressed storage is enabled (byte-wise scheme). When
    /// false every write is stored raw, but classification still runs
    /// (used by the characterization figures).
    pub compression: bool,
    /// Whether half-register (16-lane chunk) compression is enabled.
    pub half: bool,
    /// Whether divergent writes record their encoding + active mask
    /// (the G-Scalar extension of Section 4.2). When false a divergent
    /// write simply invalidates the register's encoding.
    pub track_divergent: bool,
}

impl MetaConfig {
    /// Full G-Scalar configuration for a given warp size.
    #[must_use]
    pub fn g_scalar(warp_size: usize) -> Self {
        MetaConfig {
            warp_size,
            compression: true,
            half: true,
            track_divergent: true,
        }
    }

    /// Compression-only configuration (no divergent tracking, no halves).
    #[must_use]
    pub fn compression_only(warp_size: usize) -> Self {
        MetaConfig {
            warp_size,
            compression: true,
            half: false,
            track_divergent: false,
        }
    }

    /// Baseline: raw storage, classification only.
    #[must_use]
    pub fn baseline(warp_size: usize) -> Self {
        MetaConfig {
            warp_size,
            compression: false,
            half: false,
            track_divergent: false,
        }
    }

    /// Total SRAM arrays per vector register in the modeled bank
    /// (one array per byte plane per 16-lane chunk; 8 for 32 lanes).
    #[must_use]
    pub fn total_arrays(self) -> usize {
        4 * self.warp_size.div_ceil(crate::CHUNK_LANES)
    }
}

/// Per-16-lane-chunk metadata (half-register compression).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChunkMeta {
    /// The chunk's encoding.
    pub enc: Encoding,
    /// The chunk's base value.
    pub bvr: u32,
}

/// Architectural metadata for one vector register.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegMeta {
    /// The `D` bit: last write was divergent (register stored raw; the
    /// BVR holds the writing instruction's active mask).
    pub d: bool,
    /// The whole-register encoding generated at the last write. For a
    /// divergent write this classifies only the active lanes.
    pub enc: Encoding,
    /// BVR contents: base value when `d == 0`, active mask when `d == 1`.
    pub bvr: u64,
    /// Per-chunk metadata (empty unless half-register compression is on
    /// and the last write was non-divergent).
    pub chunks: Vec<ChunkMeta>,
    /// The `FS` ("full scalar") bit: every chunk scalar with one value.
    pub fs: bool,
    /// Physical storage layout: which prefix of byte planes was dropped
    /// from the arrays. `Encoding::None` means stored raw.
    pub stored: Encoding,
}

impl RegMeta {
    fn raw() -> Self {
        RegMeta {
            d: false,
            enc: Encoding::None,
            bvr: 0,
            chunks: Vec::new(),
            fs: false,
            stored: Encoding::None,
        }
    }
}

/// Outcome of a register write, for power accounting and statistics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WriteInfo {
    /// The write was divergent (partial mask).
    pub divergent: bool,
    /// Classification of the written (active-lane) values.
    pub enc: Encoding,
    /// Physical layout after the write (`None` = raw).
    pub stored: Encoding,
    /// Data SRAM arrays activated by this write.
    pub arrays_written: usize,
    /// Whether the small BVR/EBR array was written.
    pub bvr_written: bool,
    /// A compressed destination had to be decompressed and re-stored
    /// raw before this divergent partial write (the special
    /// register-to-register move of Section 3.3).
    pub decompress_move: bool,
}

/// Classification of a register read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadClass {
    /// Only the BVR is accessed: the register stores a scalar.
    Scalar,
    /// A compressed register: some arrays plus the BVR.
    Compressed(Encoding),
    /// Raw storage, all arrays.
    Raw,
    /// Raw storage written by a divergent instruction.
    DivergentRaw,
}

/// Outcome of a register read, for power accounting and scalar-execution
/// eligibility.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReadInfo {
    /// Storage classification.
    pub class: ReadClass,
    /// Data SRAM arrays activated.
    pub arrays_read: usize,
    /// Whether the BVR/EBR array was read.
    pub bvr_read: bool,
    /// The operand is a single scalar value for every lane in the
    /// reading instruction's active mask (Sections 4.1/4.2): either the
    /// register stores a non-divergent scalar, or it stores a divergent
    /// scalar whose recorded mask equals the reading mask.
    pub scalar: bool,
    /// Per-chunk scalar flags (half-register compression, non-divergent
    /// registers only; empty otherwise).
    pub chunk_scalar: Vec<bool>,
    /// The `FS` bit (all chunks hold one common scalar).
    pub fs: bool,
}

/// The compression metadata for a register file: one [`RegMeta`] per
/// vector register plus the configuration flags.
///
/// # Examples
///
/// ```
/// use gscalar_compress::{RegFileMeta, regmeta::MetaConfig, Encoding, full_mask};
///
/// let mut rf = RegFileMeta::new(4, MetaConfig::g_scalar(32));
/// let uniform = vec![7u32; 32];
/// let w = rf.write(0, &uniform, full_mask(32));
/// assert_eq!(w.stored, Encoding::Scalar);
/// let r = rf.read(0, full_mask(32));
/// assert!(r.scalar);
/// assert_eq!(r.arrays_read, 0); // only the BVR is touched
/// ```
#[derive(Debug, Clone)]
pub struct RegFileMeta {
    cfg: MetaConfig,
    metas: Vec<RegMeta>,
}

impl RegFileMeta {
    /// Creates metadata for `num_regs` vector registers, all raw.
    #[must_use]
    pub fn new(num_regs: usize, cfg: MetaConfig) -> Self {
        RegFileMeta {
            cfg,
            metas: vec![RegMeta::raw(); num_regs],
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> MetaConfig {
        self.cfg
    }

    /// The metadata for register `reg`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range.
    #[must_use]
    pub fn meta(&self, reg: usize) -> &RegMeta {
        &self.metas[reg]
    }

    /// Records a write of `values` under `mask` to register `reg` and
    /// returns the hardware activity it caused.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range, `values.len()` differs from the
    /// configured warp size, or `mask` is empty.
    pub fn write(&mut self, reg: usize, values: &[u32], mask: u64) -> WriteInfo {
        assert_eq!(
            values.len(),
            self.cfg.warp_size,
            "value vector must match warp size"
        );
        let full = full_mask(self.cfg.warp_size);
        assert!(mask != 0, "write with empty active mask");
        let divergent = mask != full;
        let enc = bytewise::encode(values, mask);
        let total_arrays = self.cfg.total_arrays();
        let meta = &mut self.metas[reg];

        if divergent {
            // Section 3.3: divergent destinations are stored raw. If the
            // register was compressed, a decompress-move re-stores it
            // raw first; the partial update then touches all arrays.
            let decompress_move = meta.stored != Encoding::None;
            if self.cfg.track_divergent {
                meta.d = true;
                meta.enc = enc;
                meta.bvr = mask;
            } else {
                meta.d = false;
                meta.enc = Encoding::None;
                meta.bvr = 0;
            }
            meta.fs = false;
            meta.chunks.clear();
            meta.stored = Encoding::None;
            return WriteInfo {
                divergent: true,
                enc,
                stored: Encoding::None,
                arrays_written: total_arrays,
                bvr_written: self.cfg.track_divergent,
                decompress_move,
            };
        }

        // Non-divergent write.
        meta.d = false;
        meta.enc = enc;
        meta.bvr = u64::from(values[0]);
        meta.fs = false;
        meta.chunks.clear();
        if !self.cfg.compression {
            meta.stored = Encoding::None;
            return WriteInfo {
                divergent: false,
                enc,
                stored: Encoding::None,
                arrays_written: total_arrays,
                bvr_written: false,
                decompress_move: false,
            };
        }
        let (stored, arrays) = if self.cfg.half {
            let chunks = bytewise::encode_chunks(values);
            let arrays: usize = chunks.iter().map(|(e, _)| e.delta_bytes_per_lane()).sum();
            meta.chunks = chunks
                .iter()
                .map(|&(enc, bvr)| ChunkMeta { enc, bvr })
                .collect();
            meta.fs = chunks.iter().all(|(e, _)| e.is_scalar())
                && chunks.windows(2).all(|w| w[0].1 == w[1].1);
            // The whole-register layout is the weakest chunk encoding
            // only if uniform; physically each chunk is stored at its
            // own compression level, so record the classification here
            // and use the summed array count for power.
            (enc, arrays)
        } else {
            (enc, enc.arrays_active(self.cfg.warp_size))
        };
        meta.stored = stored;
        WriteInfo {
            divergent: false,
            enc,
            stored,
            arrays_written: arrays,
            bvr_written: true,
            decompress_move: false,
        }
    }

    /// Computes the hardware activity and scalar eligibility of reading
    /// register `reg` under the reading instruction's `mask`.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range or `mask` is empty.
    #[must_use]
    pub fn read(&self, reg: usize, mask: u64) -> ReadInfo {
        assert!(mask != 0, "read with empty active mask");
        let meta = &self.metas[reg];
        let total_arrays = self.cfg.total_arrays();

        if meta.d {
            // Stored raw; Section 4.2: even a divergent-scalar read must
            // bring all values from the register file.
            let scalar = meta.enc.is_scalar() && meta.bvr == mask;
            return ReadInfo {
                class: ReadClass::DivergentRaw,
                arrays_read: total_arrays,
                bvr_read: true,
                scalar,
                chunk_scalar: Vec::new(),
                fs: false,
            };
        }

        // Non-divergent storage. Scalar reads are mask-insensitive: the
        // value is uniform across all lanes, so any subset sees it.
        if self.cfg.half && !meta.chunks.is_empty() {
            let arrays: usize = meta
                .chunks
                .iter()
                .map(|c| c.enc.delta_bytes_per_lane())
                .sum();
            let chunk_scalar: Vec<bool> = meta.chunks.iter().map(|c| c.enc.is_scalar()).collect();
            let scalar = meta.fs;
            let class = if meta.fs {
                ReadClass::Scalar
            } else if arrays < total_arrays {
                ReadClass::Compressed(meta.enc)
            } else {
                ReadClass::Raw
            };
            return ReadInfo {
                class,
                arrays_read: arrays,
                bvr_read: true,
                scalar,
                chunk_scalar,
                fs: meta.fs,
            };
        }

        // Scalar detection works off the classification even when
        // compressed storage is disabled (prior-work scalar
        // architectures detect scalars without storing compressed).
        let scalar = meta.enc.is_scalar();
        let (class, arrays, bvr) = if self.cfg.compression {
            match meta.stored {
                Encoding::Scalar => (ReadClass::Scalar, 0, true),
                Encoding::None => (ReadClass::Raw, total_arrays, true),
                e => (
                    ReadClass::Compressed(e),
                    e.arrays_active(self.cfg.warp_size),
                    true,
                ),
            }
        } else {
            (ReadClass::Raw, total_arrays, false)
        };
        ReadInfo {
            class,
            arrays_read: arrays,
            bvr_read: bvr,
            scalar,
            chunk_scalar: Vec::new(),
            fs: false,
        }
    }

    /// Data SRAM arrays a *baseline* (word-interleaved, uncompressed)
    /// register file activates for a partial write under `mask`: only
    /// the arrays covering active lanes (Section 3.3).
    ///
    /// # Panics
    ///
    /// Panics if `mask` is empty.
    #[must_use]
    pub fn baseline_arrays_for_mask(&self, mask: u64) -> usize {
        assert!(mask != 0, "empty active mask");
        let groups = self.cfg.warp_size.div_ceil(LANES_PER_ARRAY_GROUP);
        (0..groups)
            .filter(|g| {
                let lo = g * LANES_PER_ARRAY_GROUP;
                let group_mask = ((1u64 << LANES_PER_ARRAY_GROUP) - 1) << lo;
                mask & group_mask != 0
            })
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const W: usize = 32;

    fn rf(cfg: MetaConfig) -> RegFileMeta {
        RegFileMeta::new(8, cfg)
    }

    fn uniform(v: u32) -> Vec<u32> {
        vec![v; W]
    }

    fn addresses(base: u32) -> Vec<u32> {
        (0..W as u32).map(|i| base + i * 4).collect()
    }

    #[test]
    fn scalar_write_then_read() {
        let mut m = rf(MetaConfig::compression_only(W));
        let w = m.write(0, &uniform(0x42), full_mask(W));
        assert_eq!(w.stored, Encoding::Scalar);
        assert_eq!(w.arrays_written, 0);
        assert!(w.bvr_written);
        let r = m.read(0, full_mask(W));
        assert!(r.scalar);
        assert_eq!(r.class, ReadClass::Scalar);
        assert_eq!(r.arrays_read, 0);
    }

    #[test]
    fn compressed_write_activates_delta_arrays() {
        let mut m = rf(MetaConfig::compression_only(W));
        let w = m.write(1, &addresses(0x1000_0000), full_mask(W));
        assert_eq!(w.stored, Encoding::B321);
        assert_eq!(w.arrays_written, 2); // byte[0] planes of two chunks
        let r = m.read(1, full_mask(W));
        assert_eq!(r.class, ReadClass::Compressed(Encoding::B321));
        assert_eq!(r.arrays_read, 2);
        assert!(!r.scalar);
    }

    #[test]
    fn incompressible_write_is_raw() {
        let mut m = rf(MetaConfig::compression_only(W));
        let mut v = addresses(0);
        v[7] = 0xFF00_0000;
        let w = m.write(0, &v, full_mask(W));
        assert_eq!(w.stored, Encoding::None);
        assert_eq!(w.arrays_written, 8);
        let r = m.read(0, full_mask(W));
        assert_eq!(r.class, ReadClass::Raw);
        assert_eq!(r.arrays_read, 8);
    }

    #[test]
    fn divergent_write_stores_mask_in_bvr() {
        let mut m = rf(MetaConfig::g_scalar(W));
        let mask = 0x0000_F0F0u64;
        let w = m.write(2, &uniform(9), mask);
        assert!(w.divergent);
        assert_eq!(w.enc, Encoding::Scalar);
        assert_eq!(w.stored, Encoding::None);
        assert!(w.bvr_written);
        assert_eq!(m.meta(2).bvr, mask);
        assert!(m.meta(2).d);
    }

    #[test]
    fn divergent_scalar_read_requires_matching_mask() {
        // Section 4.2 / Figure 7(b): the encoding is only valid with
        // respect to the mask that produced it.
        let mut m = rf(MetaConfig::g_scalar(W));
        let mask = 0x0000_00FFu64;
        m.write(0, &uniform(5), mask);
        let same = m.read(0, mask);
        assert!(same.scalar);
        assert_eq!(same.class, ReadClass::DivergentRaw);
        // All values still come from the register file.
        assert_eq!(same.arrays_read, 8);
        let other = m.read(0, 0x0000_FF00);
        assert!(!other.scalar);
    }

    #[test]
    fn nondivergent_scalar_read_is_mask_insensitive() {
        // A register written scalar by a non-divergent instruction is
        // scalar for any subsequent divergent reader.
        let mut m = rf(MetaConfig::g_scalar(W));
        m.write(0, &uniform(1), full_mask(W));
        let r = m.read(0, 0x0000_0003);
        assert!(r.scalar);
    }

    #[test]
    fn divergent_write_to_compressed_needs_move() {
        let mut m = rf(MetaConfig::g_scalar(W));
        m.write(0, &addresses(0x2000_0000), full_mask(W));
        let w = m.write(0, &uniform(3), 0x0F);
        assert!(w.decompress_move);
        // Now raw: a second divergent write needs no move.
        let w2 = m.write(0, &uniform(4), 0x0F);
        assert!(!w2.decompress_move);
    }

    #[test]
    fn divergent_write_to_raw_needs_no_move() {
        let mut m = rf(MetaConfig::g_scalar(W));
        let mut v = addresses(0);
        v[7] = 0xFF00_0000; // incompressible → stored raw
        m.write(0, &v, full_mask(W));
        let w = m.write(0, &uniform(3), 0x0F);
        assert!(!w.decompress_move);
    }

    #[test]
    fn half_compression_tracks_chunks() {
        let mut m = rf(MetaConfig::g_scalar(W));
        let mut v = vec![7u32; 16];
        v.extend(addresses(0x3000_0000).into_iter().take(16));
        let w = m.write(0, &v, full_mask(W));
        // low chunk scalar (0 arrays) + high chunk B321 (1 array).
        assert_eq!(w.arrays_written, 1);
        let r = m.read(0, full_mask(W));
        assert_eq!(r.chunk_scalar, vec![true, false]);
        assert!(!r.scalar);
        assert!(!r.fs);
    }

    #[test]
    fn fs_set_when_both_halves_share_scalar() {
        let mut m = rf(MetaConfig::g_scalar(W));
        m.write(0, &uniform(11), full_mask(W));
        let r = m.read(0, full_mask(W));
        assert!(r.fs);
        assert!(r.scalar);
        assert_eq!(r.class, ReadClass::Scalar);
        // Two different per-half scalars: chunk-scalar but not FS.
        let mut v = vec![1u32; 16];
        v.extend(vec![2u32; 16]);
        m.write(1, &v, full_mask(W));
        let r = m.read(1, full_mask(W));
        assert_eq!(r.chunk_scalar, vec![true, true]);
        assert!(!r.fs);
        assert!(!r.scalar);
    }

    #[test]
    fn no_tracking_invalidates_on_divergent_write() {
        let mut m = rf(MetaConfig::compression_only(W));
        m.write(0, &uniform(5), full_mask(W));
        m.write(0, &uniform(5), 0x0F);
        let r = m.read(0, 0x0F);
        assert!(!r.scalar);
        assert!(!m.meta(0).d);
    }

    #[test]
    fn baseline_partial_write_activates_covering_arrays() {
        let m = rf(MetaConfig::baseline(W));
        // Lanes 0..4 live in one 4-lane array group.
        assert_eq!(m.baseline_arrays_for_mask(0x0000_000F), 1);
        assert_eq!(m.baseline_arrays_for_mask(0x0000_00FF), 2);
        assert_eq!(m.baseline_arrays_for_mask(full_mask(W)), 8);
        // One lane per group.
        assert_eq!(m.baseline_arrays_for_mask(0x1111_1111), 8);
    }

    #[test]
    fn baseline_config_reads_all_arrays_without_bvr() {
        let mut m = rf(MetaConfig::baseline(W));
        let w = m.write(0, &uniform(5), full_mask(W));
        assert_eq!(w.arrays_written, 8);
        assert!(!w.bvr_written);
        let r = m.read(0, full_mask(W));
        assert_eq!(r.arrays_read, 8);
        assert!(!r.bvr_read);
        // Classification still detects the scalar (used by stats and
        // by prior-work scalar architectures).
        assert!(r.scalar);
    }

    #[test]
    fn warp64_uses_16_arrays() {
        let cfg = MetaConfig::g_scalar(64);
        assert_eq!(cfg.total_arrays(), 16);
        let mut m = RegFileMeta::new(2, cfg);
        let v: Vec<u32> = vec![3; 64];
        let w = m.write(0, &v, full_mask(64));
        assert_eq!(w.stored, Encoding::Scalar);
        let r = m.read(0, full_mask(64));
        assert_eq!(r.chunk_scalar.len(), 4);
        assert!(r.fs);
    }
}
