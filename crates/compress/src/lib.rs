//! Register value compression for the G-Scalar architecture (HPCA 2017).
//!
//! The paper's Section 3 proposes a byte-wise register value compression
//! scheme: all 4-byte lane values of a vector register are compared byte
//! plane by byte plane, and the *prefix* of most-significant byte planes
//! that are identical across lanes is stored once (in a base value
//! register, BVR) instead of per lane. Four encoding bits (`enc[3:0]`,
//! stored in an encoding bit register, EBR) record which prefix applies.
//! Byte-plane reordering in the SRAM arrays then lets a read activate
//! only the arrays holding differing byte planes.
//!
//! This crate implements:
//!
//! * [`Encoding`] — the five `enc[3:0]` states and their storage /
//!   array-activation costs.
//! * [`bytewise`] — the compression and decompression functions,
//!   including the active-mask-aware comparison chain that broadcasts an
//!   active lane over inactive lanes so *divergent* writes can still be
//!   classified (Section 4.2, Figure 7).
//! * [`regmeta`] — architectural per-register state (EBR + BVR + `D`/`FS`
//!   bits), with the exact read/write semantics of Sections 3.3–4.3:
//!   divergent writes are not compressed but still classified, the BVR
//!   then holds the active mask, and half-register compression tracks a
//!   per-16-lane-chunk encoding.
//! * [`bdi`] — a Base-Delta-Immediate compressor, the scheme used by the
//!   Warped-Compression baseline the paper compares against.
//! * [`stats`] — encoding histograms backing the paper's Figure 8.
//!
//! # Examples
//!
//! ```
//! use gscalar_compress::{bytewise, Encoding, full_mask};
//!
//! // 32 lanes holding addresses that differ only in the low byte.
//! let values: Vec<u32> = (0..32).map(|i| 0xC040_3900 + i * 8).collect();
//! assert_eq!(bytewise::encode(&values, full_mask(32)), Encoding::B321);
//!
//! // A warp-uniform value compresses to a scalar.
//! let uniform = vec![42u32; 32];
//! assert_eq!(bytewise::encode(&uniform, full_mask(32)), Encoding::Scalar);
//! ```

pub mod bdi;
pub mod bytewise;
pub mod encoding;
pub mod regmeta;
pub mod stats;

pub use bytewise::{compress, decompress, Compressed};
pub use encoding::Encoding;
pub use regmeta::{ReadClass, ReadInfo, RegFileMeta, RegMeta, WriteInfo};
pub use stats::EncodingHistogram;

/// Number of lanes in a half-register compression chunk (Section 3.2:
/// two independently-activated arrays per byte plane each hold 16
/// lanes' worth of a byte plane).
pub const CHUNK_LANES: usize = 16;

/// A full mask of the `n` lowest lanes.
///
/// # Panics
///
/// Panics if `n > 64`.
#[must_use]
pub fn full_mask(n: usize) -> u64 {
    assert!(n <= 64, "at most 64 lanes supported");
    if n == 64 {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_mask_extremes() {
        assert_eq!(full_mask(0), 0);
        assert_eq!(full_mask(1), 1);
        assert_eq!(full_mask(32), 0xFFFF_FFFF);
        assert_eq!(full_mask(64), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "64 lanes")]
    fn full_mask_too_wide() {
        let _ = full_mask(65);
    }
}
