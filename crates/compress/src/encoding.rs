//! The `enc[3:0]` encoding states and their hardware costs.

use std::fmt;

/// The compression state of a vector register, i.e. which prefix of
/// most-significant byte planes is identical across (active) lanes.
///
/// Matches the paper's `enc[3:0]` encoding (Section 3.2): only prefix
/// forms are representable — if `byte\[3\]` differs between any two lanes
/// the register is incompressible even when lower bytes agree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Encoding {
    /// `0000₂` — no byte plane is uniform; the register is stored raw.
    None,
    /// `1000₂` — `byte\[3\]` is uniform (1-byte base, 3 delta bytes/lane).
    B3,
    /// `1100₂` — `byte[3:2]` uniform (2-byte base, 2 delta bytes/lane).
    B32,
    /// `1110₂` — `byte[3:1]` uniform (3-byte base, 1 delta byte/lane).
    B321,
    /// `1111₂` — all four bytes uniform: the register holds a scalar.
    Scalar,
}

impl Encoding {
    /// All encodings from weakest to strongest.
    pub const ALL: [Encoding; 5] = [
        Encoding::None,
        Encoding::B3,
        Encoding::B32,
        Encoding::B321,
        Encoding::Scalar,
    ];

    /// The raw `enc[3:0]` bits.
    #[must_use]
    pub fn bits(self) -> u8 {
        match self {
            Encoding::None => 0b0000,
            Encoding::B3 => 0b1000,
            Encoding::B32 => 0b1100,
            Encoding::B321 => 0b1110,
            Encoding::Scalar => 0b1111,
        }
    }

    /// Reconstructs an encoding from its `enc[3:0]` bits.
    ///
    /// Returns `None` for the eleven non-prefix bit patterns, which the
    /// hardware never generates.
    #[must_use]
    pub fn from_bits(bits: u8) -> Option<Encoding> {
        match bits {
            0b0000 => Some(Encoding::None),
            0b1000 => Some(Encoding::B3),
            0b1100 => Some(Encoding::B32),
            0b1110 => Some(Encoding::B321),
            0b1111 => Some(Encoding::Scalar),
            _ => None,
        }
    }

    /// Number of most-significant byte planes folded into the base value.
    #[must_use]
    pub fn base_bytes(self) -> usize {
        match self {
            Encoding::None => 0,
            Encoding::B3 => 1,
            Encoding::B32 => 2,
            Encoding::B321 => 3,
            Encoding::Scalar => 4,
        }
    }

    /// Per-lane delta bytes that must still be stored in the SRAM arrays.
    #[must_use]
    pub fn delta_bytes_per_lane(self) -> usize {
        4 - self.base_bytes()
    }

    /// Whether the register holds a single scalar value.
    #[must_use]
    pub fn is_scalar(self) -> bool {
        self == Encoding::Scalar
    }

    /// Number of SRAM arrays activated to read/write `lanes` lanes of
    /// this register when each byte plane of 16 lanes lives in its own
    /// array (Section 3.2's reordered layout; a 32-lane register's bank
    /// has 8 arrays, two per byte plane).
    ///
    /// A scalar register activates zero data arrays — only the small
    /// BVR/EBR array, accounted separately.
    #[must_use]
    pub fn arrays_active(self, lanes: usize) -> usize {
        let arrays_per_plane = lanes.div_ceil(super::CHUNK_LANES);
        self.delta_bytes_per_lane() * arrays_per_plane
    }

    /// Compressed size in bytes (base + per-lane deltas) for `lanes`
    /// lanes; the 4 encoding bits are not counted.
    #[must_use]
    pub fn compressed_bytes(self, lanes: usize) -> usize {
        self.base_bytes() + self.delta_bytes_per_lane() * lanes
    }

    /// The weaker (less compressed) of two encodings.
    #[must_use]
    pub fn meet(self, other: Encoding) -> Encoding {
        self.min(other)
    }

    /// Category index in Figure 8 order (strongest compression first):
    /// `Scalar`→0, `B321`→1, `B32`→2, `B3`→3, `None`→4.
    ///
    /// This single mapping backs the [`crate::EncodingHistogram`]
    /// buckets, the `Stats::export` metric names, and the trace
    /// encoding tag, so the three can never drift apart.
    #[must_use]
    pub fn bucket(self) -> usize {
        match self {
            Encoding::Scalar => 0,
            Encoding::B321 => 1,
            Encoding::B32 => 2,
            Encoding::B3 => 3,
            Encoding::None => 4,
        }
    }
}

impl fmt::Display for Encoding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Encoding::None => "none",
            Encoding::B3 => "1-byte",
            Encoding::B32 => "2-byte",
            Encoding::B321 => "3-byte",
            Encoding::Scalar => "scalar",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip() {
        for e in Encoding::ALL {
            assert_eq!(Encoding::from_bits(e.bits()), Some(e));
        }
        assert_eq!(Encoding::from_bits(0b0101), None);
        assert_eq!(Encoding::from_bits(0b0111), None);
    }

    #[test]
    fn byte_accounting_adds_up() {
        for e in Encoding::ALL {
            assert_eq!(e.base_bytes() + e.delta_bytes_per_lane(), 4);
        }
    }

    #[test]
    fn arrays_active_for_32_lanes() {
        // 32 lanes → 2 arrays per byte plane (8 arrays per bank total).
        assert_eq!(Encoding::None.arrays_active(32), 8);
        assert_eq!(Encoding::B3.arrays_active(32), 6);
        assert_eq!(Encoding::B32.arrays_active(32), 4);
        assert_eq!(Encoding::B321.arrays_active(32), 2);
        assert_eq!(Encoding::Scalar.arrays_active(32), 0);
    }

    #[test]
    fn arrays_active_for_16_lanes() {
        assert_eq!(Encoding::None.arrays_active(16), 4);
        assert_eq!(Encoding::B321.arrays_active(16), 1);
        assert_eq!(Encoding::Scalar.arrays_active(16), 0);
    }

    #[test]
    fn compressed_bytes_matches_paper_example() {
        // Section 3.1: 3-byte base + 8 delta bytes for 8 lanes.
        assert_eq!(Encoding::B321.compressed_bytes(8), 3 + 8);
        // A 32-lane scalar is 4 bytes regardless of lane count.
        assert_eq!(Encoding::Scalar.compressed_bytes(32), 4);
        // Uncompressed: 4 bytes per lane.
        assert_eq!(Encoding::None.compressed_bytes(32), 128);
    }

    #[test]
    fn ordering_weakest_to_strongest() {
        assert!(Encoding::None < Encoding::B3);
        assert!(Encoding::B321 < Encoding::Scalar);
        assert_eq!(Encoding::Scalar.meet(Encoding::B32), Encoding::B32);
        assert_eq!(Encoding::None.meet(Encoding::Scalar), Encoding::None);
    }

    #[test]
    fn display_names() {
        assert_eq!(Encoding::Scalar.to_string(), "scalar");
        assert_eq!(Encoding::B321.to_string(), "3-byte");
    }

    #[test]
    fn buckets_are_distinct_and_pin_figure8_order() {
        // The bucket index doubles as the trace encoding tag and the
        // histogram slot; pin the exact assignment.
        assert_eq!(Encoding::Scalar.bucket(), 0);
        assert_eq!(Encoding::B321.bucket(), 1);
        assert_eq!(Encoding::B32.bucket(), 2);
        assert_eq!(Encoding::B3.bucket(), 3);
        assert_eq!(Encoding::None.bucket(), 4);
        let mut seen = [false; 5];
        for e in Encoding::ALL {
            assert!(!seen[e.bucket()]);
            seen[e.bucket()] = true;
        }
    }
}
