//! Base-Delta-Immediate (BDI) compression baseline.
//!
//! Warped-Compression (Lee et al., ISCA 2015 — the paper's "W-C"
//! baseline, reference \[4\]) compresses vector register values with BDI
//! (Pekhimenko et al., PACT 2012): one 4-byte base plus small signed
//! per-lane deltas. This module implements it at 4-byte word granularity
//! so Figure 12's register-file power comparison and the Section 5.3
//! compression-ratio comparison (ours 2.17 vs BDI 2.13) can be
//! regenerated.

use std::fmt;

/// The BDI compression mode selected for one vector register value.
///
/// The full mode set of Pekhimenko et al.: 8-, 4- and 2-byte bases with
/// narrower signed deltas, plus the zero and repeated-value special
/// cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BdiMode {
    /// Every lane is zero (stored as a tag only).
    Zeros,
    /// Every lane holds the same value (4-byte base only).
    Repeated,
    /// 8-byte base + 1-byte signed delta per 8-byte chunk.
    Base8Delta1,
    /// 8-byte base + 2-byte signed delta per 8-byte chunk.
    Base8Delta2,
    /// 8-byte base + 4-byte signed delta per 8-byte chunk.
    Base8Delta4,
    /// 4-byte base + 1-byte signed delta per lane.
    Base4Delta1,
    /// 4-byte base + 2-byte signed delta per lane.
    Base4Delta2,
    /// 2-byte base + 1-byte signed delta per 2-byte half-word.
    Base2Delta1,
    /// Incompressible; stored raw.
    Uncompressed,
}

impl BdiMode {
    /// All modes in the selection order (smallest resulting size wins;
    /// ties go to the earlier mode).
    pub const ALL: [BdiMode; 9] = [
        BdiMode::Zeros,
        BdiMode::Repeated,
        BdiMode::Base8Delta1,
        BdiMode::Base8Delta2,
        BdiMode::Base8Delta4,
        BdiMode::Base4Delta1,
        BdiMode::Base4Delta2,
        BdiMode::Base2Delta1,
        BdiMode::Uncompressed,
    ];
}

impl fmt::Display for BdiMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BdiMode::Zeros => "zeros",
            BdiMode::Repeated => "repeated",
            BdiMode::Base8Delta1 => "b8d1",
            BdiMode::Base8Delta2 => "b8d2",
            BdiMode::Base8Delta4 => "b8d4",
            BdiMode::Base4Delta1 => "b4d1",
            BdiMode::Base4Delta2 => "b4d2",
            BdiMode::Base2Delta1 => "b2d1",
            BdiMode::Uncompressed => "raw",
        };
        f.write_str(s)
    }
}

/// The result of BDI-compressing one vector register value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BdiResult {
    /// Selected mode.
    pub mode: BdiMode,
    /// Compressed size in bytes (excluding the mode tag).
    pub bytes: usize,
    /// Lanes covered.
    pub lanes: usize,
}

impl BdiResult {
    /// Uncompressed size in bytes.
    #[must_use]
    pub fn raw_bytes(&self) -> usize {
        self.lanes * 4
    }

    /// Compression ratio (raw / compressed; `>= 1`).
    #[must_use]
    pub fn ratio(&self) -> f64 {
        self.raw_bytes() as f64 / self.bytes.max(1) as f64
    }

    /// SRAM arrays a W-C style register file activates for this access,
    /// with `array_bytes`-wide arrays holding the packed compressed
    /// value contiguously.
    #[must_use]
    pub fn arrays_active(&self, array_bytes: usize) -> usize {
        self.bytes.div_ceil(array_bytes).max(1)
    }
}

/// Whether every `chunk_bytes`-wide chunk of the register (interpreted
/// little-endian) differs from the first chunk by a signed delta that
/// fits `delta_bytes`.
fn fits(values: &[u32], chunk_bytes: usize, delta_bytes: usize) -> bool {
    let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
    let chunks: Vec<i128> = bytes
        .chunks(chunk_bytes)
        .map(|c| {
            let mut v: u64 = 0;
            for (i, &b) in c.iter().enumerate() {
                v |= u64::from(b) << (8 * i);
            }
            v as i128
        })
        .collect();
    let base = chunks[0];
    let lim = 1i128 << (8 * delta_bytes - 1);
    chunks.iter().all(|&c| {
        let d = c - base;
        (-lim..lim).contains(&d)
    })
}

/// Compressed size for a `(chunk_bytes, delta_bytes)` mode over a
/// register of `total_bytes`.
fn mode_size(total_bytes: usize, chunk_bytes: usize, delta_bytes: usize) -> usize {
    chunk_bytes + (total_bytes / chunk_bytes) * delta_bytes
}

/// Compresses `values` with BDI and returns the best applicable mode.
///
/// The base is the first chunk, matching the original BDI formulation;
/// among applicable modes the smallest output wins.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn compress(values: &[u32]) -> BdiResult {
    assert!(!values.is_empty(), "cannot compress an empty register");
    let lanes = values.len();
    let total = lanes * 4;
    if values.iter().all(|&v| v == 0) {
        return BdiResult {
            mode: BdiMode::Zeros,
            bytes: 1,
            lanes,
        };
    }
    let base = values[0];
    if values.iter().all(|&v| v == base) {
        return BdiResult {
            mode: BdiMode::Repeated,
            bytes: 4,
            lanes,
        };
    }
    // (mode, chunk bytes, delta bytes) in canonical order.
    const MODES: [(BdiMode, usize, usize); 6] = [
        (BdiMode::Base8Delta1, 8, 1),
        (BdiMode::Base8Delta2, 8, 2),
        (BdiMode::Base8Delta4, 8, 4),
        (BdiMode::Base4Delta1, 4, 1),
        (BdiMode::Base4Delta2, 4, 2),
        (BdiMode::Base2Delta1, 2, 1),
    ];
    let mut best = BdiResult {
        mode: BdiMode::Uncompressed,
        bytes: total,
        lanes,
    };
    for (mode, cb, db) in MODES {
        if !total.is_multiple_of(cb) {
            continue;
        }
        let size = mode_size(total, cb, db);
        if size < best.bytes && fits(values, cb, db) {
            best = BdiResult {
                mode,
                bytes: size,
                lanes,
            };
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_repeated() {
        let r = compress(&[0; 32]);
        assert_eq!(r.mode, BdiMode::Zeros);
        assert_eq!(r.bytes, 1);
        let r = compress(&[7; 32]);
        assert_eq!(r.mode, BdiMode::Repeated);
        assert_eq!(r.bytes, 4);
        assert!(r.ratio() > 30.0);
    }

    #[test]
    fn paper_example_compresses_to_delta1() {
        // Section 2.2's BDI example: deltas 0, 8, ..., 0x38 fit 1 byte;
        // 8 lanes ⇒ 32-bit base + 8×8-bit deltas = 12 bytes ("96-bit").
        let values: Vec<u32> = (0..8).map(|i| 0xC040_39C0 + i * 8).collect();
        let r = compress(&values);
        assert_eq!(r.mode, BdiMode::Base4Delta1);
        assert_eq!(r.bytes, 12);
    }

    #[test]
    fn delta_sign_handling() {
        // Negative deltas within i8 (8 lanes so compression pays off).
        let r = compress(&[100, 50, 20, 100, 99, 98, 30, 100]);
        assert_eq!(r.mode, BdiMode::Base4Delta1);
        // Delta of exactly -128 fits i8; -129 needs 2-byte deltas.
        // (Values vary pairwise so no 8-byte-base mode applies.)
        let ok = [200u32, 72, 73, 74, 75, 76, 77, 78];
        assert_eq!(compress(&ok).mode, BdiMode::Base4Delta1);
        let wide = [200u32, 71, 73, 74, 75, 76, 77, 78];
        assert_eq!(compress(&wide).mode, BdiMode::Base4Delta2);
    }

    #[test]
    fn eight_byte_base_captures_pairwise_patterns() {
        // Alternating pair pattern: identical 8-byte chunks → b8d1.
        let values: Vec<u32> = (0..32)
            .map(|i| if i % 2 == 0 { 0x10 } else { 0x7FFF_0000 })
            .collect();
        let r = compress(&values);
        assert_eq!(r.mode, BdiMode::Base8Delta1);
        assert_eq!(r.bytes, 8 + 16);
    }

    #[test]
    fn two_byte_base_captures_halfword_patterns() {
        // Registers full of small 16-bit fields (packed shorts).
        let values: Vec<u32> = (0..32).map(|i| (i % 3) * 0x0001_0001).collect();
        let r = compress(&values);
        // All half-words in 0..=2 → 2-byte base + 64 one-byte deltas.
        assert_eq!(r.mode, BdiMode::Base2Delta1);
        assert_eq!(r.bytes, 2 + 64);
    }

    #[test]
    fn wide_values_uncompressed() {
        let r = compress(&[0, 0x7FFF_FFFF, 3, 9]);
        assert_eq!(r.mode, BdiMode::Uncompressed);
        assert_eq!(r.bytes, 16);
        assert!((r.ratio() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bdi_beats_bytewise_on_wide_hex_difference() {
        // Section 3.1 note: BDI can beat the byte-wise scheme when the
        // hex representations of similar values differ widely, e.g.
        // 0x100 vs 0xFF (delta 1, but no shared byte prefix beyond
        // byte[3:2]).
        let values: Vec<u32> = (0..32)
            .map(|i| if i % 2 == 0 { 0x0000_0100 } else { 0x0000_00FF })
            .collect();
        let bdi = compress(&values);
        // The alternating pair even collapses to an 8-byte-base mode.
        assert_eq!(bdi.mode, BdiMode::Base8Delta1);
        let bw = crate::bytewise::encode(&values, crate::full_mask(32));
        assert_eq!(bw, crate::Encoding::B32);
        let bw_bytes = bw.compressed_bytes(32);
        assert!(bdi.bytes < bw_bytes);
    }

    #[test]
    fn arrays_active_rounds_up() {
        let r = BdiResult {
            mode: BdiMode::Base4Delta1,
            bytes: 36,
            lanes: 32,
        };
        assert_eq!(r.arrays_active(16), 3);
        let s = BdiResult {
            mode: BdiMode::Repeated,
            bytes: 4,
            lanes: 32,
        };
        assert_eq!(s.arrays_active(16), 1);
    }
}
