//! The byte-wise compressor/decompressor (paper Sections 3.1, 4.2).

use crate::encoding::Encoding;

/// Per-byte-plane equality across active lanes, as the hardware's
/// `eq[3:0]` signals: bit `i` is set when `byte[i]` of every active lane
/// matches.
///
/// Inactive lanes are ignored by *broadcasting* the first active lane's
/// value over them before the comparison chain runs — the adaptation of
/// Figure 7(a) that makes the comparison correct for divergent writes.
///
/// # Panics
///
/// Panics if `mask` selects no lane or a lane outside `values`.
#[must_use]
pub fn eq_planes(values: &[u32], mask: u64) -> u8 {
    let first = first_active(values, mask);
    let mut eq = 0b1111u8;
    for (lane, &v) in values.iter().enumerate() {
        if mask & (1 << lane) == 0 {
            continue;
        }
        let diff = v ^ first;
        for byte in 0..4 {
            if (diff >> (byte * 8)) & 0xFF != 0 {
                eq &= !(1 << byte);
            }
        }
    }
    eq
}

/// Encodes the `eq[3:0]` signals into the prefix-form `enc[3:0]`
/// encoding: only a run of uniform byte planes starting at `byte\[3\]`
/// counts (Section 3.2).
#[must_use]
pub fn prefix_encoding(eq: u8) -> Encoding {
    if eq & 0b1000 == 0 {
        Encoding::None
    } else if eq & 0b0100 == 0 {
        Encoding::B3
    } else if eq & 0b0010 == 0 {
        Encoding::B32
    } else if eq & 0b0001 == 0 {
        Encoding::B321
    } else {
        Encoding::Scalar
    }
}

/// Classifies a write-back value vector under an active mask.
///
/// Equivalent to `prefix_encoding(eq_planes(..))` — the compressor's
/// one-cycle comparison logic.
///
/// # Panics
///
/// Panics if `mask` selects no lane or a lane outside `values`.
#[must_use]
pub fn encode(values: &[u32], mask: u64) -> Encoding {
    prefix_encoding(eq_planes(values, mask))
}

/// The first active lane's value — the base value `op[0]` the paper
/// always takes from the lowest lane (Section 3.1), generalized to the
/// lowest *active* lane for divergent comparisons.
///
/// # Panics
///
/// Panics if `mask` selects no lane or a lane outside `values`.
#[must_use]
pub fn first_active(values: &[u32], mask: u64) -> u32 {
    let lane = mask.trailing_zeros() as usize;
    assert!(mask != 0, "active mask must select at least one lane");
    assert!(
        lane < values.len(),
        "active mask selects lane {lane} beyond {}",
        values.len()
    );
    values[lane]
}

/// A compressed vector register value: base + per-lane delta bytes.
///
/// Delta bytes are stored in byte-plane order (all lanes' `byte[0]`
/// first, then `byte[1]`, …) matching the reordered SRAM layout of
/// Figure 3.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Compressed {
    /// The encoding state.
    pub enc: Encoding,
    /// The base value (bytes above the delta region are significant).
    pub base: u32,
    /// Per-lane delta bytes, grouped by byte plane (lowest plane first).
    pub deltas: Vec<u8>,
}

impl Compressed {
    /// Total compressed size in bytes (base bytes + stored deltas).
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.enc.base_bytes() + self.deltas.len()
    }
}

/// Compresses a full (non-divergent) vector register value.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn compress(values: &[u32]) -> Compressed {
    assert!(!values.is_empty(), "cannot compress an empty register");
    let mask = crate::full_mask(values.len());
    let enc = encode(values, mask);
    let base = values[0];
    let dpl = enc.delta_bytes_per_lane();
    let mut deltas = Vec::with_capacity(dpl * values.len());
    for plane in 0..dpl {
        for &v in values {
            deltas.push((v >> (plane * 8)) as u8);
        }
    }
    Compressed { enc, base, deltas }
}

/// Decompresses back to `lanes` 4-byte values.
///
/// # Panics
///
/// Panics if `c.deltas` does not hold exactly
/// `c.enc.delta_bytes_per_lane() * lanes` bytes.
#[must_use]
pub fn decompress(c: &Compressed, lanes: usize) -> Vec<u32> {
    let dpl = c.enc.delta_bytes_per_lane();
    assert_eq!(
        c.deltas.len(),
        dpl * lanes,
        "delta byte count does not match lane count"
    );
    let base_mask: u32 = match dpl {
        0 => u32::MAX,
        4 => 0,
        n => !((1u32 << (n * 8)) - 1),
    };
    (0..lanes)
        .map(|lane| {
            let mut v = c.base & base_mask;
            for plane in 0..dpl {
                v |= u32::from(c.deltas[plane * lanes + lane]) << (plane * 8);
            }
            v
        })
        .collect()
}

/// Number of uniform most-significant byte planes across active lanes
/// of 64-bit values — the Section 5.3 extension study: with 64-bit
/// address computation, warp addresses share even more high bytes, so
/// the compression opportunity grows.
///
/// Returns a value in `0..=8`.
///
/// # Panics
///
/// Panics if `mask` selects no lane or a lane outside `values`.
#[must_use]
pub fn uniform_prefix_bytes_u64(values: &[u64], mask: u64) -> usize {
    assert!(mask != 0, "active mask must select at least one lane");
    let lane = mask.trailing_zeros() as usize;
    assert!(lane < values.len(), "mask selects lane beyond values");
    let first = values[lane];
    let mut prefix = 8;
    for (l, &v) in values.iter().enumerate() {
        if mask & (1 << l) == 0 {
            continue;
        }
        let diff = v ^ first;
        // Highest differing byte bounds the uniform prefix.
        let same = if diff == 0 {
            8
        } else {
            (diff.leading_zeros() / 8) as usize
        };
        prefix = prefix.min(same);
    }
    prefix
}

/// Classifies each 16-lane chunk of a register independently
/// (half-register compression, Section 3.2/4.3).
///
/// Returns one `(Encoding, base)` per chunk. Only meaningful for
/// non-divergent writes, matching the paper's design choice.
///
/// # Panics
///
/// Panics if `values` is empty.
#[must_use]
pub fn encode_chunks(values: &[u32]) -> Vec<(Encoding, u32)> {
    assert!(!values.is_empty(), "cannot encode an empty register");
    values
        .chunks(crate::CHUNK_LANES)
        .map(|chunk| {
            let mask = crate::full_mask(chunk.len());
            (encode(chunk, mask), chunk[0])
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::full_mask;

    #[test]
    fn paper_running_example() {
        // Section 2.2/3.1: C04039C0, C04039C8, ..., C04039F8.
        let values: Vec<u32> = (0..8).map(|i| 0xC040_39C0 + i * 8).collect();
        let eq = eq_planes(&values, full_mask(8));
        assert_eq!(eq, 0b1110);
        assert_eq!(encode(&values, full_mask(8)), Encoding::B321);
        let c = compress(&values);
        assert_eq!(c.base & 0xFFFF_FF00, 0xC040_3900);
        assert_eq!(c.size_bytes(), 3 + 8); // 3-byte base + 8 delta bytes
        assert_eq!(decompress(&c, 8), values);
    }

    #[test]
    fn scalar_register() {
        let values = vec![0xDEAD_BEEF; 32];
        assert_eq!(encode(&values, full_mask(32)), Encoding::Scalar);
        let c = compress(&values);
        assert_eq!(c.size_bytes(), 4);
        assert_eq!(decompress(&c, 32), values);
    }

    #[test]
    fn incompressible_when_msb_differs() {
        // byte[3] differs even though the low bytes agree: prefix rule
        // forbids compression (Section 3.2).
        let values = vec![0x0100_0055, 0x0200_0055];
        assert_eq!(encode(&values, full_mask(2)), Encoding::None);
        let c = compress(&values);
        assert_eq!(c.size_bytes(), 8);
        assert_eq!(decompress(&c, 2), values);
    }

    #[test]
    fn each_prefix_level_reachable() {
        let mk = |hi: u32, lo: u32| vec![hi, hi ^ lo];
        assert_eq!(encode(&mk(0x11223344, 0x0000_0001), 3), Encoding::B321);
        assert_eq!(encode(&mk(0x11223344, 0x0000_0100), 3), Encoding::B32);
        assert_eq!(encode(&mk(0x11223344, 0x0001_0000), 3), Encoding::B3);
        assert_eq!(encode(&mk(0x11223344, 0x0100_0000), 3), Encoding::None);
    }

    #[test]
    fn divergent_mask_ignores_inactive_lanes() {
        // Section 4.2 example: values AAABABC with mask 10101100 ⇒
        // active lanes all hold A.
        let a = 7u32;
        let b = 9u32;
        let c = 11u32;
        let values = vec![a, a, a, b, a, b, c, a];
        // Active lanes: 0, 1, 2, 4 (LSB-first mask 0b0001_0111).
        let mask = 0b0001_0111u64;
        assert_eq!(encode(&values, mask), Encoding::Scalar);
        assert_eq!(first_active(&values, mask), a);
        // A mask touching lane 3 (value B) breaks the scalar.
        assert_ne!(encode(&values, 0b0000_1111), Encoding::Scalar);
    }

    #[test]
    fn single_active_lane_is_scalar() {
        let values = vec![1, 2, 3, 4];
        assert_eq!(encode(&values, 0b0100), Encoding::Scalar);
        assert_eq!(first_active(&values, 0b0100), 3);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn empty_mask_panics() {
        let _ = encode(&[1, 2], 0);
    }

    #[test]
    fn chunk_encoding_is_independent() {
        // First 16 lanes scalar, second 16 lanes address-like.
        let mut values = vec![5u32; 16];
        values.extend((0..16).map(|i| 0x1000_0000 + i * 4));
        let chunks = encode_chunks(&values);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].0, Encoding::Scalar);
        assert_eq!(chunks[0].1, 5);
        assert_eq!(chunks[1].0, Encoding::B321);
        assert_eq!(chunks[1].1, 0x1000_0000);
    }

    #[test]
    fn u64_prefix_counts_high_bytes() {
        // 64-bit addresses: high 6 bytes identical, low 2 vary.
        let addrs: Vec<u64> = (0..32)
            .map(|i| 0x0000_7F00_1234_0000u64 + i * 0x777)
            .collect();
        assert_eq!(uniform_prefix_bytes_u64(&addrs, crate::full_mask(32)), 6);
        // Uniform 64-bit value.
        assert_eq!(uniform_prefix_bytes_u64(&[9u64; 4], 0xF), 8);
        // Section 5.3's argument: the *fraction* of bytes saved grows
        // when the same addresses are computed at 64-bit width.
        let addrs32: Vec<u32> = addrs.iter().map(|&a| a as u32).collect();
        let enc32 = encode(&addrs32, crate::full_mask(32));
        let saved32 = enc32.base_bytes() as f64 / 4.0;
        let saved64 = 6.0 / 8.0;
        assert!(saved64 > saved32, "64-bit {saved64} vs 32-bit {saved32}");
        // Masked comparison ignores inactive lanes.
        assert_eq!(uniform_prefix_bytes_u64(&addrs, 0b1), 8);
    }

    #[test]
    fn deltas_are_byte_plane_ordered() {
        let values = vec![0x1122_3301, 0x1122_3302];
        let c = compress(&values);
        assert_eq!(c.enc, Encoding::B321);
        assert_eq!(c.deltas, vec![0x01, 0x02]);
    }
}
