//! Property-based tests for the compression schemes and register
//! metadata invariants.

use gscalar_compress::regmeta::MetaConfig;
use gscalar_compress::{bdi, bytewise, full_mask, Encoding, RegFileMeta};
use proptest::prelude::*;

fn lanes32() -> impl Strategy<Value = Vec<u32>> {
    proptest::collection::vec(any::<u32>(), 32)
}

/// Values with realistic GPU structure: uniform, address-like, or noisy.
fn structured32() -> impl Strategy<Value = Vec<u32>> {
    prop_oneof![
        any::<u32>().prop_map(|v| vec![v; 32]),
        (any::<u32>(), 1u32..64)
            .prop_map(|(base, step)| { (0..32u32).map(|i| base.wrapping_add(i * step)).collect() }),
        lanes32(),
    ]
}

proptest! {
    #[test]
    fn compress_roundtrips(values in structured32()) {
        let c = bytewise::compress(&values);
        prop_assert_eq!(bytewise::decompress(&c, 32), values);
    }

    #[test]
    fn compressed_never_larger_than_raw(values in structured32()) {
        let c = bytewise::compress(&values);
        prop_assert!(c.size_bytes() <= 32 * 4);
    }

    #[test]
    fn encoding_is_mask_monotone(values in lanes32(), mask in 1u64..u32::MAX as u64) {
        // Restricting the active mask can only strengthen (or keep) the
        // encoding: fewer lanes can't disagree more.
        let full = full_mask(32);
        let full_enc = bytewise::encode(&values, full);
        let sub_enc = bytewise::encode(&values, mask & full);
        prop_assert!(sub_enc >= full_enc, "subset {sub_enc:?} < full {full_enc:?}");
    }

    #[test]
    fn single_lane_is_always_scalar(values in lanes32(), lane in 0usize..32) {
        prop_assert_eq!(
            bytewise::encode(&values, 1u64 << lane),
            Encoding::Scalar
        );
    }

    #[test]
    fn base_value_agrees_with_first_active(values in lanes32(), mask in 1u64..u32::MAX as u64) {
        let mask = mask & full_mask(32);
        prop_assume!(mask != 0);
        let lane = mask.trailing_zeros() as usize;
        prop_assert_eq!(bytewise::first_active(&values, mask), values[lane]);
    }

    #[test]
    fn eq_planes_matches_direct_comparison(values in structured32()) {
        let eq = bytewise::eq_planes(&values, full_mask(32));
        for byte in 0..4 {
            let all_same = values
                .iter()
                .all(|v| (v >> (byte * 8)) & 0xFF == (values[0] >> (byte * 8)) & 0xFF);
            prop_assert_eq!(eq & (1 << byte) != 0, all_same, "byte plane {}", byte);
        }
    }

    #[test]
    fn chunk_encodings_are_at_least_the_full_encoding(values in structured32()) {
        let full_enc = bytewise::encode(&values, full_mask(32));
        for (enc, _) in bytewise::encode_chunks(&values) {
            prop_assert!(enc >= full_enc);
        }
    }

    #[test]
    fn bdi_size_bounded_and_consistent(values in structured32()) {
        let r = bdi::compress(&values);
        prop_assert!(r.bytes <= r.raw_bytes());
        prop_assert!(r.ratio() >= 1.0);
        // Deterministic.
        prop_assert_eq!(bdi::compress(&values), r);
    }

    #[test]
    fn bdi_repeated_iff_uniform_nonzero(v in 1u32..) {
        let r = bdi::compress(&[v; 32]);
        prop_assert_eq!(r.mode, bdi::BdiMode::Repeated);
    }

    #[test]
    fn regmeta_write_read_scalar_consistency(values in structured32()) {
        let mut m = RegFileMeta::new(1, MetaConfig::g_scalar(32));
        let w = m.write(0, &values, full_mask(32));
        let r = m.read(0, full_mask(32));
        let uniform = values.iter().all(|&v| v == values[0]);
        prop_assert_eq!(w.enc.is_scalar(), uniform);
        prop_assert_eq!(r.scalar, uniform);
        // Arrays touched on read never exceed the bank's arrays.
        prop_assert!(r.arrays_read <= 8);
    }

    #[test]
    fn regmeta_divergent_roundtrip(values in structured32(), mask in 1u64..u32::MAX as u64) {
        let mask = mask & full_mask(32);
        prop_assume!(mask != 0 && mask != full_mask(32));
        let mut m = RegFileMeta::new(1, MetaConfig::g_scalar(32));
        m.write(0, &values, mask);
        // Same-mask read reports scalar exactly when active lanes agree.
        let active_uniform = {
            let first = values[mask.trailing_zeros() as usize];
            (0..32).filter(|l| mask & (1 << l) != 0).all(|l| values[l] == first)
        };
        let r = m.read(0, mask);
        prop_assert_eq!(r.scalar, active_uniform);
        // A different mask must never report a divergent scalar.
        let other = mask ^ full_mask(32);
        if other != 0 {
            prop_assert!(!m.read(0, other).scalar);
        }
    }

    #[test]
    fn arrays_written_match_encoding(values in structured32()) {
        let mut m = RegFileMeta::new(1, MetaConfig::compression_only(32));
        let w = m.write(0, &values, full_mask(32));
        prop_assert_eq!(w.arrays_written, w.stored.arrays_active(32));
    }
}
