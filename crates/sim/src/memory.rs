//! Functional memory: sparse paged global memory and per-CTA shared
//! memory.

use std::collections::HashMap;

const PAGE_SHIFT: u32 = 12;
const PAGE_BYTES: usize = 1 << PAGE_SHIFT;

/// Sparse byte-addressable global memory.
///
/// Pages are allocated on first touch and zero-initialized, so kernels
/// can read unwritten memory deterministically.
///
/// # Examples
///
/// ```
/// use gscalar_sim::memory::GlobalMemory;
///
/// let mut m = GlobalMemory::new();
/// m.write_u32(0x1000, 0xDEAD_BEEF);
/// assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
/// assert_eq!(m.read_u32(0x2000), 0); // untouched memory reads zero
/// ```
#[derive(Debug, Clone, Default)]
pub struct GlobalMemory {
    pages: HashMap<u64, Box<[u8; PAGE_BYTES]>>,
}

impl GlobalMemory {
    /// Creates an empty memory.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn page(&self, addr: u64) -> Option<&[u8; PAGE_BYTES]> {
        self.pages.get(&(addr >> PAGE_SHIFT)).map(|b| &**b)
    }

    fn page_mut(&mut self, addr: u64) -> &mut [u8; PAGE_BYTES] {
        self.pages
            .entry(addr >> PAGE_SHIFT)
            .or_insert_with(|| Box::new([0u8; PAGE_BYTES]))
    }

    /// Reads one byte.
    #[must_use]
    pub fn read_u8(&self, addr: u64) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr as usize) & (PAGE_BYTES - 1)])
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u64, v: u8) {
        let p = self.page_mut(addr);
        p[(addr as usize) & (PAGE_BYTES - 1)] = v;
    }

    /// Reads a little-endian `u32` (byte accesses; no alignment needed).
    #[must_use]
    pub fn read_u32(&self, addr: u64) -> u32 {
        let mut bytes = [0u8; 4];
        for (i, b) in bytes.iter_mut().enumerate() {
            *b = self.read_u8(addr + i as u64);
        }
        u32::from_le_bytes(bytes)
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        for (i, b) in v.to_le_bytes().iter().enumerate() {
            self.write_u8(addr + i as u64, *b);
        }
    }

    /// Reads an `f32` stored as IEEE-754 bits.
    #[must_use]
    pub fn read_f32(&self, addr: u64) -> f32 {
        f32::from_bits(self.read_u32(addr))
    }

    /// Writes an `f32` as IEEE-754 bits.
    pub fn write_f32(&mut self, addr: u64, v: f32) {
        self.write_u32(addr, v.to_bits());
    }

    /// Bulk-writes a `u32` slice starting at `addr`.
    pub fn write_u32_slice(&mut self, addr: u64, values: &[u32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_u32(addr + (i as u64) * 4, v);
        }
    }

    /// Bulk-writes an `f32` slice starting at `addr`.
    pub fn write_f32_slice(&mut self, addr: u64, values: &[f32]) {
        for (i, &v) in values.iter().enumerate() {
            self.write_f32(addr + (i as u64) * 4, v);
        }
    }

    /// Bulk-reads `n` `u32`s starting at `addr`.
    #[must_use]
    pub fn read_u32_slice(&self, addr: u64, n: usize) -> Vec<u32> {
        (0..n)
            .map(|i| self.read_u32(addr + (i as u64) * 4))
            .collect()
    }

    /// Number of resident (touched) pages.
    #[must_use]
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// The lowest address where `self` and `other` differ, or `None`
    /// when all bytes match (untouched pages compare as zero).
    #[must_use]
    pub fn first_difference(&self, other: &GlobalMemory) -> Option<u64> {
        let mut pages: Vec<u64> = self
            .pages
            .keys()
            .chain(other.pages.keys())
            .copied()
            .collect();
        pages.sort_unstable();
        pages.dedup();
        const ZERO: [u8; PAGE_BYTES] = [0u8; PAGE_BYTES];
        for p in pages {
            let a = self.pages.get(&p).map_or(&ZERO, |b| &**b);
            let b = other.pages.get(&p).map_or(&ZERO, |b| &**b);
            if a != b {
                let off = a
                    .iter()
                    .zip(b.iter())
                    .position(|(x, y)| x != y)
                    .expect("pages differ");
                return Some((p << PAGE_SHIFT) + off as u64);
            }
        }
        None
    }

    /// Whether two memories hold identical contents.
    #[must_use]
    pub fn content_eq(&self, other: &GlobalMemory) -> bool {
        self.first_difference(other).is_none()
    }
}

/// Per-CTA shared memory (word-addressed scratchpad).
#[derive(Debug, Clone)]
pub struct SharedMemory {
    bytes: Vec<u8>,
}

impl SharedMemory {
    /// Creates a zeroed scratchpad of `size` bytes.
    #[must_use]
    pub fn new(size: u32) -> Self {
        SharedMemory {
            bytes: vec![0; size as usize],
        }
    }

    /// Reads a `u32`; out-of-range addresses read zero (hardware would
    /// raise a fault, but workloads in this suite never do this — the
    /// lenient behavior keeps partial warps simple).
    #[must_use]
    pub fn read_u32(&self, addr: u32) -> u32 {
        let a = addr as usize;
        if a + 4 > self.bytes.len() {
            return 0;
        }
        u32::from_le_bytes([
            self.bytes[a],
            self.bytes[a + 1],
            self.bytes[a + 2],
            self.bytes[a + 3],
        ])
    }

    /// Writes a `u32`; out-of-range writes are dropped.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let a = addr as usize;
        if a + 4 > self.bytes.len() {
            return;
        }
        self.bytes[a..a + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the scratchpad has zero capacity.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_semantics() {
        let m = GlobalMemory::new();
        assert_eq!(m.read_u32(0), 0);
        assert_eq!(m.read_u8(12345), 0);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut m = GlobalMemory::new();
        m.write_u32(100, 0x0102_0304);
        assert_eq!(m.read_u32(100), 0x0102_0304);
        assert_eq!(m.read_u8(100), 0x04); // little endian
        assert_eq!(m.read_u8(103), 0x01);
    }

    #[test]
    fn cross_page_access() {
        let mut m = GlobalMemory::new();
        let addr = (PAGE_BYTES as u64) - 2;
        m.write_u32(addr, 0xAABB_CCDD);
        assert_eq!(m.read_u32(addr), 0xAABB_CCDD);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn float_helpers() {
        let mut m = GlobalMemory::new();
        m.write_f32(0x40, 3.5);
        assert_eq!(m.read_f32(0x40), 3.5);
        m.write_f32_slice(0x100, &[1.0, 2.0]);
        assert_eq!(m.read_f32(0x104), 2.0);
    }

    #[test]
    fn slice_helpers() {
        let mut m = GlobalMemory::new();
        m.write_u32_slice(0x200, &[1, 2, 3]);
        assert_eq!(m.read_u32_slice(0x200, 3), vec![1, 2, 3]);
    }

    #[test]
    fn content_comparison() {
        let mut a = GlobalMemory::new();
        let mut b = GlobalMemory::new();
        assert!(a.content_eq(&b));
        a.write_u32(0x100, 5);
        assert_eq!(a.first_difference(&b), Some(0x100));
        b.write_u32(0x100, 5);
        assert!(a.content_eq(&b));
        // A touched-but-zero page equals an untouched one.
        a.write_u32(0x5000, 0);
        assert!(a.content_eq(&b));
        b.write_u32(0x5002, 9);
        assert_eq!(a.first_difference(&b), Some(0x5002));
    }

    #[test]
    fn shared_memory_bounds() {
        let mut s = SharedMemory::new(16);
        s.write_u32(0, 7);
        s.write_u32(12, 9);
        assert_eq!(s.read_u32(0), 7);
        assert_eq!(s.read_u32(12), 9);
        // Out of range: dropped / zero.
        s.write_u32(14, 1);
        assert_eq!(s.read_u32(14), 0);
        assert_eq!(s.len(), 16);
    }
}
