//! Functional (per-lane) instruction semantics.
//!
//! The simulator is functional-first: every instruction computes real
//! 32-bit lane values so the compression and scalar-detection hardware
//! models operate on genuine register contents.

use gscalar_isa::{AluOp, CmpOp, SfuOp};

/// Evaluates an ALU opcode on one lane. `b`/`c` are ignored by opcodes
/// with smaller arity.
#[must_use]
pub fn eval_alu(op: AluOp, a: u32, b: u32, c: u32) -> u32 {
    let fa = f32::from_bits(a);
    let fb = f32::from_bits(b);
    let fc = f32::from_bits(c);
    match op {
        AluOp::IAdd => a.wrapping_add(b),
        AluOp::ISub => a.wrapping_sub(b),
        AluOp::IMul => a.wrapping_mul(b),
        AluOp::IMad => a.wrapping_mul(b).wrapping_add(c),
        AluOp::IMin => (a as i32).min(b as i32) as u32,
        AluOp::IMax => (a as i32).max(b as i32) as u32,
        AluOp::IDiv => {
            let (ia, ib) = (a as i32, b as i32);
            if ib == 0 {
                0
            } else {
                ia.wrapping_div(ib) as u32
            }
        }
        AluOp::IAbs => (a as i32).wrapping_abs() as u32,
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Not => !a,
        AluOp::Shl => a << (b & 31),
        AluOp::Shr => a >> (b & 31),
        AluOp::Sra => ((a as i32) >> (b & 31)) as u32,
        AluOp::FAdd => (fa + fb).to_bits(),
        AluOp::FSub => (fa - fb).to_bits(),
        AluOp::FMul => (fa * fb).to_bits(),
        AluOp::FFma => fa.mul_add(fb, fc).to_bits(),
        AluOp::FMin => fa.min(fb).to_bits(),
        AluOp::FMax => fa.max(fb).to_bits(),
        AluOp::FAbs => fa.abs().to_bits(),
        AluOp::FNeg => (-fa).to_bits(),
        AluOp::I2F => (a as i32 as f32).to_bits(),
        AluOp::F2I => (fa as i32) as u32, // saturating in Rust semantics
    }
}

/// Evaluates an SFU opcode on one lane.
#[must_use]
pub fn eval_sfu(op: SfuOp, a: u32) -> u32 {
    let fa = f32::from_bits(a);
    let r = match op {
        SfuOp::Sin => fa.sin(),
        SfuOp::Cos => fa.cos(),
        SfuOp::Ex2 => fa.exp2(),
        SfuOp::Lg2 => fa.log2(),
        SfuOp::Rcp => 1.0 / fa,
        SfuOp::Rsqrt => 1.0 / fa.sqrt(),
        SfuOp::Sqrt => fa.sqrt(),
    };
    r.to_bits()
}

/// Evaluates a comparison on one lane.
#[must_use]
pub fn eval_cmp(cmp: CmpOp, float: bool, a: u32, b: u32) -> bool {
    if float {
        let (fa, fb) = (f32::from_bits(a), f32::from_bits(b));
        match cmp {
            CmpOp::Eq => fa == fb,
            CmpOp::Ne => fa != fb,
            CmpOp::Lt => fa < fb,
            CmpOp::Le => fa <= fb,
            CmpOp::Gt => fa > fb,
            CmpOp::Ge => fa >= fb,
        }
    } else {
        let (ia, ib) = (a as i32, b as i32);
        match cmp {
            CmpOp::Eq => ia == ib,
            CmpOp::Ne => ia != ib,
            CmpOp::Lt => ia < ib,
            CmpOp::Le => ia <= ib,
            CmpOp::Gt => ia > ib,
            CmpOp::Ge => ia >= ib,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_ops() {
        assert_eq!(eval_alu(AluOp::IAdd, 3, 4, 0), 7);
        assert_eq!(eval_alu(AluOp::IAdd, u32::MAX, 1, 0), 0); // wraps
        assert_eq!(eval_alu(AluOp::ISub, 3, 5, 0), (-2i32) as u32);
        assert_eq!(eval_alu(AluOp::IMad, 3, 4, 5,), 17);
        assert_eq!(eval_alu(AluOp::IMin, (-2i32) as u32, 1, 0), (-2i32) as u32);
        assert_eq!(eval_alu(AluOp::IMax, (-2i32) as u32, 1, 0), 1);
        assert_eq!(eval_alu(AluOp::IAbs, (-9i32) as u32, 0, 0), 9);
    }

    #[test]
    fn division_edge_cases() {
        assert_eq!(eval_alu(AluOp::IDiv, 10, 3, 0), 3);
        assert_eq!(eval_alu(AluOp::IDiv, 10, 0, 0), 0);
        assert_eq!(eval_alu(AluOp::IDiv, (-10i32) as u32, 3, 0), (-3i32) as u32);
        // i32::MIN / -1 must not trap.
        assert_eq!(
            eval_alu(AluOp::IDiv, i32::MIN as u32, (-1i32) as u32, 0),
            i32::MIN as u32
        );
    }

    #[test]
    fn shifts_mask_their_amount() {
        assert_eq!(eval_alu(AluOp::Shl, 1, 33, 0), 2);
        assert_eq!(eval_alu(AluOp::Shr, 0x8000_0000, 31, 0), 1);
        assert_eq!(eval_alu(AluOp::Sra, 0x8000_0000, 31, 0), 0xFFFF_FFFF);
    }

    #[test]
    fn float_ops_roundtrip_bits() {
        let a = 2.5f32.to_bits();
        let b = 0.5f32.to_bits();
        assert_eq!(f32::from_bits(eval_alu(AluOp::FAdd, a, b, 0)), 3.0);
        assert_eq!(f32::from_bits(eval_alu(AluOp::FMul, a, b, 0)), 1.25);
        let c = 1.0f32.to_bits();
        assert_eq!(f32::from_bits(eval_alu(AluOp::FFma, a, b, c)), 2.25);
        assert_eq!(f32::from_bits(eval_alu(AluOp::FNeg, a, 0, 0)), -2.5);
    }

    #[test]
    fn conversions() {
        assert_eq!(
            f32::from_bits(eval_alu(AluOp::I2F, (-3i32) as u32, 0, 0)),
            -3.0
        );
        assert_eq!(eval_alu(AluOp::F2I, 2.9f32.to_bits(), 0, 0), 2);
        assert_eq!(
            eval_alu(AluOp::F2I, (-2.9f32).to_bits(), 0, 0),
            (-2i32) as u32
        );
        // Saturation instead of UB on overflow.
        assert_eq!(
            eval_alu(AluOp::F2I, 1e20f32.to_bits(), 0, 0),
            i32::MAX as u32
        );
    }

    #[test]
    fn sfu_functions() {
        let x = 2.0f32.to_bits();
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Ex2, x)), 4.0);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Lg2, x)), 1.0);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Rcp, x)), 0.5);
        assert_eq!(f32::from_bits(eval_sfu(SfuOp::Sqrt, 4.0f32.to_bits())), 2.0);
        assert_eq!(
            f32::from_bits(eval_sfu(SfuOp::Rsqrt, 4.0f32.to_bits())),
            0.5
        );
        let s = f32::from_bits(eval_sfu(SfuOp::Sin, 0.0f32.to_bits()));
        assert_eq!(s, 0.0);
    }

    #[test]
    fn comparisons_int_and_float() {
        assert!(eval_cmp(CmpOp::Lt, false, (-1i32) as u32, 0));
        assert!(!eval_cmp(
            CmpOp::Lt,
            true,
            (-1.0f32).to_bits(),
            f32::NAN.to_bits()
        ));
        assert!(eval_cmp(
            CmpOp::Ne,
            true,
            1.0f32.to_bits(),
            2.0f32.to_bits()
        ));
        assert!(eval_cmp(CmpOp::Ge, false, 5, 5));
        // NaN compares false for everything except Ne.
        let nan = f32::NAN.to_bits();
        assert!(!eval_cmp(CmpOp::Eq, true, nan, nan));
        assert!(eval_cmp(CmpOp::Ne, true, nan, nan));
    }
}
