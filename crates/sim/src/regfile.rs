//! Operand collectors and register-file bank arbitration.
//!
//! The baseline register file (Section 2.1) has 16 single-ported banks
//! feeding 16 operand collectors through a crossbar. Each cycle a bank
//! can serve one access; collectors gather their operands over possibly
//! several cycles and release the instruction once complete.
//!
//! Three port classes are modeled, which is where the architectures
//! differ (Section 4.1):
//!
//! * **data ports** — one per bank, serving vector reads (and reserved
//!   by writebacks);
//! * **BVR ports** — one per bank, serving scalar operands in the
//!   compression-based G-Scalar design (so scalars effectively see 16
//!   banks);
//! * **the scalar-RF port** — a single port shared by *all* scalar
//!   operands in the prior-work dedicated-scalar-register-file design,
//!   the serialization bottleneck the paper calls out.

/// Which physical port a pending operand read needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PortKind {
    /// A vector-register data read from a bank's SRAM arrays.
    Data,
    /// A scalar read served by the per-bank BVR/EBR array.
    Bvr,
    /// A scalar read served by the single dedicated scalar RF.
    ScalarRf,
}

/// One pending operand read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadReq {
    /// Home bank of the register.
    pub bank: usize,
    /// Port class this read consumes.
    pub port: PortKind,
    /// Completed.
    pub done: bool,
}

impl ReadReq {
    /// A data-port read from `bank`.
    #[must_use]
    pub fn data(bank: usize) -> Self {
        ReadReq {
            bank,
            port: PortKind::Data,
            done: false,
        }
    }

    /// A BVR read from `bank`.
    #[must_use]
    pub fn bvr(bank: usize) -> Self {
        ReadReq {
            bank,
            port: PortKind::Bvr,
            done: false,
        }
    }

    /// A dedicated-scalar-RF read.
    #[must_use]
    pub fn scalar_rf() -> Self {
        ReadReq {
            bank: 0,
            port: PortKind::ScalarRf,
            done: false,
        }
    }
}

/// An operand-collector entry: the payload plus its outstanding reads.
#[derive(Debug, Clone)]
pub struct OcEntry<T> {
    /// Caller context (the in-flight instruction).
    pub payload: T,
    /// Outstanding and completed operand reads.
    pub reads: Vec<ReadReq>,
}

/// Per-cycle arbitration results.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArbResult {
    /// Reads granted this cycle.
    pub grants: u64,
    /// Reads that wanted a busy bank data port.
    pub data_conflicts: u64,
    /// Scalar-RF reads deferred because the single port was taken.
    pub scalar_serializations: u64,
    /// BVR reads deferred because the bank's BVR port was taken.
    pub bvr_conflicts: u64,
}

impl ArbResult {
    /// Whether any read lost arbitration this cycle (used by stall
    /// accounting to refine collector-full stalls into bank-conflict
    /// stalls).
    #[must_use]
    pub fn any_conflict(&self) -> bool {
        self.data_conflicts + self.scalar_serializations + self.bvr_conflicts > 0
    }
}

/// The operand-collector array with bank arbitration.
///
/// # Examples
///
/// ```
/// use gscalar_sim::regfile::{OperandCollectors, OcEntry, ReadReq};
///
/// let mut oc: OperandCollectors<&str> = OperandCollectors::new(4, 16);
/// oc.insert(OcEntry { payload: "i0", reads: vec![ReadReq::data(0), ReadReq::data(0)] });
/// // Two reads of bank 0 need two cycles.
/// oc.arbitrate(&[]);
/// assert!(oc.take_ready().is_empty());
/// oc.arbitrate(&[]);
/// assert_eq!(oc.take_ready().len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct OperandCollectors<T> {
    slots: Vec<Option<OcEntry<T>>>,
    banks: usize,
    rr: usize,
}

impl<T> OperandCollectors<T> {
    /// Creates `slots` collectors over `banks` register banks.
    #[must_use]
    pub fn new(slots: usize, banks: usize) -> Self {
        OperandCollectors {
            slots: (0..slots).map(|_| None).collect(),
            banks,
            rr: 0,
        }
    }

    /// Number of free collector slots.
    #[must_use]
    pub fn free_slots(&self) -> usize {
        self.slots.iter().filter(|s| s.is_none()).count()
    }

    /// Number of occupied collector slots.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots.len() - self.free_slots()
    }

    /// Inserts an entry into a free slot.
    ///
    /// # Panics
    ///
    /// Panics if no slot is free — callers must check
    /// [`OperandCollectors::free_slots`] first.
    pub fn insert(&mut self, entry: OcEntry<T>) {
        let slot = self
            .slots
            .iter_mut()
            .find(|s| s.is_none())
            .expect("no free operand collector");
        *slot = Some(entry);
    }

    /// Runs one cycle of bank arbitration. `write_banks` lists banks
    /// whose data port is consumed by a writeback this cycle (writes
    /// have priority on the single-ported SRAMs).
    pub fn arbitrate(&mut self, write_banks: &[usize]) -> ArbResult {
        let mut res = ArbResult::default();
        let mut data_busy = vec![false; self.banks];
        for &b in write_banks {
            if b < self.banks {
                data_busy[b] = true;
            }
        }
        let mut bvr_busy = vec![false; self.banks];
        let mut scalar_rf_busy = false;
        let n = self.slots.len();
        // Round-robin over collectors for fairness.
        for i in 0..n {
            let idx = (self.rr + i) % n;
            let Some(entry) = self.slots[idx].as_mut() else {
                continue;
            };
            for r in entry.reads.iter_mut().filter(|r| !r.done) {
                match r.port {
                    PortKind::Data => {
                        if data_busy[r.bank] {
                            res.data_conflicts += 1;
                        } else {
                            data_busy[r.bank] = true;
                            r.done = true;
                            res.grants += 1;
                        }
                    }
                    PortKind::Bvr => {
                        if bvr_busy[r.bank] {
                            res.bvr_conflicts += 1;
                        } else {
                            bvr_busy[r.bank] = true;
                            r.done = true;
                            res.grants += 1;
                        }
                    }
                    PortKind::ScalarRf => {
                        if scalar_rf_busy {
                            res.scalar_serializations += 1;
                        } else {
                            scalar_rf_busy = true;
                            r.done = true;
                            res.grants += 1;
                        }
                    }
                }
            }
        }
        self.rr = (self.rr + 1) % n.max(1);
        res
    }

    /// Removes and returns entries whose reads are all complete.
    pub fn take_ready(&mut self) -> Vec<T> {
        self.take_ready_when(|_| true)
    }

    /// Removes and returns complete entries accepted by `accept`;
    /// rejected entries stay in their collector (structural
    /// backpressure toward the schedulers).
    pub fn take_ready_when(&mut self, mut accept: impl FnMut(&T) -> bool) -> Vec<T> {
        let mut out = Vec::new();
        for slot in &mut self.slots {
            let complete = slot
                .as_ref()
                .is_some_and(|e| e.reads.iter().all(|r| r.done));
            if complete && accept(&slot.as_ref().expect("checked above").payload) {
                out.push(slot.take().expect("checked above").payload);
            }
        }
        out
    }

    /// Whether any entry is still collecting.
    #[must_use]
    pub fn any_pending(&self) -> bool {
        self.slots.iter().any(|s| s.is_some())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_banks_collect_in_one_cycle() {
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(4, 16);
        oc.insert(OcEntry {
            payload: 1,
            reads: vec![ReadReq::data(0), ReadReq::data(1), ReadReq::data(2)],
        });
        let r = oc.arbitrate(&[]);
        assert_eq!(r.grants, 3);
        assert_eq!(oc.take_ready(), vec![1]);
    }

    #[test]
    fn same_bank_serializes() {
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(4, 16);
        oc.insert(OcEntry {
            payload: 1,
            reads: vec![ReadReq::data(3), ReadReq::data(3)],
        });
        let r1 = oc.arbitrate(&[]);
        assert_eq!(r1.grants, 1);
        assert_eq!(r1.data_conflicts, 1);
        assert!(oc.take_ready().is_empty());
        oc.arbitrate(&[]);
        assert_eq!(oc.take_ready(), vec![1]);
    }

    #[test]
    fn cross_entry_bank_conflict() {
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(4, 16);
        oc.insert(OcEntry {
            payload: 1,
            reads: vec![ReadReq::data(5)],
        });
        oc.insert(OcEntry {
            payload: 2,
            reads: vec![ReadReq::data(5)],
        });
        oc.arbitrate(&[]);
        let ready = oc.take_ready();
        assert_eq!(ready.len(), 1);
        oc.arbitrate(&[]);
        assert_eq!(oc.take_ready().len(), 1);
    }

    #[test]
    fn writes_have_priority() {
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(4, 16);
        oc.insert(OcEntry {
            payload: 1,
            reads: vec![ReadReq::data(7)],
        });
        let r = oc.arbitrate(&[7]);
        assert_eq!(r.grants, 0);
        assert_eq!(r.data_conflicts, 1);
        oc.arbitrate(&[]);
        assert_eq!(oc.take_ready(), vec![1]);
    }

    #[test]
    fn bvr_ports_do_not_conflict_with_data() {
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(4, 16);
        oc.insert(OcEntry {
            payload: 1,
            reads: vec![ReadReq::data(0), ReadReq::bvr(0)],
        });
        let r = oc.arbitrate(&[]);
        assert_eq!(r.grants, 2);
        assert_eq!(oc.take_ready(), vec![1]);
    }

    #[test]
    fn bvr_ports_are_per_bank() {
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(4, 16);
        oc.insert(OcEntry {
            payload: 1,
            reads: vec![ReadReq::bvr(0), ReadReq::bvr(1)],
        });
        oc.insert(OcEntry {
            payload: 2,
            reads: vec![ReadReq::bvr(0)],
        });
        let r = oc.arbitrate(&[]);
        // Entry 1 completes (banks 0 and 1); entry 2's bank-0 BVR read
        // lost arbitration this cycle.
        assert_eq!(r.bvr_conflicts, 1);
        assert!(r.any_conflict());
        assert_eq!(oc.take_ready(), vec![1]);
        oc.arbitrate(&[]);
        assert_eq!(oc.take_ready(), vec![2]);
    }

    #[test]
    fn scalar_rf_is_a_single_port() {
        // Section 4.1: a burst of scalar instructions serializes on the
        // one scalar bank in the prior-work design.
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(8, 16);
        for p in 0..4 {
            oc.insert(OcEntry {
                payload: p,
                reads: vec![ReadReq::scalar_rf(), ReadReq::scalar_rf()],
            });
        }
        let r = oc.arbitrate(&[]);
        assert_eq!(r.grants, 1);
        assert!(r.scalar_serializations >= 3);
        // It takes 8 cycles to drain all four two-operand entries.
        let mut done = 0;
        for _ in 0..7 {
            oc.arbitrate(&[]);
            done += oc.take_ready().len();
        }
        assert_eq!(done, 4);
    }

    #[test]
    fn take_ready_when_applies_backpressure() {
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(4, 16);
        oc.insert(OcEntry {
            payload: 1,
            reads: vec![],
        });
        oc.insert(OcEntry {
            payload: 2,
            reads: vec![],
        });
        oc.insert(OcEntry {
            payload: 3,
            reads: vec![],
        });
        // Accept at most two.
        let mut budget = 2;
        let taken = oc.take_ready_when(|_| {
            if budget > 0 {
                budget -= 1;
                true
            } else {
                false
            }
        });
        assert_eq!(taken.len(), 2);
        assert_eq!(oc.occupancy(), 1);
        assert_eq!(oc.take_ready().len(), 1);
    }

    #[test]
    fn no_reads_is_immediately_ready() {
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(2, 16);
        oc.insert(OcEntry {
            payload: 9,
            reads: vec![],
        });
        assert_eq!(oc.take_ready(), vec![9]);
        assert!(!oc.any_pending());
    }

    #[test]
    #[should_panic(expected = "no free operand collector")]
    fn insert_into_full_panics() {
        let mut oc: OperandCollectors<u32> = OperandCollectors::new(1, 16);
        oc.insert(OcEntry {
            payload: 0,
            reads: vec![],
        });
        oc.insert(OcEntry {
            payload: 1,
            reads: vec![],
        });
    }
}
