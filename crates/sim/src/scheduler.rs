//! Warp schedulers: greedy-then-oldest (GTO) and loose round-robin.

/// Warp scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Greedy-then-oldest: keep issuing from the last warp until it
    /// stalls, then fall back to the oldest ready warp (GPGPU-Sim's
    /// default, assumed by the paper's burst-of-scalar-instructions
    /// observation in Section 4.1).
    Gto,
    /// Loose round-robin.
    Lrr,
}

/// A warp scheduler owning a subset of an SM's warps.
///
/// The scheduler only decides *order*; the SM supplies a readiness
/// predicate at each issue attempt.
///
/// # Examples
///
/// ```
/// use gscalar_sim::scheduler::{Scheduler, SchedPolicy};
///
/// let mut s = Scheduler::new(SchedPolicy::Gto, vec![0, 2, 4]);
/// // Warp 2 is the only ready one.
/// assert_eq!(s.pick(|w| w == 2), Some(2));
/// // GTO keeps picking it while ready.
/// assert_eq!(s.pick(|w| w == 2), Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler {
    policy: SchedPolicy,
    warps: Vec<usize>,
    /// GTO: the warp to greedily retry. LRR: rotation offset.
    cursor: usize,
    greedy: Option<usize>,
}

impl Scheduler {
    /// Creates a scheduler over the given warp ids (oldest first).
    #[must_use]
    pub fn new(policy: SchedPolicy, warps: Vec<usize>) -> Self {
        Scheduler {
            policy,
            warps,
            cursor: 0,
            greedy: None,
        }
    }

    /// The warps this scheduler owns.
    #[must_use]
    pub fn warps(&self) -> &[usize] {
        &self.warps
    }

    /// Forgets `w` as the greedy candidate when the warp exits (its CTA
    /// retires). Without this the greedy pointer survives into whatever
    /// new warp reuses the same slot, handing it priority over older
    /// siblings and charging stall cycles to the dead warp's stale head
    /// PC before the slot refills.
    pub fn retire(&mut self, w: usize) {
        if self.greedy == Some(w) {
            self.greedy = None;
        }
    }

    /// Picks the next warp to issue from, or `None` if no owned warp
    /// satisfies `ready`.
    pub fn pick(&mut self, mut ready: impl FnMut(usize) -> bool) -> Option<usize> {
        if self.warps.is_empty() {
            return None;
        }
        match self.policy {
            SchedPolicy::Gto => {
                if let Some(g) = self.greedy {
                    if ready(g) {
                        return Some(g);
                    }
                }
                // Oldest ready warp.
                for &w in &self.warps {
                    if ready(w) {
                        self.greedy = Some(w);
                        return Some(w);
                    }
                }
                self.greedy = None;
                None
            }
            SchedPolicy::Lrr => {
                let n = self.warps.len();
                for i in 0..n {
                    let w = self.warps[(self.cursor + i) % n];
                    if ready(w) {
                        self.cursor = (self.cursor + i + 1) % n;
                        return Some(w);
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gto_sticks_with_greedy_warp() {
        let mut s = Scheduler::new(SchedPolicy::Gto, vec![0, 1, 2]);
        assert_eq!(s.pick(|_| true), Some(0));
        assert_eq!(s.pick(|_| true), Some(0));
        // Warp 0 stalls → oldest ready is 1.
        assert_eq!(s.pick(|w| w != 0), Some(1));
        // Greedy moves to 1.
        assert_eq!(s.pick(|_| true), Some(1));
    }

    #[test]
    fn gto_falls_back_to_oldest() {
        let mut s = Scheduler::new(SchedPolicy::Gto, vec![3, 5, 7]);
        assert_eq!(s.pick(|w| w == 7), Some(7));
        // 7 stalls, 3 and 5 ready → oldest (3).
        assert_eq!(s.pick(|w| w != 7), Some(3));
    }

    #[test]
    fn lrr_rotates() {
        let mut s = Scheduler::new(SchedPolicy::Lrr, vec![0, 1, 2]);
        assert_eq!(s.pick(|_| true), Some(0));
        assert_eq!(s.pick(|_| true), Some(1));
        assert_eq!(s.pick(|_| true), Some(2));
        assert_eq!(s.pick(|_| true), Some(0));
    }

    #[test]
    fn gto_retire_clears_greedy_priority() {
        let mut s = Scheduler::new(SchedPolicy::Gto, vec![0, 1, 2]);
        // Warp 2 becomes greedy, then exits. A later pick with every
        // slot ready must fall back to the oldest warp, not keep the
        // retired warp's slot at the head of the line.
        assert_eq!(s.pick(|w| w == 2), Some(2));
        s.retire(2);
        assert_eq!(s.pick(|_| true), Some(0));
    }

    #[test]
    fn gto_retire_of_non_greedy_is_a_no_op() {
        let mut s = Scheduler::new(SchedPolicy::Gto, vec![0, 1, 2]);
        assert_eq!(s.pick(|w| w == 2), Some(2));
        s.retire(1);
        assert_eq!(s.pick(|_| true), Some(2));
    }

    #[test]
    fn none_when_nothing_ready() {
        let mut s = Scheduler::new(SchedPolicy::Gto, vec![0, 1]);
        assert_eq!(s.pick(|_| false), None);
        let mut empty = Scheduler::new(SchedPolicy::Gto, vec![]);
        assert_eq!(empty.pick(|_| true), None);
    }
}
