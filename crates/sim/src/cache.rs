//! A generic set-associative cache tag model with LRU replacement.
//!
//! Only tags are modeled — data always comes from the functional
//! [`GlobalMemory`](crate::memory::GlobalMemory) — so the cache decides
//! *timing and energy*, not values.

/// Result of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Line present.
    Hit,
    /// Line absent; allocated if the access allocates.
    Miss,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    last_use: u64,
}

/// A set-associative LRU cache tag array.
///
/// # Examples
///
/// ```
/// use gscalar_sim::cache::{Cache, CacheOutcome};
///
/// let mut c = Cache::new(1024, 2, 128);
/// assert_eq!(c.access(0, 1, true), CacheOutcome::Miss);
/// assert_eq!(c.access(0, 2, true), CacheOutcome::Hit);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: usize,
    lines: Vec<Line>,
}

impl Cache {
    /// Creates a cache of `size_bytes` with `ways` associativity and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or any parameter
    /// is zero.
    #[must_use]
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(size_bytes > 0 && ways > 0 && line_bytes > 0);
        let lines_total = size_bytes / line_bytes;
        assert!(
            size_bytes.is_multiple_of(line_bytes)
                && lines_total >= ways
                && lines_total.is_multiple_of(ways),
            "cache geometry must divide evenly"
        );
        let sets = lines_total / ways;
        Cache {
            sets,
            ways,
            line_bytes,
            lines: vec![Line::default(); lines_total],
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Accesses `addr` at time `now`; allocates the line on miss when
    /// `allocate` is true. Returns hit/miss.
    pub fn access(&mut self, addr: u64, now: u64, allocate: bool) -> CacheOutcome {
        let line_addr = addr / self.line_bytes as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let tag = line_addr / self.sets as u64;
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];
        if let Some(l) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            l.last_use = now;
            return CacheOutcome::Hit;
        }
        if allocate {
            let victim = set_lines
                .iter_mut()
                .min_by_key(|l| if l.valid { l.last_use + 1 } else { 0 })
                .expect("ways > 0");
            victim.valid = true;
            victim.tag = tag;
            victim.last_use = now;
        }
        CacheOutcome::Miss
    }

    /// Whether `addr`'s line is currently resident (no LRU update).
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = addr / self.line_bytes as u64;
        let set = (line_addr % self.sets as u64) as usize;
        let tag = line_addr / self.sets as u64;
        let base = set * self.ways;
        self.lines[base..base + self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Invalidates everything.
    pub fn flush(&mut self) {
        for l in &mut self.lines {
            l.valid = false;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_after_allocate() {
        let mut c = Cache::new(1024, 2, 128); // 4 sets
        assert_eq!(c.access(0, 1, true), CacheOutcome::Miss);
        assert_eq!(c.access(64, 2, true), CacheOutcome::Hit); // same line
        assert_eq!(c.access(128, 3, true), CacheOutcome::Miss); // next set
    }

    #[test]
    fn no_allocate_stays_cold() {
        let mut c = Cache::new(1024, 2, 128);
        assert_eq!(c.access(0, 1, false), CacheOutcome::Miss);
        assert_eq!(c.access(0, 2, true), CacheOutcome::Miss);
        assert_eq!(c.access(0, 3, true), CacheOutcome::Hit);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set, 2 ways, 128B lines = 256 bytes.
        let mut c = Cache::new(256, 2, 128);
        // Lines A, B fill the set; C evicts A (older).
        let a = 0u64;
        let b = 128;
        let c_addr = 256;
        c.access(a, 1, true);
        c.access(b, 2, true);
        c.access(c_addr, 3, true);
        assert!(!c.probe(a));
        assert!(c.probe(b));
        assert!(c.probe(c_addr));
        // Touch B, then D evicts C.
        c.access(b, 4, true);
        c.access(384, 5, true);
        assert!(c.probe(b));
        assert!(!c.probe(c_addr));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = Cache::new(256, 2, 128);
        c.access(0, 1, true);
        assert!(c.probe(0));
        c.flush();
        assert!(!c.probe(0));
    }

    #[test]
    #[should_panic(expected = "divide evenly")]
    fn bad_geometry_rejected() {
        let _ = Cache::new(300, 2, 128);
    }
}
