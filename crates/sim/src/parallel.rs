//! The in-process parallel execution engine: shards the per-cycle SM
//! loop of [`crate::Gpu::run`] across a small pool of persistent
//! worker threads while producing **byte-identical** results to the
//! serial engine at any thread count.
//!
//! # Determinism contract
//!
//! One simulated cycle is one *epoch*. Within an epoch every SM runs
//! [`Sm::cycle_port`] independently against
//!
//! - a read-only snapshot of global memory as of the epoch start,
//!   overlaid with the SM's *own* buffered stores (byte-granular, so
//!   within one SM even overlapping unaligned accesses behave exactly
//!   as under the serial engine), and
//! - a private [`EpochBuffer`] that defers every shared
//!   [`MemSystem`] request and a private trace sink / profiler fork.
//!
//! At the epoch barrier the coordinator thread applies the buffered
//! effects **in (cycle, sm-id, issue-order) order** — exactly the
//! order the serial engine's `for sm in &mut sms` loop would have
//! produced them. Because the serial SM only touches the shared
//! hierarchy at dispatch time and nothing later in its own cycle reads
//! the outcome, replaying the deferred requests at the barrier
//! reproduces every L1/L2/DRAM contention decision, every stat, every
//! trace event (deferred `Mem`/`ExecSpan` events are spliced back at
//! their recorded sink positions), and every profile counter bit for
//! bit.
//!
//! The one *modeling* relaxation: a store issued by SM *i* becomes
//! visible to loads of SM *j* (*j* ≠ *i*) only at the next cycle,
//! whereas the serial loop exposes it to SMs *j* > *i* within the same
//! cycle. Same-cycle cross-SM communication is already meaningless
//! under the simulator's memory timing model (a load completes tens of
//! cycles after issue), no benchmark relies on it, and the equivalence
//! suite compares engines on every benchmark and on randomized
//! kernels.

use std::panic::AssertUnwindSafe;
use std::sync::{Mutex, RwLock};

use gscalar_hostprof as hostprof;
use gscalar_isa::{Kernel, LaunchConfig};
use gscalar_profile::Profiler;
use gscalar_trace::{Record, TraceEvent, TraceSink, Tracer};

use crate::config::{ArchConfig, GpuConfig};
use crate::gpu::{cta_coord, RunObserver, WATCHDOG_CYCLES};
use crate::memory::GlobalMemory;
use crate::memsys::MemSystem;
use crate::sm::{EpochBuffer, MemPort, Sm};
use crate::stats::Stats;

/// A per-epoch trace sink local to one SM; its position is spliced
/// against [`crate::sm::PendingMem::trace_pos`] at the barrier.
#[derive(Default)]
struct EpochSink {
    events: Vec<Record>,
}

impl TraceSink for EpochSink {
    fn record(&mut self, now: u64, ev: TraceEvent) {
        self.events.push(Record { now, ev });
    }

    fn position(&self) -> u64 {
        self.events.len() as u64
    }
}

/// One SM plus its private epoch state. Workers lock exactly one slot
/// at a time; the coordinator only touches slots between epochs.
struct SmSlot {
    sm: Sm,
    buf: EpochBuffer,
    sink: EpochSink,
    profiler: Profiler,
    /// CTAs completed this epoch (consumed at the barrier).
    completed: u64,
    /// This SM's contribution to the cycle's activity flag.
    active: bool,
}

/// Parallel counterpart of `Gpu::run_inner`; entered when the resolved
/// [`GpuConfig::exec_threads`] exceeds 1.
///
/// # Panics
///
/// Panics under the same conditions as the serial engine (unfittable
/// CTA, watchdog); panics from worker threads propagate to the caller.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_parallel(
    cfg: &GpuConfig,
    arch: &ArchConfig,
    threads: usize,
    kernel: &Kernel,
    launch: LaunchConfig,
    gmem: &mut GlobalMemory,
    tracer: &mut Tracer<'_>,
    snapshot_interval: u64,
    sample_interval: u64,
    observer: &mut dyn RunObserver,
    profiler: &mut Profiler,
) -> Stats {
    // Global memory moves into a lock for the duration of the run:
    // workers read the epoch-start snapshot, the coordinator applies
    // buffered stores at the barrier. Restored below even on unwind
    // (watchdog, budget abort) so the caller's memory matches what a
    // serial run would have left behind.
    let gmem_lock = RwLock::new(std::mem::take(gmem));
    let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
        run_epochs_inner(
            cfg,
            arch,
            threads,
            kernel,
            launch,
            &gmem_lock,
            tracer,
            snapshot_interval,
            sample_interval,
            observer,
            profiler,
        )
    }));
    *gmem = gmem_lock
        .into_inner()
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    match result {
        Ok(stats) => stats,
        Err(payload) => std::panic::resume_unwind(payload),
    }
}

#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn run_epochs_inner(
    cfg: &GpuConfig,
    arch: &ArchConfig,
    threads: usize,
    kernel: &Kernel,
    launch: LaunchConfig,
    gmem_lock: &RwLock<GlobalMemory>,
    tracer: &mut Tracer<'_>,
    snapshot_interval: u64,
    sample_interval: u64,
    observer: &mut dyn RunObserver,
    profiler: &mut Profiler,
) -> Stats {
    let mut memsys = MemSystem::new(cfg);
    let mut slots: Vec<Mutex<SmSlot>> = (0..cfg.num_sms)
        .map(|i| {
            Mutex::new(SmSlot {
                sm: Sm::new(i, cfg, arch, kernel.num_regs() as usize),
                buf: EpochBuffer::default(),
                sink: EpochSink::default(),
                profiler: profiler.fork(),
                completed: 0,
                active: false,
            })
        })
        .collect();

    // CTA work list in linear order; initial fill round-robin over SMs
    // — identical to the serial engine.
    let total_ctas = launch.grid.count();
    let mut next_cta: u64 = 0;
    let mut ctas_done: u64 = 0;
    let cta_threads = launch.threads_per_cta() as usize;
    let warps_per_cta = cta_threads.div_ceil(cfg.warp_size);
    let fill_phase = hostprof::phase(hostprof::Phase::CtaLaunch);
    let mut made_progress = true;
    while made_progress && next_cta < total_ctas {
        made_progress = false;
        for slot in &mut slots {
            if next_cta >= total_ctas {
                break;
            }
            let sm = &mut slot.get_mut().expect("no contention yet").sm;
            if sm.can_accept_cta(warps_per_cta, kernel.shared_mem_bytes()) {
                sm.launch_cta(
                    kernel,
                    cta_coord(next_cta, launch.grid),
                    launch.grid,
                    launch.block,
                );
                next_cta += 1;
                made_progress = true;
            }
        }
    }
    assert!(
        next_cta > 0,
        "CTA of {cta_threads} threads does not fit the configuration"
    );
    drop(fill_phase);

    let tracing = tracer.is_on();
    let mut last_snapshot: u64 = 0;
    let mut last_sample: u64 = 0;
    let mut end_now: u64 = 0;

    {
        let slots = &slots;
        // Phase 1, run on workers and the coordinator alike: one SM's
        // cycle against its private buffers and the shared read-only
        // memory snapshot.
        let work = |i: usize, now: u64| {
            let mut guard = slots[i].lock().expect("slot lock");
            let slot = &mut *guard;
            let gmem = gmem_lock.read().expect("gmem read lock");
            let before = slot.sm.stats.pipe.issued + slot.sm.stats.pipe.oc_allocs;
            let mut local = if tracing {
                Tracer::new(&mut slot.sink)
            } else {
                Tracer::off()
            };
            let completed = slot.sm.cycle_port(
                now,
                kernel,
                &mut MemPort::Buffered {
                    gmem: &gmem,
                    buf: &mut slot.buf,
                },
                &mut local,
                &mut slot.profiler,
            );
            slot.completed = completed as u64;
            slot.active = completed > 0
                || slot.sm.stats.pipe.issued + slot.sm.stats.pipe.oc_allocs != before
                || slot.sm.collectors_pending();
        };
        // Phase 2, the barrier: apply every SM's buffered effects in
        // sm-id order, then advance the clock exactly as the serial
        // loop does.
        let next = |now: u64| -> Option<u64> {
            // The whole serial barrier section is Barrier host time;
            // nested guards (Memsys in resolve_pending, CtaLaunch,
            // IdleScan, Snapshot below) carve out their own shares.
            let barrier_phase = hostprof::phase(hostprof::Phase::Barrier);
            let mut any_activity = false;
            {
                let mut gmem = gmem_lock.write().expect("gmem write lock");
                for slot in slots {
                    let mut guard = slot.lock().expect("slot lock");
                    let SmSlot {
                        sm,
                        buf,
                        sink,
                        profiler,
                        completed,
                        active,
                    } = &mut *guard;
                    // Replay the epoch's local trace, pausing at each
                    // deferred memory request's recorded position so
                    // its Mem/ExecSpan events land exactly where the
                    // serial engine emitted them.
                    let events = std::mem::take(&mut sink.events);
                    let mut replayed = 0usize;
                    for p in buf.take_pending() {
                        while (replayed as u64) < p.trace_pos {
                            let r = &events[replayed];
                            tracer.emit_with(r.now, || r.ev.clone());
                            replayed += 1;
                        }
                        sm.resolve_pending(p, &mut memsys, tracer, profiler);
                    }
                    for r in &events[replayed..] {
                        tracer.emit_with(r.now, || r.ev.clone());
                    }
                    buf.apply_writes(&mut gmem);
                    if *completed > 0 {
                        ctas_done += *completed;
                        let _fill_phase = hostprof::phase(hostprof::Phase::CtaLaunch);
                        while next_cta < total_ctas
                            && sm.can_accept_cta(warps_per_cta, kernel.shared_mem_bytes())
                        {
                            sm.launch_cta(
                                kernel,
                                cta_coord(next_cta, launch.grid),
                                launch.grid,
                                launch.block,
                            );
                            next_cta += 1;
                        }
                    }
                    any_activity |= *active;
                }
            }
            if ctas_done >= total_ctas {
                end_now = now + 1;
                return None;
            }
            let new_now = if any_activity {
                now + 1
            } else {
                // Idle: skip ahead to the next pipeline completion or
                // scoreboard release.
                let _idle_phase = hostprof::phase(hostprof::Phase::IdleScan);
                let next_t = slots
                    .iter()
                    .flat_map(|slot| {
                        let sm = &slot.lock().expect("slot lock").sm;
                        sm.next_event()
                            .into_iter()
                            .chain((sm.last_release() > now).then(|| sm.last_release()))
                            .collect::<Vec<_>>()
                    })
                    .min();
                let target = next_t.map_or(now + 1, |t| t.max(now + 1));
                // Mirror the serial engine: attribute the jumped-over
                // cycles so the per-scheduler CPI ledger stays exact.
                let skipped = target - (now + 1);
                if skipped > 0 {
                    for slot in slots {
                        let mut guard = slot.lock().expect("slot lock");
                        guard.sm.charge_idle_skip(skipped);
                    }
                }
                target
            };
            if snapshot_interval > 0 && tracing {
                let boundary = new_now / snapshot_interval * snapshot_interval;
                if boundary > last_snapshot {
                    let _snap_phase = hostprof::phase(hostprof::Phase::Snapshot);
                    last_snapshot = boundary;
                    for (i, slot) in slots.iter().enumerate() {
                        let s = &slot.lock().expect("slot lock").sm.stats;
                        let (issued, scalar) = (s.pipe.issued, s.instr.executed_scalar);
                        let (comp, raw, act) = (s.rf.ours_bytes, s.rf.raw_bytes, s.rf.ours_arrays);
                        tracer.emit_with(boundary, || TraceEvent::Snapshot {
                            sm: i as u32,
                            issued,
                            scalar,
                            rf_bytes_compressed: comp,
                            rf_bytes_uncompressed: raw,
                            rf_activations: act,
                        });
                    }
                }
            }
            if let Some(intervals) = new_now.checked_div(sample_interval) {
                let boundary = intervals * sample_interval;
                if boundary > last_sample {
                    let _snap_phase = hostprof::phase(hostprof::Phase::Snapshot);
                    last_sample = boundary;
                    let mut cum = Stats::default();
                    for (i, slot) in slots.iter().enumerate() {
                        let guard = slot.lock().expect("slot lock");
                        observer.sample_sm(boundary, i, &guard.sm.stats);
                        cum.merge(&guard.sm.stats);
                    }
                    cum.cycles = boundary;
                    observer.sample(boundary, &cum);
                }
            }
            assert!(new_now < WATCHDOG_CYCLES, "simulation watchdog tripped");
            drop(barrier_phase);
            Some(new_now)
        };
        gscalar_pool::run_epochs(threads, cfg.num_sms, 0, work, next);
    }

    let mut stats = Stats::default();
    let mut per_sm: Vec<Stats> = Vec::with_capacity(slots.len());
    for slot in slots {
        let slot = slot.into_inner().expect("workers have exited");
        stats.merge(&slot.sm.stats);
        per_sm.push(slot.sm.stats);
        profiler.absorb(slot.profiler);
    }
    stats.cycles = end_now;
    observer.finish(end_now, &stats, &per_sm);
    stats
}
