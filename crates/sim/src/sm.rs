//! The streaming multiprocessor: per-cycle issue, operand collection,
//! execution, and writeback — with the G-Scalar mechanisms folded in.

use gscalar_compress::regmeta::MetaConfig;
use gscalar_compress::{bdi, bytewise, Encoding, RegFileMeta};
use gscalar_hostprof as hostprof;
use gscalar_isa::{AluOp, Dim3, FuncUnit, Instr, InstrKind, Kernel, Operand, Reg, Space};
use gscalar_profile::{EligClass, Profiler};
use gscalar_trace::{ModeKind, StallReason, TraceEvent, Tracer, UnitKind};

use crate::config::{ArchConfig, GpuConfig};
use crate::exec;
use crate::memory::{GlobalMemory, SharedMemory};
use crate::memsys::MemSystem;
use crate::pipeline::Pipe;
use crate::regfile::{OcEntry, OperandCollectors, ReadReq};
use crate::scheduler::Scheduler;
use crate::scoreboard::Scoreboard;
use crate::stats::{ScalarClass, SchedStats, Stats};
use crate::warp::Warp;

/// How an instruction is executed on its pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// All lanes driven (inactive lanes gated but slots dispatched).
    Vector,
    /// One lane active; one dispatch cycle (Section 4.1).
    Scalar,
    /// One lane per 16-lane chunk (Section 4.3).
    Half,
}

impl ExecMode {
    fn trace_kind(self) -> ModeKind {
        match self {
            ExecMode::Vector => ModeKind::Vector,
            ExecMode::Scalar => ModeKind::Scalar,
            ExecMode::Half => ModeKind::Half,
        }
    }
}

/// Trace-vocabulary view of a functional unit.
fn unit_kind(unit: FuncUnit) -> UnitKind {
    match unit {
        FuncUnit::Alu => UnitKind::Alu,
        FuncUnit::Sfu => UnitKind::Sfu,
        FuncUnit::Mem => UnitKind::Mem,
        FuncUnit::Control => UnitKind::Control,
    }
}

/// Trace-vocabulary encoding tag for compressor decisions — the shared
/// Figure 8 bucket index, so the tag can never drift from the
/// `EncodingHistogram` categories.
fn encoding_tag(enc: Encoding) -> u8 {
    enc.bucket() as u8
}

/// Profiler-vocabulary view of a [`ScalarClass`].
fn elig_class(class: ScalarClass) -> EligClass {
    match class {
        ScalarClass::Vector => EligClass::Vector,
        ScalarClass::Alu => EligClass::Alu,
        ScalarClass::Sfu => EligClass::Sfu,
        ScalarClass::Mem => EligClass::Mem,
        ScalarClass::Half => EligClass::Half,
        ScalarClass::Divergent => EligClass::Divergent,
    }
}

/// Forwards SIMT path-end events (paths popped by the last stack
/// operation) to the profiler's per-branch reconvergence stats.
#[inline]
fn drain_path_events(profiler: &mut Profiler, simt: &crate::simt::SimtStack) {
    if profiler.is_on() {
        for &(origin, rejoined) in simt.path_events() {
            profiler.record_path_end(origin, rejoined);
        }
    }
}

/// Where an SM's global-memory traffic goes during a cycle.
///
/// The serial engine hands the SM direct mutable access to the shared
/// state. The parallel engine (see [`crate::parallel`]) instead hands
/// each SM a read-only snapshot of global memory plus a private
/// [`EpochBuffer`]; the coordinator applies the buffered effects at the
/// epoch barrier in (cycle, sm-id, issue-order) order, which reproduces
/// the serial engine's memory-system access sequence exactly.
#[derive(Debug)]
pub enum MemPort<'a> {
    /// Operate on the shared global memory and memory system in place.
    Direct {
        /// Global memory, read and written at issue time.
        gmem: &'a mut GlobalMemory,
        /// The shared timing hierarchy, accessed at dispatch time.
        memsys: &'a mut MemSystem,
    },
    /// Read the epoch-start snapshot (overlaid with this SM's own
    /// buffered stores) and defer stores and timing accesses.
    Buffered {
        /// Epoch-start snapshot of global memory.
        gmem: &'a GlobalMemory,
        /// This SM's deferred stores and memory-system requests.
        buf: &'a mut EpochBuffer,
    },
}

impl MemPort<'_> {
    /// Reads a `u32`, seeing this SM's own earlier stores (byte-granular
    /// overlay in buffered mode, so overlapping unaligned accesses
    /// behave exactly as under the serial engine).
    fn read_u32(&self, addr: u64) -> u32 {
        match self {
            MemPort::Direct { gmem, .. } => gmem.read_u32(addr),
            MemPort::Buffered { gmem, buf } => {
                let mut bytes = [0u8; 4];
                for (i, b) in bytes.iter_mut().enumerate() {
                    let a = addr + i as u64;
                    *b = buf
                        .writes
                        .get(&a)
                        .copied()
                        .unwrap_or_else(|| gmem.read_u8(a));
                }
                u32::from_le_bytes(bytes)
            }
        }
    }

    /// Writes a `u32` (buffered mode: into the overlay, applied to the
    /// real global memory at the epoch barrier).
    fn write_u32(&mut self, addr: u64, v: u32) {
        match self {
            MemPort::Direct { gmem, .. } => gmem.write_u32(addr, v),
            MemPort::Buffered { buf, .. } => {
                for (i, b) in v.to_le_bytes().iter().enumerate() {
                    buf.writes.insert(addr + i as u64, *b);
                }
            }
        }
    }
}

/// Per-SM buffer of one epoch's deferred global-memory effects
/// (parallel engine only).
#[derive(Debug, Default)]
pub struct EpochBuffer {
    /// Byte-granular store overlay: this SM's stores this epoch.
    writes: std::collections::HashMap<u64, u8>,
    /// Deferred memory-system requests, in issue order.
    pending: Vec<PendingMem>,
}

impl EpochBuffer {
    /// Takes the deferred memory-system requests (issue order).
    pub(crate) fn take_pending(&mut self) -> Vec<PendingMem> {
        std::mem::take(&mut self.pending)
    }

    /// Applies and clears the buffered stores. Distinct byte addresses
    /// commute and duplicates collapse to their final value, so the
    /// map's iteration order cannot be observed in the result.
    pub(crate) fn apply_writes(&mut self, gmem: &mut GlobalMemory) {
        for (a, b) in self.writes.drain() {
            gmem.write_u8(a, b);
        }
    }
}

/// A memory instruction whose [`MemSystem`] access was deferred by a
/// buffered [`MemPort`]; resolved by [`Sm::resolve_pending`] at the
/// epoch barrier.
#[derive(Debug)]
pub(crate) struct PendingMem {
    inst: Inflight,
    now: u64,
    /// Completion floor before memory-system timing (dispatch occupancy
    /// plus the L1 hit latency), exactly as the serial path computes it.
    base_finish: u64,
    /// Trace-sink position at dispatch time, used to splice the
    /// deferred `Mem`/`ExecSpan` events back into serial order.
    pub(crate) trace_pos: u64,
}

/// An instruction in flight between issue and writeback.
#[derive(Debug, Clone)]
struct Inflight {
    warp: usize,
    instr: Instr,
    /// PC the instruction was fetched from (trace labeling).
    pc: usize,
    mask: u64,
    mode: ExecMode,
    unit: FuncUnit,
    /// Bank of the destination register (for writeback port pressure).
    wb_bank: Option<usize>,
    /// Destination write touches only the BVR (scalar write in a
    /// compressed register file).
    wb_bvr_only: bool,
    /// Unique coalesced line addresses (global memory instructions).
    mem_lines: Vec<u64>,
    /// Shared-memory access.
    shared: bool,
    /// Store (no register writeback).
    store: bool,
    /// Extra result latency (decompress-move injection, int division).
    extra_latency: u64,
}

/// State of one resident CTA.
#[derive(Debug)]
struct CtaState {
    warps_total: usize,
    warps_done: usize,
    at_barrier: usize,
    shared: SharedMemory,
}

/// A streaming multiprocessor.
pub struct Sm {
    id: usize,
    cfg: GpuConfig,
    arch: ArchConfig,
    warps: Vec<Option<Warp>>,
    scoreboards: Vec<Scoreboard>,
    schedulers: Vec<Scheduler>,
    oc: OperandCollectors<Inflight>,
    alu_pipes: Vec<Pipe<Inflight>>,
    sfu_pipe: Pipe<Inflight>,
    lsu_pipe: Pipe<Inflight>,
    regmeta: RegFileMeta,
    ctas: Vec<Option<CtaState>>,
    num_regs_per_warp: usize,
    /// Latest scheduled scoreboard release (for idle skipping).
    last_release: u64,
    /// Per-scheduler reason of the most recent stall, used to attribute
    /// idle-skip jumps (see [`Sm::charge_idle_skip`]). A skip only
    /// happens after a cycle in which every scheduler stalled, so the
    /// entry is always fresh when it is read.
    last_stall: Vec<StallReason>,
    /// Statistics local to this SM.
    pub stats: Stats,
}

impl std::fmt::Debug for Sm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sm")
            .field("id", &self.id)
            .field("resident_warps", &self.resident_warps())
            .finish_non_exhaustive()
    }
}

impl Sm {
    /// Creates an SM for one kernel execution.
    #[must_use]
    pub fn new(id: usize, cfg: &GpuConfig, arch: &ArchConfig, num_regs_per_warp: usize) -> Self {
        let max_warps = cfg.warps_per_sm();
        let per_sched = |s: usize| -> Vec<usize> {
            (0..max_warps).filter(|w| w % cfg.schedulers == s).collect()
        };
        Sm {
            id,
            cfg: cfg.clone(),
            arch: arch.clone(),
            warps: (0..max_warps).map(|_| None).collect(),
            scoreboards: (0..max_warps).map(|_| Scoreboard::new()).collect(),
            schedulers: (0..cfg.schedulers)
                .map(|s| Scheduler::new(cfg.sched, per_sched(s)))
                .collect(),
            oc: OperandCollectors::new(cfg.operand_collectors, cfg.rf_banks),
            alu_pipes: (0..cfg.alu_pipes)
                .map(|_| Pipe::new(cfg.simt_width))
                .collect(),
            sfu_pipe: Pipe::new(cfg.sfu_width),
            lsu_pipe: Pipe::new(cfg.simt_width),
            regmeta: RegFileMeta::new(
                cfg.vector_regs_per_sm(),
                MetaConfig::g_scalar(cfg.warp_size),
            ),
            ctas: (0..cfg.ctas_per_sm).map(|_| None).collect(),
            num_regs_per_warp: num_regs_per_warp.max(1),
            last_release: 0,
            last_stall: vec![StallReason::Drained; cfg.schedulers],
            stats: Stats {
                sched: vec![SchedStats::default(); cfg.schedulers],
                ..Stats::default()
            },
        }
    }

    /// Number of resident (running) warps.
    #[must_use]
    pub fn resident_warps(&self) -> usize {
        self.warps.iter().filter(|w| w.is_some()).count()
    }

    /// Whether all resident work has finished and the pipelines drained.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.resident_warps() == 0
            && !self.oc.any_pending()
            && self.alu_pipes.iter().all(|p| p.in_flight() == 0)
            && self.sfu_pipe.in_flight() == 0
            && self.lsu_pipe.in_flight() == 0
    }

    /// Whether a CTA of `warps_needed` warps and `shared_bytes` shared
    /// memory fits right now.
    #[must_use]
    pub fn can_accept_cta(&self, warps_needed: usize, shared_bytes: u32) -> bool {
        if !self.ctas.iter().any(|c| c.is_none()) {
            return false;
        }
        let free_warps = self.warps.iter().filter(|w| w.is_none()).count();
        if free_warps < warps_needed {
            return false;
        }
        // Register budget: every warp slot uses a fixed window.
        let needed_regs = (self.resident_warps() + warps_needed) * self.num_regs_per_warp;
        if needed_regs > self.cfg.vector_regs_per_sm() {
            return false;
        }
        let used_shared: u32 = self
            .ctas
            .iter()
            .flatten()
            .map(|c| c.shared.len() as u32)
            .sum();
        used_shared + shared_bytes <= self.cfg.shared_mem_per_sm
    }

    /// Launches a CTA. `cta` is its grid coordinate, `launch` the
    /// launch configuration.
    ///
    /// # Panics
    ///
    /// Panics if the CTA does not fit; call
    /// [`Sm::can_accept_cta`] first.
    pub fn launch_cta(&mut self, kernel: &Kernel, cta: Dim3, grid: Dim3, block: Dim3) {
        let threads = (block.count()).max(1) as usize;
        let warps_needed = threads.div_ceil(self.cfg.warp_size);
        assert!(
            self.can_accept_cta(warps_needed, kernel.shared_mem_bytes()),
            "CTA does not fit on SM {}",
            self.id
        );
        let slot = self
            .ctas
            .iter()
            .position(|c| c.is_none())
            .expect("checked by can_accept_cta");
        self.ctas[slot] = Some(CtaState {
            warps_total: warps_needed,
            warps_done: 0,
            at_barrier: 0,
            shared: SharedMemory::new(kernel.shared_mem_bytes()),
        });
        let mut remaining = threads;
        let mut tid_base = 0u32;
        for _ in 0..warps_needed {
            let in_warp = remaining.min(self.cfg.warp_size);
            let w = self
                .warps
                .iter()
                .position(|w| w.is_none())
                .expect("checked by can_accept_cta");
            self.warps[w] = Some(Warp::new(
                w,
                slot,
                self.cfg.warp_size,
                in_warp,
                kernel.num_regs() as usize,
                tid_base,
                cta,
                block,
                grid,
            ));
            self.scoreboards[w] = Scoreboard::new();
            remaining -= in_warp;
            tid_base += in_warp as u32;
        }
    }

    /// Physical vector-register index of `(warp, reg)`.
    fn phys_reg(&self, warp: usize, reg: Reg) -> usize {
        warp * self.num_regs_per_warp + reg.index() as usize
    }

    fn bank_of(&self, phys: usize) -> usize {
        phys % self.cfg.rf_banks
    }

    /// Runs one SM cycle against the shared memory state in place (the
    /// serial engine's entry point). Returns the number of CTAs that
    /// completed this cycle (the GPU replenishes them).
    pub fn cycle(
        &mut self,
        now: u64,
        kernel: &Kernel,
        gmem: &mut GlobalMemory,
        memsys: &mut MemSystem,
        tracer: &mut Tracer<'_>,
        profiler: &mut Profiler,
    ) -> usize {
        self.cycle_port(
            now,
            kernel,
            &mut MemPort::Direct { gmem, memsys },
            tracer,
            profiler,
        )
    }

    /// Runs one SM cycle against an arbitrary [`MemPort`]. With a
    /// buffered port the cycle touches no shared state: stores land in
    /// the buffer's overlay and memory-system requests are deferred for
    /// `Sm::resolve_pending` at the epoch barrier.
    pub fn cycle_port(
        &mut self,
        now: u64,
        kernel: &Kernel,
        port: &mut MemPort<'_>,
        tracer: &mut Tracer<'_>,
        profiler: &mut Profiler,
    ) -> usize {
        // 1. Writeback.
        let wb_phase = hostprof::phase(hostprof::Phase::Writeback);
        let mut finished: Vec<Inflight> = Vec::new();
        for p in &mut self.alu_pipes {
            finished.append(&mut p.drain_finished(now));
        }
        finished.append(&mut self.sfu_pipe.drain_finished(now));
        finished.append(&mut self.lsu_pipe.drain_finished(now));
        let mut write_banks: Vec<usize> = Vec::new();
        for f in &finished {
            if let (Some(b), false) = (f.wb_bank, f.wb_bvr_only) {
                write_banks.push(b);
            }
            let release = now + self.arch.extra_latency;
            self.scoreboards[f.warp].release_at(&f.instr, release);
            self.last_release = self.last_release.max(release);
        }
        drop(wb_phase);

        // 2. Operand collection.
        let oc_phase = hostprof::phase(hostprof::Phase::OperandCollect);
        let arb = self.oc.arbitrate(&write_banks);
        self.stats.pipe.bank_conflict_cycles += arb.data_conflicts;
        self.stats.pipe.scalar_bank_serializations += arb.scalar_serializations;
        self.stats.pipe.bvr_conflict_cycles += arb.bvr_conflicts;
        let rf_conflict = arb.any_conflict();
        drop(oc_phase);

        // 3. Dispatch ready instructions to pipelines, gated by each
        // pipe's dispatch port (structural backpressure: entries that
        // find no port stay in their operand collector).
        let dispatch_phase = hostprof::phase(hostprof::Phase::Dispatch);
        let mut alu_free = self
            .alu_pipes
            .iter()
            .filter(|p| p.can_dispatch(now))
            .count();
        let mut sfu_free = usize::from(self.sfu_pipe.can_dispatch(now));
        let mut lsu_free = usize::from(self.lsu_pipe.can_dispatch(now));
        let ready = self.oc.take_ready_when(|inst| {
            let slot = match inst.unit {
                FuncUnit::Alu => &mut alu_free,
                FuncUnit::Sfu => &mut sfu_free,
                FuncUnit::Mem => &mut lsu_free,
                FuncUnit::Control => return true,
            };
            if *slot > 0 {
                *slot -= 1;
                true
            } else {
                false
            }
        });
        for inst in ready {
            self.dispatch(inst, now, port, tracer, profiler);
        }
        drop(dispatch_phase);

        // 4. Issue from each scheduler.
        {
            let _sched_phase = hostprof::phase(hostprof::Phase::Scheduler);
            for w in 0..self.warps.len() {
                if self.warps[w].is_some() {
                    self.scoreboards[w].expire(now);
                }
            }
        }
        let mut completed_ctas = 0;
        for s in 0..self.schedulers.len() {
            completed_ctas += self.issue_one(s, now, kernel, port, rf_conflict, tracer, profiler);
        }
        completed_ctas
    }

    /// Resolves one deferred memory request at the epoch barrier,
    /// replaying exactly what the serial dispatch path would have done
    /// at the same point in the memory-system access order: the timed
    /// (and traced) per-line accesses, the latency attribution, the
    /// `ExecSpan` event, and the LSU completion.
    pub(crate) fn resolve_pending(
        &mut self,
        p: PendingMem,
        memsys: &mut MemSystem,
        tracer: &mut Tracer<'_>,
        profiler: &mut Profiler,
    ) {
        let PendingMem {
            inst,
            now,
            base_finish,
            trace_pos: _,
        } = p;
        let mut finish = base_finish;
        {
            let _mem_phase = hostprof::phase(hostprof::Phase::Memsys);
            for &line in &inst.mem_lines {
                let t = memsys.access_traced(
                    self.id,
                    line,
                    inst.store,
                    now,
                    &mut self.stats.mem,
                    tracer,
                );
                finish = finish.max(t);
            }
        }
        profiler.record_latency(inst.pc, finish.saturating_sub(now));
        let sm_id = self.id as u32;
        tracer.emit_with(now, || TraceEvent::ExecSpan {
            sm: sm_id,
            warp: inst.warp as u32,
            pc: inst.pc as u32,
            unit: unit_kind(inst.unit),
            mode: inst.mode.trace_kind(),
            end: finish,
        });
        self.lsu_pipe.complete_at(finish, inst);
    }

    /// Earliest future event on this SM (pipe completion or scoreboard
    /// release), for idle-cycle skipping.
    #[must_use]
    pub fn next_event(&self) -> Option<u64> {
        let mut t = self
            .alu_pipes
            .iter()
            .filter_map(Pipe::next_completion)
            .min();
        for c in [
            self.sfu_pipe.next_completion(),
            self.lsu_pipe.next_completion(),
        ] {
            t = match (t, c) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        }
        t
    }

    /// The latest scheduled scoreboard release time.
    #[must_use]
    pub fn last_release(&self) -> u64 {
        self.last_release
    }

    /// Whether any operand collector is occupied (issue progress is
    /// possible without new events).
    #[must_use]
    pub fn collectors_pending(&self) -> bool {
        self.oc.any_pending()
    }

    /// Charges `skipped` cycles jumped over by the engines' idle-skip
    /// fast path to each scheduler's most recent stall reason, keeping
    /// the per-scheduler ledger exact:
    /// `issued + stalls.total() + skipped.total() == cycles`.
    ///
    /// The skipped slots land in [`SchedStats::skipped`], *not* in
    /// `PipeStats::stalls`, so the cycle-by-cycle invariant
    /// `stalls.total() == scheduler_idle_cycles` is preserved.
    pub fn charge_idle_skip(&mut self, skipped: u64) {
        if skipped == 0 {
            return;
        }
        for (sc, &reason) in self.stats.sched.iter_mut().zip(self.last_stall.iter()) {
            sc.skipped.add_n(reason, skipped);
        }
    }

    // ---- issue ---------------------------------------------------------

    /// Attempts one issue from scheduler `s`. Returns completed CTAs.
    #[allow(clippy::too_many_arguments)]
    fn issue_one(
        &mut self,
        s: usize,
        now: u64,
        kernel: &Kernel,
        port: &mut MemPort<'_>,
        rf_conflict: bool,
        tracer: &mut Tracer<'_>,
        profiler: &mut Profiler,
    ) -> usize {
        let oc_free = self.oc.free_slots() > 0;
        let warps = &self.warps;
        let scoreboards = &self.scoreboards;
        // Warp pick and (on a miss) stall classification are the
        // scheduler's host cost; the issued path hands off to Execute.
        let sched_phase = hostprof::phase(hostprof::Phase::Scheduler);
        let picked = self.schedulers[s].pick(|w| {
            let Some(warp) = warps[w].as_ref() else {
                return false;
            };
            if warp.is_done() || warp.at_barrier {
                return false;
            }
            let instr = kernel.instr(warp.simt.pc());
            if !scoreboards[w].can_issue(instr, now) {
                return false;
            }
            // Non-control instructions need a collector slot.
            instr.func_unit() == FuncUnit::Control || oc_free
        });
        let Some(w) = picked else {
            let (reason, culprit) = self.classify_stall(s, now, kernel, rf_conflict);
            self.stats.pipe.scheduler_idle_cycles += 1;
            self.stats.pipe.stalls.add(reason);
            self.stats.sched[s].stalls.add(reason);
            self.last_stall[s] = reason;
            if profiler.is_on() {
                // Charge the idle cycle to the instruction at the head
                // of the culprit warp; drained cycles have no culprit
                // and land in the profile's unattributed pool.
                let pc = culprit
                    .and_then(|cw| self.warps[cw as usize].as_ref())
                    .map(|warp| warp.simt.pc());
                profiler.record_stall(pc, reason);
            }
            let sm = self.id as u32;
            tracer.emit_with(now, || TraceEvent::Stall {
                sm,
                sched: s as u32,
                warp: culprit,
                reason,
            });
            return 0;
        };
        drop(sched_phase);
        self.stats.pipe.issued += 1;
        self.stats.sched[s].issued += 1;
        let _exec_phase = hostprof::phase(hostprof::Phase::Execute);
        self.execute_instruction(w, s, now, kernel, port, tracer, profiler)
    }

    /// Classifies why scheduler `s` issued nothing this cycle, charging
    /// exactly one [`StallReason`] so the breakdown sums to
    /// `scheduler_idle_cycles`. Returns the reason and, when one warp
    /// epitomizes it, that warp's slot index.
    ///
    /// Per-warp causes aggregate with back-of-pipe causes first — a
    /// warp held up by collector/bank pressure points at a structural
    /// bottleneck even if its siblings also wait on memory:
    /// collector-full (refined to bank-conflict when this cycle's
    /// arbitration lost reads) > memory pending > scoreboard > barrier
    /// > drained.
    fn classify_stall(
        &self,
        s: usize,
        now: u64,
        kernel: &Kernel,
        rf_conflict: bool,
    ) -> (StallReason, Option<u32>) {
        let mut barrier: Option<u32> = None;
        let mut mem: Option<u32> = None;
        let mut data: Option<u32> = None;
        let mut no_collector: Option<u32> = None;
        for &w in self.schedulers[s].warps() {
            let Some(warp) = self.warps[w].as_ref() else {
                continue;
            };
            if warp.is_done() {
                continue;
            }
            if warp.at_barrier {
                barrier.get_or_insert(w as u32);
                continue;
            }
            let instr = kernel.instr(warp.simt.pc());
            match self.scoreboards[w].blocking_is_mem(instr, now) {
                Some(true) => {
                    mem.get_or_insert(w as u32);
                }
                Some(false) => {
                    data.get_or_insert(w as u32);
                }
                // Issuable by scoreboard rules, so only the collector
                // gate can have blocked it (control instructions never
                // reach here: the scheduler would have picked them).
                None => {
                    no_collector.get_or_insert(w as u32);
                }
            }
        }
        if let Some(w) = no_collector {
            let reason = if rf_conflict {
                StallReason::RfBankConflict
            } else {
                StallReason::NoCollector
            };
            (reason, Some(w))
        } else if let Some(w) = mem {
            (StallReason::MemPending, Some(w))
        } else if let Some(w) = data {
            (StallReason::Scoreboard, Some(w))
        } else if let Some(w) = barrier {
            (StallReason::Barrier, Some(w))
        } else {
            (StallReason::Drained, None)
        }
    }

    /// Issues (and functionally executes) the instruction at warp `w`'s
    /// PC, picked by scheduler `s`. Returns completed CTAs.
    #[allow(clippy::too_many_arguments)]
    fn execute_instruction(
        &mut self,
        w: usize,
        s: usize,
        now: u64,
        kernel: &Kernel,
        port: &mut MemPort<'_>,
        tracer: &mut Tracer<'_>,
        profiler: &mut Profiler,
    ) -> usize {
        let pc = self.warps[w]
            .as_ref()
            .expect("picked warp exists")
            .simt
            .pc();
        let instr = *kernel.instr(pc);
        let warp = self.warps[w].as_mut().expect("picked warp exists");
        let path_mask = warp.simt.active();
        // Guard predication narrows the executing mask.
        let guard_mask = if instr.guard.is_always() {
            u64::MAX
        } else {
            let p = warp.pred(instr.guard.pred);
            if instr.guard.negate {
                !p
            } else {
                p
            }
        };
        let mask = path_mask & guard_mask;
        let divergent = mask != warp.thread_mask;

        let lanes = mask.count_ones();
        self.stats.instr.warp_instrs += 1;
        self.stats.instr.thread_instrs += u64::from(lanes);
        if divergent {
            self.stats.instr.divergent_instrs += 1;
        }
        profiler.record_issue(pc, lanes, divergent);
        match instr.func_unit() {
            FuncUnit::Alu => self.stats.instr.alu_instrs += 1,
            FuncUnit::Sfu => self.stats.instr.sfu_instrs += 1,
            FuncUnit::Mem => self.stats.instr.mem_instrs += 1,
            FuncUnit::Control => self.stats.instr.ctrl_instrs += 1,
        }

        let sm_id = self.id as u32;
        tracer.emit_with(now, || TraceEvent::Issue {
            sm: sm_id,
            sched: s as u32,
            warp: w as u32,
            pc: pc as u32,
            unit: unit_kind(instr.func_unit()),
            // The vector/scalar decision for non-control instructions
            // is refined by a later ExecSpan event.
            mode: ModeKind::Vector,
            mask,
        });

        // Control flow resolves at issue. The SIMT-stack arms below all
        // return, so the guard covers exactly the control-flow work
        // (`None` on the fall-through path for other units).
        let simt_phase = matches!(
            instr.kind,
            InstrKind::Bra { .. } | InstrKind::Exit | InstrKind::Bar | InstrKind::Nop
        )
        .then(|| hostprof::phase(hostprof::Phase::Simt));
        match instr.kind {
            InstrKind::Bra { target } => {
                let reconv = kernel.reconvergence_pc(pc);
                // What-if idealization: uniform branches. When any lane
                // takes the branch the whole active path follows it, so
                // the SIMT stack never splits. This changes functional
                // execution (see `IdealConfig::uniform_branches`); loops
                // still terminate because their exit condition is
                // "no lane takes the back-edge", which forced-uniform
                // execution reaches once every lane's trip count drains.
                let bra_mask = if self.cfg.ideal.uniform_branches && mask != 0 {
                    path_mask
                } else {
                    mask
                };
                let depth_before = warp.simt.depth();
                let diverged = warp.simt.branch(bra_mask, target, pc + 1, reconv);
                profiler.record_branch(pc, diverged, lanes, (path_mask & !bra_mask).count_ones());
                drain_path_events(profiler, &warp.simt);
                if tracer.is_on() && !warp.simt.is_done() {
                    let depth = warp.simt.depth() as u32;
                    let next_pc = warp.simt.pc() as u32;
                    if diverged {
                        let taken = bra_mask;
                        let not_taken = path_mask & !bra_mask;
                        tracer.emit_with(now, || TraceEvent::SimtPush {
                            sm: sm_id,
                            warp: w as u32,
                            pc: pc as u32,
                            taken,
                            not_taken,
                            depth,
                        });
                    } else if (depth as usize) < depth_before {
                        tracer.emit_with(now, || TraceEvent::SimtPop {
                            sm: sm_id,
                            warp: w as u32,
                            pc: next_pc,
                            depth,
                        });
                    }
                }
                return 0;
            }
            InstrKind::Exit => {
                let depth_before = warp.simt.depth();
                warp.simt.exit();
                drain_path_events(profiler, &warp.simt);
                if tracer.is_on() && !warp.simt.is_done() {
                    let depth = warp.simt.depth() as u32;
                    let next_pc = warp.simt.pc() as u32;
                    if (depth as usize) < depth_before {
                        tracer.emit_with(now, || TraceEvent::SimtPop {
                            sm: sm_id,
                            warp: w as u32,
                            pc: next_pc,
                            depth,
                        });
                    }
                }
                if warp.is_done() {
                    return self.retire_warp(w);
                }
                return 0;
            }
            InstrKind::Bar => {
                warp.simt.advance(pc + 1);
                drain_path_events(profiler, &warp.simt);
                warp.at_barrier = true;
                let slot = warp.cta_slot;
                let cta = self.ctas[slot].as_mut().expect("warp's CTA is resident");
                cta.at_barrier += 1;
                if cta.at_barrier >= cta.warps_total - cta.warps_done {
                    cta.at_barrier = 0;
                    for other in self.warps.iter_mut().flatten() {
                        if other.cta_slot == slot {
                            other.at_barrier = false;
                        }
                    }
                }
                return 0;
            }
            InstrKind::Nop => {
                warp.simt.advance(pc + 1);
                drain_path_events(profiler, &warp.simt);
                return 0;
            }
            _ => {}
        }
        drop(simt_phase);

        if mask == 0 {
            // Fully predicated-off: consumes the issue slot only.
            let warp = self.warps[w].as_mut().expect("picked warp exists");
            warp.simt.advance(pc + 1);
            drain_path_events(profiler, &warp.simt);
            return 0;
        }

        // ---- operand gathering + classification ----
        // Register reads run the compression machinery (regmeta, the
        // byte-wise/BDI comparison chains): Compressor host time.
        let compress_phase = hostprof::phase(hostprof::Phase::Compressor);
        let ws = self.cfg.warp_size;
        let src_regs = instr.src_regs();
        let mut all_scalar = !matches!(instr.kind, InstrKind::S2R { .. });
        let mut all_chunk_scalar = all_scalar;
        let mut reads: Vec<ReadReq> = Vec::new();
        for &r in &src_regs {
            let phys = self.phys_reg(w, r);
            let info = self.regmeta.read(phys, mask);
            let d_stored = self.regmeta.meta(phys).d;
            // Figure 8 histogram + scheme-independent energy accounting.
            self.record_rf_read(w, r, &info, divergent, d_stored);
            if !info.scalar {
                all_scalar = false;
            }
            let chunk_ok = if d_stored {
                false
            } else if info.chunk_scalar.is_empty() {
                info.scalar
            } else {
                info.chunk_scalar.iter().all(|&c| c)
            };
            if !chunk_ok {
                all_chunk_scalar = false;
            }
            // Port selection for the timing model.
            reads.push(self.read_port_for(phys, info.scalar, d_stored));
        }
        if let InstrKind::S2R { sreg, .. } = instr.kind {
            if Warp::sreg_uniform(sreg) {
                all_scalar = true;
                all_chunk_scalar = true;
            }
        }
        drop(compress_phase);

        let unit = instr.func_unit();
        let class = if divergent {
            // `ReadInfo::scalar` already encodes Section 4.2's rule: a
            // D-stored source is scalar only when its recorded mask
            // matches this instruction's mask.
            if all_scalar {
                ScalarClass::Divergent
            } else {
                ScalarClass::Vector
            }
        } else if all_scalar {
            match unit {
                FuncUnit::Alu => ScalarClass::Alu,
                FuncUnit::Sfu => ScalarClass::Sfu,
                FuncUnit::Mem => ScalarClass::Mem,
                FuncUnit::Control => ScalarClass::Vector,
            }
        } else if all_chunk_scalar {
            ScalarClass::Half
        } else {
            ScalarClass::Vector
        };
        self.stats.instr.record_class(class);
        profiler.record_class(pc, elig_class(class));

        let mode = match class {
            ScalarClass::Alu if self.arch.scalar_alu => ExecMode::Scalar,
            ScalarClass::Sfu if self.arch.scalar_sfu => ExecMode::Scalar,
            ScalarClass::Mem if self.arch.scalar_mem => ExecMode::Scalar,
            ScalarClass::Half if self.arch.scalar_half => ExecMode::Half,
            ScalarClass::Divergent if self.arch.scalar_divergent => ExecMode::Scalar,
            _ => ExecMode::Vector,
        };
        match mode {
            ExecMode::Scalar => self.stats.instr.executed_scalar += 1,
            ExecMode::Half => self.stats.instr.executed_half += 1,
            ExecMode::Vector => {}
        }

        // ---- functional execution ----
        let warp = self.warps[w].as_mut().expect("picked warp exists");
        let resolve = |warp: &Warp, op: Operand, lane: usize| -> u32 {
            match op {
                Operand::Reg(r) if r.is_zero() => 0,
                Operand::Reg(r) => warp.reg(r.index())[lane],
                Operand::Imm(v) => v,
            }
        };
        let mut result: Option<(Reg, Vec<u32>)> = None;
        let mut mem_lines: Vec<u64> = Vec::new();
        let mut shared_access = false;
        let mut store = false;
        let mut extra_latency = 0u64;
        match instr.kind {
            InstrKind::Alu { op, dst, a, b, c } => {
                let mut vals = warp.reg_snapshot_or_zero(dst);
                for (lane, v) in vals.iter_mut().enumerate() {
                    if mask & (1 << lane) != 0 {
                        *v = exec::eval_alu(
                            op,
                            resolve(warp, a, lane),
                            resolve(warp, b, lane),
                            resolve(warp, c, lane),
                        );
                    }
                }
                if op == AluOp::IDiv {
                    extra_latency = self.cfg.lat.int_div - self.cfg.lat.int_alu;
                }
                result = Some((dst, vals));
            }
            InstrKind::Sfu { op, dst, a } => {
                let mut vals = warp.reg_snapshot_or_zero(dst);
                for (lane, v) in vals.iter_mut().enumerate() {
                    if mask & (1 << lane) != 0 {
                        *v = exec::eval_sfu(op, resolve(warp, a, lane));
                    }
                }
                result = Some((dst, vals));
            }
            InstrKind::Mov { dst, src } => {
                let mut vals = warp.reg_snapshot_or_zero(dst);
                for (lane, v) in vals.iter_mut().enumerate() {
                    if mask & (1 << lane) != 0 {
                        *v = resolve(warp, src, lane);
                    }
                }
                result = Some((dst, vals));
            }
            InstrKind::S2R { dst, sreg } => {
                let mut vals = warp.reg_snapshot_or_zero(dst);
                for (lane, v) in vals.iter_mut().enumerate() {
                    if mask & (1 << lane) != 0 {
                        *v = warp.sreg_value(sreg, lane, ws);
                    }
                }
                result = Some((dst, vals));
            }
            InstrKind::SetP {
                cmp,
                float,
                dst,
                a,
                b,
            } => {
                let mut bits = 0u64;
                for lane in 0..ws {
                    if mask & (1 << lane) != 0
                        && exec::eval_cmp(
                            cmp,
                            float,
                            resolve(warp, a, lane),
                            resolve(warp, b, lane),
                        )
                    {
                        bits |= 1 << lane;
                    }
                }
                warp.write_pred(dst, bits, mask);
            }
            InstrKind::Ld {
                space,
                dst,
                addr,
                offset,
            } => {
                let mut vals = warp.reg_snapshot_or_zero(dst);
                let slot = warp.cta_slot;
                match space {
                    Space::Global => {
                        for (lane, v) in vals.iter_mut().enumerate() {
                            if mask & (1 << lane) != 0 {
                                let a = lane_addr(warp, addr, offset, lane);
                                *v = port.read_u32(a);
                                push_line(&mut mem_lines, a, self.cfg.line_bytes as u64);
                            }
                        }
                    }
                    Space::Shared => {
                        shared_access = true;
                        let shared = &self.ctas[slot].as_ref().expect("CTA resident").shared;
                        for (lane, v) in vals.iter_mut().enumerate() {
                            if mask & (1 << lane) != 0 {
                                let a = lane_addr(warp, addr, offset, lane) as u32;
                                *v = shared.read_u32(a);
                            }
                        }
                    }
                }
                result = Some((dst, vals));
            }
            InstrKind::St {
                space,
                src,
                addr,
                offset,
            } => {
                store = true;
                let slot = warp.cta_slot;
                match space {
                    Space::Global => {
                        for lane in 0..ws {
                            if mask & (1 << lane) != 0 {
                                let a = lane_addr(warp, addr, offset, lane);
                                port.write_u32(a, warp.reg(src.index())[lane]);
                                push_line(&mut mem_lines, a, self.cfg.line_bytes as u64);
                            }
                        }
                    }
                    Space::Shared => {
                        shared_access = true;
                        let values: Vec<(u32, u32)> = (0..ws)
                            .filter(|lane| mask & (1 << lane) != 0)
                            .map(|lane| {
                                (
                                    lane_addr(warp, addr, offset, lane) as u32,
                                    warp.reg(src.index())[lane],
                                )
                            })
                            .collect();
                        let shared = &mut self.ctas[slot].as_mut().expect("CTA resident").shared;
                        for (a, v) in values {
                            shared.write_u32(a, v);
                        }
                    }
                }
            }
            InstrKind::Bra { .. } | InstrKind::Bar | InstrKind::Exit | InstrKind::Nop => {
                unreachable!("control handled above")
            }
        }

        // Commit the register result functionally and through the
        // compression metadata.
        let commit_phase = hostprof::phase(hostprof::Phase::Compressor);
        let mut wb_bank = None;
        let mut wb_bvr_only = false;
        if let Some((dst, vals)) = &result {
            if !dst.is_zero() {
                let warp_mut = self.warps[w].as_mut().expect("picked warp exists");
                warp_mut.write_reg(dst.index(), vals, mask);
                let full_vals = warp_mut.reg_snapshot(dst.index());
                let phys = self.phys_reg(w, *dst);
                let winfo = self.regmeta.write(phys, &full_vals, mask);
                wb_bank = Some(self.bank_of(phys));
                wb_bvr_only = winfo.stored == Encoding::Scalar && !winfo.divergent;
                let warp_size = self.cfg.warp_size;
                tracer.emit_with(now, || TraceEvent::CompressWrite {
                    sm: sm_id,
                    warp: w as u32,
                    reg: u32::from(dst.index()),
                    encoding: encoding_tag(winfo.enc),
                    bytes: winfo.enc.compressed_bytes(warp_size) as u32,
                    uniform: winfo.enc.is_scalar(),
                });
                if winfo.decompress_move {
                    // Section 3.3: the compiler-assisted variant elides
                    // the move when the destination's previous value is
                    // provably dead.
                    let assisted =
                        self.arch.compiler_assisted_moves && !kernel.value_live_after(pc, *dst);
                    tracer.emit_with(now, || TraceEvent::Decompress {
                        sm: sm_id,
                        warp: w as u32,
                        pc: pc as u32,
                        assisted,
                    });
                    if assisted {
                        self.stats.instr.decompress_moves_elided += 1;
                    } else {
                        self.stats.instr.decompress_moves += 1;
                        // The injected move reads+writes the full register.
                        let total = self.cfg.arrays_per_bank() as u64;
                        self.stats.rf.ours_arrays += 2 * total;
                        self.stats.rf.ours_bvr += 2;
                        extra_latency += 2;
                    }
                }
                self.record_rf_write(&winfo, &full_vals, mask, divergent);
                profiler.record_write(
                    pc,
                    encoding_tag(winfo.enc),
                    (self.cfg.warp_size * 4) as u64,
                    winfo.enc.compressed_bytes(self.cfg.warp_size) as u64,
                    divergent,
                );
            }
        }
        drop(commit_phase);

        // Advance the PC past this instruction.
        let warp = self.warps[w].as_mut().expect("picked warp exists");
        warp.simt.advance(pc + 1);
        drain_path_events(profiler, &warp.simt);
        self.scoreboards[w].reserve(&instr);

        // Exec-unit energy accounting.
        self.account_exec(&instr, mask, mode);

        // Queue into an operand collector.
        self.stats.pipe.oc_allocs += 1;
        self.oc.insert(OcEntry {
            payload: Inflight {
                warp: w,
                instr,
                pc,
                mask,
                mode,
                unit,
                wb_bank,
                wb_bvr_only,
                mem_lines,
                shared: shared_access,
                store,
                extra_latency,
            },
            reads,
        });
        0
    }

    fn read_port_for(&self, phys: usize, scalar: bool, d_stored: bool) -> ReadReq {
        let bank = self.bank_of(phys);
        if scalar && !d_stored {
            if self.arch.dedicated_scalar_rf {
                return ReadReq::scalar_rf();
            }
            if self.arch.compression {
                return ReadReq::bvr(bank);
            }
        }
        ReadReq::data(bank)
    }

    fn record_rf_read(
        &mut self,
        w: usize,
        r: Reg,
        info: &gscalar_compress::ReadInfo,
        divergent_access: bool,
        d_stored: bool,
    ) {
        let total = self.cfg.arrays_per_bank() as u64;
        let s = &mut self.stats.rf;
        s.reads += 1;
        s.baseline_arrays += total;
        s.ours_arrays += info.arrays_read as u64;
        s.ours_bvr += u64::from(info.bvr_read);
        s.xbar_bytes_baseline += (self.cfg.warp_size * 4) as u64;
        s.xbar_bytes_ours += (info.arrays_read * 16) as u64 + u64::from(info.bvr_read) * 4;
        if info.arrays_read < self.cfg.arrays_per_bank() {
            s.decompressor_ops += 1;
        }
        if info.scalar && !d_stored {
            s.scalar_rf_small += 1;
        } else {
            s.scalar_rf_arrays += total;
        }
        // BDI (W-C) comparison: compress the current contents.
        let warp = self.warps[w].as_ref().expect("reading warp exists");
        let vals = warp.reg(r.index());
        let bdi_res = bdi::compress(vals);
        s.bdi_arrays += bdi_res.arrays_active(16) as u64;
        // Figure 8 classification.
        if divergent_access {
            s.histogram.record_divergent();
        } else {
            let enc = bytewise::encode(vals, crate::full_mask(self.cfg.warp_size));
            s.histogram.record(enc);
        }
    }

    fn record_rf_write(
        &mut self,
        winfo: &gscalar_compress::WriteInfo,
        vals: &[u32],
        mask: u64,
        divergent: bool,
    ) {
        let total = self.cfg.arrays_per_bank() as u64;
        let s = &mut self.stats.rf;
        s.writes += 1;
        s.baseline_arrays += if divergent {
            self.regmeta.baseline_arrays_for_mask(mask) as u64
        } else {
            total
        };
        s.ours_arrays += winfo.arrays_written as u64;
        s.ours_bvr += u64::from(winfo.bvr_written);
        s.compressor_ops += 1;
        s.xbar_bytes_baseline += (self.cfg.warp_size * 4) as u64;
        s.xbar_bytes_ours += (winfo.arrays_written * 16) as u64 + 4;
        if winfo.enc.is_scalar() && !divergent {
            s.scalar_rf_small += 1;
        } else if divergent {
            s.scalar_rf_arrays += self.regmeta.baseline_arrays_for_mask(mask) as u64;
        } else {
            s.scalar_rf_arrays += total;
        }
        let bdi_res = bdi::compress(vals);
        s.bdi_arrays += bdi_res.arrays_active(16) as u64;
        if divergent {
            s.histogram.record_divergent();
        } else {
            s.histogram.record(winfo.enc);
            s.raw_bytes += (self.cfg.warp_size * 4) as u64;
            s.ours_bytes += winfo.enc.compressed_bytes(self.cfg.warp_size) as u64;
            s.bdi_bytes += bdi_res.bytes as u64;
        }
    }

    fn account_exec(&mut self, instr: &Instr, mask: u64, mode: ExecMode) {
        let active = mask.count_ones() as u64;
        let lanes_driven = match mode {
            ExecMode::Vector => active,
            ExecMode::Scalar => 1,
            ExecMode::Half => (self.cfg.warp_size / gscalar_compress::CHUNK_LANES) as u64,
        };
        let saved = active.saturating_sub(lanes_driven);
        let e = &mut self.stats.exec;
        match instr.kind {
            InstrKind::Sfu { .. } => {
                e.sfu_lane_ops += lanes_driven;
                e.sfu_lane_ops_saved += saved;
            }
            InstrKind::Alu { op, .. } if op.is_float() => {
                e.fp_lane_ops += lanes_driven;
                e.fp_lane_ops_saved += saved;
            }
            _ => {
                e.int_lane_ops += lanes_driven;
                e.int_lane_ops_saved += saved;
            }
        }
    }

    // ---- dispatch ------------------------------------------------------

    fn dispatch(
        &mut self,
        inst: Inflight,
        now: u64,
        port: &mut MemPort<'_>,
        tracer: &mut Tracer<'_>,
        profiler: &mut Profiler,
    ) {
        let threads = self.cfg.warp_size;
        let sm_id = self.id as u32;
        let span = |inst: &Inflight, end: u64| TraceEvent::ExecSpan {
            sm: sm_id,
            warp: inst.warp as u32,
            pc: inst.pc as u32,
            unit: unit_kind(inst.unit),
            mode: inst.mode.trace_kind(),
            end,
        };
        // The paper's design clock-gates lanes during scalar execution
        // but dispatches over the normal number of cycles; the optional
        // fast-dispatch mode models the Section 6 one-cycle opportunity.
        let fast = self.arch.scalar_fast_dispatch && inst.mode != ExecMode::Vector;
        match inst.unit {
            FuncUnit::Alu => {
                let occupancy = if fast {
                    1
                } else {
                    self.alu_pipes[0].occupancy(threads)
                };
                let latency = self.alu_latency(&inst.instr) + inst.extra_latency;
                profiler.record_latency(inst.pc, occupancy.max(1) + latency);
                tracer.emit_with(now, || span(&inst, now + occupancy.max(1) + latency));
                let pipe = self
                    .alu_pipes
                    .iter_mut()
                    .find(|p| p.can_dispatch(now))
                    .expect("dispatch gated on a free ALU port");
                pipe.dispatch(now, occupancy, latency, inst);
            }
            FuncUnit::Sfu => {
                let occupancy = if fast {
                    1
                } else {
                    self.sfu_pipe.occupancy(threads)
                };
                // What-if idealization: a zero-latency SFU still occupies
                // its dispatch port but completes in a single cycle.
                let latency = if self.cfg.ideal.zero_latency_sfu {
                    1
                } else {
                    self.cfg.lat.sfu + inst.extra_latency
                };
                profiler.record_latency(inst.pc, occupancy.max(1) + latency);
                tracer.emit_with(now, || span(&inst, now + occupancy.max(1) + latency));
                self.sfu_pipe.dispatch(now, occupancy, latency, inst);
            }
            FuncUnit::Mem => {
                // The LSU only processes active lanes (divergent memory
                // accesses dispatch in fewer beats).
                let occupancy = if fast {
                    1
                } else {
                    self.lsu_pipe
                        .occupancy((inst.mask.count_ones() as usize).max(1))
                };
                self.lsu_pipe.reserve_dispatch(now, occupancy);
                let mut finish = now + occupancy + self.cfg.lat.l1_hit;
                if inst.shared {
                    finish = now + occupancy + self.cfg.lat.shared_mem;
                    self.stats.mem.shared_accesses += 1;
                } else {
                    if inst.mem_lines.len() == 1 {
                        self.stats.mem.fully_coalesced += 1;
                    }
                    match port {
                        MemPort::Direct { memsys, .. } => {
                            let _mem_phase = hostprof::phase(hostprof::Phase::Memsys);
                            for &line in &inst.mem_lines {
                                let t = memsys.access_traced(
                                    self.id,
                                    line,
                                    inst.store,
                                    now,
                                    &mut self.stats.mem,
                                    tracer,
                                );
                                finish = finish.max(t);
                            }
                        }
                        MemPort::Buffered { buf, .. } => {
                            // Defer the shared-hierarchy access: the
                            // coordinator resolves it at the barrier at
                            // this exact point in the access order (and
                            // splices the deferred trace events back in
                            // at `trace_pos`).
                            buf.pending.push(PendingMem {
                                inst,
                                now,
                                base_finish: finish,
                                trace_pos: tracer.position(),
                            });
                            return;
                        }
                    }
                }
                profiler.record_latency(inst.pc, finish.saturating_sub(now));
                tracer.emit_with(now, || span(&inst, finish));
                self.lsu_pipe.complete_at(finish, inst);
            }
            FuncUnit::Control => unreachable!("control never reaches dispatch"),
        }
    }

    fn alu_latency(&self, instr: &Instr) -> u64 {
        match instr.kind {
            InstrKind::Alu { op, .. } => match op {
                AluOp::IMul | AluOp::IMad => self.cfg.lat.int_mul,
                op if op.is_float() => self.cfg.lat.fp_alu,
                _ => self.cfg.lat.int_alu,
            },
            _ => self.cfg.lat.int_alu,
        }
    }

    /// Retires a finished warp; returns completed CTAs (0 or 1).
    fn retire_warp(&mut self, w: usize) -> usize {
        let slot = self.warps[w]
            .as_ref()
            .expect("retiring warp exists")
            .cta_slot;
        self.warps[w] = None;
        // The scheduler must forget a retired warp: its GTO greedy
        // pointer would otherwise give the next warp launched into this
        // slot priority over older siblings (and charge stalls to the
        // dead warp's stale head PC while the slot is empty).
        self.schedulers[w % self.cfg.schedulers].retire(w);
        let cta = self.ctas[slot].as_mut().expect("warp's CTA resident");
        cta.warps_done += 1;
        // A warp exiting may release a barrier its siblings wait on.
        if cta.at_barrier > 0 && cta.at_barrier >= cta.warps_total - cta.warps_done {
            cta.at_barrier = 0;
            for other in self.warps.iter_mut().flatten() {
                if other.cta_slot == slot {
                    other.at_barrier = false;
                }
            }
        }
        if cta.warps_done == cta.warps_total {
            self.ctas[slot] = None;
            return 1;
        }
        0
    }
}

/// Computes a lane's effective byte address.
fn lane_addr(warp: &Warp, addr: Reg, offset: i32, lane: usize) -> u64 {
    let base = if addr.is_zero() {
        0
    } else {
        warp.reg(addr.index())[lane]
    };
    (u64::from(base)).wrapping_add(offset as i64 as u64)
}

/// Adds the cache line of `addr` to `lines` if not yet present.
fn push_line(lines: &mut Vec<u64>, addr: u64, line_bytes: u64) {
    let line = addr / line_bytes * line_bytes;
    if !lines.contains(&line) {
        lines.push(line);
    }
}

impl Warp {
    /// Snapshot of `dst`, or a zero vector for RZ (whose writes are
    /// discarded but must not index the register array).
    fn reg_snapshot_or_zero(&self, dst: Reg) -> Vec<u32> {
        if dst.is_zero() {
            vec![0; self.reg(0).len().max(1)]
        } else {
            self.reg_snapshot(dst.index())
        }
    }
}
