//! Bridges the simulator's [`Stats`] into a
//! [`gscalar_metrics::MetricsRegistry`].
//!
//! A [`MetricsObserver`] plugs into [`Gpu::run_observed`](crate::Gpu):
//! during the run it appends interval time-series (IPC, issue count,
//! scalar-execution rate) from the cumulative samples; at the end it
//! exports every counter of the merged statistics under `gpu/…` and of
//! each SM under `sm<i>/…`, using [`Stats::export`]'s exhaustive
//! destructuring so no counter can silently go missing.

use gscalar_metrics::MetricsRegistry;

use crate::gpu::RunObserver;
use crate::stats::Stats;

/// A [`RunObserver`] that populates a [`MetricsRegistry`].
///
/// # Examples
///
/// ```
/// use gscalar_isa::{KernelBuilder, LaunchConfig, Operand};
/// use gscalar_sim::{
///     memory::GlobalMemory, ArchConfig, Gpu, GpuConfig, MetricsObserver,
/// };
/// use gscalar_trace::Tracer;
///
/// let mut b = KernelBuilder::new("tiny");
/// b.mov(Operand::Imm(7));
/// b.exit();
/// let kernel = b.build().unwrap();
///
/// let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
/// let mut mem = GlobalMemory::new();
/// let mut obs = MetricsObserver::new();
/// let stats = gpu.run_observed(
///     &kernel,
///     LaunchConfig::linear(2, 64),
///     &mut mem,
///     &mut Tracer::off(),
///     0,
///     16,
///     &mut obs,
/// );
/// let reg = obs.into_registry();
/// assert_eq!(reg.counter("gpu/cycles"), Some(stats.cycles));
/// assert_eq!(
///     reg.counter("gpu/instr/warp_instrs"),
///     Some(stats.instr.warp_instrs)
/// );
/// ```
#[derive(Debug, Default)]
pub struct MetricsObserver {
    reg: MetricsRegistry,
}

impl MetricsObserver {
    /// Creates an observer with an empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsObserver::default()
    }

    /// Consumes the observer, returning the populated registry.
    #[must_use]
    pub fn into_registry(self) -> MetricsRegistry {
        self.reg
    }

    /// A view of the registry without consuming the observer.
    #[must_use]
    pub fn registry(&self) -> &MetricsRegistry {
        &self.reg
    }
}

impl RunObserver for MetricsObserver {
    fn sample(&mut self, cycle: u64, stats: &Stats) {
        let mut s = self.reg.scope("gpu/interval");
        s.series_push("ipc", cycle, stats.ipc());
        s.series_push("issued", cycle, stats.pipe.issued as f64);
        let scalar_rate = if stats.instr.warp_instrs == 0 {
            0.0
        } else {
            stats.instr.executed_scalar as f64 / stats.instr.warp_instrs as f64
        };
        s.series_push("scalar_rate", cycle, scalar_rate);
    }

    fn finish(&mut self, _cycle: u64, merged: &Stats, per_sm: &[Stats]) {
        merged.export(&mut self.reg.scope("gpu"));
        for (i, sm) in per_sm.iter().enumerate() {
            sm.export(&mut self.reg.scope(&format!("sm{i}")));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchConfig, GpuConfig};
    use crate::gpu::Gpu;
    use crate::memory::GlobalMemory;
    use gscalar_isa::{KernelBuilder, LaunchConfig, Operand, SReg};
    use gscalar_trace::Tracer;

    fn busy_kernel() -> gscalar_isa::Kernel {
        let mut b = KernelBuilder::new("busy");
        let tid = b.s2r(SReg::TidX);
        let mut cur = tid;
        for i in 0..24 {
            cur = b.iadd(cur.into(), Operand::Imm(i));
        }
        b.exit();
        b.build().unwrap()
    }

    #[test]
    fn exports_merged_and_per_sm_scopes() {
        let cfg = GpuConfig::test_small();
        let num_sms = cfg.num_sms;
        let mut gpu = Gpu::new(cfg, ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        let mut obs = MetricsObserver::new();
        let stats = gpu.run_observed(
            &busy_kernel(),
            LaunchConfig::linear(4, 64),
            &mut mem,
            &mut Tracer::off(),
            0,
            8,
            &mut obs,
        );
        let reg = obs.into_registry();
        assert_eq!(reg.counter("gpu/cycles"), Some(stats.cycles));
        assert_eq!(reg.counter("gpu/pipe/issued"), Some(stats.pipe.issued));
        // Per-SM issue counts sum to the merged total.
        let per_sm_sum: u64 = (0..num_sms)
            .map(|i| reg.counter(&format!("sm{i}/pipe/issued")).unwrap())
            .sum();
        assert_eq!(per_sm_sum, stats.pipe.issued);
        // Interval series recorded at least one point and ends near the
        // final IPC.
        let ipc = reg.series("gpu/interval/ipc").expect("ipc series");
        assert!(!ipc.points().is_empty());
        // The stall invariant holds on the exported counters too.
        let stall_total: u64 = gscalar_trace::StallReason::ALL
            .iter()
            .map(|r| {
                reg.counter(&format!("gpu/pipe/stall/{}", r.label()))
                    .unwrap()
            })
            .sum();
        assert_eq!(
            stall_total,
            reg.counter("gpu/pipe/scheduler_idle_cycles").unwrap()
        );
    }

    #[test]
    fn sample_interval_zero_still_finishes() {
        let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        let mut obs = MetricsObserver::new();
        gpu.run_observed(
            &busy_kernel(),
            LaunchConfig::linear(1, 32),
            &mut mem,
            &mut Tracer::off(),
            0,
            0,
            &mut obs,
        );
        let reg = obs.into_registry();
        assert!(reg.counter("gpu/cycles").is_some());
        assert!(reg.series("gpu/interval/ipc").is_none());
    }
}
