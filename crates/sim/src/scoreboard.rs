//! Per-warp scoreboard tracking in-flight register writes.

use gscalar_isa::{FuncUnit, Instr, Pred, Reg};

/// Release time meaning "in flight, completion not yet known".
const PENDING: u64 = u64::MAX;

/// One outstanding register write: who owns it and when it releases.
#[derive(Debug, Clone, Copy)]
struct RegEntry {
    reg: Reg,
    release: u64,
    /// Whether the producing instruction is a load (memory latency) —
    /// used by stall accounting to separate memory-pending stalls from
    /// plain data-dependency stalls.
    is_mem: bool,
}

/// A scoreboard for one warp: registers and predicates with writes in
/// flight may not be read (RAW) or re-written (WAW) until released.
///
/// Writes are reserved at issue with an unknown completion time and
/// given a concrete release cycle at writeback (which includes the
/// G-Scalar +3-cycle compression latency when enabled).
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    regs: Vec<RegEntry>,
    preds: Vec<(Pred, u64)>,
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Whether `instr` may issue at `now` (no RAW/WAW hazards).
    #[must_use]
    pub fn can_issue(&self, instr: &Instr, now: u64) -> bool {
        self.blocking_is_mem(instr, now).is_none()
    }

    /// If `instr` cannot issue at `now`, reports whether *any* blocking
    /// entry is owned by a memory instruction (`Some(true)`) or all
    /// blockers are ALU/SFU data dependencies (`Some(false)`); `None`
    /// when `instr` is free to issue. Drives the stall taxonomy's
    /// memory-pending vs. scoreboard split.
    #[must_use]
    pub fn blocking_is_mem(&self, instr: &Instr, now: u64) -> Option<bool> {
        let mut blocked = false;
        let mut mem = false;
        {
            let mut check_reg = |r: Reg| {
                for e in &self.regs {
                    if e.reg == r && e.release > now {
                        blocked = true;
                        mem |= e.is_mem;
                    }
                }
            };
            for &r in instr.src_regs().iter() {
                check_reg(r);
            }
            if let Some(r) = instr.dst_reg() {
                check_reg(r);
            }
        }
        let mut check_pred = |p: Pred| {
            if self.preds.iter().any(|&(bp, t)| bp == p && t > now) {
                blocked = true;
            }
        };
        for &p in instr.src_preds().iter() {
            check_pred(p);
        }
        if let Some(p) = instr.dst_pred() {
            check_pred(p);
        }
        if blocked {
            Some(mem)
        } else {
            None
        }
    }

    /// Reserves `instr`'s destinations at issue.
    pub fn reserve(&mut self, instr: &Instr) {
        if let Some(r) = instr.dst_reg() {
            self.regs.push(RegEntry {
                reg: r,
                release: PENDING,
                is_mem: instr.func_unit() == FuncUnit::Mem,
            });
        }
        if let Some(p) = instr.dst_pred() {
            self.preds.push((p, PENDING));
        }
    }

    /// Schedules the release of `instr`'s destinations at cycle `at`
    /// (writeback time plus any extra pipeline latency).
    pub fn release_at(&mut self, instr: &Instr, at: u64) {
        if let Some(r) = instr.dst_reg() {
            if let Some(e) = self
                .regs
                .iter_mut()
                .find(|e| e.reg == r && e.release == PENDING)
            {
                e.release = at;
            }
        }
        if let Some(p) = instr.dst_pred() {
            if let Some(e) = self
                .preds
                .iter_mut()
                .find(|(bp, t)| *bp == p && *t == PENDING)
            {
                e.1 = at;
            }
        }
    }

    /// Drops entries whose release time has passed.
    pub fn expire(&mut self, now: u64) {
        self.regs.retain(|e| e.release > now);
        self.preds.retain(|&(_, t)| t > now);
    }

    /// Number of outstanding reservations.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.regs.len() + self.preds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gscalar_isa::{AluOp, Guard, InstrKind, Operand};

    fn add(dst: u8, a: u8, b: u8) -> Instr {
        Instr::always(InstrKind::Alu {
            op: AluOp::IAdd,
            dst: Reg::new(dst),
            a: Reg::new(a).into(),
            b: Reg::new(b).into(),
            c: Reg::RZ.into(),
        })
    }

    #[test]
    fn raw_hazard_blocks_then_releases() {
        let mut sb = Scoreboard::new();
        let producer = add(1, 2, 3);
        let consumer = add(4, 1, 5);
        assert!(sb.can_issue(&producer, 0));
        sb.reserve(&producer);
        assert!(!sb.can_issue(&consumer, 0));
        sb.release_at(&producer, 10);
        assert!(!sb.can_issue(&consumer, 9));
        assert!(sb.can_issue(&consumer, 10));
        sb.expire(10);
        assert_eq!(sb.outstanding(), 0);
    }

    #[test]
    fn waw_hazard_blocks() {
        let mut sb = Scoreboard::new();
        let w1 = add(1, 2, 3);
        let w2 = add(1, 4, 5);
        sb.reserve(&w1);
        assert!(!sb.can_issue(&w2, 0));
    }

    #[test]
    fn independent_instruction_passes() {
        let mut sb = Scoreboard::new();
        sb.reserve(&add(1, 2, 3));
        assert!(sb.can_issue(&add(4, 5, 6), 0));
    }

    #[test]
    fn predicate_hazards() {
        let mut sb = Scoreboard::new();
        let setp = Instr::always(InstrKind::SetP {
            cmp: gscalar_isa::CmpOp::Lt,
            float: false,
            dst: Pred::new(0),
            a: Operand::Imm(1),
            b: Operand::Imm(2),
        });
        let guarded = Instr::new(Guard::pos(Pred::new(0)), InstrKind::Nop);
        sb.reserve(&setp);
        assert!(!sb.can_issue(&guarded, 0));
        sb.release_at(&setp, 5);
        assert!(sb.can_issue(&guarded, 5));
    }

    #[test]
    fn blocking_kind_distinguishes_memory_producers() {
        let mut sb = Scoreboard::new();
        let load = Instr::always(InstrKind::Ld {
            space: gscalar_isa::Space::Global,
            dst: Reg::new(1),
            addr: Reg::new(2),
            offset: 0,
        });
        sb.reserve(&load);
        let consumer = add(4, 1, 5);
        assert_eq!(sb.blocking_is_mem(&consumer, 0), Some(true));
        assert!(!sb.can_issue(&consumer, 0));
        // An ALU producer over a different register reports non-mem.
        let alu = add(6, 2, 3);
        sb.reserve(&alu);
        let alu_consumer = add(7, 6, 5);
        assert_eq!(sb.blocking_is_mem(&alu_consumer, 0), Some(false));
        // Blocked by both: memory wins the classification.
        let both = add(8, 1, 6);
        assert_eq!(sb.blocking_is_mem(&both, 0), Some(true));
        // Unblocked instruction reports None.
        assert_eq!(sb.blocking_is_mem(&add(9, 10, 11), 0), None);
    }

    #[test]
    fn duplicate_writers_release_independently() {
        let mut sb = Scoreboard::new();
        let w = add(1, 2, 3);
        sb.reserve(&w);
        sb.reserve(&w); // second in-flight write to R1 (blocked in
                        // practice by WAW, but the structure must cope)
        sb.release_at(&w, 5);
        assert!(
            !sb.can_issue(&add(4, 1, 5), 6),
            "second write still pending"
        );
        sb.release_at(&w, 7);
        assert!(sb.can_issue(&add(4, 1, 5), 7));
    }
}
