//! Execution pipelines: dispatch occupancy and completion timing.

/// A single execution pipeline (one ALU pipe, the SFU pipe, or the LSU).
///
/// Dispatch is the scarce resource: a warp occupies the dispatch port
/// for `ceil(threads / width)` cycles (Section 2.1: 2 cycles on a
/// 16-lane ALU pipe, 8 on the 4-lane SFU). Scalar execution occupies it
/// for a single cycle — the mechanism by which G-Scalar turns an 8-cycle
/// SFU dispatch into 1.
///
/// # Examples
///
/// ```
/// use gscalar_sim::pipeline::Pipe;
///
/// let mut p: Pipe<&str> = Pipe::new(16);
/// assert!(p.can_dispatch(0));
/// p.dispatch(0, 2, 10, "warp0-add"); // 2-cycle occupancy, 10-cycle latency
/// assert!(!p.can_dispatch(1));
/// assert!(p.can_dispatch(2));
/// assert!(p.drain_finished(11).is_empty());
/// assert_eq!(p.drain_finished(12), vec!["warp0-add"]);
/// ```
#[derive(Debug, Clone)]
pub struct Pipe<T> {
    width: usize,
    dispatch_free_at: u64,
    inflight: Vec<(u64, T)>,
}

impl<T> Pipe<T> {
    /// Creates a pipeline with the given lane width.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Pipe {
            width,
            dispatch_free_at: 0,
            inflight: Vec::new(),
        }
    }

    /// Lane width.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Whether the dispatch port is free at `now`.
    #[must_use]
    pub fn can_dispatch(&self, now: u64) -> bool {
        now >= self.dispatch_free_at
    }

    /// Dispatch occupancy in cycles for `threads` threads executed
    /// vector-style on this pipe.
    #[must_use]
    pub fn occupancy(&self, threads: usize) -> u64 {
        (threads.div_ceil(self.width)).max(1) as u64
    }

    /// Dispatches a warp instruction at `now`, holding the dispatch
    /// port for `occupancy` cycles; `payload` completes (writes back)
    /// after `occupancy + latency` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the dispatch port is busy — check
    /// [`Pipe::can_dispatch`] first.
    pub fn dispatch(&mut self, now: u64, occupancy: u64, latency: u64, payload: T) {
        assert!(self.can_dispatch(now), "dispatch port busy");
        self.dispatch_free_at = now + occupancy.max(1);
        self.inflight
            .push((now + occupancy.max(1) + latency, payload));
    }

    /// Registers an externally-timed completion (memory instructions,
    /// whose finish time the memory subsystem decides).
    pub fn complete_at(&mut self, when: u64, payload: T) {
        self.inflight.push((when, payload));
    }

    /// Occupies the dispatch port for `occupancy` cycles without
    /// scheduling a completion (used with [`Pipe::complete_at`] for
    /// externally-timed instructions).
    ///
    /// # Panics
    ///
    /// Panics if the dispatch port is busy.
    pub fn reserve_dispatch(&mut self, now: u64, occupancy: u64) {
        assert!(self.can_dispatch(now), "dispatch port busy");
        self.dispatch_free_at = now + occupancy.max(1);
    }

    /// Removes and returns payloads whose completion time has arrived.
    pub fn drain_finished(&mut self, now: u64) -> Vec<T> {
        let mut out = Vec::new();
        let mut i = 0;
        while i < self.inflight.len() {
            if self.inflight[i].0 <= now {
                out.push(self.inflight.swap_remove(i).1);
            } else {
                i += 1;
            }
        }
        out
    }

    /// Earliest pending completion time, if any.
    #[must_use]
    pub fn next_completion(&self) -> Option<u64> {
        self.inflight.iter().map(|&(t, _)| t).min()
    }

    /// Number of in-flight instructions.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.inflight.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_matches_paper_widths() {
        let alu: Pipe<()> = Pipe::new(16);
        assert_eq!(alu.occupancy(32), 2);
        assert_eq!(alu.occupancy(1), 1); // scalar
        let sfu: Pipe<()> = Pipe::new(4);
        assert_eq!(sfu.occupancy(32), 8);
        assert_eq!(sfu.occupancy(1), 1);
    }

    #[test]
    fn dispatch_port_blocks_for_occupancy() {
        let mut p: Pipe<u32> = Pipe::new(4);
        p.dispatch(10, 8, 20, 1);
        assert!(!p.can_dispatch(17));
        assert!(p.can_dispatch(18));
        // Completion at 10 + 8 + 20 = 38.
        assert!(p.drain_finished(37).is_empty());
        assert_eq!(p.drain_finished(38), vec![1]);
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn multiple_in_flight_complete_independently() {
        let mut p: Pipe<u32> = Pipe::new(16);
        p.dispatch(0, 1, 5, 1);
        p.dispatch(1, 1, 5, 2);
        p.complete_at(4, 3);
        assert_eq!(p.next_completion(), Some(4));
        assert_eq!(p.drain_finished(4), vec![3]);
        let mut f = p.drain_finished(7);
        f.sort_unstable();
        assert_eq!(f, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "dispatch port busy")]
    fn double_dispatch_panics() {
        let mut p: Pipe<u32> = Pipe::new(16);
        p.dispatch(0, 2, 1, 1);
        p.dispatch(1, 2, 1, 2);
    }

    #[test]
    fn reserve_dispatch_blocks_port_only() {
        let mut p: Pipe<u32> = Pipe::new(16);
        p.reserve_dispatch(5, 2);
        assert!(!p.can_dispatch(6));
        assert!(p.can_dispatch(7));
        assert_eq!(p.in_flight(), 0);
    }

    #[test]
    fn zero_occupancy_clamped() {
        let mut p: Pipe<u32> = Pipe::new(16);
        p.dispatch(0, 0, 0, 1);
        assert!(!p.can_dispatch(0));
        assert!(p.can_dispatch(1));
        assert_eq!(p.drain_finished(1), vec![1]);
    }
}
