//! Simulation statistics: everything the paper's figures are built from.

use gscalar_compress::EncodingHistogram;
use gscalar_metrics::Histogram;
use gscalar_trace::StallBreakdown;

/// Scalar-execution eligibility classes, matching the cumulative
/// categories of Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScalarClass {
    /// Not eligible for any form of scalar execution.
    Vector,
    /// Non-divergent ALU instruction with all-scalar operands
    /// (the prior-work "ALU scalar" class).
    Alu,
    /// Non-divergent SFU instruction with all-scalar operands.
    Sfu,
    /// Non-divergent memory instruction with a uniform address (and
    /// value, for stores).
    Mem,
    /// Non-divergent instruction scalar per 16-lane chunk but not as a
    /// whole warp.
    Half,
    /// Divergent instruction whose active lanes see scalar operands
    /// with a matching recorded mask (Section 4.2).
    Divergent,
}

/// Instruction-mix and scalar-eligibility counters (warp-level
/// instructions).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstrStats {
    /// Warp-level dynamic instructions.
    pub warp_instrs: u64,
    /// Thread-level dynamic instructions (sum of active lanes).
    pub thread_instrs: u64,
    /// Warp instructions on each functional unit.
    pub alu_instrs: u64,
    /// SFU warp instructions.
    pub sfu_instrs: u64,
    /// Memory warp instructions.
    pub mem_instrs: u64,
    /// Control (branch/bar/exit) warp instructions.
    pub ctrl_instrs: u64,
    /// Divergent warp instructions (active mask ≠ warp mask).
    pub divergent_instrs: u64,
    /// Eligibility counts per class (Figure 9); `Vector` not counted.
    pub eligible_alu: u64,
    /// Eligible non-divergent SFU scalar instructions.
    pub eligible_sfu: u64,
    /// Eligible non-divergent memory scalar instructions.
    pub eligible_mem: u64,
    /// Eligible half-warp scalar instructions.
    pub eligible_half: u64,
    /// Eligible divergent scalar instructions (Figure 1's second bar).
    pub eligible_divergent: u64,
    /// Instructions actually *executed* scalar under the active
    /// architecture.
    pub executed_scalar: u64,
    /// Instructions executed half-warp scalar.
    pub executed_half: u64,
    /// Decompress-move instructions injected before divergent writes to
    /// compressed registers (Section 3.3 overhead).
    pub decompress_moves: u64,
    /// Decompress-moves elided by compiler-assisted liveness
    /// (Section 3.3's compile-time optimization).
    pub decompress_moves_elided: u64,
}

impl InstrStats {
    /// Records eligibility of one warp instruction.
    pub fn record_class(&mut self, class: ScalarClass) {
        match class {
            ScalarClass::Vector => {}
            ScalarClass::Alu => self.eligible_alu += 1,
            ScalarClass::Sfu => self.eligible_sfu += 1,
            ScalarClass::Mem => self.eligible_mem += 1,
            ScalarClass::Half => self.eligible_half += 1,
            ScalarClass::Divergent => self.eligible_divergent += 1,
        }
    }

    /// Total instructions eligible for any scalar class.
    #[must_use]
    pub fn eligible_total(&self) -> u64 {
        self.eligible_alu
            + self.eligible_sfu
            + self.eligible_mem
            + self.eligible_half
            + self.eligible_divergent
    }
}

/// Register-file access event counters, recorded *scheme-independently*
/// so Figure 12 can compare all four register-file designs from one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RfStats {
    /// Vector-register read accesses.
    pub reads: u64,
    /// Vector-register write accesses.
    pub writes: u64,
    /// Baseline scheme: SRAM arrays activated (full-width accesses plus
    /// mask-dependent partial writes, Section 3.3).
    pub baseline_arrays: u64,
    /// Our byte-wise scheme: data SRAM arrays activated.
    pub ours_arrays: u64,
    /// Our scheme: BVR/EBR small-array accesses.
    pub ours_bvr: u64,
    /// W-C (BDI) scheme: SRAM arrays activated.
    pub bdi_arrays: u64,
    /// Scalar-RF scheme \[3\]: accesses served by the small scalar RF.
    pub scalar_rf_small: u64,
    /// Scalar-RF scheme \[3\]: accesses served by the full-width RF
    /// (in SRAM array activations).
    pub scalar_rf_arrays: u64,
    /// Crossbar bytes moved, baseline (full vector always).
    pub xbar_bytes_baseline: u64,
    /// Crossbar bytes moved, our scheme (base bytes never travel).
    pub xbar_bytes_ours: u64,
    /// Compressor invocations (one per write-back in compressed archs).
    pub compressor_ops: u64,
    /// Decompressor invocations (one per compressed operand read).
    pub decompressor_ops: u64,
    /// Raw bytes of all non-divergent register writes (ratio basis).
    pub raw_bytes: u64,
    /// Bytes after byte-wise compression for those writes.
    pub ours_bytes: u64,
    /// Bytes after BDI compression for those writes.
    pub bdi_bytes: u64,
    /// Figure 8 histogram over operand accesses.
    pub histogram: EncodingHistogram,
}

impl RfStats {
    /// Aggregate compression ratio of the byte-wise scheme
    /// (total raw bytes / total compressed bytes, Section 5.3).
    #[must_use]
    pub fn ours_ratio(&self) -> f64 {
        if self.ours_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.ours_bytes as f64
        }
    }

    /// Aggregate compression ratio of BDI.
    #[must_use]
    pub fn bdi_ratio(&self) -> f64 {
        if self.bdi_bytes == 0 {
            1.0
        } else {
            self.raw_bytes as f64 / self.bdi_bytes as f64
        }
    }
}

/// Execution-unit activity counters (for the power model).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Integer ALU lane-operations.
    pub int_lane_ops: u64,
    /// Floating-point ALU lane-operations.
    pub fp_lane_ops: u64,
    /// SFU lane-operations.
    pub sfu_lane_ops: u64,
    /// Lane-operations *avoided* by scalar execution (clock-gated lanes
    /// that a vector execution would have driven), per unit class.
    pub int_lane_ops_saved: u64,
    /// FP lane-operations saved by scalar execution.
    pub fp_lane_ops_saved: u64,
    /// SFU lane-operations saved by scalar execution.
    pub sfu_lane_ops_saved: u64,
}

/// Memory-system counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemStats {
    /// Coalesced global accesses (cache-line granules) issued.
    pub global_accesses: u64,
    /// L1 hits.
    pub l1_hits: u64,
    /// L1 misses.
    pub l1_misses: u64,
    /// Loads absorbed by an outstanding L1 miss to the same line (MSHR
    /// merges). Neither hits nor misses: they cause no new L2 traffic
    /// and do not touch the L1 tags, but they still wait for the fill.
    /// `l1_hits + l1_misses + l1_mshr_hits` equals the load share of
    /// `global_accesses`.
    pub l1_mshr_hits: u64,
    /// L2 hits.
    pub l2_hits: u64,
    /// L2 misses (DRAM accesses).
    pub l2_misses: u64,
    /// Shared-memory accesses (warp-level).
    pub shared_accesses: u64,
    /// NoC flit-equivalents moved (line transfers × 2 directions).
    pub noc_flits: u64,
    /// Memory warp instructions whose lanes coalesced to one line.
    pub fully_coalesced: u64,
    /// Outstanding L1 misses (live MSHR entries) observed at each new
    /// miss allocation — the memory-level-parallelism profile that
    /// `gscalar-analyze` turns into an MLP estimate. One sample per L1
    /// miss, taken *after* the new entry is added, so an isolated miss
    /// records 1.
    pub mshr_occupancy: Histogram,
}

/// Pipeline/front-end counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipeStats {
    /// Instructions issued by schedulers.
    pub issued: u64,
    /// Cycles a scheduler found no ready warp.
    pub scheduler_idle_cycles: u64,
    /// Operand-collector allocations.
    pub oc_allocs: u64,
    /// Cycles instructions waited on RF bank conflicts (sum).
    pub bank_conflict_cycles: u64,
    /// Reads serialized on the dedicated scalar RF bank (prior-work
    /// architecture, the Section 4.1 bottleneck).
    pub scalar_bank_serializations: u64,
    /// Same-bank BVR read requests deferred to a later cycle.
    pub bvr_conflict_cycles: u64,
    /// Per-reason classification of `scheduler_idle_cycles`; the
    /// simulator charges exactly one reason per idle scheduler-cycle,
    /// so `stalls.total() == scheduler_idle_cycles` always holds.
    pub stalls: StallBreakdown,
}

/// Per-scheduler issue-slot accounting: the cycle-exact ledger behind
/// `gscalar-analyze`'s CPI stacks.
///
/// Every simulated cycle charges exactly one slot per scheduler —
/// either an issue or a classified stall — and idle-skip jumps charge
/// the skipped gap to the reason the scheduler last stalled for (kept
/// in a separate `skipped` breakdown so the PR 1 invariant
/// `PipeStats::stalls.total() == scheduler_idle_cycles` is untouched).
/// The accounting identity, per SM and scheduler:
///
/// ```text
/// issued + stalls.total() + skipped.total() == Stats::cycles
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchedStats {
    /// Instructions this scheduler issued.
    pub issued: u64,
    /// Per-reason stall slots charged cycle-by-cycle (this scheduler's
    /// share of `PipeStats::stalls`).
    pub stalls: StallBreakdown,
    /// Per-reason slots charged in bulk when the idle-skip fast path
    /// jumps over cycles no scheduler could use; attributed to the
    /// scheduler's most recent stall reason.
    pub skipped: StallBreakdown,
}

impl SchedStats {
    /// Total issue slots this scheduler accounted for (equals elapsed
    /// cycles for a single SM's ledger).
    #[must_use]
    pub fn slots(&self) -> u64 {
        self.issued + self.stalls.total() + self.skipped.total()
    }
}

/// Complete statistics for one simulated kernel run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    /// Elapsed SM cycles.
    pub cycles: u64,
    /// Instruction counters.
    pub instr: InstrStats,
    /// Register-file counters.
    pub rf: RfStats,
    /// Execution-unit counters.
    pub exec: ExecStats,
    /// Memory-system counters.
    pub mem: MemStats,
    /// Pipeline counters.
    pub pipe: PipeStats,
    /// Per-scheduler issue-slot ledgers (indexed by scheduler id;
    /// empty only for a default-constructed `Stats`). Merging across
    /// SMs sums element-wise, so a merged ledger's `slots()` equals
    /// `cycles × SMs` per scheduler.
    pub sched: Vec<SchedStats>,
}

impl Stats {
    /// Thread-level IPC.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instr.thread_instrs as f64 / self.cycles as f64
        }
    }

    /// Warp-level IPC.
    #[must_use]
    pub fn warp_ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instr.warp_instrs as f64 / self.cycles as f64
        }
    }

    /// Fraction of warp instructions that are divergent (Figure 1).
    #[must_use]
    pub fn divergent_fraction(&self) -> f64 {
        if self.instr.warp_instrs == 0 {
            0.0
        } else {
            self.instr.divergent_instrs as f64 / self.instr.warp_instrs as f64
        }
    }

    /// Exports every counter into a [`gscalar_metrics::Scope`] under hierarchical
    /// paths (`instr/…`, `rf/…`, `exec/…`, `mem/…`, `pipe/…`).
    ///
    /// Like [`Stats::merge`], every sub-struct is exhaustively
    /// destructured: adding a counter field without deciding how it is
    /// exported is a compile error, not a silently missing metric.
    pub fn export(&self, scope: &mut gscalar_metrics::Scope<'_>) {
        let Stats {
            cycles,
            instr,
            rf,
            exec,
            mem,
            pipe,
            sched,
        } = self;
        scope.counter_add("cycles", *cycles);
        scope.gauge_set("ipc", self.ipc());
        scope.gauge_set("warp_ipc", self.warp_ipc());
        scope.gauge_set("divergent_fraction", self.divergent_fraction());

        let InstrStats {
            warp_instrs,
            thread_instrs,
            alu_instrs,
            sfu_instrs,
            mem_instrs,
            ctrl_instrs,
            divergent_instrs,
            eligible_alu,
            eligible_sfu,
            eligible_mem,
            eligible_half,
            eligible_divergent,
            executed_scalar,
            executed_half,
            decompress_moves,
            decompress_moves_elided,
        } = instr;
        let mut s = scope.scope("instr");
        s.counter_add("warp_instrs", *warp_instrs);
        s.counter_add("thread_instrs", *thread_instrs);
        s.counter_add("alu_instrs", *alu_instrs);
        s.counter_add("sfu_instrs", *sfu_instrs);
        s.counter_add("mem_instrs", *mem_instrs);
        s.counter_add("ctrl_instrs", *ctrl_instrs);
        s.counter_add("divergent_instrs", *divergent_instrs);
        s.counter_add("eligible_alu", *eligible_alu);
        s.counter_add("eligible_sfu", *eligible_sfu);
        s.counter_add("eligible_mem", *eligible_mem);
        s.counter_add("eligible_half", *eligible_half);
        s.counter_add("eligible_divergent", *eligible_divergent);
        s.counter_add("executed_scalar", *executed_scalar);
        s.counter_add("executed_half", *executed_half);
        s.counter_add("decompress_moves", *decompress_moves);
        s.counter_add("decompress_moves_elided", *decompress_moves_elided);

        let RfStats {
            reads,
            writes,
            baseline_arrays,
            ours_arrays,
            ours_bvr,
            bdi_arrays,
            scalar_rf_small,
            scalar_rf_arrays,
            xbar_bytes_baseline,
            xbar_bytes_ours,
            compressor_ops,
            decompressor_ops,
            raw_bytes,
            ours_bytes,
            bdi_bytes,
            histogram,
        } = rf;
        let mut s = scope.scope("rf");
        s.counter_add("reads", *reads);
        s.counter_add("writes", *writes);
        s.counter_add("baseline_arrays", *baseline_arrays);
        s.counter_add("ours_arrays", *ours_arrays);
        s.counter_add("ours_bvr", *ours_bvr);
        s.counter_add("bdi_arrays", *bdi_arrays);
        s.counter_add("scalar_rf_small", *scalar_rf_small);
        s.counter_add("scalar_rf_arrays", *scalar_rf_arrays);
        s.counter_add("xbar_bytes_baseline", *xbar_bytes_baseline);
        s.counter_add("xbar_bytes_ours", *xbar_bytes_ours);
        s.counter_add("compressor_ops", *compressor_ops);
        s.counter_add("decompressor_ops", *decompressor_ops);
        s.counter_add("raw_bytes", *raw_bytes);
        s.counter_add("ours_bytes", *ours_bytes);
        s.counter_add("bdi_bytes", *bdi_bytes);
        let mut h = s.scope("encoding");
        for (label, count) in histogram.iter() {
            h.counter_add(label, count);
        }

        let ExecStats {
            int_lane_ops,
            fp_lane_ops,
            sfu_lane_ops,
            int_lane_ops_saved,
            fp_lane_ops_saved,
            sfu_lane_ops_saved,
        } = exec;
        let mut s = scope.scope("exec");
        s.counter_add("int_lane_ops", *int_lane_ops);
        s.counter_add("fp_lane_ops", *fp_lane_ops);
        s.counter_add("sfu_lane_ops", *sfu_lane_ops);
        s.counter_add("int_lane_ops_saved", *int_lane_ops_saved);
        s.counter_add("fp_lane_ops_saved", *fp_lane_ops_saved);
        s.counter_add("sfu_lane_ops_saved", *sfu_lane_ops_saved);

        let MemStats {
            global_accesses,
            l1_hits,
            l1_misses,
            l1_mshr_hits,
            l2_hits,
            l2_misses,
            shared_accesses,
            noc_flits,
            fully_coalesced,
            mshr_occupancy,
        } = mem;
        let mut s = scope.scope("mem");
        s.counter_add("global_accesses", *global_accesses);
        s.counter_add("l1_hits", *l1_hits);
        s.counter_add("l1_misses", *l1_misses);
        s.counter_add("l1_mshr_hits", *l1_mshr_hits);
        s.counter_add("l2_hits", *l2_hits);
        s.counter_add("l2_misses", *l2_misses);
        s.counter_add("shared_accesses", *shared_accesses);
        s.counter_add("noc_flits", *noc_flits);
        s.counter_add("fully_coalesced", *fully_coalesced);
        s.histogram_merge("mshr_occupancy", mshr_occupancy);

        let PipeStats {
            issued,
            scheduler_idle_cycles,
            oc_allocs,
            bank_conflict_cycles,
            scalar_bank_serializations,
            bvr_conflict_cycles,
            stalls,
        } = pipe;
        let mut s = scope.scope("pipe");
        s.counter_add("issued", *issued);
        s.counter_add("scheduler_idle_cycles", *scheduler_idle_cycles);
        s.counter_add("oc_allocs", *oc_allocs);
        s.counter_add("bank_conflict_cycles", *bank_conflict_cycles);
        s.counter_add("scalar_bank_serializations", *scalar_bank_serializations);
        s.counter_add("bvr_conflict_cycles", *bvr_conflict_cycles);
        let mut st = s.scope("stall");
        for (reason, count) in stalls.iter() {
            st.counter_add(reason.label(), count);
        }

        let mut s = scope.scope("sched");
        for (i, sc) in sched.iter().enumerate() {
            let SchedStats {
                issued,
                stalls,
                skipped,
            } = sc;
            let mut s = s.scope(&i.to_string());
            s.counter_add("issued", *issued);
            let mut st = s.scope("stall");
            for (reason, count) in stalls.iter() {
                st.counter_add(reason.label(), count);
            }
            let mut sk = s.scope("skipped");
            for (reason, count) in skipped.iter() {
                sk.counter_add(reason.label(), count);
            }
        }
    }

    /// Merges another run's statistics (used to aggregate across SMs).
    ///
    /// Every sub-struct is exhaustively destructured (no `..` rest
    /// patterns), so adding a counter field without deciding how it
    /// merges is a compile error — not a silently dropped statistic.
    pub fn merge(&mut self, o: &Stats) {
        let Stats {
            cycles,
            instr,
            rf,
            exec,
            mem,
            pipe,
            sched,
        } = o;
        self.cycles = self.cycles.max(*cycles);

        let InstrStats {
            warp_instrs,
            thread_instrs,
            alu_instrs,
            sfu_instrs,
            mem_instrs,
            ctrl_instrs,
            divergent_instrs,
            eligible_alu,
            eligible_sfu,
            eligible_mem,
            eligible_half,
            eligible_divergent,
            executed_scalar,
            executed_half,
            decompress_moves,
            decompress_moves_elided,
        } = instr;
        let i = &mut self.instr;
        i.warp_instrs += warp_instrs;
        i.thread_instrs += thread_instrs;
        i.alu_instrs += alu_instrs;
        i.sfu_instrs += sfu_instrs;
        i.mem_instrs += mem_instrs;
        i.ctrl_instrs += ctrl_instrs;
        i.divergent_instrs += divergent_instrs;
        i.eligible_alu += eligible_alu;
        i.eligible_sfu += eligible_sfu;
        i.eligible_mem += eligible_mem;
        i.eligible_half += eligible_half;
        i.eligible_divergent += eligible_divergent;
        i.executed_scalar += executed_scalar;
        i.executed_half += executed_half;
        i.decompress_moves += decompress_moves;
        i.decompress_moves_elided += decompress_moves_elided;

        let RfStats {
            reads,
            writes,
            baseline_arrays,
            ours_arrays,
            ours_bvr,
            bdi_arrays,
            scalar_rf_small,
            scalar_rf_arrays,
            xbar_bytes_baseline,
            xbar_bytes_ours,
            compressor_ops,
            decompressor_ops,
            raw_bytes,
            ours_bytes,
            bdi_bytes,
            histogram,
        } = rf;
        let r = &mut self.rf;
        r.reads += reads;
        r.writes += writes;
        r.baseline_arrays += baseline_arrays;
        r.ours_arrays += ours_arrays;
        r.ours_bvr += ours_bvr;
        r.bdi_arrays += bdi_arrays;
        r.scalar_rf_small += scalar_rf_small;
        r.scalar_rf_arrays += scalar_rf_arrays;
        r.xbar_bytes_baseline += xbar_bytes_baseline;
        r.xbar_bytes_ours += xbar_bytes_ours;
        r.compressor_ops += compressor_ops;
        r.decompressor_ops += decompressor_ops;
        r.raw_bytes += raw_bytes;
        r.ours_bytes += ours_bytes;
        r.bdi_bytes += bdi_bytes;
        r.histogram.merge(histogram);

        let ExecStats {
            int_lane_ops,
            fp_lane_ops,
            sfu_lane_ops,
            int_lane_ops_saved,
            fp_lane_ops_saved,
            sfu_lane_ops_saved,
        } = exec;
        let e = &mut self.exec;
        e.int_lane_ops += int_lane_ops;
        e.fp_lane_ops += fp_lane_ops;
        e.sfu_lane_ops += sfu_lane_ops;
        e.int_lane_ops_saved += int_lane_ops_saved;
        e.fp_lane_ops_saved += fp_lane_ops_saved;
        e.sfu_lane_ops_saved += sfu_lane_ops_saved;

        let MemStats {
            global_accesses,
            l1_hits,
            l1_misses,
            l1_mshr_hits,
            l2_hits,
            l2_misses,
            shared_accesses,
            noc_flits,
            fully_coalesced,
            mshr_occupancy,
        } = mem;
        let m = &mut self.mem;
        m.global_accesses += global_accesses;
        m.l1_hits += l1_hits;
        m.l1_misses += l1_misses;
        m.l1_mshr_hits += l1_mshr_hits;
        m.l2_hits += l2_hits;
        m.l2_misses += l2_misses;
        m.shared_accesses += shared_accesses;
        m.noc_flits += noc_flits;
        m.fully_coalesced += fully_coalesced;
        m.mshr_occupancy.merge(mshr_occupancy);

        let PipeStats {
            issued,
            scheduler_idle_cycles,
            oc_allocs,
            bank_conflict_cycles,
            scalar_bank_serializations,
            bvr_conflict_cycles,
            stalls,
        } = pipe;
        let p = &mut self.pipe;
        p.issued += issued;
        p.scheduler_idle_cycles += scheduler_idle_cycles;
        p.oc_allocs += oc_allocs;
        p.bank_conflict_cycles += bank_conflict_cycles;
        p.scalar_bank_serializations += scalar_bank_serializations;
        p.bvr_conflict_cycles += bvr_conflict_cycles;
        p.stalls.merge(stalls);

        // Element-wise per-scheduler merge; a default-constructed
        // destination grows to the source's scheduler count.
        if self.sched.len() < sched.len() {
            self.sched.resize(sched.len(), SchedStats::default());
        }
        for (d, s) in self.sched.iter_mut().zip(sched.iter()) {
            let SchedStats {
                issued,
                stalls,
                skipped,
            } = s;
            d.issued += issued;
            d.stalls.merge(stalls);
            d.skipped.merge(skipped);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eligibility_classes_accumulate() {
        let mut s = InstrStats::default();
        s.record_class(ScalarClass::Alu);
        s.record_class(ScalarClass::Sfu);
        s.record_class(ScalarClass::Divergent);
        s.record_class(ScalarClass::Vector);
        assert_eq!(s.eligible_total(), 3);
        assert_eq!(s.eligible_alu, 1);
        assert_eq!(s.eligible_divergent, 1);
    }

    #[test]
    fn ipc_handles_zero_cycles() {
        let s = Stats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.divergent_fraction(), 0.0);
    }

    #[test]
    fn merge_adds_counts_and_maxes_cycles() {
        let mut a = Stats {
            cycles: 100,
            ..Default::default()
        };
        a.instr.warp_instrs = 10;
        let mut b = Stats {
            cycles: 150,
            ..Default::default()
        };
        b.instr.warp_instrs = 5;
        b.rf.reads = 7;
        a.merge(&b);
        assert_eq!(a.cycles, 150);
        assert_eq!(a.instr.warp_instrs, 15);
        assert_eq!(a.rf.reads, 7);
    }

    #[test]
    fn merge_into_default_covers_every_field() {
        // Every field is built with an exhaustive literal (no
        // `..Default::default()`), and each gets a distinct nonzero
        // value. Merging into an empty Stats must reproduce the source
        // exactly; a counter silently dropped by `merge` would fail the
        // equality below, and a field added without updating this test
        // fails to compile.
        let mut stalls = StallBreakdown::default();
        stalls.add(gscalar_trace::StallReason::MemPending);
        let mut mshr_occupancy = Histogram::default();
        mshr_occupancy.record(3);
        let mut sched_stalls = StallBreakdown::default();
        sched_stalls.add(gscalar_trace::StallReason::Scoreboard);
        let mut sched_skipped = StallBreakdown::default();
        sched_skipped.add_n(gscalar_trace::StallReason::Drained, 60);
        let src = Stats {
            cycles: 1,
            instr: InstrStats {
                warp_instrs: 2,
                thread_instrs: 3,
                alu_instrs: 4,
                sfu_instrs: 5,
                mem_instrs: 6,
                ctrl_instrs: 7,
                divergent_instrs: 8,
                eligible_alu: 9,
                eligible_sfu: 10,
                eligible_mem: 11,
                eligible_half: 12,
                eligible_divergent: 13,
                executed_scalar: 14,
                executed_half: 15,
                decompress_moves: 16,
                decompress_moves_elided: 17,
            },
            rf: RfStats {
                reads: 18,
                writes: 19,
                baseline_arrays: 20,
                ours_arrays: 21,
                ours_bvr: 22,
                bdi_arrays: 23,
                scalar_rf_small: 24,
                scalar_rf_arrays: 25,
                xbar_bytes_baseline: 26,
                xbar_bytes_ours: 27,
                compressor_ops: 28,
                decompressor_ops: 29,
                raw_bytes: 30,
                ours_bytes: 31,
                bdi_bytes: 32,
                histogram: EncodingHistogram::from_counts([33, 34, 35, 36, 37, 38]),
            },
            exec: ExecStats {
                int_lane_ops: 39,
                fp_lane_ops: 40,
                sfu_lane_ops: 41,
                int_lane_ops_saved: 42,
                fp_lane_ops_saved: 43,
                sfu_lane_ops_saved: 44,
            },
            mem: MemStats {
                global_accesses: 45,
                l1_hits: 46,
                l1_misses: 47,
                l1_mshr_hits: 59,
                l2_hits: 48,
                l2_misses: 49,
                shared_accesses: 50,
                noc_flits: 51,
                fully_coalesced: 52,
                mshr_occupancy,
            },
            pipe: PipeStats {
                issued: 53,
                scheduler_idle_cycles: 54,
                oc_allocs: 55,
                bank_conflict_cycles: 56,
                scalar_bank_serializations: 57,
                bvr_conflict_cycles: 58,
                stalls,
            },
            sched: vec![SchedStats {
                issued: 59,
                stalls: sched_stalls,
                skipped: sched_skipped,
            }],
        };
        let mut dst = Stats::default();
        dst.merge(&src);
        assert_eq!(dst, src);
        // Merging twice doubles every additive counter but maxes cycles.
        dst.merge(&src);
        assert_eq!(dst.cycles, 1);
        assert_eq!(dst.instr.warp_instrs, 4);
        assert_eq!(dst.rf.histogram.divergent(), 76);
        assert_eq!(dst.pipe.stalls.total(), 2);
        assert_eq!(dst.pipe.bvr_conflict_cycles, 116);
        assert_eq!(dst.mem.mshr_occupancy.count(), 2);
        assert_eq!(dst.mem.mshr_occupancy.sum(), 6);
        assert_eq!(dst.sched.len(), 1);
        assert_eq!(dst.sched[0].issued, 118);
        assert_eq!(dst.sched[0].slots(), 2 * (59 + 1 + 60));
    }

    #[test]
    fn ratios_are_byte_aggregates() {
        let r = RfStats {
            raw_bytes: 256,
            ours_bytes: 100,
            bdi_bytes: 128,
            ..Default::default()
        };
        assert!((r.ours_ratio() - 2.56).abs() < 1e-9);
        assert!((r.bdi_ratio() - 2.0).abs() < 1e-9);
        assert_eq!(RfStats::default().ours_ratio(), 1.0);
        assert_eq!(RfStats::default().bdi_ratio(), 1.0);
    }
}
