//! A per-thread reference interpreter.
//!
//! Executes a kernel one thread at a time with no SIMT machinery at all
//! — no warps, no reconvergence stack, no pipelines. Because the
//! cycle-level simulator must produce exactly the same architectural
//! results (memory contents) as sequential per-thread execution, this
//! interpreter is the oracle for differential testing.
//!
//! CTA barriers are honored by phase execution: every thread of a CTA
//! runs until its next barrier (or exit), then all advance together.

use gscalar_isa::{Dim3, Instr, InstrKind, Kernel, LaunchConfig, Operand, Pred, Reg, SReg, Space};

use crate::exec;
use crate::memory::{GlobalMemory, SharedMemory};

/// Why a thread stopped running in [`run_thread_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stop {
    Barrier,
    Exit,
}

struct Thread {
    pc: usize,
    regs: Vec<u32>,
    preds: [bool; Pred::COUNT],
    done: bool,
    tid: u32,
    cta: Dim3,
}

impl Thread {
    fn reg(&self, r: Reg) -> u32 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index() as usize]
        }
    }

    fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index() as usize] = v;
        }
    }

    fn operand(&self, o: Operand) -> u32 {
        match o {
            Operand::Reg(r) => self.reg(r),
            Operand::Imm(v) => v,
        }
    }

    fn pred(&self, p: Pred) -> bool {
        if p.is_true() {
            true
        } else {
            self.preds[p.index() as usize]
        }
    }

    fn guard_passes(&self, i: &Instr) -> bool {
        let v = self.pred(i.guard.pred);
        if i.guard.negate {
            !v
        } else {
            v
        }
    }

    fn sreg(&self, s: SReg, launch: &LaunchConfig) -> u32 {
        let bx = launch.block.x;
        match s {
            SReg::TidX => self.tid % bx,
            SReg::TidY => (self.tid / bx) % launch.block.y,
            SReg::CtaIdX => self.cta.x,
            SReg::CtaIdY => self.cta.y,
            SReg::NTidX => bx,
            SReg::NTidY => launch.block.y,
            SReg::NCtaIdX => launch.grid.x,
            SReg::LaneId => self.tid % 32,
            SReg::WarpId => self.tid / 32,
        }
    }
}

/// Runs `kernel` over `launch` sequentially and applies all stores to
/// `gmem`. Returns the number of thread-level instructions executed.
///
/// # Panics
///
/// Panics if a thread executes more than 10 million instructions (a
/// runaway-kernel guard for tests).
pub fn run_reference(kernel: &Kernel, launch: LaunchConfig, gmem: &mut GlobalMemory) -> u64 {
    let mut executed = 0u64;
    let threads_per_cta = launch.threads_per_cta();
    for cta_linear in 0..launch.grid.count() {
        let cta = linear_cta(cta_linear, launch.grid);
        let mut shared = SharedMemory::new(kernel.shared_mem_bytes());
        let mut threads: Vec<Thread> = (0..threads_per_cta)
            .map(|tid| Thread {
                pc: 0,
                regs: vec![0; kernel.num_regs().max(1) as usize],
                preds: [false; Pred::COUNT],
                done: false,
                tid,
                cta,
            })
            .collect();
        // Phase execution between barriers.
        loop {
            let mut any_live = false;
            for t in &mut threads {
                if t.done {
                    continue;
                }
                any_live = true;
                let stop = run_thread_until(t, kernel, &launch, gmem, &mut shared, &mut executed);
                if stop == Stop::Exit {
                    t.done = true;
                }
            }
            if !any_live {
                break;
            }
        }
    }
    executed
}

fn linear_cta(linear: u64, grid: Dim3) -> Dim3 {
    let x = (linear % u64::from(grid.x)) as u32;
    let rest = linear / u64::from(grid.x);
    Dim3 {
        x,
        y: (rest % u64::from(grid.y)) as u32,
        z: (rest / u64::from(grid.y)) as u32,
    }
}

fn run_thread_until(
    t: &mut Thread,
    kernel: &Kernel,
    launch: &LaunchConfig,
    gmem: &mut GlobalMemory,
    shared: &mut SharedMemory,
    executed: &mut u64,
) -> Stop {
    let mut steps = 0u64;
    loop {
        steps += 1;
        assert!(steps < 10_000_000, "reference thread ran away");
        let i = kernel.instr(t.pc);
        *executed += 1;
        if !t.guard_passes(i) {
            // Guarded off: branches fall through, others are no-ops.
            t.pc += 1;
            continue;
        }
        match i.kind {
            InstrKind::Alu { op, dst, a, b, c } => {
                let v = exec::eval_alu(op, t.operand(a), t.operand(b), t.operand(c));
                t.set_reg(dst, v);
            }
            InstrKind::Sfu { op, dst, a } => {
                let v = exec::eval_sfu(op, t.operand(a));
                t.set_reg(dst, v);
            }
            InstrKind::Mov { dst, src } => {
                let v = t.operand(src);
                t.set_reg(dst, v);
            }
            InstrKind::S2R { dst, sreg } => {
                let v = t.sreg(sreg, launch);
                t.set_reg(dst, v);
            }
            InstrKind::SetP {
                cmp,
                float,
                dst,
                a,
                b,
            } => {
                let v = exec::eval_cmp(cmp, float, t.operand(a), t.operand(b));
                if !dst.is_true() {
                    t.preds[dst.index() as usize] = v;
                }
            }
            InstrKind::Ld {
                space,
                dst,
                addr,
                offset,
            } => {
                let a = (u64::from(t.reg(addr))).wrapping_add(offset as i64 as u64);
                let v = match space {
                    Space::Global => gmem.read_u32(a),
                    Space::Shared => shared.read_u32(a as u32),
                };
                t.set_reg(dst, v);
            }
            InstrKind::St {
                space,
                src,
                addr,
                offset,
            } => {
                let a = (u64::from(t.reg(addr))).wrapping_add(offset as i64 as u64);
                match space {
                    Space::Global => gmem.write_u32(a, t.reg(src)),
                    Space::Shared => shared.write_u32(a as u32, t.reg(src)),
                }
            }
            InstrKind::Bra { target } => {
                t.pc = target;
                continue;
            }
            InstrKind::Bar => {
                t.pc += 1;
                return Stop::Barrier;
            }
            InstrKind::Exit => return Stop::Exit,
            InstrKind::Nop => {}
        }
        t.pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchConfig, GpuConfig};
    use crate::gpu::Gpu;
    use gscalar_isa::{CmpOp, KernelBuilder};

    /// Differential check: the SIMT simulator and the per-thread
    /// reference must leave identical memory.
    fn assert_matches(
        kernel: &Kernel,
        launch: LaunchConfig,
        init: &GlobalMemory,
        region: (u64, usize),
    ) {
        let mut ref_mem = init.clone();
        run_reference(kernel, launch, &mut ref_mem);
        let mut sim_mem = init.clone();
        let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
        gpu.run(kernel, launch, &mut sim_mem);
        let (base, words) = region;
        for i in 0..words {
            let a = base + (i as u64) * 4;
            assert_eq!(
                sim_mem.read_u32(a),
                ref_mem.read_u32(a),
                "mismatch at word {i}"
            );
        }
    }

    #[test]
    fn divergent_loop_matches_simt_execution() {
        let out = 0x9_0000u32;
        let mut b = KernelBuilder::new("diff");
        let tid = b.s2r(SReg::TidX);
        let n = b.and(tid.into(), Operand::Imm(7));
        let acc = b.mov(Operand::Imm(1));
        let i = b.mov(Operand::Imm(0));
        b.while_loop(
            |b| b.isetp(CmpOp::Lt, i.into(), n.into()).into(),
            |b| {
                b.alu_to(
                    gscalar_isa::AluOp::IMul,
                    acc,
                    acc.into(),
                    Operand::Imm(3),
                    Reg::RZ.into(),
                );
                b.iadd_to(i, i.into(), Operand::Imm(1));
            },
        );
        let off = b.shl(tid.into(), Operand::Imm(2));
        let addr = b.iadd(off.into(), Operand::Imm(out));
        b.st_global(addr, acc, 0);
        b.exit();
        let k = b.build().unwrap();
        assert_matches(
            &k,
            LaunchConfig::linear(2, 64),
            &GlobalMemory::new(),
            (out as u64, 128),
        );
    }

    #[test]
    fn barrier_phases_match() {
        let out = 0xA_0000u32;
        let mut b = KernelBuilder::new("barrier_diff");
        b.shared_mem(512);
        let tid = b.s2r(SReg::TidX);
        let soff = b.shl(tid.into(), Operand::Imm(2));
        let v = b.imul(tid.into(), Operand::Imm(5));
        b.st_shared(soff, v, 0);
        b.bar();
        let other = b.xor(tid.into(), Operand::Imm(1));
        let ooff = b.shl(other.into(), Operand::Imm(2));
        let got = b.ld_shared(ooff, 0);
        let addr = b.iadd(soff.into(), Operand::Imm(out));
        b.st_global(addr, got, 0);
        b.exit();
        let k = b.build().unwrap();
        assert_matches(
            &k,
            LaunchConfig::linear(1, 128),
            &GlobalMemory::new(),
            (out as u64, 128),
        );
    }

    #[test]
    fn reference_counts_thread_instructions() {
        let mut b = KernelBuilder::new("count");
        b.mov(Operand::Imm(1));
        b.exit();
        let k = b.build().unwrap();
        let mut mem = GlobalMemory::new();
        let n = run_reference(&k, LaunchConfig::linear(2, 32), &mut mem);
        assert_eq!(n, 2 * 32 * 2); // mov + exit per thread
    }
}
