//! The timing memory subsystem: per-SM L1s, partitioned L2, and DRAM
//! channels with bandwidth contention.
//!
//! Requests are timed analytically: each access immediately computes its
//! completion cycle from cache outcomes and per-resource next-free
//! times, so no per-cycle ticking is needed. Contention appears through
//! the L2-partition and DRAM-channel service intervals.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use gscalar_trace::{MemLevel, TraceEvent, Tracer};

use crate::cache::{Cache, CacheOutcome};
use crate::config::GpuConfig;
use crate::stats::MemStats;

/// Smallest MSHR population that triggers an amortized sweep of landed
/// fills (below this the map is too small for staleness to matter).
const MSHR_SWEEP_MIN: usize = 64;

/// The shared memory hierarchy below the SMs.
#[derive(Debug, Clone)]
pub struct MemSystem {
    line_bytes: u64,
    l1_hit_lat: u64,
    l2_lat: u64,
    dram_lat: u64,
    dram_service: u64,
    l2_service: u64,
    channels: usize,
    l1: Vec<Cache>,
    /// Per-SM outstanding L1 miss lines → fill time (MSHR merging).
    /// Entries expire lazily: a lookup that finds a fill already landed
    /// removes it, and an amortized sweep (see `mshr_sweep`) bounds the
    /// map size without an O(outstanding) scan on every miss.
    mshr: Vec<HashMap<u64, u64>>,
    /// Per-SM MSHR size threshold that triggers the next amortized
    /// sweep of landed fills; doubles with the live population, so the
    /// sweep cost is O(1) amortized per miss.
    mshr_sweep: Vec<usize>,
    /// Per-SM min-heap of in-flight fill times, used to count *live*
    /// outstanding misses at each new miss (the `mshr` map itself may
    /// carry stale landed entries between amortized sweeps, so its
    /// length is not the occupancy). Accesses are time-monotonic per
    /// SM, so popping landed entries from the front keeps the heap
    /// exact at O(log n) per miss.
    mshr_live: Vec<BinaryHeap<Reverse<u64>>>,
    /// What-if idealization: every global load is an L1 hit.
    perfect_l1: bool,
    l2: Vec<Cache>,
    l2_free: Vec<u64>,
    chan_free: Vec<u64>,
}

impl MemSystem {
    /// Builds the hierarchy for `cfg`.
    #[must_use]
    pub fn new(cfg: &GpuConfig) -> Self {
        let l2_part_bytes = cfg.l2_bytes / cfg.mem_channels;
        MemSystem {
            line_bytes: cfg.line_bytes as u64,
            l1_hit_lat: cfg.lat.l1_hit,
            l2_lat: cfg.lat.l2,
            dram_lat: cfg.lat.dram,
            dram_service: cfg.lat.dram_service,
            l2_service: cfg.lat.l2_service,
            channels: cfg.mem_channels,
            l1: (0..cfg.num_sms)
                .map(|_| Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes))
                .collect(),
            mshr: (0..cfg.num_sms).map(|_| HashMap::new()).collect(),
            mshr_sweep: vec![MSHR_SWEEP_MIN; cfg.num_sms],
            mshr_live: (0..cfg.num_sms).map(|_| BinaryHeap::new()).collect(),
            perfect_l1: cfg.ideal.perfect_l1,
            l2: (0..cfg.mem_channels)
                .map(|_| Cache::new(l2_part_bytes, cfg.l2_ways, cfg.line_bytes))
                .collect(),
            l2_free: vec![0; cfg.mem_channels],
            chan_free: vec![0; cfg.mem_channels],
        }
    }

    /// The L2 partition / DRAM channel owning `addr`.
    #[must_use]
    pub fn partition_of(&self, addr: u64) -> usize {
        ((addr / self.line_bytes) % self.channels as u64) as usize
    }

    /// Issues one coalesced (line-granule) global access from SM `sm`
    /// at cycle `now` and returns its completion cycle.
    ///
    /// Loads allocate in L1; stores are write-through/no-allocate (they
    /// complete at L1 latency but still consume L2/DRAM bandwidth).
    pub fn access(
        &mut self,
        sm: usize,
        addr: u64,
        store: bool,
        now: u64,
        stats: &mut MemStats,
    ) -> u64 {
        self.access_classified(sm, addr, store, now, stats).0
    }

    /// [`MemSystem::access`] that also emits a [`TraceEvent::Mem`]
    /// describing where the transaction was resolved.
    pub fn access_traced(
        &mut self,
        sm: usize,
        addr: u64,
        store: bool,
        now: u64,
        stats: &mut MemStats,
        tracer: &mut Tracer<'_>,
    ) -> u64 {
        let (done, level) = self.access_classified(sm, addr, store, now, stats);
        tracer.emit_with(now, || TraceEvent::Mem {
            sm: sm as u32,
            addr,
            store,
            level,
            done,
        });
        done
    }

    /// The timing model behind [`MemSystem::access`], additionally
    /// classifying which hierarchy level resolved the request.
    fn access_classified(
        &mut self,
        sm: usize,
        addr: u64,
        store: bool,
        now: u64,
        stats: &mut MemStats,
    ) -> (u64, MemLevel) {
        stats.global_accesses += 1;
        let line = addr / self.line_bytes * self.line_bytes;
        if store {
            // Write-through: update L2 timing/occupancy, return quickly.
            let (_, level) = self.l2_access(sm, line, now, stats, true);
            return (now + self.l1_hit_lat, level);
        }
        if self.perfect_l1 {
            // What-if idealization: loads never miss, generate no L2
            // traffic, and never occupy an MSHR.
            stats.l1_hits += 1;
            return (now + self.l1_hit_lat, MemLevel::L1Hit);
        }
        // MSHR merge: an outstanding fill for this line absorbs the new
        // request (the L1 tag is already allocated by the original miss,
        // so the merge neither re-touches the tags nor counts as a hit
        // or a miss — data simply arrives when the fill returns).
        if let Some(&ready) = self.mshr[sm].get(&line) {
            if ready > now {
                stats.l1_mshr_hits += 1;
                return (ready, MemLevel::MshrMerge);
            }
            // The fill already landed; expire the entry lazily here
            // instead of sweeping the whole map on every miss.
            self.mshr[sm].remove(&line);
        }
        match self.l1[sm].access(line, now, true) {
            CacheOutcome::Hit => {
                stats.l1_hits += 1;
                (now + self.l1_hit_lat, MemLevel::L1Hit)
            }
            CacheOutcome::Miss => {
                stats.l1_misses += 1;
                let (ready, level) = self.l2_access(sm, line, now, stats, false);
                self.mshr[sm].insert(line, ready);
                // MLP profile: count live outstanding fills, including
                // the one just allocated. Landed fills pop first, so
                // stale entries never inflate the sample.
                let live = &mut self.mshr_live[sm];
                while live.peek().is_some_and(|&Reverse(t)| t <= now) {
                    live.pop();
                }
                live.push(Reverse(ready));
                stats.mshr_occupancy.record(live.len() as u64);
                // Amortized bound on lines that are never re-accessed:
                // sweep landed fills only when the map outgrows its
                // threshold, then re-arm at twice the live population.
                if self.mshr[sm].len() >= self.mshr_sweep[sm] {
                    self.mshr[sm].retain(|_, &mut t| t > now);
                    self.mshr_sweep[sm] = (self.mshr[sm].len() * 2).max(MSHR_SWEEP_MIN);
                }
                (ready, level)
            }
        }
    }

    fn l2_access(
        &mut self,
        _sm: usize,
        line: u64,
        now: u64,
        stats: &mut MemStats,
        store: bool,
    ) -> (u64, MemLevel) {
        let p = self.partition_of(line);
        stats.noc_flits += 2; // request + response line transfer
        let start = now.max(self.l2_free[p]);
        self.l2_free[p] = start + self.l2_service;
        match self.l2[p].access(line, now, true) {
            CacheOutcome::Hit => {
                stats.l2_hits += 1;
                (start + self.l2_lat, MemLevel::L2Hit)
            }
            CacheOutcome::Miss => {
                stats.l2_misses += 1;
                if store {
                    // Write miss: DRAM bandwidth consumed, latency hidden
                    // by the write buffer.
                    let s = start.max(self.chan_free[p]);
                    self.chan_free[p] = s + self.dram_service;
                    (start + self.l2_lat, MemLevel::Dram)
                } else {
                    let s = (start + self.l2_lat).max(self.chan_free[p]);
                    self.chan_free[p] = s + self.dram_service;
                    (s + self.dram_lat, MemLevel::Dram)
                }
            }
        }
    }

    /// Earliest cycle at which any queued resource frees up (used for
    /// idle-cycle skipping).
    #[must_use]
    pub fn next_event(&self) -> Option<u64> {
        self.l2_free
            .iter()
            .chain(self.chan_free.iter())
            .copied()
            .max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sys() -> (MemSystem, MemStats) {
        let mut cfg = GpuConfig::test_small();
        cfg.num_sms = 2;
        (MemSystem::new(&cfg), MemStats::default())
    }

    #[test]
    fn l1_hit_is_fast() {
        let (mut m, mut s) = sys();
        let cold = m.access(0, 0x1000, false, 0, &mut s);
        assert!(cold > 100); // L2 miss → DRAM
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l2_misses, 1);
        let warm = m.access(0, 0x1000, false, cold + 1, &mut s);
        assert_eq!(warm, cold + 1 + 32);
        assert_eq!(s.l1_hits, 1);
    }

    #[test]
    fn l2_hit_cheaper_than_dram() {
        let (mut m, mut s) = sys();
        let t1 = m.access(0, 0x2000, false, 0, &mut s);
        // A different SM misses L1 but hits the now-warm L2.
        let t2 = m.access(1, 0x2000, false, t1 + 1, &mut s) - (t1 + 1);
        assert!(t2 < t1, "L2 hit ({t2}) should beat DRAM ({t1})");
        assert_eq!(s.l2_hits, 1);
    }

    #[test]
    fn mshr_merges_same_line() {
        let (mut m, mut s) = sys();
        let t1 = m.access(0, 0x3000, false, 0, &mut s);
        // Another access to the same line while the fill is in flight
        // returns the same fill time without new L2 traffic.
        let before = s.l2_hits + s.l2_misses;
        let t2 = m.access(0, 0x3010, false, 1, &mut s);
        assert_eq!(t1, t2);
        assert_eq!(s.l2_hits + s.l2_misses, before);
        // The merge is its own class: not an L1 miss (there is no new
        // fill) and not a hit (the data is not there yet).
        assert_eq!(s.l1_misses, 1);
        assert_eq!(s.l1_hits, 0);
        assert_eq!(s.l1_mshr_hits, 1);
        assert_eq!(s.l1_hits + s.l1_misses + s.l1_mshr_hits, s.global_accesses);
    }

    #[test]
    fn stale_mshr_entries_expire_lazily() {
        let (mut m, mut s) = sys();
        let fill = m.access(0, 0x6000, false, 0, &mut s);
        // Past the fill time the entry is stale: the access must see a
        // plain L1 hit (the line landed), not a phantom merge.
        let warm = m.access(0, 0x6000, false, fill + 1, &mut s);
        assert_eq!(warm, fill + 1 + 32);
        assert_eq!(s.l1_mshr_hits, 0);
        assert_eq!(s.l1_hits, 1);
        // And the lazy removal means a later same-line miss re-fills
        // rather than returning the long-gone completion time.
        assert_eq!(m.mshr[0].len(), 0);
    }

    #[test]
    fn stores_complete_fast_but_use_bandwidth() {
        let (mut m, mut s) = sys();
        let t = m.access(0, 0x4000, true, 0, &mut s);
        assert_eq!(t, 32);
        assert!(s.noc_flits > 0);
        // Channel is busy afterwards: a load to the same partition
        // queues behind the store's DRAM slot.
        assert!(m.next_event().unwrap() > 0);
    }

    #[test]
    fn channel_bandwidth_serializes() {
        let (mut m, mut s) = sys();
        // Many distinct lines in the same partition (stride = channels × line).
        let stride = 128 * 2;
        let times: Vec<u64> = (0..8u64)
            .map(|i| m.access(0, 0x10_0000 + i * stride, false, 0, &mut s))
            .collect();
        // 8 simultaneous requests at 8-cycle DRAM service ⇒ strictly
        // increasing completion, spread by at least the service interval.
        assert!(times.windows(2).all(|w| w[1] > w[0]));
        assert!(times[7] - times[0] >= 7 * 8);
        assert_eq!(s.l2_misses, 8);
    }

    #[test]
    fn traced_access_classifies_levels() {
        let (mut m, mut s) = sys();
        let mut buf = gscalar_trace::EventBuf::new(16);
        let mut t = Tracer::new(&mut buf);
        // Chronological, as the engine issues them: the merge lands
        // while the fill is still in flight, the warm hit after it.
        let cold = m.access_traced(0, 0x5000, false, 0, &mut s, &mut t);
        m.access_traced(0, 0x5010, false, 1, &mut s, &mut t); // MSHR merge
        m.access_traced(0, 0x5000, false, cold + 1, &mut s, &mut t);
        let levels: Vec<MemLevel> = buf
            .records()
            .iter()
            .map(|r| match r.ev {
                TraceEvent::Mem { level, .. } => level,
                ref other => panic!("unexpected event {other:?}"),
            })
            .collect();
        assert_eq!(
            levels,
            vec![MemLevel::Dram, MemLevel::MshrMerge, MemLevel::L1Hit]
        );
        // The traced variant and the plain one share the timing model.
        assert_eq!(s.global_accesses, 3);
    }

    #[test]
    fn perfect_l1_short_circuits_loads() {
        let mut cfg = GpuConfig::test_small();
        cfg.num_sms = 1;
        cfg.ideal.perfect_l1 = true;
        let mut m = MemSystem::new(&cfg);
        let mut s = MemStats::default();
        let t = m.access(0, 0xF000, false, 0, &mut s);
        assert_eq!(t, 32); // cold load completes at L1-hit latency
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.l1_misses, 0);
        assert_eq!(s.noc_flits, 0);
        assert_eq!(s.mshr_occupancy.count(), 0);
        // Stores keep their write-through path and bandwidth cost.
        m.access(0, 0xF000, true, 0, &mut s);
        assert!(s.noc_flits > 0);
    }

    #[test]
    fn mshr_occupancy_counts_live_fills_only() {
        let (mut m, mut s) = sys();
        // Distinct lines in the same partition; two overlapping misses
        // at t=0 sample occupancies 1 then 2.
        let stride = 128 * 2;
        let t1 = m.access(0, 0x8000, false, 0, &mut s);
        m.access(0, 0x8000 + stride, false, 0, &mut s);
        assert_eq!(s.mshr_occupancy.count(), 2);
        assert_eq!(s.mshr_occupancy.sum(), 1 + 2);
        // Long after both fills land a new miss samples 1 again, even
        // though the lazily-swept `mshr` map may still hold the stale
        // entries the occupancy heap already popped.
        m.access(0, 0x8000 + 2 * stride, false, t1 + 10_000, &mut s);
        assert_eq!(s.mshr_occupancy.count(), 3);
        assert_eq!(s.mshr_occupancy.sum(), 4);
        assert_eq!(s.mshr_occupancy.max(), Some(2));
        // MSHR merges are not new fills and do not sample.
        m.access(0, 0x8000 + 2 * stride + 16, false, t1 + 10_001, &mut s);
        assert_eq!(s.l1_mshr_hits, 1);
        assert_eq!(s.mshr_occupancy.count(), 3);
    }

    #[test]
    fn partitions_are_by_line_address() {
        let (m, _) = sys();
        assert_eq!(m.partition_of(0), 0);
        assert_eq!(m.partition_of(128), 1);
        assert_eq!(m.partition_of(256), 0);
        assert_eq!(m.partition_of(130), 1);
    }
}
