//! Per-warp architectural state: lane registers, predicates, the SIMT
//! stack, and thread identity.

use gscalar_isa::{Dim3, Pred, SReg};

use crate::simt::SimtStack;

/// Architectural state of one warp plus its thread identity within the
/// grid.
#[derive(Debug, Clone)]
pub struct Warp {
    /// Warp index within the SM.
    pub id: usize,
    /// Resident CTA slot this warp belongs to.
    pub cta_slot: usize,
    /// SIMT reconvergence stack (owns the PC and active mask).
    pub simt: SimtStack,
    /// Lane mask of threads that exist (partial last warp of a CTA).
    pub thread_mask: u64,
    /// Per-register lane values: `regs[r][lane]`.
    regs: Vec<Vec<u32>>,
    /// Per-predicate lane bitmasks.
    preds: [u64; Pred::COUNT],
    /// Waiting at a CTA barrier.
    pub at_barrier: bool,
    /// Linear thread id of lane 0 within the CTA.
    pub tid_base: u32,
    /// CTA coordinates within the grid.
    pub cta: Dim3,
    /// CTA dimensions.
    pub block_dim: Dim3,
    /// Grid dimensions (in CTAs).
    pub grid_dim: Dim3,
}

impl Warp {
    /// Creates a warp with `warp_size` lanes, `threads` of which exist,
    /// starting at pc 0.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is 0 or exceeds `warp_size`, or if
    /// `num_regs` is 0 for a kernel that uses registers (callers pass
    /// the kernel's declared register count).
    #[must_use]
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        id: usize,
        cta_slot: usize,
        warp_size: usize,
        threads: usize,
        num_regs: usize,
        tid_base: u32,
        cta: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
    ) -> Self {
        assert!(threads > 0 && threads <= warp_size);
        let mask = crate::full_mask(threads);
        Warp {
            id,
            cta_slot,
            simt: SimtStack::new(0, mask),
            thread_mask: mask,
            regs: vec![vec![0u32; warp_size]; num_regs.max(1)],
            preds: [0; Pred::COUNT],
            at_barrier: false,
            tid_base,
            cta,
            block_dim,
            grid_dim,
        }
    }

    /// The warp is finished.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.simt.is_done()
    }

    /// The instruction's active mask (alive and on current path).
    #[must_use]
    pub fn active(&self) -> u64 {
        self.simt.active()
    }

    /// Reads a register's lane values.
    ///
    /// # Panics
    ///
    /// Panics if `reg` is out of range (255 = RZ must be handled by the
    /// caller).
    #[must_use]
    pub fn reg(&self, reg: u8) -> &[u32] {
        &self.regs[reg as usize]
    }

    /// Writes `values` into `reg` for lanes in `mask`.
    pub fn write_reg(&mut self, reg: u8, values: &[u32], mask: u64) {
        let dst = &mut self.regs[reg as usize];
        for (lane, v) in values.iter().enumerate() {
            if mask & (1 << lane) != 0 {
                dst[lane] = *v;
            }
        }
    }

    /// The full lane-value vector currently stored in `reg`.
    #[must_use]
    pub fn reg_snapshot(&self, reg: u8) -> Vec<u32> {
        self.regs[reg as usize].clone()
    }

    /// Reads a predicate's lane bitmask.
    #[must_use]
    pub fn pred(&self, p: Pred) -> u64 {
        if p.is_true() {
            u64::MAX
        } else {
            self.preds[p.index() as usize]
        }
    }

    /// Writes a predicate for lanes in `mask`.
    pub fn write_pred(&mut self, p: Pred, value: u64, mask: u64) {
        if p.is_true() {
            return; // PT is read-only
        }
        let slot = &mut self.preds[p.index() as usize];
        *slot = (*slot & !mask) | (value & mask);
    }

    /// The value a lane reads from a special register.
    #[must_use]
    pub fn sreg_value(&self, sreg: SReg, lane: usize, warp_size: usize) -> u32 {
        let linear_tid = self.tid_base + lane as u32;
        let tid_x = linear_tid % self.block_dim.x;
        let tid_y = (linear_tid / self.block_dim.x) % self.block_dim.y;
        match sreg {
            SReg::TidX => tid_x,
            SReg::TidY => tid_y,
            SReg::CtaIdX => self.cta.x,
            SReg::CtaIdY => self.cta.y,
            SReg::NTidX => self.block_dim.x,
            SReg::NTidY => self.block_dim.y,
            SReg::NCtaIdX => self.grid_dim.x,
            SReg::LaneId => lane as u32,
            SReg::WarpId => self.tid_base / warp_size as u32,
        }
    }

    /// Whether a special register is warp-uniform (same value in every
    /// lane) — such `S2R` reads produce scalar registers.
    #[must_use]
    pub fn sreg_uniform(sreg: SReg) -> bool {
        matches!(
            sreg,
            SReg::CtaIdX | SReg::CtaIdY | SReg::NTidX | SReg::NTidY | SReg::NCtaIdX | SReg::WarpId
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp() -> Warp {
        Warp::new(
            0,
            0,
            32,
            32,
            8,
            64, // lane 0 is linear tid 64 → warp 2 of the CTA
            Dim3::xy(3, 2),
            Dim3::x(128),
            Dim3::x(10),
        )
    }

    #[test]
    fn masked_register_write() {
        let mut w = warp();
        let ones = vec![1u32; 32];
        w.write_reg(2, &ones, 0xF);
        assert_eq!(w.reg(2)[0], 1);
        assert_eq!(w.reg(2)[3], 1);
        assert_eq!(w.reg(2)[4], 0);
    }

    #[test]
    fn predicate_pt_is_constant() {
        let mut w = warp();
        assert_eq!(w.pred(Pred::PT), u64::MAX);
        w.write_pred(Pred::PT, 0, u64::MAX);
        assert_eq!(w.pred(Pred::PT), u64::MAX);
    }

    #[test]
    fn predicate_masked_update() {
        let mut w = warp();
        let p = Pred::new(1);
        w.write_pred(p, 0b1010, 0b1111);
        assert_eq!(w.pred(p), 0b1010);
        // Update only lane 0: other lanes unchanged.
        w.write_pred(p, 0b0001, 0b0001);
        assert_eq!(w.pred(p), 0b1011);
    }

    #[test]
    fn special_registers() {
        let w = warp();
        assert_eq!(w.sreg_value(SReg::TidX, 0, 32), 64);
        assert_eq!(w.sreg_value(SReg::TidX, 5, 32), 69);
        assert_eq!(w.sreg_value(SReg::CtaIdX, 3, 32), 3);
        assert_eq!(w.sreg_value(SReg::CtaIdY, 3, 32), 2);
        assert_eq!(w.sreg_value(SReg::NTidX, 0, 32), 128);
        assert_eq!(w.sreg_value(SReg::LaneId, 7, 32), 7);
        assert_eq!(w.sreg_value(SReg::WarpId, 0, 32), 2);
        assert!(Warp::sreg_uniform(SReg::CtaIdX));
        assert!(!Warp::sreg_uniform(SReg::TidX));
        assert!(!Warp::sreg_uniform(SReg::LaneId));
    }

    #[test]
    fn partial_warp_mask() {
        let w = Warp::new(0, 0, 32, 20, 4, 0, Dim3::x(0), Dim3::x(20), Dim3::x(1));
        assert_eq!(w.thread_mask, (1 << 20) - 1);
        assert_eq!(w.active(), (1 << 20) - 1);
    }

    #[test]
    fn two_dimensional_tid() {
        let w = Warp::new(0, 0, 32, 32, 4, 0, Dim3::x(0), Dim3::xy(8, 8), Dim3::x(1));
        // lane 10 → tid (2, 1)
        assert_eq!(w.sreg_value(SReg::TidX, 10, 32), 2);
        assert_eq!(w.sreg_value(SReg::TidY, 10, 32), 1);
    }
}
