//! A cycle-level SIMT GPU simulator (Fermi/GTX 480-class) built for the
//! G-Scalar (HPCA 2017) reproduction.
//!
//! The simulator is *functional-first*: every instruction computes real
//! 32-bit lane values, so the byte-wise register compression and scalar
//! detection hardware (from [`gscalar_compress`]) observe genuine
//! register contents. Timing is modeled per SM cycle:
//!
//! * two GTO [schedulers](scheduler) issuing up to one instruction each,
//! * a per-warp [scoreboard] (RAW/WAW),
//! * a [SIMT reconvergence stack](simt) driven by the kernel's
//!   post-dominator analysis,
//! * 16 [operand collectors](regfile) arbitrating over 16 single-ported
//!   register banks — with the per-bank BVR ports of the G-Scalar design
//!   and the single scalar-RF port of the prior-work design,
//! * two 16-lane ALU [pipelines](pipeline), a 4-lane SFU pipeline and a
//!   16-lane LSU,
//! * a [memory hierarchy](memsys) of per-SM L1s, a partitioned L2, and
//!   bandwidth-limited DRAM channels.
//!
//! Architecture variants (baseline, prior-work "ALU scalar", G-Scalar)
//! are expressed as [`ArchConfig`] flags; presets live in
//! `gscalar-core`.
//!
//! # Examples
//!
//! ```
//! use gscalar_isa::{KernelBuilder, LaunchConfig, Operand, SReg};
//! use gscalar_sim::{Gpu, GpuConfig, ArchConfig, memory::GlobalMemory};
//!
//! let mut b = KernelBuilder::new("inc");
//! let tid = b.s2r(SReg::TidX);
//! let off = b.shl(tid.into(), Operand::Imm(2));
//! let addr = b.iadd(off.into(), Operand::Imm(0x1000));
//! let v = b.ld_global(addr, 0);
//! let v2 = b.iadd(v.into(), Operand::Imm(1));
//! b.st_global(addr, v2, 0);
//! b.exit();
//! let kernel = b.build().unwrap();
//!
//! let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
//! let mut mem = GlobalMemory::new();
//! mem.write_u32(0x1000, 41);
//! let stats = gpu.run(&kernel, LaunchConfig::linear(1, 32), &mut mem);
//! assert_eq!(mem.read_u32(0x1000), 42);
//! assert!(stats.ipc() > 0.0);
//! ```

pub mod cache;
pub mod config;
pub mod exec;
pub mod gpu;
pub mod live;
pub mod memory;
pub mod memsys;
pub mod metrics;
pub mod parallel;
pub mod pipeline;
pub mod reference;
pub mod regfile;
pub mod scheduler;
pub mod scoreboard;
pub mod simt;
pub mod sm;
pub mod stats;
pub mod warp;

pub use config::{ArchConfig, GpuConfig, IdealConfig, Latencies};
pub use gpu::{Gpu, NullObserver, RunObserver};
pub use live::LiveObserver;
pub use metrics::MetricsObserver;
pub use stats::{ScalarClass, SchedStats, Stats};

/// Re-export of the per-PC profiling handle (see [`gscalar_profile`]).
pub use gscalar_profile::{KernelProfile, Profiler};

/// Re-export of [`gscalar_compress::full_mask`] for convenience.
pub use gscalar_compress::full_mask;
