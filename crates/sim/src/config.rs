//! GPU and architecture configuration (the paper's Table 1).

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::scheduler::SchedPolicy;

/// Process-wide default for [`GpuConfig::exec_threads`], consulted by
/// [`GpuConfig::gtx480`] (and everything derived from it). See
/// [`set_default_exec_threads`].
static DEFAULT_EXEC_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Sets the process-wide default for [`GpuConfig::exec_threads`]
/// picked up by configs constructed *afterwards*: 1 runs serial, 0
/// resolves to the machine's available parallelism, `n` uses `n`
/// worker threads.
///
/// Binaries apply their `--sim-threads` flag here once at startup, so
/// experiment grids that build `GpuConfig::gtx480()` deep inside job
/// closures inherit the knob without plumbing. The engines produce
/// byte-identical results at any thread count, which is what keeps
/// this global sound: it can change *speed*, never *output*.
pub fn set_default_exec_threads(threads: usize) {
    DEFAULT_EXEC_THREADS.store(threads, Ordering::Relaxed);
}

/// The current process-wide default for [`GpuConfig::exec_threads`].
#[must_use]
pub fn default_exec_threads() -> usize {
    DEFAULT_EXEC_THREADS.load(Ordering::Relaxed)
}

/// Timing/resource configuration of the modeled GPU.
///
/// Defaults come from [`GpuConfig::gtx480`], matching the paper's
/// Table 1 (an NVIDIA GTX 480 / Fermi-class part simulated on
/// GPGPU-Sim 3.2.2).
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: usize,
    /// Threads per warp (32; 64 for the Figure 10 study).
    pub warp_size: usize,
    /// 4-byte registers per SM (32,768 = 128 KB).
    pub regs_per_sm: usize,
    /// Register file banks per SM.
    pub rf_banks: usize,
    /// Operand collectors per SM.
    pub operand_collectors: usize,
    /// Warp schedulers per SM (each issues up to one instruction/cycle).
    pub schedulers: usize,
    /// SIMT execution pipeline width (lanes per ALU/LSU pipe).
    pub simt_width: usize,
    /// Number of ALU pipelines per SM.
    pub alu_pipes: usize,
    /// SFU pipeline width (lanes).
    pub sfu_width: usize,
    /// Maximum resident threads per SM.
    pub threads_per_sm: usize,
    /// Maximum resident CTAs per SM.
    pub ctas_per_sm: usize,
    /// Maximum shared memory per SM in bytes.
    pub shared_mem_per_sm: u32,
    /// L1 data cache size per SM in bytes.
    pub l1_bytes: usize,
    /// L1 associativity.
    pub l1_ways: usize,
    /// Unified L2 size in bytes (partitioned across memory channels).
    pub l2_bytes: usize,
    /// L2 associativity.
    pub l2_ways: usize,
    /// Cache line size in bytes.
    pub line_bytes: usize,
    /// Memory channels (L2 partitions / DRAM channels).
    pub mem_channels: usize,
    /// SM clock in Hz.
    pub sm_clock_hz: f64,
    /// Interconnect clock in Hz.
    pub noc_clock_hz: f64,
    /// Warp scheduling policy.
    pub sched: SchedPolicy,
    /// Timing latencies.
    pub lat: Latencies,
    /// Worker threads for the in-process parallel execution engine
    /// (see `crate::parallel`): 1 ticks SMs serially, 0 resolves to
    /// the machine's available parallelism, `n` > 1 shards the per-
    /// cycle SM loop over `n` threads. Results are byte-identical at
    /// any value; only wall-clock time changes.
    pub exec_threads: usize,
    /// What-if idealization knobs (all off for real hardware models).
    pub ideal: IdealConfig,
}

/// Idealization overrides for what-if studies (`gscalar-analyze`):
/// each knob removes one bottleneck from the timing model so an
/// analytic projection computed from the CPI stack can be validated
/// against a real re-simulation. All knobs default to off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IdealConfig {
    /// Every global load hits in L1 (stores keep their write-through
    /// timing). Models an infinite, pre-warmed L1.
    pub perfect_l1: bool,
    /// Branches never diverge: when any active lane takes a branch,
    /// every active lane follows it, so the SIMT stack never splits.
    /// This changes *functional* execution (lanes run instructions they
    /// would have skipped), which is acceptable for a timing what-if;
    /// loop exits still converge because forced-active lanes keep
    /// updating their own induction state.
    pub uniform_branches: bool,
    /// Special-function operations complete in a single cycle.
    pub zero_latency_sfu: bool,
    /// Unbounded MSHRs. The modeled MSHR file is *already* unbounded
    /// (misses merge without a capacity limit), so this knob changes
    /// nothing — it exists so the what-if table can state that fact
    /// with a measured 1.0× speedup instead of an assumption.
    pub infinite_mshrs: bool,
}

/// Pipeline and memory latencies, in SM cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// Simple integer ALU result latency.
    pub int_alu: u64,
    /// Integer multiply / multiply-add.
    pub int_mul: u64,
    /// Integer divide (long-latency; LC's sensitivity in Section 5.4).
    pub int_div: u64,
    /// Floating-point add/mul/FMA.
    pub fp_alu: u64,
    /// Special-function operation.
    pub sfu: u64,
    /// Shared-memory access.
    pub shared_mem: u64,
    /// L1 hit.
    pub l1_hit: u64,
    /// Additional latency L1 → L2 (one-way NoC + L2 access).
    pub l2: u64,
    /// Additional latency L2 → DRAM.
    pub dram: u64,
    /// DRAM channel service interval per 128-byte request (bandwidth).
    pub dram_service: u64,
    /// L2 partition service interval per request.
    pub l2_service: u64,
}

impl GpuConfig {
    /// The paper's Table 1 configuration (GTX 480-like).
    #[must_use]
    pub fn gtx480() -> Self {
        GpuConfig {
            num_sms: 15,
            warp_size: 32,
            regs_per_sm: 32 * 1024,
            rf_banks: 16,
            operand_collectors: 16,
            schedulers: 2,
            simt_width: 16,
            alu_pipes: 2,
            sfu_width: 4,
            threads_per_sm: 1536,
            ctas_per_sm: 8,
            shared_mem_per_sm: 48 * 1024,
            l1_bytes: 16 * 1024,
            l1_ways: 4,
            l2_bytes: 768 * 1024,
            l2_ways: 8,
            line_bytes: 128,
            mem_channels: 6,
            sm_clock_hz: 1.4e9,
            noc_clock_hz: 0.7e9,
            sched: SchedPolicy::Gto,
            lat: Latencies {
                int_alu: 8,
                int_mul: 12,
                int_div: 120,
                fp_alu: 10,
                sfu: 24,
                shared_mem: 26,
                l1_hit: 32,
                l2: 120,
                dram: 220,
                dram_service: 8,
                l2_service: 2,
            },
            exec_threads: default_exec_threads(),
            ideal: IdealConfig::default(),
        }
    }

    /// A scaled-down configuration for fast unit tests: one SM, small
    /// caches, short latencies. Timing phenomena (banks, divergence,
    /// scalar execution) are unchanged.
    #[must_use]
    pub fn test_small() -> Self {
        let mut c = Self::gtx480();
        c.num_sms = 1;
        c.threads_per_sm = 512;
        c.ctas_per_sm = 4;
        c.l1_bytes = 4 * 1024;
        c.l2_bytes = 64 * 1024;
        c.mem_channels = 2;
        c
    }

    /// Vector registers per SM (each holds `warp_size` 4-byte values).
    #[must_use]
    pub fn vector_regs_per_sm(&self) -> usize {
        self.regs_per_sm / self.warp_size
    }

    /// Vector registers per bank.
    #[must_use]
    pub fn vector_regs_per_bank(&self) -> usize {
        self.vector_regs_per_sm() / self.rf_banks
    }

    /// Maximum resident warps per SM.
    #[must_use]
    pub fn warps_per_sm(&self) -> usize {
        self.threads_per_sm / self.warp_size
    }

    /// SRAM data arrays per register-file bank (one per byte plane per
    /// 16-lane chunk; 8 for a 32-wide warp).
    #[must_use]
    pub fn arrays_per_bank(&self) -> usize {
        4 * self.warp_size.div_ceil(gscalar_compress::CHUNK_LANES)
    }
}

impl Default for GpuConfig {
    fn default() -> Self {
        Self::gtx480()
    }
}

/// Architecture feature flags distinguishing the paper's evaluated
/// designs (baseline, "ALU scalar" prior work, G-Scalar variants).
///
/// Presets live in `gscalar-core`; the simulator only consumes flags.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArchConfig {
    /// Human-readable name for reports.
    pub name: String,
    /// Scalar execution of non-divergent ALU instructions.
    pub scalar_alu: bool,
    /// Scalar execution of non-divergent SFU instructions.
    pub scalar_sfu: bool,
    /// Scalar execution of non-divergent memory instructions.
    pub scalar_mem: bool,
    /// Half-warp scalar execution (16-lane chunks, non-divergent only).
    pub scalar_half: bool,
    /// Scalar execution of divergent instructions (Section 4.2).
    pub scalar_divergent: bool,
    /// Byte-wise compressed register file storage (Section 3).
    pub compression: bool,
    /// Prior-work dedicated scalar register file: one extra bank that
    /// serves *all* scalar operands (the Section 4.1 bottleneck).
    pub dedicated_scalar_rf: bool,
    /// Extra pipeline cycles before dependents may issue (the paper adds
    /// 3: compress, decompress, and EBR/BVR read stages).
    pub extra_latency: u64,
    /// Compiler-assisted decompress-move elision (Section 3.3): skip
    /// the special move when liveness analysis proves the destination's
    /// previous value dead.
    pub compiler_assisted_moves: bool,
    /// Let scalar/half-scalar instructions release the dispatch port in
    /// one cycle instead of the full multi-cycle warp occupancy. The
    /// paper's evaluated design clock-gates lanes but keeps normal
    /// dispatch timing (Figure 11's IPC never exceeds baseline), so
    /// this defaults to false; Section 6 notes the 1-cycle opportunity,
    /// measured by the `abl_fast_dispatch` study.
    pub scalar_fast_dispatch: bool,
}

impl ArchConfig {
    /// The unmodified baseline GPU.
    #[must_use]
    pub fn baseline() -> Self {
        ArchConfig {
            name: "baseline".into(),
            scalar_alu: false,
            scalar_sfu: false,
            scalar_mem: false,
            scalar_half: false,
            scalar_divergent: false,
            compression: false,
            dedicated_scalar_rf: false,
            extra_latency: 0,
            compiler_assisted_moves: false,
            scalar_fast_dispatch: false,
        }
    }

    /// Whether any scalar-execution feature is enabled.
    #[must_use]
    pub fn any_scalar(&self) -> bool {
        self.scalar_alu || self.scalar_sfu || self.scalar_mem || self.scalar_divergent
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = GpuConfig::gtx480();
        assert_eq!(c.num_sms, 15);
        assert_eq!(c.regs_per_sm * 4, 128 * 1024); // 128 KB
        assert_eq!(c.rf_banks, 16);
        assert_eq!(c.operand_collectors, 16);
        assert_eq!(c.warp_size, 32);
        assert_eq!(c.schedulers, 2);
        assert_eq!(c.simt_width, 16);
        assert_eq!(c.threads_per_sm, 1536);
        assert_eq!(c.ctas_per_sm, 8);
        assert_eq!(c.l1_bytes, 16 * 1024);
        assert_eq!(c.l2_bytes, 768 * 1024);
        assert_eq!(c.mem_channels, 6);
        assert!((c.sm_clock_hz - 1.4e9).abs() < 1.0);
        assert!((c.noc_clock_hz - 0.7e9).abs() < 1.0);
    }

    #[test]
    fn derived_quantities() {
        let c = GpuConfig::gtx480();
        assert_eq!(c.vector_regs_per_sm(), 1024);
        assert_eq!(c.vector_regs_per_bank(), 64);
        assert_eq!(c.warps_per_sm(), 48);
        assert_eq!(c.arrays_per_bank(), 8);
    }

    #[test]
    fn exec_threads_defaults_to_serial() {
        // Other tests in this process may set the global default, so
        // assert through the hook rather than assuming it is untouched.
        assert_eq!(GpuConfig::gtx480().exec_threads, default_exec_threads());
    }

    #[test]
    fn baseline_arch_has_nothing_enabled() {
        let a = ArchConfig::baseline();
        assert!(!a.any_scalar());
        assert!(!a.compression);
        assert_eq!(a.extra_latency, 0);
    }

    #[test]
    fn idealizations_default_off() {
        // Every preset must model the real machine unless a what-if
        // study explicitly flips a knob.
        for c in [GpuConfig::gtx480(), GpuConfig::test_small()] {
            assert_eq!(c.ideal, IdealConfig::default());
            let IdealConfig {
                perfect_l1,
                uniform_branches,
                zero_latency_sfu,
                infinite_mshrs,
            } = c.ideal;
            assert!(!perfect_l1);
            assert!(!uniform_branches);
            assert!(!zero_latency_sfu);
            assert!(!infinite_mshrs);
        }
    }
}
