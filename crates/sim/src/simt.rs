//! The SIMT reconvergence stack handling branch divergence.

/// One stack entry: a path of execution with its own PC and lane mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Entry {
    pc: usize,
    mask: u64,
    /// PC at which this entry merges into the one below it; `usize::MAX`
    /// when the path only ends at thread exit.
    reconv: usize,
    /// PC of the diverging branch that pushed this path; `usize::MAX`
    /// for the base entry and join continuations.
    origin: usize,
}

/// Sentinel for "no reconvergence before exit".
const NO_RECONV: usize = usize::MAX;

/// Sentinel for "not pushed by a branch".
const NO_ORIGIN: usize = usize::MAX;

/// A per-warp SIMT stack (post-dominator reconvergence, as in
/// GPGPU-Sim and the paper's baseline).
///
/// # Examples
///
/// ```
/// use gscalar_sim::simt::SimtStack;
///
/// let mut s = SimtStack::new(0, 0xF); // 4 live lanes at pc 0
/// assert_eq!(s.active(), 0xF);
/// // Lanes 0-1 take a branch to 10, lanes 2-3 fall through to 1,
/// // reconverging at 20.
/// s.branch(0b0011, 10, 1, Some(20));
/// assert_eq!(s.pc(), 1); // fall-through path runs first
/// assert_eq!(s.active(), 0b1100);
/// ```
#[derive(Debug, Clone)]
pub struct SimtStack {
    entries: Vec<Entry>,
    exited: u64,
    /// `(origin branch pc, rejoined)` for each branch-pushed path
    /// popped by the most recent operation — `rejoined` is `true` when
    /// the path reached its reconvergence point, `false` when every
    /// lane on it exited. Cleared at the start of each operation; the
    /// profiler drains it via [`path_events`](SimtStack::path_events).
    path_events: Vec<(usize, bool)>,
}

impl SimtStack {
    /// Creates a stack with all `mask` lanes live at `entry_pc`.
    #[must_use]
    pub fn new(entry_pc: usize, mask: u64) -> Self {
        SimtStack {
            entries: vec![Entry {
                pc: entry_pc,
                mask,
                reconv: NO_RECONV,
                origin: NO_ORIGIN,
            }],
            exited: 0,
            path_events: Vec::new(),
        }
    }

    /// The current active lane mask (empty once the warp is done).
    #[must_use]
    pub fn active(&self) -> u64 {
        self.entries.last().map_or(0, |e| e.mask & !self.exited)
    }

    /// The current PC.
    ///
    /// # Panics
    ///
    /// Panics if the warp is done.
    #[must_use]
    pub fn pc(&self) -> usize {
        self.entries.last().expect("warp is done").pc
    }

    /// Whether every lane has exited.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.entries.is_empty()
    }

    /// Lanes that have exited so far.
    #[must_use]
    pub fn exited(&self) -> u64 {
        self.exited
    }

    /// Current stack depth (1 when converged).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.entries.len()
    }

    /// Branch-pushed paths popped by the most recent
    /// `advance`/`branch`/`exit`, as `(origin branch pc, rejoined)`.
    #[must_use]
    pub fn path_events(&self) -> &[(usize, bool)] {
        &self.path_events
    }

    /// Advances the current path to `next_pc` (non-branch instruction),
    /// popping if the path reaches its reconvergence point.
    pub fn advance(&mut self, next_pc: usize) {
        self.path_events.clear();
        if let Some(top) = self.entries.last_mut() {
            top.pc = next_pc;
        }
        self.normalize();
    }

    /// Executes a branch: `taken` is the subset of active lanes whose
    /// guard passed, `target` the branch target, `fallthrough` the next
    /// sequential PC, and `reconv` the reconvergence PC from the
    /// kernel's post-dominator analysis.
    ///
    /// Returns `true` when the branch diverged (both paths non-empty).
    pub fn branch(
        &mut self,
        taken: u64,
        target: usize,
        fallthrough: usize,
        reconv: Option<usize>,
    ) -> bool {
        let active = self.active();
        let taken = taken & active;
        let not_taken = active & !taken;
        let diverged = taken != 0 && not_taken != 0;
        if !diverged {
            let next = if taken != 0 { target } else { fallthrough };
            self.advance(next);
            return false;
        }
        self.path_events.clear();
        let r = reconv.unwrap_or(NO_RECONV);
        let top = self
            .entries
            .last_mut()
            .expect("active lanes imply an entry");
        // The top entry's PC is still the branch's own PC: it is the
        // origin charged for the two paths pushed below.
        let origin = top.pc;
        // The current entry becomes the join continuation.
        top.pc = r;
        self.entries.push(Entry {
            pc: target,
            mask: taken,
            reconv: r,
            origin,
        });
        self.entries.push(Entry {
            pc: fallthrough,
            mask: not_taken,
            reconv: r,
            origin,
        });
        self.normalize();
        true
    }

    /// Retires the current path's active lanes (an `EXIT`).
    pub fn exit(&mut self) {
        self.path_events.clear();
        self.exited |= self.active();
        self.normalize();
    }

    fn normalize(&mut self) {
        while let Some(top) = self.entries.last() {
            let live = top.mask & !self.exited;
            let rejoined = top.pc == top.reconv;
            if live == 0 || rejoined {
                if top.origin != NO_ORIGIN {
                    self.path_events.push((top.origin, rejoined && live != 0));
                }
                self.entries.pop();
                continue;
            }
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn straight_line_advance() {
        let mut s = SimtStack::new(0, 0xFF);
        s.advance(1);
        s.advance(2);
        assert_eq!(s.pc(), 2);
        assert_eq!(s.active(), 0xFF);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn uniform_branch_does_not_diverge() {
        let mut s = SimtStack::new(0, 0xF);
        assert!(!s.branch(0xF, 7, 1, Some(9)));
        assert_eq!(s.pc(), 7);
        assert!(!s.branch(0, 3, 8, Some(9)));
        assert_eq!(s.pc(), 8);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn divergence_and_reconvergence() {
        let mut s = SimtStack::new(0, 0xF);
        assert!(s.branch(0b0011, 10, 1, Some(20)));
        // Fall-through path first.
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active(), 0b1100);
        assert_eq!(s.depth(), 3);
        // Fall-through reaches reconvergence → taken path runs.
        s.advance(20);
        assert_eq!(s.pc(), 10);
        assert_eq!(s.active(), 0b0011);
        // Taken path reaches reconvergence → join entry with all lanes.
        s.advance(20);
        assert_eq!(s.pc(), 20);
        assert_eq!(s.active(), 0xF);
        assert_eq!(s.depth(), 1);
    }

    #[test]
    fn nested_divergence() {
        let mut s = SimtStack::new(0, 0xF);
        s.branch(0b0001, 10, 1, Some(30)); // outer
        assert_eq!(s.pc(), 1);
        assert_eq!(s.active(), 0b1110);
        s.branch(0b0010, 20, 2, Some(25)); // inner split of {1110}
        assert_eq!(s.pc(), 2);
        assert_eq!(s.active(), 0b1100);
        s.advance(25); // inner fall-through joins
        assert_eq!(s.pc(), 20);
        assert_eq!(s.active(), 0b0010);
        s.advance(25); // inner taken joins
        assert_eq!(s.pc(), 25);
        assert_eq!(s.active(), 0b1110);
        s.advance(30); // outer fall-through side joins
        assert_eq!(s.pc(), 10);
        assert_eq!(s.active(), 0b0001);
        s.advance(30);
        assert_eq!(s.pc(), 30);
        assert_eq!(s.active(), 0xF);
    }

    #[test]
    fn divergent_exit_path() {
        let mut s = SimtStack::new(0, 0xF);
        // Lanes 0-1 branch to an exit block at 10 with no reconvergence.
        s.branch(0b0011, 10, 1, None);
        assert_eq!(s.pc(), 1);
        s.advance(2);
        // Fall-through path exits.
        s.exit();
        // Taken path becomes active.
        assert_eq!(s.pc(), 10);
        assert_eq!(s.active(), 0b0011);
        s.exit();
        assert!(s.is_done());
        assert_eq!(s.exited(), 0xF);
    }

    #[test]
    fn full_warp_exit() {
        let mut s = SimtStack::new(5, u64::MAX);
        s.exit();
        assert!(s.is_done());
        assert_eq!(s.active(), 0);
    }

    #[test]
    fn path_events_attribute_pops_to_the_branch() {
        let mut s = SimtStack::new(5, 0xF);
        // Diverging branch at pc 5, reconverging at 20.
        assert!(s.branch(0b0011, 10, 6, Some(20)));
        assert!(s.path_events().is_empty());
        // Fall-through path rejoins at 20 → one rejoin charged to pc 5.
        s.advance(20);
        assert_eq!(s.path_events(), &[(5, true)]);
        // An unrelated advance clears the event buffer.
        s.advance(11);
        assert!(s.path_events().is_empty());
        // Taken path exits before reconverging → charged as exited.
        s.exit();
        assert_eq!(s.path_events(), &[(5, false)]);
        // Remaining join entry has no origin: popping it emits nothing.
        assert_eq!(s.pc(), 20);
        s.exit();
        assert!(s.path_events().is_empty());
        assert!(s.is_done());
    }

    #[test]
    fn loop_divergence_trip_counts() {
        // Two lanes loop a different number of times:
        // 0: body; 1: branch back to 0 while counter < n; 2: exit
        let mut s = SimtStack::new(0, 0b11);
        let mut counters = [0u32, 0u32];
        let trips = [2u32, 4u32];
        let mut iterations = 0;
        loop {
            match s.pc() {
                0 => {
                    for (lane, c) in counters.iter_mut().enumerate() {
                        if s.active() & (1 << lane) != 0 {
                            *c += 1;
                        }
                    }
                    s.advance(1);
                }
                1 => {
                    let mut taken = 0u64;
                    for lane in 0..2 {
                        if s.active() & (1 << lane) != 0 && counters[lane] < trips[lane] {
                            taken |= 1 << lane;
                        }
                    }
                    s.branch(taken, 0, 2, Some(2));
                }
                2 => {
                    s.exit();
                    break;
                }
                _ => unreachable!(),
            }
            iterations += 1;
            assert!(iterations < 100, "loop failed to converge");
        }
        assert_eq!(counters, [2, 4]);
        assert!(s.is_done());
    }
}
