//! The full GPU: SMs, the CTA scheduler, and the run loop.

use gscalar_hostprof as hostprof;
use gscalar_isa::{Dim3, Kernel, LaunchConfig};
use gscalar_profile::Profiler;
use gscalar_trace::{TraceEvent, Tracer};

use crate::config::{ArchConfig, GpuConfig};
use crate::memory::GlobalMemory;
use crate::memsys::MemSystem;
use crate::sm::Sm;
use crate::stats::Stats;

/// Safety valve: a run exceeding this many cycles panics instead of
/// spinning forever (a workload bug, not a hardware condition).
pub(crate) const WATCHDOG_CYCLES: u64 = 2_000_000_000;

/// Receives interval samples and the final state of a simulation run.
///
/// Implementations feed metrics registries and power timelines without
/// the run loop knowing about either. [`Gpu::run_observed`] calls
/// [`sample`](RunObserver::sample) with *cumulative* merged-across-SMs
/// statistics each time the clock crosses a multiple of the sample
/// interval (idle-skip jumps may cross several boundaries; one sample at
/// the latest boundary is delivered, since the counters are cumulative),
/// and [`finish`](RunObserver::finish) exactly once at the end.
pub trait RunObserver {
    /// One interval sample: `stats` is the cumulative merged state of
    /// every SM with `stats.cycles` set to the boundary cycle.
    fn sample(&mut self, cycle: u64, stats: &Stats);

    /// Per-SM detail of one interval sample: called once per SM (in SM
    /// id order) immediately before the merged [`sample`] at the same
    /// boundary, with that SM's own cumulative statistics. The default
    /// does nothing, so observers that only need the merged view are
    /// unaffected.
    ///
    /// [`sample`]: RunObserver::sample
    fn sample_sm(&mut self, cycle: u64, sm: usize, stats: &Stats) {
        let _ = (cycle, sm, stats);
    }

    /// The run is complete: `merged` is the final aggregate (identical
    /// to the run's return value) and `per_sm` holds each SM's own
    /// statistics.
    fn finish(&mut self, cycle: u64, merged: &Stats, per_sm: &[Stats]) {
        let _ = (cycle, merged, per_sm);
    }
}

/// The no-op observer used by [`Gpu::run`] and [`Gpu::run_traced`].
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl RunObserver for NullObserver {
    fn sample(&mut self, _cycle: u64, _stats: &Stats) {}
}

/// A complete GPU executing one kernel launch at a time.
///
/// # Examples
///
/// ```
/// use gscalar_isa::{KernelBuilder, LaunchConfig, Operand};
/// use gscalar_sim::{Gpu, GpuConfig, ArchConfig, memory::GlobalMemory};
///
/// let mut b = KernelBuilder::new("tiny");
/// b.mov(Operand::Imm(7));
/// b.exit();
/// let kernel = b.build().unwrap();
///
/// let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
/// let mut mem = GlobalMemory::new();
/// let stats = gpu.run(&kernel, LaunchConfig::linear(2, 64), &mut mem);
/// assert!(stats.cycles > 0);
/// assert!(stats.instr.warp_instrs >= 4); // 2 CTAs × 2 warps × ≥1 instr
/// ```
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    arch: ArchConfig,
}

impl Gpu {
    /// Creates a GPU with the given hardware and architecture
    /// configuration.
    #[must_use]
    pub fn new(cfg: GpuConfig, arch: ArchConfig) -> Self {
        Gpu { cfg, arch }
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The architecture flags.
    #[must_use]
    pub fn arch(&self) -> &ArchConfig {
        &self.arch
    }

    /// Runs `kernel` over `launch` against `gmem`, returning aggregate
    /// statistics.
    ///
    /// # Panics
    ///
    /// Panics if a CTA cannot fit on an empty SM (CTA too large for the
    /// configuration) or the watchdog trips.
    pub fn run(&mut self, kernel: &Kernel, launch: LaunchConfig, gmem: &mut GlobalMemory) -> Stats {
        self.run_traced(kernel, launch, gmem, &mut Tracer::off(), 0)
    }

    /// [`Gpu::run_traced`] plus interval observation: when
    /// `sample_interval > 0`, `observer` receives cumulative
    /// merged-across-SMs statistics at every crossed multiple of the
    /// interval, and a final [`RunObserver::finish`] call either way.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Gpu::run`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_observed(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        gmem: &mut GlobalMemory,
        tracer: &mut Tracer<'_>,
        snapshot_interval: u64,
        sample_interval: u64,
        observer: &mut dyn RunObserver,
    ) -> Stats {
        self.run_inner(
            kernel,
            launch,
            gmem,
            tracer,
            snapshot_interval,
            sample_interval,
            observer,
            &mut Profiler::off(),
        )
    }

    /// [`Gpu::run`] with per-static-instruction profiling: every issue
    /// slot, attributed stall cycle, eligibility classification,
    /// execution span, compressor outcome, and branch execution is
    /// recorded into `profiler` (see `gscalar_profile`). Combine with a
    /// live `tracer` freely; the two instruments are independent.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Gpu::run`].
    pub fn run_profiled(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        gmem: &mut GlobalMemory,
        tracer: &mut Tracer<'_>,
        profiler: &mut Profiler,
    ) -> Stats {
        self.run_inner(
            kernel,
            launch,
            gmem,
            tracer,
            0,
            0,
            &mut NullObserver,
            profiler,
        )
    }

    /// [`Gpu::run`] with cycle-level tracing: events are emitted into
    /// `tracer`, and when `snapshot_interval > 0` a
    /// [`TraceEvent::Snapshot`] with cumulative per-SM counters is
    /// emitted each time the clock crosses a multiple of the interval
    /// (idle-skip jumps emit one snapshot at the latest boundary
    /// crossed).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Gpu::run`].
    pub fn run_traced(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        gmem: &mut GlobalMemory,
        tracer: &mut Tracer<'_>,
        snapshot_interval: u64,
    ) -> Stats {
        self.run_inner(
            kernel,
            launch,
            gmem,
            tracer,
            snapshot_interval,
            0,
            &mut NullObserver,
            &mut Profiler::off(),
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_inner(
        &mut self,
        kernel: &Kernel,
        launch: LaunchConfig,
        gmem: &mut GlobalMemory,
        tracer: &mut Tracer<'_>,
        snapshot_interval: u64,
        sample_interval: u64,
        observer: &mut dyn RunObserver,
        profiler: &mut Profiler,
    ) -> Stats {
        let exec_threads =
            gscalar_pool::resolve_threads(self.cfg.exec_threads).min(self.cfg.num_sms);
        if exec_threads > 1 {
            return crate::parallel::run_parallel(
                &self.cfg,
                &self.arch,
                exec_threads,
                kernel,
                launch,
                gmem,
                tracer,
                snapshot_interval,
                sample_interval,
                observer,
                profiler,
            );
        }
        let mut memsys = MemSystem::new(&self.cfg);
        let mut sms: Vec<Sm> = (0..self.cfg.num_sms)
            .map(|i| Sm::new(i, &self.cfg, &self.arch, kernel.num_regs() as usize))
            .collect();

        // CTA work list in linear order.
        let total_ctas = launch.grid.count();
        let mut next_cta: u64 = 0;
        let mut ctas_done: u64 = 0;
        let threads = launch.threads_per_cta() as usize;
        let warps_per_cta = threads.div_ceil(self.cfg.warp_size);

        // Initial fill, round-robin over SMs.
        let fill_phase = hostprof::phase(hostprof::Phase::CtaLaunch);
        let mut made_progress = true;
        while made_progress && next_cta < total_ctas {
            made_progress = false;
            for sm in &mut sms {
                if next_cta >= total_ctas {
                    break;
                }
                if sm.can_accept_cta(warps_per_cta, kernel.shared_mem_bytes()) {
                    sm.launch_cta(
                        kernel,
                        cta_coord(next_cta, launch.grid),
                        launch.grid,
                        launch.block,
                    );
                    next_cta += 1;
                    made_progress = true;
                }
            }
        }
        assert!(
            next_cta > 0,
            "CTA of {threads} threads does not fit the configuration"
        );
        drop(fill_phase);

        let mut now: u64 = 0;
        let mut last_snapshot: u64 = 0;
        let mut last_sample: u64 = 0;
        while ctas_done < total_ctas {
            let mut any_activity = false;
            for sm in &mut sms {
                let before = sm.stats.pipe.issued + sm.stats.pipe.oc_allocs;
                let completed = sm.cycle(now, kernel, gmem, &mut memsys, tracer, profiler);
                if completed > 0 {
                    ctas_done += completed as u64;
                    // Refill this SM.
                    let _fill_phase = hostprof::phase(hostprof::Phase::CtaLaunch);
                    while next_cta < total_ctas
                        && sm.can_accept_cta(warps_per_cta, kernel.shared_mem_bytes())
                    {
                        sm.launch_cta(
                            kernel,
                            cta_coord(next_cta, launch.grid),
                            launch.grid,
                            launch.block,
                        );
                        next_cta += 1;
                    }
                }
                if completed > 0
                    || sm.stats.pipe.issued + sm.stats.pipe.oc_allocs != before
                    || sm.collectors_pending()
                {
                    any_activity = true;
                }
            }
            if ctas_done >= total_ctas {
                now += 1;
                break;
            }
            if any_activity {
                now += 1;
            } else {
                // Idle: skip ahead to the next pipeline completion or
                // scoreboard release.
                let _idle_phase = hostprof::phase(hostprof::Phase::IdleScan);
                let next = sms
                    .iter()
                    .flat_map(|sm| {
                        sm.next_event()
                            .into_iter()
                            .chain((sm.last_release() > now).then(|| sm.last_release()))
                    })
                    .min();
                let new_now = next.map_or(now + 1, |t| t.max(now + 1));
                // The jumped-over cycles were charged to no scheduler;
                // attribute them in bulk so the per-scheduler CPI ledger
                // still sums exactly to elapsed cycles.
                let skipped = new_now - (now + 1);
                for sm in &mut sms {
                    sm.charge_idle_skip(skipped);
                }
                now = new_now;
            }
            // Interval metrics: cumulative per-SM counters at each
            // boundary crossing. Idle-skip jumps may pass several
            // boundaries at once; one snapshot at the latest suffices
            // since the counters are cumulative.
            if snapshot_interval > 0 && tracer.is_on() {
                let boundary = now / snapshot_interval * snapshot_interval;
                if boundary > last_snapshot {
                    let _snap_phase = hostprof::phase(hostprof::Phase::Snapshot);
                    last_snapshot = boundary;
                    for (i, sm) in sms.iter().enumerate() {
                        let s = &sm.stats;
                        tracer.emit_with(boundary, || TraceEvent::Snapshot {
                            sm: i as u32,
                            issued: s.pipe.issued,
                            scalar: s.instr.executed_scalar,
                            rf_bytes_compressed: s.rf.ours_bytes,
                            rf_bytes_uncompressed: s.rf.raw_bytes,
                            rf_activations: s.rf.ours_arrays,
                        });
                    }
                }
            }
            // Observer samples: cumulative merged statistics at each
            // sample-interval boundary crossing (same idle-skip
            // semantics as snapshots above).
            if let Some(intervals) = now.checked_div(sample_interval) {
                let boundary = intervals * sample_interval;
                if boundary > last_sample {
                    let _snap_phase = hostprof::phase(hostprof::Phase::Snapshot);
                    last_sample = boundary;
                    let mut cum = Stats::default();
                    for (i, sm) in sms.iter().enumerate() {
                        observer.sample_sm(boundary, i, &sm.stats);
                        cum.merge(&sm.stats);
                    }
                    cum.cycles = boundary;
                    observer.sample(boundary, &cum);
                }
            }
            assert!(now < WATCHDOG_CYCLES, "simulation watchdog tripped");
        }

        let mut stats = Stats::default();
        for sm in &sms {
            stats.merge(&sm.stats);
        }
        stats.cycles = now;
        let per_sm: Vec<Stats> = sms.iter().map(|sm| sm.stats.clone()).collect();
        observer.finish(now, &stats, &per_sm);
        stats
    }
}

/// Converts a linear CTA index to grid coordinates.
pub(crate) fn cta_coord(linear: u64, grid: Dim3) -> Dim3 {
    let x = (linear % u64::from(grid.x)) as u32;
    let rest = linear / u64::from(grid.x);
    let y = (rest % u64::from(grid.y)) as u32;
    let z = (rest / u64::from(grid.y)) as u32;
    Dim3 { x, y, z }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gscalar_isa::{CmpOp, KernelBuilder, Operand, SReg};

    fn run_kernel(kernel: &Kernel, launch: LaunchConfig) -> (Stats, GlobalMemory) {
        let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        let stats = gpu.run(kernel, launch, &mut mem);
        (stats, mem)
    }

    #[test]
    fn cta_coordinates_unfold() {
        let g = Dim3 { x: 3, y: 2, z: 2 };
        assert_eq!(cta_coord(0, g), Dim3 { x: 0, y: 0, z: 0 });
        assert_eq!(cta_coord(4, g), Dim3 { x: 1, y: 1, z: 0 });
        assert_eq!(cta_coord(7, g), Dim3 { x: 1, y: 0, z: 1 });
    }

    #[test]
    fn saxpy_like_kernel_computes_correctly() {
        // y[i] = 2*x[i] + y[i] over 128 elements.
        let x_base = 0x1_0000u32;
        let y_base = 0x2_0000u32;
        let mut b = KernelBuilder::new("saxpy");
        let tid = b.s2r(SReg::TidX);
        let ctaid = b.s2r(SReg::CtaIdX);
        let ntid = b.s2r(SReg::NTidX);
        let gid = b.imad(ctaid.into(), ntid.into(), tid.into());
        let off = b.shl(gid.into(), Operand::Imm(2));
        let xa = b.iadd(off.into(), Operand::Imm(x_base));
        let ya = b.iadd(off.into(), Operand::Imm(y_base));
        let x = b.ld_global(xa, 0);
        let y = b.ld_global(ya, 0);
        let r = b.ffma(x.into(), Operand::imm_f32(2.0), y.into());
        b.st_global(ya, r, 0);
        b.exit();
        let kernel = b.build().unwrap();

        let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        for i in 0..128u32 {
            mem.write_f32(u64::from(x_base) + u64::from(i) * 4, i as f32);
            mem.write_f32(u64::from(y_base) + u64::from(i) * 4, 1.0);
        }
        let stats = gpu.run(&kernel, LaunchConfig::linear(2, 64), &mut mem);
        for i in 0..128u32 {
            let v = mem.read_f32(u64::from(y_base) + u64::from(i) * 4);
            assert_eq!(v, 2.0 * i as f32 + 1.0, "element {i}");
        }
        assert!(stats.cycles > 0);
        assert_eq!(stats.instr.warp_instrs, 4 * 12);
        // Loads/stores are perfectly coalesced (32 consecutive words).
        assert!(stats.mem.fully_coalesced > 0);
    }

    #[test]
    fn divergent_kernel_counts_divergence_and_computes_abs() {
        // r = |tid - 8| via an if/else, stored to memory.
        let out = 0x3_0000u32;
        let mut b = KernelBuilder::new("absdiff");
        let tid = b.s2r(SReg::TidX);
        let v = b.isub(tid.into(), Operand::Imm(8));
        let p = b.isetp(CmpOp::Lt, v.into(), Operand::Imm(0));
        let r = b.mov(Operand::Imm(0));
        b.if_else(
            p.into(),
            |b| {
                let n = b.isub(Operand::Imm(0), v.into());
                b.mov_to(r, n.into());
            },
            |b| {
                b.mov_to(r, v.into());
            },
        );
        let off = b.shl(tid.into(), Operand::Imm(2));
        let addr = b.iadd(off.into(), Operand::Imm(out));
        b.st_global(addr, r, 0);
        b.exit();
        let kernel = b.build().unwrap();

        let (stats, mem) = run_kernel(&kernel, LaunchConfig::linear(1, 32));
        for i in 0..32i32 {
            let v = mem.read_u32(u64::from(out) + (i as u64) * 4);
            assert_eq!(v as i32, (i - 8).abs(), "lane {i}");
        }
        assert!(stats.instr.divergent_instrs > 0);
        assert!(stats.divergent_fraction() > 0.0);
    }

    #[test]
    fn barrier_synchronizes_shared_memory() {
        // Warp 0 writes shared[tid], all warps barrier, then read
        // shared[tid^32] and store to global.
        let out = 0x4_0000u32;
        let mut b = KernelBuilder::new("shmem");
        b.shared_mem(256);
        let tid = b.s2r(SReg::TidX);
        let soff = b.shl(tid.into(), Operand::Imm(2));
        b.st_shared(soff, tid, 0);
        b.bar();
        let other = b.xor(tid.into(), Operand::Imm(32));
        let ooff = b.shl(other.into(), Operand::Imm(2));
        let v = b.ld_shared(ooff, 0);
        let goff = b.shl(tid.into(), Operand::Imm(2));
        let gaddr = b.iadd(goff.into(), Operand::Imm(out));
        b.st_global(gaddr, v, 0);
        b.exit();
        let kernel = b.build().unwrap();

        let (stats, mem) = run_kernel(&kernel, LaunchConfig::linear(1, 64));
        for i in 0..64u32 {
            let v = mem.read_u32(u64::from(out) + u64::from(i) * 4);
            assert_eq!(v, i ^ 32, "thread {i}");
        }
        assert!(stats.mem.shared_accesses > 0);
    }

    #[test]
    fn loop_kernel_terminates_with_correct_sum() {
        // sum = 0 + 1 + ... + (tid % 4 + 1 - 1), i.e. varies per lane →
        // divergent loop exits.
        let out = 0x5_0000u32;
        let mut b = KernelBuilder::new("loop");
        let tid = b.s2r(SReg::TidX);
        let n = b.and(tid.into(), Operand::Imm(3));
        let sum = b.mov(Operand::Imm(0));
        let i = b.mov(Operand::Imm(0));
        b.while_loop(
            |b| b.isetp(CmpOp::Lt, i.into(), n.into()).into(),
            |b| {
                b.iadd_to(sum, sum.into(), i.into());
                b.iadd_to(i, i.into(), Operand::Imm(1));
            },
        );
        let off = b.shl(tid.into(), Operand::Imm(2));
        let addr = b.iadd(off.into(), Operand::Imm(out));
        b.st_global(addr, sum, 0);
        b.exit();
        let kernel = b.build().unwrap();

        let (_stats, mem) = run_kernel(&kernel, LaunchConfig::linear(1, 32));
        for t in 0..32u32 {
            let n = t & 3;
            let expect: u32 = (0..n).sum();
            assert_eq!(mem.read_u32(u64::from(out) + u64::from(t) * 4), expect);
        }
    }

    #[test]
    fn scalar_arch_runs_same_result_faster_dispatch() {
        // An SFU-heavy kernel with warp-uniform operands: G-Scalar
        // executes the SFU ops scalar, cutting 8-cycle dispatches to 1.
        let mut b = KernelBuilder::new("sfu_uniform");
        let c = b.s2r(SReg::CtaIdX);
        let x = b.i2f(c.into());
        let mut cur = x;
        for _ in 0..8 {
            cur = b.ex2(cur.into());
            let t = b.fmul(cur.into(), Operand::imm_f32(0.5));
            cur = t;
        }
        b.exit();
        let kernel = b.build().unwrap();

        let run = |arch: ArchConfig| {
            let mut gpu = Gpu::new(GpuConfig::test_small(), arch);
            let mut mem = GlobalMemory::new();
            gpu.run(&kernel, LaunchConfig::linear(4, 128), &mut mem)
        };
        let base = run(ArchConfig::baseline());
        let mut scalar = ArchConfig::baseline();
        scalar.name = "gscalar-ish".into();
        scalar.scalar_alu = true;
        scalar.scalar_sfu = true;
        scalar.compression = true;
        let gs = run(scalar);
        assert_eq!(base.instr.warp_instrs, gs.instr.warp_instrs);
        assert!(gs.instr.executed_scalar > 0);
        assert!(
            gs.exec.sfu_lane_ops < base.exec.sfu_lane_ops,
            "scalar execution must gate SFU lanes"
        );
    }

    #[test]
    fn profiled_run_reconciles_with_stats() {
        // Reuse the divergent abs kernel: branches, predication, loads
        // and stores all exercise the profiler hooks.
        let out = 0x6_0000u32;
        let mut b = KernelBuilder::new("prof");
        let tid = b.s2r(SReg::TidX);
        let v = b.isub(tid.into(), Operand::Imm(8));
        let p = b.isetp(CmpOp::Lt, v.into(), Operand::Imm(0));
        let r = b.mov(Operand::Imm(0));
        b.if_else(
            p.into(),
            |b| {
                let n = b.isub(Operand::Imm(0), v.into());
                b.mov_to(r, n.into());
            },
            |b| {
                b.mov_to(r, v.into());
            },
        );
        let off = b.shl(tid.into(), Operand::Imm(2));
        let addr = b.iadd(off.into(), Operand::Imm(out));
        b.st_global(addr, r, 0);
        b.exit();
        let kernel = b.build().unwrap();

        let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        let mut profiler = Profiler::for_kernel(0, kernel.name(), kernel.len());
        let stats = gpu.run_profiled(
            &kernel,
            LaunchConfig::linear(2, 64),
            &mut mem,
            &mut Tracer::off(),
            &mut profiler,
        );
        let prof = profiler.into_profile().unwrap();

        // Every scheduler cycle is either an issue charged to a PC or a
        // stall charged to a PC / the unattributed pool.
        assert_eq!(prof.total_issues(), stats.pipe.issued);
        assert_eq!(prof.total_stall_cycles(), stats.pipe.scheduler_idle_cycles);
        // Lane and divergence attribution match the aggregate counters.
        let lanes: u64 = prof.records().iter().map(|r| r.active_lanes).sum();
        assert_eq!(lanes, stats.instr.thread_instrs);
        let div: u64 = prof.records().iter().map(|r| r.divergent_issues).sum();
        assert_eq!(div, stats.instr.divergent_instrs);
        // The branches of the if/else diverged and their paths all
        // reconverged (no early exits inside the conditional).
        let branches: Vec<_> = prof
            .records()
            .iter()
            .filter(|r| r.branch.execs > 0)
            .collect();
        assert!(!branches.is_empty());
        let diverged: u64 = branches.iter().map(|r| r.branch.diverged).sum();
        assert!(diverged > 0);
        let rejoined: u64 = branches.iter().map(|r| r.branch.rejoined_paths).sum();
        let exited: u64 = branches.iter().map(|r| r.branch.exited_paths).sum();
        assert_eq!(rejoined + exited, 2 * diverged);
        // The run itself is unperturbed by profiling.
        let mut gpu2 = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
        let mut mem2 = GlobalMemory::new();
        let stats2 = gpu2.run(&kernel, LaunchConfig::linear(2, 64), &mut mem2);
        assert_eq!(stats, stats2);
    }

    #[test]
    fn partial_last_warp_handled() {
        let mut b = KernelBuilder::new("partial");
        let tid = b.s2r(SReg::TidX);
        b.iadd(tid.into(), Operand::Imm(1));
        b.exit();
        let kernel = b.build().unwrap();
        // 40 threads → one full warp + one 8-thread warp.
        let (stats, _) = run_kernel(&kernel, LaunchConfig::linear(1, 40));
        assert_eq!(stats.instr.warp_instrs, 2 * 3);
        assert_eq!(stats.instr.thread_instrs, 40 * 3);
    }
}
