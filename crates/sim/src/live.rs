//! Bridges the simulator's [`Stats`] into a live telemetry stream.
//!
//! A [`LiveObserver`] plugs into [`Gpu::run_observed`](crate::Gpu) the
//! same way [`MetricsObserver`](crate::MetricsObserver) does, but emits
//! NDJSON [`LiveRecord`]s to a [`gscalar_live::LiveHandle`] *while the
//! run executes*: one `run_start`, periodic `snapshot`s (cumulative
//! IPC, per-SM IPC, stall mix, compression ratio, MSHR occupancy, pool
//! counters), and one `run_end`.
//!
//! The observer **downsamples internally** on its own cadence
//! ([`LiveHandle::snapshot_interval`]): callers attaching it to a run
//! that already samples at a finer interval (e.g. budgeted runs
//! checking every 4096 cycles) must *not* change the engine's sample
//! interval — a changed interval would move deterministic budget-abort
//! points. Emission goes through the handle's bounded non-blocking
//! queue, so the run loop never waits on I/O.

use gscalar_hostprof as hostprof;
use gscalar_live::{LiveHandle, LiveRecord};

use crate::gpu::RunObserver;
use crate::stats::Stats;

/// A [`RunObserver`] that streams interval snapshots to a live handle.
#[derive(Debug)]
pub struct LiveObserver {
    handle: LiveHandle,
    run: u64,
    interval: u64,
    last_emit: u64,
    per_sm_ipc: Vec<f64>,
}

impl LiveObserver {
    /// Announces a new run on `handle` (emitting `run_start`) and
    /// returns the observer to pass to `run_observed`.
    #[must_use]
    pub fn start(handle: LiveHandle, workload: &str, arch: &str, sms: usize) -> Self {
        let run = handle.next_run_id();
        handle.emit(&LiveRecord::RunStart {
            run,
            workload: workload.to_string(),
            arch: arch.to_string(),
            sms: sms as u64,
            t_s: handle.now_s(),
        });
        let interval = handle.snapshot_interval();
        LiveObserver {
            handle,
            run,
            interval,
            last_emit: 0,
            per_sm_ipc: Vec::new(),
        }
    }

    /// The observer's snapshot cadence in cycles — what callers should
    /// pass as `sample_interval` when no finer cadence is already
    /// required by another observer.
    #[must_use]
    pub fn sample_interval(&self) -> u64 {
        self.interval
    }

    /// The stream-unique id of this run.
    #[must_use]
    pub fn run_id(&self) -> u64 {
        self.run
    }

    fn due(&self, cycle: u64) -> bool {
        cycle >= self.last_emit + self.interval
    }
}

impl RunObserver for LiveObserver {
    fn sample_sm(&mut self, cycle: u64, sm: usize, stats: &Stats) {
        if !self.due(cycle) {
            return;
        }
        if self.per_sm_ipc.len() <= sm {
            self.per_sm_ipc.resize(sm + 1, 0.0);
        }
        self.per_sm_ipc[sm] = if cycle == 0 {
            0.0
        } else {
            stats.instr.thread_instrs as f64 / cycle as f64
        };
    }

    fn sample(&mut self, cycle: u64, stats: &Stats) {
        if !self.due(cycle) {
            return;
        }
        self.last_emit = cycle;
        let scalar_rate = if stats.instr.warp_instrs == 0 {
            0.0
        } else {
            stats.instr.executed_scalar as f64 / stats.instr.warp_instrs as f64
        };
        let pool = hostprof::snapshot();
        self.handle.emit(&LiveRecord::Snapshot {
            run: self.run,
            cycle,
            ipc: stats.ipc(),
            issued: stats.pipe.issued,
            warp_instrs: stats.instr.warp_instrs,
            scalar_rate,
            compression_ratio: stats.rf.ours_ratio(),
            mshr_mean: stats.mem.mshr_occupancy.mean(),
            mshr_max: stats.mem.mshr_occupancy.max().unwrap_or(0),
            per_sm_ipc: self.per_sm_ipc.clone(),
            stalls: stats
                .pipe
                .stalls
                .iter()
                .map(|(reason, count)| (reason.label().to_string(), count))
                .collect(),
            pool: (
                pool.counter(hostprof::Counter::PoolSteals),
                pool.counter(hostprof::Counter::PoolFailedSteals),
                pool.counter(hostprof::Counter::PoolEpochs),
            ),
            t_s: self.handle.now_s(),
        });
    }

    fn finish(&mut self, cycle: u64, merged: &Stats, _per_sm: &[Stats]) {
        self.handle.emit(&LiveRecord::RunEnd {
            run: self.run,
            cycle,
            ipc: merged.ipc(),
            warp_instrs: merged.instr.warp_instrs,
            t_s: self.handle.now_s(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{ArchConfig, GpuConfig};
    use crate::gpu::Gpu;
    use crate::memory::GlobalMemory;
    use gscalar_isa::{KernelBuilder, LaunchConfig, Operand, SReg};
    use gscalar_live::StreamConfig;
    use gscalar_trace::Tracer;

    fn busy_kernel() -> gscalar_isa::Kernel {
        let mut b = KernelBuilder::new("busy");
        let tid = b.s2r(SReg::TidX);
        let mut cur = tid;
        for i in 0..64 {
            cur = b.iadd(cur.into(), Operand::Imm(i));
        }
        b.exit();
        b.build().unwrap()
    }

    fn run_with_observer(exec_threads: usize) -> (Stats, Vec<String>) {
        let handle = LiveHandle::memory(StreamConfig {
            deterministic: true,
            snapshot_interval: 8,
            ..StreamConfig::default()
        });
        let mut cfg = GpuConfig::test_small();
        cfg.num_sms = 4;
        cfg.exec_threads = exec_threads;
        let mut gpu = Gpu::new(cfg, ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        let mut obs = LiveObserver::start(handle.clone(), "busy", "base", 4);
        let interval = obs.sample_interval();
        let stats = gpu.run_observed(
            &busy_kernel(),
            LaunchConfig::linear(4, 64),
            &mut mem,
            &mut Tracer::off(),
            0,
            interval,
            &mut obs,
        );
        handle.close();
        (stats, handle.collected().unwrap())
    }

    #[test]
    fn emits_start_snapshots_and_end() {
        let (stats, lines) = run_with_observer(1);
        let records: Vec<LiveRecord> = lines
            .iter()
            .map(|l| LiveRecord::parse(l).expect("parses"))
            .collect();
        assert!(matches!(records[0], LiveRecord::RunStart { sms: 4, .. }));
        let snapshots: Vec<&LiveRecord> = records
            .iter()
            .filter(|r| matches!(r, LiveRecord::Snapshot { .. }))
            .collect();
        assert!(!snapshots.is_empty(), "no snapshots in {lines:?}");
        for s in &snapshots {
            let LiveRecord::Snapshot {
                cycle,
                per_sm_ipc,
                stalls,
                t_s,
                ..
            } = s
            else {
                unreachable!()
            };
            assert_eq!(cycle % 8, 0, "snapshot off the cadence grid");
            assert_eq!(per_sm_ipc.len(), 4);
            assert!(!stalls.is_empty());
            assert_eq!(*t_s, 0.0, "deterministic stream leaks wall clock");
        }
        match records.last().unwrap() {
            LiveRecord::StreamEnd { .. } => {}
            other => panic!("missing terminal record, got {other:?}"),
        }
        let end = records
            .iter()
            .find(|r| matches!(r, LiveRecord::RunEnd { .. }))
            .expect("run_end");
        if let LiveRecord::RunEnd {
            cycle, warp_instrs, ..
        } = end
        {
            assert_eq!(*cycle, stats.cycles);
            assert_eq!(*warp_instrs, stats.instr.warp_instrs);
        }
    }

    #[test]
    fn observer_does_not_perturb_stats_and_works_parallel() {
        let mut cfg = GpuConfig::test_small();
        cfg.num_sms = 4;
        let mut bare_mem = GlobalMemory::new();
        let bare = Gpu::new(cfg, ArchConfig::baseline()).run(
            &busy_kernel(),
            LaunchConfig::linear(4, 64),
            &mut bare_mem,
        );
        let (serial, _) = run_with_observer(1);
        let (parallel, lines) = run_with_observer(4);
        assert_eq!(bare, serial, "live observer perturbed serial stats");
        assert_eq!(bare, parallel, "live observer perturbed parallel stats");
        assert!(lines.iter().any(|l| l.contains("\"type\":\"snapshot\"")));
    }

    #[test]
    fn downsamples_when_engine_samples_finer() {
        // Engine cadence 2, observer cadence 8: snapshots land only on
        // multiples of 8 even though samples arrive every 2 cycles.
        let handle = LiveHandle::memory(StreamConfig {
            deterministic: true,
            snapshot_interval: 8,
            ..StreamConfig::default()
        });
        let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        let mut obs = LiveObserver::start(handle.clone(), "busy", "base", 1);
        gpu.run_observed(
            &busy_kernel(),
            LaunchConfig::linear(1, 32),
            &mut mem,
            &mut Tracer::off(),
            0,
            2,
            &mut obs,
        );
        handle.close();
        let cycles: Vec<u64> = handle
            .collected()
            .unwrap()
            .iter()
            .filter_map(|line| match LiveRecord::parse(line).unwrap() {
                LiveRecord::Snapshot { cycle, .. } => Some(cycle),
                _ => None,
            })
            .collect();
        assert!(!cycles.is_empty());
        for pair in cycles.windows(2) {
            assert!(
                pair[1] >= pair[0] + 8,
                "snapshots closer than the observer cadence: {cycles:?}"
            );
        }
        for c in &cycles {
            assert_eq!(c % 2, 0, "snapshot off the engine boundary grid");
        }
    }
}
