//! Property tests for the timing memory subsystem: causality,
//! monotonic queuing, and cache-warming invariants.

use gscalar_sim::memsys::MemSystem;
use gscalar_sim::stats::MemStats;
use gscalar_sim::GpuConfig;
use proptest::prelude::*;

fn sys() -> MemSystem {
    MemSystem::new(&GpuConfig::test_small())
}

proptest! {
    #[test]
    fn completion_never_precedes_issue(
        addrs in proptest::collection::vec((0u64..0x10_0000, any::<bool>()), 1..64),
    ) {
        let mut m = sys();
        let mut stats = MemStats::default();
        for (now, (addr, store)) in addrs.into_iter().enumerate() {
            let now = now as u64;
            let done = m.access(0, addr, store, now, &mut stats);
            prop_assert!(done > now, "completion {done} at/before issue {now}");
        }
    }

    #[test]
    fn repeat_loads_eventually_hit_l1(addr in 0u64..0x100_0000) {
        let mut m = sys();
        let mut stats = MemStats::default();
        let t1 = m.access(0, addr, false, 0, &mut stats);
        // After the fill returns, the same line is an L1 hit.
        let t2 = m.access(0, addr, false, t1 + 1, &mut stats);
        prop_assert!(t2 - (t1 + 1) <= t1, "warm access should be faster");
        prop_assert!(stats.l1_hits >= 1);
    }

    #[test]
    fn accounting_is_consistent(
        addrs in proptest::collection::vec(0u64..0x40_0000, 1..64),
    ) {
        let mut m = sys();
        let mut stats = MemStats::default();
        for (i, addr) in addrs.iter().enumerate() {
            m.access(0, *addr, false, i as u64 * 4, &mut stats);
        }
        // Every load resolves exactly one way: L1 hit, L1 miss, or a
        // merge into an outstanding miss to the same line.
        prop_assert_eq!(
            stats.l1_hits + stats.l1_misses + stats.l1_mshr_hits,
            stats.global_accesses
        );
        // Every L2 access (hit or miss) came from an L1 miss that was
        // not MSHR-merged.
        prop_assert!(stats.l2_hits + stats.l2_misses <= stats.l1_misses);
        // NoC flits are two per L2 access.
        prop_assert_eq!(stats.noc_flits, 2 * (stats.l2_hits + stats.l2_misses));
    }

    #[test]
    fn same_partition_requests_serialize_in_order(
        n in 2usize..16,
    ) {
        let mut m = sys();
        let mut stats = MemStats::default();
        // Distinct lines, same partition (stride = channels × line).
        let stride = 128 * 2;
        let mut last = 0u64;
        for i in 0..n {
            let t = m.access(0, 0x20_0000 + i as u64 * stride, false, 0, &mut stats);
            prop_assert!(t >= last, "later request completed earlier");
            last = t;
        }
    }
}
