//! Behavioral tests for the SM pipeline: eligibility classification,
//! scalar execution modes, decompress-moves, CTA management, and
//! operand-collector pressure — exercised through the public `Gpu` API.

use gscalar_isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, SReg};
use gscalar_sim::memory::GlobalMemory;
use gscalar_sim::{ArchConfig, Gpu, GpuConfig, Stats};

fn gscalar() -> ArchConfig {
    ArchConfig {
        name: "gscalar-test".into(),
        scalar_alu: true,
        scalar_sfu: true,
        scalar_mem: true,
        scalar_half: true,
        scalar_divergent: true,
        compression: true,
        dedicated_scalar_rf: false,
        extra_latency: 3,
        compiler_assisted_moves: false,
        scalar_fast_dispatch: false,
    }
}

fn run(kernel: &gscalar_isa::Kernel, launch: LaunchConfig, arch: ArchConfig) -> Stats {
    let mut gpu = Gpu::new(GpuConfig::test_small(), arch);
    let mut mem = GlobalMemory::new();
    gpu.run(kernel, launch, &mut mem)
}

#[test]
fn uniform_ops_classify_as_alu_scalar() {
    let mut b = KernelBuilder::new("k");
    let c = b.s2r(SReg::CtaIdX); // warp-uniform
    let x = b.iadd(c.into(), Operand::Imm(1));
    let y = b.imul(x.into(), Operand::Imm(3));
    b.xor(y.into(), x.into());
    b.exit();
    let k = b.build().unwrap();
    let s = run(&k, LaunchConfig::linear(1, 32), ArchConfig::baseline());
    // s2r(ctaid), add, mul, xor are all scalar-eligible.
    assert_eq!(s.instr.eligible_alu, 4);
    assert_eq!(s.instr.eligible_total(), 4);
}

#[test]
fn per_lane_ops_are_vector() {
    let mut b = KernelBuilder::new("k");
    let t = b.s2r(SReg::TidX); // per-lane
    let x = b.iadd(t.into(), Operand::Imm(1));
    b.imul(x.into(), t.into());
    b.exit();
    let k = b.build().unwrap();
    let s = run(&k, LaunchConfig::linear(1, 32), ArchConfig::baseline());
    assert_eq!(s.instr.eligible_total(), 0);
}

#[test]
fn scalar_store_requires_uniform_value_and_address() {
    let mut b = KernelBuilder::new("k");
    let addr = b.mov(Operand::Imm(0x1000)); // uniform address
    let uval = b.mov(Operand::Imm(7)); // uniform value
    b.st_global(addr, uval, 0); // scalar-eligible store
    let t = b.s2r(SReg::TidX);
    b.st_global(addr, t, 0); // per-lane value: not eligible
    b.exit();
    let k = b.build().unwrap();
    let s = run(&k, LaunchConfig::linear(1, 32), ArchConfig::baseline());
    assert_eq!(s.instr.eligible_mem, 1);
}

#[test]
fn half_scalar_detected_and_executed() {
    let mut b = KernelBuilder::new("k");
    let t = b.s2r(SReg::TidX);
    let half = b.shr(t.into(), Operand::Imm(4)); // uniform per 16 lanes
    let h1 = b.iadd(half.into(), Operand::Imm(5)); // half-scalar
    b.imul(h1.into(), half.into()); // half-scalar
    b.exit();
    let k = b.build().unwrap();
    let base = run(&k, LaunchConfig::linear(1, 32), ArchConfig::baseline());
    assert_eq!(base.instr.eligible_half, 2);
    let gs = run(&k, LaunchConfig::linear(1, 32), gscalar());
    assert_eq!(gs.instr.executed_half, 2);
    // Half execution drives warp_size/16 = 2 lanes instead of 32.
    assert!(gs.exec.int_lane_ops < base.exec.int_lane_ops);
}

#[test]
fn divergent_scalar_only_with_matching_mask() {
    let mut b = KernelBuilder::new("k");
    let t = b.s2r(SReg::TidX);
    let u = b.mov(Operand::Imm(9)); // uniform
    let p = b.isetp(CmpOp::Lt, t.into(), Operand::Imm(8));
    b.if_else(
        p.into(),
        |b| {
            // Path A: writes v under mask A, then reads it under mask A
            // → both divergent-scalar.
            let v = b.iadd(u.into(), Operand::Imm(1));
            b.imul(v.into(), Operand::Imm(2));
        },
        |b| {
            // Path B: per-lane work → vector.
            b.iadd(t.into(), Operand::Imm(1));
        },
    );
    b.exit();
    let k = b.build().unwrap();
    let s = run(&k, LaunchConfig::linear(1, 32), ArchConfig::baseline());
    assert_eq!(s.instr.eligible_divergent, 2, "both path-A ops qualify");
    let gs = run(&k, LaunchConfig::linear(1, 32), gscalar());
    assert_eq!(gs.instr.executed_scalar, 2 + gs.instr.eligible_alu);
}

#[test]
fn decompress_move_charged_once_per_compressed_destination() {
    let mut b = KernelBuilder::new("k");
    let t = b.s2r(SReg::TidX);
    // r is compressed (scalar) by a non-divergent write...
    let r = b.mov(Operand::Imm(5));
    let p = b.isetp(CmpOp::Lt, t.into(), Operand::Imm(4));
    // ...then partially overwritten under divergence: needs the special
    // move (Section 3.3). A second divergent write hits a raw register.
    b.if_then(p.into(), |b| {
        b.iadd_to(r, r.into(), Operand::Imm(1));
        b.iadd_to(r, r.into(), Operand::Imm(1));
    });
    // Keep r observable.
    let addr = b.mov(Operand::Imm(0x2000));
    b.st_global(addr, r, 0);
    b.exit();
    let k = b.build().unwrap();
    let s = run(&k, LaunchConfig::linear(1, 32), gscalar());
    assert_eq!(s.instr.decompress_moves, 1);
}

#[test]
fn compiler_assisted_elision_skips_dead_destinations() {
    let mut b = KernelBuilder::new("k");
    let t = b.s2r(SReg::TidX);
    let r = b.mov(Operand::Imm(5)); // compressed scalar
    let p = b.isetp(CmpOp::Lt, t.into(), Operand::Imm(4));
    b.if_then(p.into(), |b| {
        // Divergent write to r whose old value is then dead: r is
        // unconditionally overwritten before any further read.
        b.iadd_to(r, r.into(), Operand::Imm(1));
    });
    b.mov_to(r, Operand::Imm(0)); // full overwrite
    let addr = b.mov(Operand::Imm(0x2000));
    b.st_global(addr, r, 0);
    b.exit();
    let k = b.build().unwrap();
    let hw = run(&k, LaunchConfig::linear(1, 32), gscalar());
    // The guarded write reads r (merge semantics), so the old value is
    // live INTO it — but after it, r is dead. The move guards the
    // *write-back*, so liveness-after decides.
    let mut cc_arch = gscalar();
    cc_arch.compiler_assisted_moves = true;
    let cc = run(&k, LaunchConfig::linear(1, 32), cc_arch);
    assert_eq!(hw.instr.decompress_moves, 1);
    assert_eq!(cc.instr.decompress_moves, 0);
    assert_eq!(cc.instr.decompress_moves_elided, 1);
}

#[test]
fn multiple_ctas_refill_an_sm() {
    // test_small allows 4 CTAs resident; launch 12 so refills happen.
    let mut b = KernelBuilder::new("k");
    let c = b.s2r(SReg::CtaIdX);
    let a = b.shl(c.into(), Operand::Imm(2));
    let addr = b.iadd(a.into(), Operand::Imm(0x3000));
    b.st_global(addr, c, 0);
    b.exit();
    let k = b.build().unwrap();
    let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
    let mut mem = GlobalMemory::new();
    let s = gpu.run(&k, LaunchConfig::linear(12, 64), &mut mem);
    assert_eq!(s.instr.warp_instrs, 12 * 2 * 5);
    for cta in 0..12u32 {
        assert_eq!(mem.read_u32(0x3000 + u64::from(cta) * 4), cta);
    }
}

#[test]
fn predicated_off_instruction_is_a_no_op() {
    let mut b = KernelBuilder::new("k");
    let x = b.mov(Operand::Imm(1));
    let p = b.pred(); // never set: all lanes false
    b.iadd_to(x, x.into(), Operand::Imm(100));
    b.guard_last(p.into()); // @P — all lanes off
    let addr = b.mov(Operand::Imm(0x4000));
    b.st_global(addr, x, 0);
    b.exit();
    let k = b.build().unwrap();
    let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
    let mut mem = GlobalMemory::new();
    let s = gpu.run(&k, LaunchConfig::linear(1, 32), &mut mem);
    assert_eq!(mem.read_u32(0x4000), 1, "guarded add must not execute");
    // It still consumed an issue slot.
    assert!(s.instr.warp_instrs >= 5);
}

#[test]
fn rz_destination_discards_and_counts_nothing() {
    let mut b = KernelBuilder::new("k");
    b.alu_to(
        gscalar_isa::AluOp::IAdd,
        gscalar_isa::Reg::RZ,
        Operand::Imm(1),
        Operand::Imm(2),
        gscalar_isa::Reg::RZ.into(),
    );
    b.exit();
    let k = b.build().unwrap();
    let s = run(&k, LaunchConfig::linear(1, 32), gscalar());
    // No register write happened.
    assert_eq!(s.rf.writes, 0);
}

#[test]
fn coalesced_load_touches_one_line_scattered_many() {
    let mut b = KernelBuilder::new("k");
    let t = b.s2r(SReg::TidX);
    // Coalesced: consecutive words, one 128-byte line per warp.
    let o1 = b.shl(t.into(), Operand::Imm(2));
    let a1 = b.iadd(o1.into(), Operand::Imm(0x1_0000));
    b.ld_global(a1, 0);
    // Scattered: 128-byte stride → one line per lane.
    let o2 = b.shl(t.into(), Operand::Imm(7));
    let a2 = b.iadd(o2.into(), Operand::Imm(0x2_0000));
    b.ld_global(a2, 0);
    b.exit();
    let k = b.build().unwrap();
    let s = run(&k, LaunchConfig::linear(1, 32), ArchConfig::baseline());
    assert_eq!(s.mem.fully_coalesced, 1);
    // 1 (coalesced) + 32 (scattered) line accesses.
    assert_eq!(s.mem.global_accesses, 33);
}

#[test]
fn dedicated_scalar_rf_serializes_but_bvr_does_not() {
    // Many concurrent warps all reading scalar operands.
    let mut b = KernelBuilder::new("k");
    let c = b.s2r(SReg::CtaIdX);
    let mut x = b.iadd(c.into(), Operand::Imm(1));
    for i in 0..6 {
        let y = b.imul(x.into(), Operand::Imm(3 + i));
        x = b.iadd(y.into(), c.into());
    }
    b.exit();
    let k = b.build().unwrap();
    let mut prior = ArchConfig::baseline();
    prior.name = "alu-scalar".into();
    prior.scalar_alu = true;
    prior.dedicated_scalar_rf = true;
    let p = run(&k, LaunchConfig::linear(4, 128), prior);
    assert!(p.pipe.scalar_bank_serializations > 0);
    let g = run(&k, LaunchConfig::linear(4, 128), gscalar());
    assert_eq!(g.pipe.scalar_bank_serializations, 0);
}

#[test]
fn extra_latency_extends_runtime_on_dependent_chain() {
    let mut b = KernelBuilder::new("k");
    let t = b.s2r(SReg::TidX);
    let mut x = t;
    for _ in 0..16 {
        x = b.iadd(x.into(), Operand::Imm(1)); // serial dependence
    }
    let o = b.shl(t.into(), Operand::Imm(2));
    let addr = b.iadd(o.into(), Operand::Imm(0x5000));
    b.st_global(addr, x, 0);
    b.exit();
    let k = b.build().unwrap();
    // One warp: nothing hides latency.
    let base = run(&k, LaunchConfig::linear(1, 32), ArchConfig::baseline());
    let gs = run(&k, LaunchConfig::linear(1, 32), gscalar());
    assert!(
        gs.cycles >= base.cycles + 3 * 16,
        "each of 16 dependent adds should pay ~3 extra cycles ({} vs {})",
        gs.cycles,
        base.cycles
    );
}

#[test]
fn fast_dispatch_knob_shortens_sfu_occupancy() {
    // Back-to-back independent SFU ops from several warps: vector SFU
    // dispatch (8 cycles each) bottlenecks; the optional fast-dispatch
    // mode (Section 6's one-cycle opportunity) relieves it.
    let mut b = KernelBuilder::new("k");
    let c = b.s2r(SReg::CtaIdX);
    let f = b.i2f(c.into());
    for _ in 0..4 {
        b.sin(f.into());
        b.cos(f.into());
    }
    b.exit();
    let k = b.build().unwrap();
    let base = run(&k, LaunchConfig::linear(2, 256), ArchConfig::baseline());
    let paper = run(&k, LaunchConfig::linear(2, 256), gscalar());
    // Paper-faithful mode gates lanes but keeps dispatch timing.
    assert!(paper.exec.sfu_lane_ops_saved > 0);
    let mut fast_arch = gscalar();
    fast_arch.scalar_fast_dispatch = true;
    let fast = run(&k, LaunchConfig::linear(2, 256), fast_arch);
    assert!(
        fast.cycles < base.cycles && fast.cycles < paper.cycles,
        "fast dispatch should win ({} vs base {} / paper {})",
        fast.cycles,
        base.cycles,
        paper.cycles
    );
}
