//! The stall-taxonomy invariant: every idle scheduler-cycle is charged
//! exactly one stall reason, so the breakdown sums to
//! `scheduler_idle_cycles` — across kernels, architectures, and traced
//! vs untraced runs.

use gscalar_isa::{CmpOp, Kernel, KernelBuilder, LaunchConfig, Operand, SReg};
use gscalar_sim::memory::GlobalMemory;
use gscalar_sim::{ArchConfig, Gpu, GpuConfig, Stats};
use gscalar_trace::{EventBuf, StallReason, TraceEvent, Tracer};

fn gscalar() -> ArchConfig {
    ArchConfig {
        name: "gscalar-test".into(),
        scalar_alu: true,
        scalar_sfu: true,
        scalar_mem: true,
        scalar_half: true,
        scalar_divergent: true,
        compression: true,
        dedicated_scalar_rf: false,
        extra_latency: 3,
        compiler_assisted_moves: false,
        scalar_fast_dispatch: false,
    }
}

fn dedicated_rf() -> ArchConfig {
    let mut a = gscalar();
    a.name = "dedicated-rf-test".into();
    a.dedicated_scalar_rf = true;
    a
}

fn run(kernel: &Kernel, launch: LaunchConfig, arch: ArchConfig) -> Stats {
    let mut gpu = Gpu::new(GpuConfig::test_small(), arch);
    let mut mem = GlobalMemory::new();
    gpu.run(kernel, launch, &mut mem)
}

fn assert_invariant(stats: &Stats, what: &str) {
    assert_eq!(
        stats.pipe.stalls.total(),
        stats.pipe.scheduler_idle_cycles,
        "{what}: stall reasons must sum to idle scheduler-cycles \
         (breakdown: {:?})",
        stats.pipe.stalls
    );
}

/// Memory-latency-bound: dependent loads force mem-pending stalls.
fn memory_bound_kernel() -> Kernel {
    let mut b = KernelBuilder::new("membound");
    let tid = b.s2r(SReg::TidX);
    let off = b.shl(tid.into(), Operand::Imm(2));
    let addr = b.iadd(off.into(), Operand::Imm(0x1_0000));
    let v = b.ld_global(addr, 0);
    let w = b.iadd(v.into(), Operand::Imm(1)); // RAW on the load
    b.st_global(addr, w, 0);
    b.exit();
    b.build().unwrap()
}

/// Divergent control flow plus a barrier.
fn divergent_barrier_kernel() -> Kernel {
    let mut b = KernelBuilder::new("divbar");
    b.shared_mem(256);
    let tid = b.s2r(SReg::TidX);
    let p = b.isetp(CmpOp::Lt, tid.into(), Operand::Imm(8));
    let r = b.mov(Operand::Imm(0));
    b.if_else(
        p.into(),
        |b| {
            let n = b.iadd(tid.into(), Operand::Imm(5));
            b.mov_to(r, n.into());
        },
        |b| {
            b.mov_to(r, tid.into());
        },
    );
    let soff = b.shl(tid.into(), Operand::Imm(2));
    b.st_shared(soff, r, 0);
    b.bar();
    b.ld_shared(soff, 0);
    b.exit();
    b.build().unwrap()
}

/// Long dependency chain: pure scoreboard (data) stalls.
fn chain_kernel() -> Kernel {
    let mut b = KernelBuilder::new("chain");
    let tid = b.s2r(SReg::TidX);
    let mut cur = tid;
    for _ in 0..16 {
        cur = b.imul(cur.into(), Operand::Imm(3));
    }
    b.exit();
    b.build().unwrap()
}

#[test]
fn stall_reasons_sum_to_idle_cycles_across_kernels_and_archs() {
    let kernels = [
        memory_bound_kernel(),
        divergent_barrier_kernel(),
        chain_kernel(),
    ];
    let archs = [ArchConfig::baseline(), gscalar(), dedicated_rf()];
    for kernel in &kernels {
        for arch in &archs {
            for warps in [1u32, 4] {
                let stats = run(kernel, LaunchConfig::linear(warps, 32), arch.clone());
                assert!(stats.pipe.scheduler_idle_cycles > 0);
                assert_invariant(
                    &stats,
                    &format!("{} on {} ({warps} CTAs)", kernel.name(), arch.name),
                );
            }
        }
    }
}

#[test]
fn memory_bound_kernel_charges_mem_pending() {
    let stats = run(
        &memory_bound_kernel(),
        LaunchConfig::linear(1, 32),
        ArchConfig::baseline(),
    );
    assert_invariant(&stats, "membound");
    assert!(
        stats.pipe.stalls.get(StallReason::MemPending) > 0,
        "a load-consumer kernel must report memory-pending stalls: {:?}",
        stats.pipe.stalls
    );
}

#[test]
fn barrier_kernel_charges_barrier_stalls() {
    // Two warps reach the barrier at different times; the early one
    // stalls with the barrier reason.
    let stats = run(
        &divergent_barrier_kernel(),
        LaunchConfig::linear(1, 64),
        ArchConfig::baseline(),
    );
    assert_invariant(&stats, "divbar");
    assert!(
        stats.pipe.stalls.get(StallReason::Barrier) > 0,
        "a two-warp barrier kernel must report barrier stalls: {:?}",
        stats.pipe.stalls
    );
}

#[test]
fn chain_kernel_charges_scoreboard_stalls() {
    let stats = run(
        &chain_kernel(),
        LaunchConfig::linear(1, 32),
        ArchConfig::baseline(),
    );
    assert_invariant(&stats, "chain");
    assert!(
        stats.pipe.stalls.get(StallReason::Scoreboard) > 0,
        "a dependency chain must report scoreboard stalls: {:?}",
        stats.pipe.stalls
    );
}

#[test]
fn traced_run_matches_untraced_and_emits_one_stall_event_per_idle_cycle() {
    let kernel = divergent_barrier_kernel();
    let launch = LaunchConfig::linear(2, 64);

    let untraced = run(&kernel, launch, gscalar());

    let mut gpu = Gpu::new(GpuConfig::test_small(), gscalar());
    let mut mem = GlobalMemory::new();
    let mut buf = EventBuf::new(1 << 20);
    let mut tracer = Tracer::new(&mut buf);
    let traced = gpu.run_traced(&kernel, launch, &mut mem, &mut tracer, 0);

    // Tracing must not perturb timing or counters.
    assert_eq!(traced.cycles, untraced.cycles);
    assert_eq!(traced.instr.warp_instrs, untraced.instr.warp_instrs);
    assert_eq!(
        traced.pipe.scheduler_idle_cycles,
        untraced.pipe.scheduler_idle_cycles
    );
    assert_eq!(traced.pipe.stalls, untraced.pipe.stalls);
    assert_eq!(buf.dropped(), 0, "buffer sized to hold everything");

    // The event stream carries the same taxonomy: one Stall event per
    // idle scheduler-cycle, reason by reason.
    let mut from_events = gscalar_trace::StallBreakdown::default();
    for r in buf.records() {
        if let TraceEvent::Stall { reason, .. } = r.ev {
            from_events.add(reason);
        }
    }
    assert_eq!(from_events, traced.pipe.stalls);
    assert_eq!(from_events.total(), traced.pipe.scheduler_idle_cycles);
}
