//! Differential fuzzing: randomly generated structured SIMT kernels
//! must produce identical memory under the cycle-level simulator and
//! the per-thread reference interpreter — including data-dependent
//! divergence, nested control flow, and loops.

use gscalar_isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, Pred, Reg, SReg};
use gscalar_sim::memory::GlobalMemory;
use gscalar_sim::reference::run_reference;
use gscalar_sim::{ArchConfig, Gpu, GpuConfig};
use proptest::prelude::*;

/// A random structured statement operating on an accumulator `x` and
/// the thread id, with data-dependent branching for divergence.
#[derive(Debug, Clone)]
enum Stmt {
    AddImm(u32),
    MulTid,
    XorShift(u32),
    SfuRound,
    IfTidLt(u32, Vec<Stmt>),
    IfElseParity(Vec<Stmt>, Vec<Stmt>),
    LoopTidMasked(u8, Vec<Stmt>),
    StoreLoad,
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (1u32..100).prop_map(Stmt::AddImm),
        Just(Stmt::MulTid),
        (1u32..31).prop_map(Stmt::XorShift),
        Just(Stmt::SfuRound),
        Just(Stmt::StoreLoad),
    ];
    leaf.prop_recursive(3, 20, 4, |inner| {
        prop_oneof![
            (1u32..100).prop_map(Stmt::AddImm),
            Just(Stmt::MulTid),
            Just(Stmt::StoreLoad),
            ((1u32..64), proptest::collection::vec(inner.clone(), 1..3))
                .prop_map(|(n, b)| Stmt::IfTidLt(n, b)),
            (
                proptest::collection::vec(inner.clone(), 1..2),
                proptest::collection::vec(inner.clone(), 1..2)
            )
                .prop_map(|(t, e)| Stmt::IfElseParity(t, e)),
            ((1u8..4), proptest::collection::vec(inner, 1..2))
                .prop_map(|(n, b)| Stmt::LoopTidMasked(n, b)),
        ]
    })
}

struct Ctx {
    x: Reg,
    tid: Reg,
    scratch: Reg,
    p: Pred,
}

fn emit(b: &mut KernelBuilder, c: &Ctx, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::AddImm(v) => b.iadd_to(c.x, c.x.into(), Operand::Imm(*v)),
            Stmt::MulTid => {
                b.alu_to(
                    gscalar_isa::AluOp::IMad,
                    c.x,
                    c.x.into(),
                    Operand::Imm(3),
                    c.tid.into(),
                );
            }
            Stmt::XorShift(n) => {
                b.alu_to(
                    gscalar_isa::AluOp::Shl,
                    c.scratch,
                    c.x.into(),
                    Operand::Imm(*n),
                    Reg::RZ.into(),
                );
                b.alu_to(
                    gscalar_isa::AluOp::Xor,
                    c.x,
                    c.x.into(),
                    c.scratch.into(),
                    Reg::RZ.into(),
                );
            }
            Stmt::SfuRound => {
                // Keep the value integral so float rounding stays exact:
                // x = x + f2i(sqrt(float(x & 0xFF))).
                b.alu_to(
                    gscalar_isa::AluOp::And,
                    c.scratch,
                    c.x.into(),
                    Operand::Imm(0xFF),
                    Reg::RZ.into(),
                );
                b.alu_to(
                    gscalar_isa::AluOp::I2F,
                    c.scratch,
                    c.scratch.into(),
                    Reg::RZ.into(),
                    Reg::RZ.into(),
                );
                b.sfu_to(gscalar_isa::SfuOp::Sqrt, c.scratch, c.scratch.into());
                b.alu_to(
                    gscalar_isa::AluOp::F2I,
                    c.scratch,
                    c.scratch.into(),
                    Reg::RZ.into(),
                    Reg::RZ.into(),
                );
                b.iadd_to(c.x, c.x.into(), c.scratch.into());
            }
            Stmt::IfTidLt(n, body) => {
                b.isetp_to(c.p, CmpOp::Lt, c.tid.into(), Operand::Imm(*n));
                b.if_then(c.p.into(), |b| emit(b, c, body));
            }
            Stmt::IfElseParity(t, e) => {
                b.alu_to(
                    gscalar_isa::AluOp::And,
                    c.scratch,
                    c.x.into(),
                    Operand::Imm(1),
                    Reg::RZ.into(),
                );
                b.isetp_to(c.p, CmpOp::Eq, c.scratch.into(), Operand::Imm(0));
                b.if_else(c.p.into(), |b| emit(b, c, t), |b| emit(b, c, e));
            }
            Stmt::LoopTidMasked(n, body) => {
                // Trip count varies per lane: tid & 3 + n.
                b.alu_to(
                    gscalar_isa::AluOp::And,
                    c.scratch,
                    c.tid.into(),
                    Operand::Imm(3),
                    Reg::RZ.into(),
                );
                b.iadd_to(c.scratch, c.scratch.into(), Operand::Imm(u32::from(*n)));
                let i = b.mov(Operand::Imm(0));
                let limit = b.mov(c.scratch.into());
                b.while_loop(
                    |b| b.isetp(CmpOp::Lt, i.into(), limit.into()).into(),
                    |b| {
                        emit(b, c, body);
                        b.iadd_to(i, i.into(), Operand::Imm(1));
                    },
                );
            }
            Stmt::StoreLoad => {
                // Round-trip x through this thread's private cell.
                let off = b.shl(c.tid.into(), Operand::Imm(2));
                let addr = b.iadd(off.into(), Operand::Imm(0x20_0000));
                b.st_global(addr, c.x, 0);
                b.ld_global_to(c.x, addr, 0);
            }
        }
    }
}

fn build_kernel(prog: &[Stmt]) -> gscalar_isa::Kernel {
    let mut b = KernelBuilder::new("fuzz");
    let tid = b.s2r(SReg::TidX);
    let x = b.mov(Operand::Imm(1));
    let scratch = b.mov(Operand::Imm(0));
    let p = b.pred();
    let ctx = Ctx { x, tid, scratch, p };
    emit(&mut b, &ctx, prog);
    // Publish the result.
    let off = b.shl(tid.into(), Operand::Imm(2));
    let addr = b.iadd(off.into(), Operand::Imm(0x30_0000));
    b.st_global(addr, x, 0);
    b.exit();
    b.build().expect("fuzz kernel builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn random_structured_kernels_match_reference(
        prog in proptest::collection::vec(stmt(), 1..5)
    ) {
        let kernel = build_kernel(&prog);
        let launch = LaunchConfig::linear(2, 64);
        let mut expect = GlobalMemory::new();
        run_reference(&kernel, launch, &mut expect);
        for arch in [ArchConfig::baseline(), gscalar_arch_full()] {
            let mut got = GlobalMemory::new();
            let mut gpu = Gpu::new(GpuConfig::test_small(), arch);
            gpu.run(&kernel, launch, &mut got);
            prop_assert!(
                got.content_eq(&expect),
                "divergence at {:?} for kernel:\n{}",
                got.first_difference(&expect),
                kernel
            );
        }
    }
}

fn gscalar_arch_full() -> ArchConfig {
    ArchConfig {
        name: "gscalar-fuzz".into(),
        scalar_alu: true,
        scalar_sfu: true,
        scalar_mem: true,
        scalar_half: true,
        scalar_divergent: true,
        compression: true,
        dedicated_scalar_rf: false,
        extra_latency: 3,
        compiler_assisted_moves: true,
        scalar_fast_dispatch: false,
    }
}
