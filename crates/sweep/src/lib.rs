//! # gscalar-sweep — parallel, fault-isolated experiment execution
//!
//! The job-grid engine behind the `sweep` binary and every figure/
//! table bench: experiments register their (workload × config ×
//! experiment) matrix as [`JobSpec`]s; the engine shards the grid
//! across an in-repo work-stealing thread pool, isolates each job
//! (`catch_unwind` panic containment, deterministic simulated-cycle
//! budgets, bounded retry), and persists every outcome under
//! `<out>/jobs/` — completed jobs as byte-deterministic schema-v1
//! manifests, failed jobs as machine-readable [`FailureRecord`]s.
//!
//! Two properties are load-bearing for reproduction workflows:
//!
//! * **Determinism** — job IDs are deterministic, results merge in
//!   registration order (never completion order), and persisted
//!   manifests carry no host timing, so sweep output is byte-identical
//!   regardless of thread count or schedule.
//! * **Resume** — on startup the engine scans the results directory
//!   and skips every job whose completed manifest is present and
//!   valid; a killed sweep restarts where it left off, and failed jobs
//!   are re-attempted (their failure records replaced on success).
//!
//! The crate is deliberately simulator-agnostic: a job is just a
//! closure returning metrics, so the engine is testable with synthetic
//! grids and reusable for any future experiment family.
//!
//! # Examples
//!
//! ```
//! use gscalar_sweep::{run_sweep, JobId, JobOutput, JobSpec, SweepConfig};
//!
//! let grid: Vec<JobSpec> = (0..4)
//!     .map(|i| {
//!         JobSpec::new(JobId::new("demo", format!("cell{i}")), move |_ctx| {
//!             let mut out = JobOutput::default();
//!             out.metric("value", f64::from(i) * 2.0);
//!             out.sim_cycles = 10;
//!             Ok(out)
//!         })
//!     })
//!     .collect();
//! let outcome = run_sweep(
//!     &grid,
//!     &SweepConfig {
//!         threads: 2,
//!         ..SweepConfig::default()
//!     },
//! );
//! assert!(outcome.all_completed());
//! assert_eq!(outcome.results.metric("demo", "cell3", "value"), 6.0);
//! ```

pub mod engine;
pub mod job;
pub mod pool;

pub use engine::{run_sweep, Progress, SweepConfig, SweepOutcome};
pub use job::{
    FailureRecord, JobCtx, JobError, JobId, JobOutput, JobResult, JobSpec, ResultSet,
    FAILURE_SCHEMA_VERSION,
};
pub use pool::resolve_threads;
