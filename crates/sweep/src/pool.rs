//! An in-repo work-stealing thread pool for index-addressed task
//! grids.
//!
//! Tasks are the integers `0..count`; each worker owns a deque seeded
//! round-robin and pops from its *back* (LIFO keeps caches warm for
//! neighboring grid cells), stealing from the *front* of sibling
//! deques when its own runs dry (FIFO steals take the oldest — largest
//! remaining — work). The pool is built on scoped threads and plain
//! mutex-guarded deques: the workload here is coarse (whole
//! simulations, milliseconds to minutes each), so lock traffic is
//! noise and a lock-free Chase–Lev deque would buy nothing.
//!
//! Results are funneled to the *caller's* thread in completion order;
//! anything order-sensitive (file writes, progress, merging) stays
//! single-threaded there.

use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Mutex;

/// Runs `work(i)` for every `i` in `0..count` on `threads` workers,
/// invoking `on_done(i, result)` on the calling thread as each task
/// completes (completion order, not index order).
///
/// `threads == 0` resolves to the machine's available parallelism. A
/// single thread still goes through the pool, so the scheduling code
/// path is identical for serial and parallel runs.
pub fn run_indexed<R, W, D>(threads: usize, count: usize, work: W, mut on_done: D)
where
    R: Send,
    W: Fn(usize) -> R + Sync,
    D: FnMut(usize, R),
{
    if count == 0 {
        return;
    }
    let threads = resolve_threads(threads).min(count);
    // Round-robin seeding spreads neighboring (usually similarly
    // sized) grid cells across workers.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((0..count).filter(|i| i % threads == w).collect()))
        .collect();
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let work = &work;
            let tx = tx.clone();
            scope.spawn(move || {
                while let Some(i) = next_task(queues, w) {
                    // A send can only fail if the receiver is gone,
                    // which means the caller is unwinding already.
                    let _ = tx.send((i, work(i)));
                }
            });
        }
        drop(tx);
        for _ in 0..count {
            let (i, r) = rx.recv().expect("a worker died without reporting");
            on_done(i, r);
        }
    });
}

/// Pops the next task for worker `w`: its own back, else steal the
/// front of the first non-empty sibling. `None` when every deque is
/// empty (no tasks are ever re-enqueued, so empty-everywhere is
/// terminal).
fn next_task(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    if let Some(i) = queues[w].lock().expect("queue lock").pop_back() {
        return Some(i);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(i) = queues[victim].lock().expect("queue lock").pop_front() {
            return Some(i);
        }
    }
    None
}

/// Resolves a thread-count request: 0 means "all the machine has".
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn executes_every_task_exactly_once() {
        for threads in [1, 2, 5, 16] {
            let hits = (0..37).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
            let mut seen = Vec::new();
            run_indexed(
                threads,
                hits.len(),
                |i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                    i * 2
                },
                |i, r| {
                    assert_eq!(r, i * 2);
                    seen.push(i);
                },
            );
            assert_eq!(seen.len(), hits.len());
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn stealing_drains_imbalanced_grids() {
        // One task is 100× the others: with 4 workers the other three
        // must steal the remaining work. Correctness (all done, once)
        // is what's asserted; the imbalance exercises the steal path.
        let done = AtomicUsize::new(0);
        run_indexed(
            4,
            64,
            |i| {
                let spins = if i == 0 { 100_000 } else { 1_000 };
                let mut x = 0u64;
                for k in 0..spins {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                done.fetch_add(1, Ordering::SeqCst);
                x
            },
            |_, _| {},
        );
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        run_indexed(
            4,
            0,
            |_| unreachable!("no tasks"),
            |_, _: ()| unreachable!("no results"),
        );
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let mut n = 0;
        run_indexed(64, 3, |i| i, |_, _| n += 1);
        assert_eq!(n, 3);
    }
}
