//! Re-export of the shared work-stealing pool.
//!
//! The pool started here and moved to `gscalar-pool` when the
//! simulator's parallel engine needed the same primitives; this module
//! keeps the `gscalar_sweep::pool` paths working.

pub use gscalar_pool::{resolve_threads, run_indexed};
