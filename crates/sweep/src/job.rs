//! Job identities, payloads, outcomes, and failure records.
//!
//! A sweep is a grid of [`JobSpec`]s. Each job has a deterministic
//! [`JobId`] (`<experiment>/<unit>`), an optional cycle budget, and a
//! closure producing a flat list of metrics plus the simulated cycle
//! count. The engine serializes every completed job as a schema-v1
//! [`Manifest`] (so resume can reload it) and every failed job as a
//! machine-readable [`FailureRecord`] — both with fully deterministic
//! bytes, independent of thread count or schedule.

use std::collections::BTreeMap;
use std::fmt;

use gscalar_metrics::json::Json;
use gscalar_metrics::{HostProfile, Manifest};

/// Deterministic job identity: `<experiment>/<unit>`.
///
/// The unit doubles as the on-disk file stem of the job's manifest, so
/// it is restricted to `[A-Za-z0-9._-]` (enforced by [`JobId::new`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct JobId {
    /// Experiment (bench) name, e.g. `"fig11_power_efficiency"`.
    pub experiment: String,
    /// Grid cell within the experiment, e.g. `"BP-gscalar"`.
    pub unit: String,
}

impl JobId {
    /// Creates a job id.
    ///
    /// # Panics
    ///
    /// Panics when `experiment` or `unit` is empty or contains a
    /// character outside `[A-Za-z0-9._-]` — ids name files and must be
    /// filesystem-safe on every platform.
    #[must_use]
    pub fn new(experiment: impl Into<String>, unit: impl Into<String>) -> Self {
        let experiment = experiment.into();
        let unit = unit.into();
        let ok = |s: &str| {
            !s.is_empty()
                && s.chars()
                    .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'))
        };
        assert!(ok(&experiment), "bad experiment name {experiment:?}");
        assert!(ok(&unit), "bad job unit {unit:?}");
        JobId { experiment, unit }
    }
}

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.experiment, self.unit)
    }
}

/// Read-only execution context handed to every job closure.
#[derive(Debug, Clone)]
pub struct JobCtx {
    /// Simulated-cycle budget for the whole job (0 = unlimited). Jobs
    /// running simulations should enforce it via
    /// `Runner::run_budgeted` (deterministic mid-flight abort) and map
    /// the overrun to [`JobError::Budget`].
    pub cycle_budget: u64,
}

/// What a successful job returns: raw metric cells plus the simulated
/// cycles it burned (for host self-profiling).
#[derive(Debug, Clone, Default)]
pub struct JobOutput {
    /// Metric path → value pairs (order irrelevant; stored sorted).
    pub metrics: Vec<(String, f64)>,
    /// Total simulated cycles across the job's runs.
    pub sim_cycles: u64,
}

impl JobOutput {
    /// Appends one metric.
    pub fn metric(&mut self, path: impl Into<String>, value: f64) {
        self.metrics.push((path.into(), value));
    }
}

/// Why a job failed.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The job panicked; the payload message is preserved.
    Panic(String),
    /// The job exceeded its simulated-cycle budget.
    Budget {
        /// Cycles simulated when the budget tripped.
        cycles: u64,
        /// The budget that applied.
        budget: u64,
    },
    /// The job reported an error of its own.
    Failed(String),
}

impl JobError {
    /// Machine-readable failure kind (`panic`/`budget`/`error`).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            JobError::Panic(_) => "panic",
            JobError::Budget { .. } => "budget",
            JobError::Failed(_) => "error",
        }
    }

    /// Human-readable message.
    #[must_use]
    pub fn message(&self) -> String {
        match self {
            JobError::Panic(m) | JobError::Failed(m) => m.clone(),
            JobError::Budget { cycles, budget } => {
                format!("cycle budget exceeded: {cycles} simulated of {budget} allowed")
            }
        }
    }

    /// Whether retrying can possibly change the outcome. Budget
    /// overruns are deterministic and never retried.
    #[must_use]
    pub fn retryable(&self) -> bool {
        !matches!(self, JobError::Budget { .. })
    }
}

/// The closure type a job runs.
pub type JobFn = Box<dyn Fn(&JobCtx) -> Result<JobOutput, JobError> + Send + Sync>;

/// One cell of the sweep grid.
pub struct JobSpec {
    /// Deterministic identity (also the on-disk manifest name).
    pub id: JobId,
    /// Simulated-cycle budget (0 = unlimited).
    pub cycle_budget: u64,
    /// The work itself.
    pub run: JobFn,
}

impl JobSpec {
    /// Creates a job with no cycle budget.
    #[must_use]
    pub fn new(
        id: JobId,
        run: impl Fn(&JobCtx) -> Result<JobOutput, JobError> + Send + Sync + 'static,
    ) -> Self {
        JobSpec {
            id,
            cycle_budget: 0,
            run: Box::new(run),
        }
    }

    /// Sets the simulated-cycle budget.
    #[must_use]
    pub fn with_budget(mut self, cycles: u64) -> Self {
        self.cycle_budget = cycles;
        self
    }
}

impl fmt::Debug for JobSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JobSpec")
            .field("id", &self.id)
            .field("cycle_budget", &self.cycle_budget)
            .finish_non_exhaustive()
    }
}

/// A completed job, either freshly executed or reloaded from disk.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResult {
    /// The job's identity.
    pub id: JobId,
    /// Sorted metric map.
    pub metrics: BTreeMap<String, f64>,
    /// Simulated cycles the job burned.
    pub sim_cycles: u64,
    /// Host wall seconds of the successful attempt (0 when resumed
    /// from disk — wall time is never persisted; manifests stay
    /// byte-deterministic).
    pub wall_s: f64,
    /// Whether the result was reloaded from a previous sweep instead
    /// of executed.
    pub resumed: bool,
}

impl JobResult {
    /// Builds a result from a job's output.
    #[must_use]
    pub fn from_output(id: JobId, out: JobOutput, wall_s: f64) -> Self {
        JobResult {
            id,
            metrics: out.metrics.into_iter().collect(),
            sim_cycles: out.sim_cycles,
            wall_s,
            resumed: false,
        }
    }

    /// Serializes as a schema-v1 manifest with deterministic bytes:
    /// the bench field carries the full job id and the host profile
    /// carries only the (deterministic) simulated cycle count.
    #[must_use]
    pub fn to_manifest(&self) -> Manifest {
        let mut m = Manifest::new(self.id.to_string());
        for (k, &v) in &self.metrics {
            m.set(k.clone(), v);
        }
        m.host = HostProfile {
            wall_time_s: 0.0,
            sim_cycles: self.sim_cycles,
            cycles_per_host_s: 0.0,
        };
        m
    }

    /// Reloads a result from a manifest written by [`Self::to_manifest`].
    ///
    /// # Errors
    ///
    /// Returns a message when the manifest's bench field does not match
    /// `id` (a stale or foreign file must not satisfy resume).
    pub fn from_manifest(id: &JobId, m: &Manifest) -> Result<Self, String> {
        if m.bench != id.to_string() {
            return Err(format!(
                "manifest names job {:?}, expected {:?}",
                m.bench,
                id.to_string()
            ));
        }
        Ok(JobResult {
            id: id.clone(),
            metrics: m.metrics.clone(),
            sim_cycles: m.host.sim_cycles,
            wall_s: 0.0,
            resumed: true,
        })
    }
}

/// Current failure-record schema version.
pub const FAILURE_SCHEMA_VERSION: u64 = 1;

/// The machine-readable record a failed job leaves behind instead of
/// poisoning the sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FailureRecord {
    /// Full job id (`<experiment>/<unit>`).
    pub job: String,
    /// Failure kind: `panic`, `budget`, or `error`.
    pub kind: String,
    /// Attempts made (first run + retries).
    pub attempts: u32,
    /// Last attempt's message.
    pub message: String,
    /// The cycle budget that applied (0 = unlimited).
    pub cycle_budget: u64,
}

impl FailureRecord {
    /// Serializes as a JSON document.
    #[must_use]
    pub fn to_json(&self) -> String {
        Json::obj([
            (
                "schema".to_string(),
                Json::Num(FAILURE_SCHEMA_VERSION as f64),
            ),
            ("job".to_string(), Json::Str(self.job.clone())),
            ("kind".to_string(), Json::Str(self.kind.clone())),
            ("attempts".to_string(), Json::Num(f64::from(self.attempts))),
            ("message".to_string(), Json::Str(self.message.clone())),
            (
                "cycle_budget".to_string(),
                Json::Num(self.cycle_budget as f64),
            ),
        ])
        .to_string()
    }

    /// Parses a failure record.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON or a missing field.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_f64)
            .ok_or("failure record missing numeric 'schema'")? as u64;
        if schema != FAILURE_SCHEMA_VERSION {
            return Err(format!("unsupported failure-record schema {schema}"));
        }
        let s = |k: &str| {
            doc.get(k)
                .and_then(Json::as_str)
                .map(ToString::to_string)
                .ok_or(format!("failure record missing string '{k}'"))
        };
        Ok(FailureRecord {
            job: s("job")?,
            kind: s("kind")?,
            attempts: doc.get("attempts").and_then(Json::as_f64).unwrap_or(1.0) as u32,
            message: s("message")?,
            cycle_budget: doc
                .get("cycle_budget")
                .and_then(Json::as_f64)
                .unwrap_or(0.0) as u64,
        })
    }
}

/// The ordered, merged view of a sweep's completed jobs.
///
/// Iteration and merge order follow job *registration* order — never
/// completion order — which is what makes sweep output byte-identical
/// regardless of thread count or schedule.
#[derive(Debug, Default)]
pub struct ResultSet {
    order: Vec<JobId>,
    map: BTreeMap<JobId, JobResult>,
}

impl ResultSet {
    /// Inserts a result, keeping first-registration order.
    pub fn insert(&mut self, r: JobResult) {
        if !self.map.contains_key(&r.id) {
            self.order.push(r.id.clone());
        }
        self.map.insert(r.id.clone(), r);
    }

    /// Number of results.
    #[must_use]
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// The result of job `<experiment>/<unit>`, if completed.
    #[must_use]
    pub fn get(&self, experiment: &str, unit: &str) -> Option<&JobResult> {
        self.map.get(&JobId {
            experiment: experiment.to_string(),
            unit: unit.to_string(),
        })
    }

    /// The value of `key` in job `<experiment>/<unit>`.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message when the job or metric is
    /// absent — renderers only run over grids whose jobs all
    /// completed, so a miss is a programming error in the grid/render
    /// pairing, not a runtime condition.
    #[must_use]
    pub fn metric(&self, experiment: &str, unit: &str, key: &str) -> f64 {
        let r = self
            .get(experiment, unit)
            .unwrap_or_else(|| panic!("no completed job {experiment}/{unit}"));
        *r.metrics
            .get(key)
            .unwrap_or_else(|| panic!("job {experiment}/{unit} has no metric {key:?}"))
    }

    /// Results in registration order.
    pub fn iter(&self) -> impl Iterator<Item = &JobResult> {
        self.order.iter().map(|id| &self.map[id])
    }

    /// Results of one experiment, in registration order.
    pub fn of_experiment<'a>(&'a self, experiment: &'a str) -> impl Iterator<Item = &'a JobResult> {
        self.iter().filter(move |r| r.id.experiment == experiment)
    }

    /// Total simulated cycles across every result of `experiment`.
    #[must_use]
    pub fn sim_cycles(&self, experiment: &str) -> u64 {
        self.of_experiment(experiment).map(|r| r.sim_cycles).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_id_validates_and_displays() {
        let id = JobId::new("fig11_power_efficiency", "BP-gscalar");
        assert_eq!(id.to_string(), "fig11_power_efficiency/BP-gscalar");
    }

    #[test]
    #[should_panic(expected = "bad job unit")]
    fn job_id_rejects_separator_in_unit() {
        let _ = JobId::new("exp", "a/b");
    }

    #[test]
    fn result_round_trips_through_manifest() {
        let id = JobId::new("exp", "cell");
        let mut out = JobOutput::default();
        out.metric("ipc", 1.5);
        out.metric("cycles", 100.0);
        out.sim_cycles = 100;
        let r = JobResult::from_output(id.clone(), out, 2.5);
        let m = r.to_manifest();
        assert_eq!(m.bench, "exp/cell");
        assert_eq!(m.host.wall_time_s, 0.0, "wall time must not persist");
        let back = JobResult::from_manifest(&id, &m).unwrap();
        assert_eq!(back.metrics, r.metrics);
        assert_eq!(back.sim_cycles, 100);
        assert!(back.resumed);
        // A foreign manifest must not satisfy resume.
        let other = JobId::new("exp", "other");
        assert!(JobResult::from_manifest(&other, &m).is_err());
    }

    #[test]
    fn failure_record_round_trips() {
        let f = FailureRecord {
            job: "exp/cell".into(),
            kind: "panic".into(),
            attempts: 2,
            message: "boom: index 7 out of bounds".into(),
            cycle_budget: 1000,
        };
        let back = FailureRecord::from_json(&f.to_json()).unwrap();
        assert_eq!(back, f);
        assert!(FailureRecord::from_json("{}").is_err());
    }

    #[test]
    fn result_set_keeps_registration_order() {
        let mut set = ResultSet::default();
        for unit in ["c", "a", "b"] {
            set.insert(JobResult::from_output(
                JobId::new("e", unit),
                JobOutput::default(),
                0.0,
            ));
        }
        let order: Vec<String> = set.iter().map(|r| r.id.unit.clone()).collect();
        assert_eq!(order, ["c", "a", "b"]);
    }

    #[test]
    fn budget_errors_are_not_retryable() {
        assert!(!JobError::Budget {
            cycles: 10,
            budget: 5
        }
        .retryable());
        assert!(JobError::Panic("x".into()).retryable());
        assert!(JobError::Failed("x".into()).retryable());
    }
}
