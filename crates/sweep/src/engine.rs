//! The sweep engine: resume scan, fault-isolated parallel execution,
//! and deterministic persistence.
//!
//! Execution model, per job:
//!
//! 1. **Resume** — when an output directory is configured, a job whose
//!    completed manifest (`jobs/<exp>/<unit>.json`) parses and names
//!    the job is *skipped* and its result reloaded. A failure record
//!    (`jobs/<exp>/<unit>.failure.json`) does **not** count as
//!    completed: the job re-runs, and the record is replaced by a
//!    manifest on success. A corrupt manifest is treated as absent.
//! 2. **Isolation** — the job closure runs under `catch_unwind`; a
//!    panic is contained, recorded, and cannot poison the sweep.
//! 3. **Bounded retry** — panics and job-reported errors are retried
//!    up to `max_retries` extra attempts; cycle-budget overruns are
//!    deterministic and never retried.
//! 4. **Persistence** — completed jobs are written as byte-
//!    deterministic schema-v1 manifests (temp file + rename, so a
//!    killed sweep never leaves a truncated "completed" file); failed
//!    jobs get a machine-readable [`FailureRecord`].
//!
//! All file writes and progress output happen on the calling thread;
//! workers only simulate.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::job::{
    FailureRecord, JobCtx, JobError, JobId, JobOutput, JobResult, JobSpec, ResultSet,
};
use crate::pool::run_indexed;
use gscalar_live::{EtaTracker, LiveHandle, LiveRecord};
use gscalar_metrics::{HostProfile, Manifest};

/// Progress reporting mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Progress {
    /// No output.
    #[default]
    Quiet,
    /// One line per completed job on stderr, with a running ETA.
    PerJob,
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Worker threads (0 = available parallelism).
    pub threads: usize,
    /// Results directory; `None` disables persistence and resume.
    /// Per-job artifacts live under `<out_dir>/jobs/`.
    pub out_dir: Option<PathBuf>,
    /// Extra attempts after a retryable failure (panic or job error).
    pub max_retries: u32,
    /// Progress reporting.
    pub progress: Progress,
    /// Live telemetry stream for sweep lifecycle events (`sweep_start`,
    /// `job_start`/`job_retry`/`job_end` with a budget-weighted ETA,
    /// `sweep_end`). `None` disables lifecycle emission. Note that
    /// job start/retry events are emitted from worker threads, so
    /// their order between concurrent jobs varies with thread count —
    /// the stream is a side channel, never a comparison artifact.
    pub live: Option<LiveHandle>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            threads: 1,
            out_dir: None,
            max_retries: 1,
            progress: Progress::Quiet,
            live: None,
        }
    }
}

/// What a sweep produced.
#[derive(Debug, Default)]
pub struct SweepOutcome {
    /// Every completed job (executed now or resumed), in registration
    /// order.
    pub results: ResultSet,
    /// Every job that exhausted its attempts, in registration order.
    pub failures: Vec<FailureRecord>,
    /// Jobs executed in this run.
    pub executed: usize,
    /// Jobs skipped because a completed manifest was found.
    pub resumed: usize,
    /// Wall seconds for the whole sweep.
    pub wall_s: f64,
}

impl SweepOutcome {
    /// Whether every job completed.
    #[must_use]
    pub fn all_completed(&self) -> bool {
        self.failures.is_empty()
    }

    /// Experiments with at least one failed job, deduplicated, in
    /// first-failure order.
    #[must_use]
    pub fn failed_experiments(&self) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        for f in &self.failures {
            let exp = f.job.split('/').next().unwrap_or(&f.job).to_string();
            if !out.contains(&exp) {
                out.push(exp);
            }
        }
        out
    }
}

/// Paths of one job's on-disk artifacts.
fn job_paths(out_dir: &Path, spec: &JobSpec) -> (PathBuf, PathBuf) {
    let dir = out_dir.join("jobs").join(&spec.id.experiment);
    (
        dir.join(format!("{}.json", spec.id.unit)),
        dir.join(format!("{}.failure.json", spec.id.unit)),
    )
}

/// Builds the real-timing side channel written next to a job's
/// deterministic manifest as `jobs/<exp>/<unit>.host.json`. The main
/// manifest stays byte-deterministic; actual host wall time rides
/// here. The resume scan never reads these files, and every metric is
/// under `host/`, so the side channel can neither perturb determinism
/// nor gate a regression comparison.
fn host_manifest(id: &JobId, sim_cycles: u64, wall_s: f64) -> Manifest {
    let mut m = Manifest::new(format!("{id}.host"));
    m.host = HostProfile {
        wall_time_s: wall_s,
        sim_cycles,
        cycles_per_host_s: if wall_s > 0.0 {
            sim_cycles as f64 / wall_s
        } else {
            0.0
        },
    };
    m.set("host/wall_time_s", wall_s);
    m.set("host/sim_cycles", sim_cycles as f64);
    m.set("host/cycles_per_host_s", m.host.cycles_per_host_s);
    m
}

/// Writes `text` to `path` atomically (temp file + rename).
fn write_atomic(path: &Path, text: &str) {
    if let Some(dir) = path.parent() {
        std::fs::create_dir_all(dir).unwrap_or_else(|e| panic!("creating {}: {e}", dir.display()));
    }
    let tmp = path.with_extension("json.tmp");
    std::fs::write(&tmp, text).unwrap_or_else(|e| panic!("writing {}: {e}", tmp.display()));
    std::fs::rename(&tmp, path)
        .unwrap_or_else(|e| panic!("renaming {} -> {}: {e}", tmp.display(), path.display()));
}

/// Runs one job with panic containment and bounded retry, returning
/// the attempt count alongside the outcome. Emits `job_start` (before
/// the first attempt) and `job_retry` lifecycle events on `live`; this
/// runs on a worker thread, which the non-blocking stream supports.
fn run_one(
    spec: &JobSpec,
    max_retries: u32,
    live: Option<&LiveHandle>,
) -> (u32, Result<JobOutput, JobError>) {
    let ctx = JobCtx {
        cycle_budget: spec.cycle_budget,
    };
    if let Some(live) = live {
        live.emit(&LiveRecord::JobStart {
            job: spec.id.to_string(),
            budget: spec.cycle_budget,
            t_s: live.now_s(),
        });
    }
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| (spec.run)(&ctx)));
        let err = match outcome {
            Ok(Ok(out)) => return (attempts, Ok(out)),
            Ok(Err(e)) => e,
            Err(payload) => JobError::Panic(panic_message(payload.as_ref())),
        };
        if !err.retryable() || attempts > max_retries {
            return (attempts, Err(err));
        }
        if let Some(live) = live {
            live.emit(&LiveRecord::JobRetry {
                job: spec.id.to_string(),
                attempt: u64::from(attempts),
                kind: err.kind().to_string(),
                message: err.message(),
                t_s: live.now_s(),
            });
        }
    }
}

/// Extracts a human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// Executes a job grid: resumes completed jobs from `cfg.out_dir`,
/// shards the rest across the work-stealing pool, and persists every
/// outcome. See the module docs for the exact semantics.
///
/// The returned [`ResultSet`] is ordered by job registration order, so
/// any merge over it is independent of thread count and schedule.
#[must_use]
pub fn run_sweep(specs: &[JobSpec], cfg: &SweepConfig) -> SweepOutcome {
    let t0 = Instant::now();
    let mut outcome = SweepOutcome::default();

    // Results keyed by registration index; the ResultSet is built from
    // these slots *after* the run, so completion order never leaks
    // into merge order.
    let mut slots: Vec<Option<JobResult>> = specs.iter().map(|_| None).collect();

    // Resume scan: reload completed manifests, queue the rest.
    let mut pending: Vec<usize> = Vec::new();
    for (i, spec) in specs.iter().enumerate() {
        let prior = cfg.out_dir.as_deref().and_then(|dir| {
            let (done_path, _) = job_paths(dir, spec);
            let text = std::fs::read_to_string(done_path).ok()?;
            let manifest = Manifest::from_json(&text).ok()?;
            JobResult::from_manifest(&spec.id, &manifest).ok()
        });
        match prior {
            Some(r) => {
                outcome.resumed += 1;
                slots[i] = Some(r);
            }
            None => pending.push(i),
        }
    }

    // Parallel execution; results land on this thread.
    let total = pending.len();
    let budgets: Vec<u64> = pending.iter().map(|&i| specs[i].cycle_budget).collect();
    let mut eta = EtaTracker::new(&budgets);
    if let Some(live) = cfg.live.as_ref() {
        live.emit(&LiveRecord::SweepStart {
            jobs: total as u64,
            budget_cycles: budgets.iter().sum(),
            t_s: live.now_s(),
        });
    }
    let mut done = 0usize;
    let mut failures_by_index: Vec<(usize, FailureRecord)> = Vec::new();
    run_indexed(
        cfg.threads,
        total,
        |k| {
            let spec = &specs[pending[k]];
            let t = Instant::now();
            let (attempts, result) = run_one(spec, cfg.max_retries, cfg.live.as_ref());
            (attempts, result, t.elapsed().as_secs_f64())
        },
        |k, (attempts, result, wall_s)| {
            let spec = &specs[pending[k]];
            done += 1;
            outcome.executed += 1;
            eta.complete(k);
            let eta_s = eta.eta_s(t0.elapsed().as_secs_f64());
            let job_end = |status: &str, sim_cycles: u64| {
                if let Some(live) = cfg.live.as_ref() {
                    live.emit(&LiveRecord::JobEnd {
                        job: spec.id.to_string(),
                        status: status.to_string(),
                        attempts: u64::from(attempts),
                        sim_cycles,
                        wall_s: live.redact(wall_s),
                        done: done as u64,
                        total: total as u64,
                        progress: eta.fraction(),
                        eta_s: live.redact(eta_s),
                        t_s: live.now_s(),
                    });
                }
            };
            match result {
                Ok(out) => {
                    let r = JobResult::from_output(spec.id.clone(), out, wall_s);
                    if let Some(dir) = cfg.out_dir.as_deref() {
                        let (done_path, fail_path) = job_paths(dir, spec);
                        write_atomic(&done_path, &r.to_manifest().to_json());
                        write_atomic(
                            &done_path.with_extension("host.json"),
                            &host_manifest(&spec.id, r.sim_cycles, wall_s).to_json(),
                        );
                        // A success supersedes any failure record left
                        // by a previous run.
                        std::fs::remove_file(fail_path).ok();
                    }
                    job_end("ok", r.sim_cycles);
                    progress_line(
                        cfg.progress,
                        done,
                        total,
                        t0,
                        &spec.id.to_string(),
                        "ok",
                        wall_s,
                        eta_s,
                    );
                    slots[pending[k]] = Some(r);
                }
                Err(e) => {
                    let record = FailureRecord {
                        job: spec.id.to_string(),
                        kind: e.kind().to_string(),
                        attempts,
                        message: e.message(),
                        cycle_budget: spec.cycle_budget,
                    };
                    if let Some(dir) = cfg.out_dir.as_deref() {
                        let (_, fail_path) = job_paths(dir, spec);
                        write_atomic(&fail_path, &record.to_json());
                    }
                    job_end(e.kind(), 0);
                    progress_line(
                        cfg.progress,
                        done,
                        total,
                        t0,
                        &spec.id.to_string(),
                        e.kind(),
                        wall_s,
                        eta_s,
                    );
                    failures_by_index.push((pending[k], record));
                }
            }
        },
    );
    if let Some(live) = cfg.live.as_ref() {
        live.emit(&LiveRecord::SweepEnd {
            done: outcome.executed as u64,
            total: total as u64,
            failed: failures_by_index.len() as u64,
            wall_s: live.redact(t0.elapsed().as_secs_f64()),
            t_s: live.now_s(),
        });
    }
    // Results and failures in registration order, not completion
    // order — this is what makes merged output schedule-independent.
    for r in slots.into_iter().flatten() {
        outcome.results.insert(r);
    }
    failures_by_index.sort_by_key(|(i, _)| *i);
    outcome.failures = failures_by_index.into_iter().map(|(_, f)| f).collect();
    outcome.wall_s = t0.elapsed().as_secs_f64();
    outcome
}

/// Prints one per-job progress line with a running ETA. `eta` comes
/// from the budget-weighted [`EtaTracker`], so heavy cells no longer
/// skew the projection the way a plain per-job average did.
#[allow(clippy::too_many_arguments)]
fn progress_line(
    mode: Progress,
    done: usize,
    total: usize,
    t0: Instant,
    id: &str,
    status: &str,
    wall_s: f64,
    eta: f64,
) {
    if mode != Progress::PerJob {
        return;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let flag = if status == "ok" { "" } else { " FAILED" };
    eprintln!(
        "[{done:>4}/{total}] {status:<6} {id:<48} {wall_s:>7.2}s  elapsed {elapsed:>6.1}s  eta {eta:>6.1}s{flag}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::JobId;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::Arc;

    fn ok_job(exp: &str, unit: &str, value: f64) -> JobSpec {
        let unit_owned = unit.to_string();
        JobSpec::new(JobId::new(exp, unit), move |_ctx| {
            let mut out = JobOutput::default();
            out.metric(format!("{unit_owned}/v"), value);
            out.sim_cycles = value as u64;
            Ok(out)
        })
    }

    #[test]
    fn runs_grid_and_orders_results() {
        let specs = vec![
            ok_job("e", "z-last", 1.0),
            ok_job("e", "a-first", 2.0),
            ok_job("e", "m-mid", 3.0),
        ];
        let out = run_sweep(&specs, &SweepConfig::default());
        assert!(out.all_completed());
        assert_eq!(out.executed, 3);
        let units: Vec<&str> = out.results.iter().map(|r| r.id.unit.as_str()).collect();
        assert_eq!(units, ["z-last", "a-first", "m-mid"]);
        assert_eq!(out.results.metric("e", "m-mid", "m-mid/v"), 3.0);
    }

    #[test]
    fn panics_are_contained_and_retried() {
        let tries = Arc::new(AtomicU32::new(0));
        let t = tries.clone();
        let specs = vec![
            JobSpec::new(JobId::new("e", "boom"), move |_| {
                t.fetch_add(1, Ordering::SeqCst);
                panic!("injected fault");
            }),
            ok_job("e", "fine", 1.0),
        ];
        let cfg = SweepConfig {
            max_retries: 2,
            ..SweepConfig::default()
        };
        let out = run_sweep(&specs, &cfg);
        assert_eq!(tries.load(Ordering::SeqCst), 3, "1 try + 2 retries");
        assert_eq!(out.failures.len(), 1);
        assert_eq!(out.failures[0].kind, "panic");
        assert_eq!(out.failures[0].attempts, 3);
        assert!(out.failures[0].message.contains("injected fault"));
        assert_eq!(out.failed_experiments(), ["e"]);
        // The healthy job still completed.
        assert!(out.results.get("e", "fine").is_some());
    }

    #[test]
    fn budget_overruns_never_retry() {
        let tries = Arc::new(AtomicU32::new(0));
        let t = tries.clone();
        let specs = vec![JobSpec::new(JobId::new("e", "slow"), move |ctx| {
            t.fetch_add(1, Ordering::SeqCst);
            Err(JobError::Budget {
                cycles: ctx.cycle_budget + 1,
                budget: ctx.cycle_budget,
            })
        })
        .with_budget(100)];
        let cfg = SweepConfig {
            max_retries: 5,
            ..SweepConfig::default()
        };
        let out = run_sweep(&specs, &cfg);
        assert_eq!(tries.load(Ordering::SeqCst), 1);
        assert_eq!(out.failures[0].kind, "budget");
        assert_eq!(out.failures[0].cycle_budget, 100);
        assert!(out.failures[0].message.contains("101"));
    }

    #[test]
    fn persists_and_resumes() {
        let dir = std::env::temp_dir().join("gscalar-sweep-engine-resume");
        std::fs::remove_dir_all(&dir).ok();
        let runs = Arc::new(AtomicU32::new(0));
        let mk = |runs: Arc<AtomicU32>| {
            vec![JobSpec::new(JobId::new("e", "j"), move |_| {
                runs.fetch_add(1, Ordering::SeqCst);
                let mut out = JobOutput::default();
                out.metric("x", 7.0);
                out.sim_cycles = 42;
                Ok(out)
            })]
        };
        let cfg = SweepConfig {
            out_dir: Some(dir.clone()),
            ..SweepConfig::default()
        };
        let first = run_sweep(&mk(runs.clone()), &cfg);
        assert_eq!((first.executed, first.resumed), (1, 0));
        assert!(dir.join("jobs/e/j.json").is_file());
        // Real timing rides in a side channel the resume scan ignores.
        let host = Manifest::load(&dir.join("jobs/e/j.host.json")).unwrap();
        assert_eq!(host.bench, "e/j.host");
        assert_eq!(host.host.sim_cycles, 42);
        assert!(host.get("host/wall_time_s").is_some());
        let second = run_sweep(&mk(runs.clone()), &cfg);
        assert_eq!((second.executed, second.resumed), (0, 1));
        assert_eq!(runs.load(Ordering::SeqCst), 1, "resume must not re-run");
        let r = second.results.get("e", "j").unwrap();
        assert!(r.resumed);
        assert_eq!(r.sim_cycles, 42);
        assert_eq!(r.metrics["x"], 7.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_completed_manifest_reruns() {
        let dir = std::env::temp_dir().join("gscalar-sweep-engine-corrupt");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("jobs/e")).unwrap();
        std::fs::write(dir.join("jobs/e/j.json"), "{\"schema\":1,").unwrap();
        let cfg = SweepConfig {
            out_dir: Some(dir.clone()),
            ..SweepConfig::default()
        };
        let out = run_sweep(&[ok_job("e", "j", 5.0)], &cfg);
        assert_eq!((out.executed, out.resumed), (1, 0));
        // And the rerun repaired the file.
        let text = std::fs::read_to_string(dir.join("jobs/e/j.json")).unwrap();
        assert!(Manifest::from_json(&text).is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
