//! Sweep lifecycle telemetry: exactly one `job_start` and one
//! `job_end` per job — including panicking, retried, and
//! budget-overrun jobs — plus `sweep_start`/`sweep_end` bracketing and
//! deterministic redaction of every wall-clock field.

use std::collections::BTreeMap;

use gscalar_live::{LiveHandle, LiveRecord, StreamConfig};
use gscalar_sweep::{run_sweep, JobError, JobId, JobOutput, JobSpec, SweepConfig};

fn ok_job(unit: &str, cycles: u64) -> JobSpec {
    JobSpec::new(JobId::new("exp", unit), move |_| {
        let mut out = JobOutput::default();
        out.metric("v", 1.0);
        out.sim_cycles = cycles;
        Ok(out)
    })
}

fn collect(threads: usize) -> Vec<LiveRecord> {
    let live = LiveHandle::memory(StreamConfig {
        deterministic: true,
        ..StreamConfig::default()
    });
    let specs = vec![
        ok_job("good-a", 1000),
        // Panics once, succeeds on the retry.
        {
            let flaky = std::sync::atomic::AtomicU32::new(0);
            JobSpec::new(JobId::new("exp", "flaky"), move |_| {
                if flaky.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 0 {
                    panic!("transient fault");
                }
                Ok(JobOutput {
                    sim_cycles: 500,
                    ..JobOutput::default()
                })
            })
        },
        // Panics on every attempt.
        JobSpec::new(JobId::new("exp", "doomed"), |_| panic!("hard fault")),
        // Deterministic budget overrun: never retried.
        JobSpec::new(JobId::new("exp", "over"), |ctx| {
            Err(JobError::Budget {
                cycles: ctx.cycle_budget + 1,
                budget: ctx.cycle_budget,
            })
        })
        .with_budget(2000),
        ok_job("good-b", 1500),
    ];
    let cfg = SweepConfig {
        threads,
        max_retries: 1,
        live: Some(live.clone()),
        ..SweepConfig::default()
    };
    let out = run_sweep(&specs, &cfg);
    assert_eq!(out.executed, 5);
    assert_eq!(out.failures.len(), 2);
    live.close();
    live.collected()
        .unwrap()
        .iter()
        .map(|l| LiveRecord::parse(l).unwrap_or_else(|e| panic!("{l}: {e}")))
        .collect()
}

fn check_stream(records: &[LiveRecord]) {
    let mut starts: BTreeMap<String, u64> = BTreeMap::new();
    let mut ends: BTreeMap<String, (String, u64)> = BTreeMap::new();
    let mut retries: BTreeMap<String, u64> = BTreeMap::new();
    let mut sweep_starts = 0;
    let mut sweep_ends = 0;
    for r in records {
        match r {
            LiveRecord::SweepStart { jobs, t_s, .. } => {
                sweep_starts += 1;
                assert_eq!(*jobs, 5);
                assert_eq!(*t_s, 0.0);
            }
            LiveRecord::JobStart { job, t_s, .. } => {
                *starts.entry(job.clone()).or_insert(0) += 1;
                assert_eq!(*t_s, 0.0);
            }
            LiveRecord::JobRetry { job, kind, .. } => {
                *retries.entry(job.clone()).or_insert(0) += 1;
                assert_eq!(kind, "panic");
            }
            LiveRecord::JobEnd {
                job,
                status,
                attempts,
                wall_s,
                eta_s,
                progress,
                total,
                ..
            } => {
                ends.insert(job.clone(), (status.clone(), *attempts));
                assert_eq!(*wall_s, 0.0, "wall_s not redacted");
                assert_eq!(*eta_s, 0.0, "eta_s not redacted");
                assert!(*progress > 0.0 && *progress <= 1.0);
                assert_eq!(*total, 5);
            }
            LiveRecord::SweepEnd {
                done,
                total,
                failed,
                wall_s,
                ..
            } => {
                sweep_ends += 1;
                assert_eq!((*done, *total, *failed), (5, 5, 2));
                assert_eq!(*wall_s, 0.0);
            }
            LiveRecord::StreamEnd { dropped, .. } => assert_eq!(*dropped, 0),
            other => panic!("unexpected record in sweep stream: {other:?}"),
        }
    }
    assert_eq!(sweep_starts, 1);
    assert_eq!(sweep_ends, 1);
    let jobs = [
        "exp/good-a",
        "exp/flaky",
        "exp/doomed",
        "exp/over",
        "exp/good-b",
    ];
    for j in jobs {
        assert_eq!(starts.get(j), Some(&1), "job_start for {j}: {starts:?}");
        assert!(ends.contains_key(j), "job_end for {j}: {ends:?}");
    }
    assert_eq!(ends["exp/good-a"], ("ok".to_string(), 1));
    assert_eq!(ends["exp/flaky"], ("ok".to_string(), 2), "retried then ok");
    assert_eq!(ends["exp/doomed"], ("panic".to_string(), 2));
    assert_eq!(ends["exp/over"], ("budget".to_string(), 1), "never retried");
    assert_eq!(retries.get("exp/flaky"), Some(&1));
    assert_eq!(retries.get("exp/doomed"), Some(&1));
    assert!(!retries.contains_key("exp/over"), "budget overrun retried");
    // sweep_start precedes every job event; stream_end is last.
    assert!(matches!(records[0], LiveRecord::SweepStart { .. }));
    assert!(matches!(records.last(), Some(LiveRecord::StreamEnd { .. })));
    // The final job_end reports full weighted progress.
    let last_progress = records
        .iter()
        .filter_map(|r| match r {
            LiveRecord::JobEnd { progress, .. } => Some(*progress),
            _ => None,
        })
        .next_back()
        .unwrap();
    assert!((last_progress - 1.0).abs() < 1e-12);
}

#[test]
fn one_lifecycle_event_per_job_serial() {
    check_stream(&collect(1));
}

#[test]
fn one_lifecycle_event_per_job_parallel() {
    check_stream(&collect(4));
}
