//! Hermetic stand-in for the `criterion` benchmark harness.
//!
//! The workspace must build and test with no crates.io access, so this
//! crate implements the subset of the criterion API our benches use:
//! `Criterion`, `benchmark_group` with `sample_size`/`throughput`,
//! `bench_function`, `Bencher::iter`/`iter_batched`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Behavior mirrors the real harness's two modes:
//!
//! * `cargo bench` passes `--bench` to `harness = false` targets →
//!   every benchmark is calibrated and measured (wall-clock medians
//!   over several samples) and a `time / throughput` line is printed.
//! * `cargo test` passes no flag → each benchmark routine runs once so
//!   the suite stays fast while still exercising the bench code paths.
//!
//! There are no plots, no saved baselines, and no statistical
//! regression tests — numbers print to stdout and that is all.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How measured iterations relate to reported throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Each iteration processes this many logical elements.
    Elements(u64),
    /// Each iteration processes this many bytes.
    Bytes(u64),
}

/// Batch sizing hint for [`Bencher::iter_batched`]; the shim times each
/// routine call individually, so the variants only exist for API parity.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine call.
    PerIteration,
}

/// The measurement driver handed to benchmark closures.
pub struct Bencher {
    full: bool,
    sample_size: usize,
    /// Median nanoseconds per iteration, filled by `iter*`.
    ns_per_iter: f64,
}

impl Bencher {
    /// Measures `routine`, called repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if !self.full {
            black_box(routine());
            return;
        }
        // Calibrate: how many calls fit in ~10ms?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(20));
        let per_sample = (10_000_000 / once.as_nanos().max(1)).clamp(1, 10_000_000) as u64;
        let mut samples = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / per_sample as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.ns_per_iter = samples[samples.len() / 2];
    }

    /// Measures `routine` over fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if !self.full {
            black_box(routine(setup()));
            return;
        }
        let samples = self.sample_size.max(1);
        // Time each call individually so setup stays outside the clock.
        let mut medians = Vec::with_capacity(samples);
        for _ in 0..samples {
            const CALLS: usize = 64;
            let mut total = Duration::ZERO;
            for _ in 0..CALLS {
                let input = setup();
                let start = Instant::now();
                black_box(routine(input));
                total += start.elapsed();
            }
            medians.push(total.as_nanos() as f64 / CALLS as f64);
        }
        medians.sort_by(f64::total_cmp);
        self.ns_per_iter = medians[medians.len() / 2];
    }
}

const DEFAULT_SAMPLE_SIZE: usize = 20;

/// The benchmark registry/driver, mirroring `criterion::Criterion`.
pub struct Criterion {
    full: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench` passes `--bench` to harness=false targets;
        // `cargo test` passes nothing → quick smoke mode.
        let full = std::env::args().any(|a| a == "--bench");
        Criterion { full }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(self.full, DEFAULT_SAMPLE_SIZE, None, &id.into(), f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            full: self.full,
            name: name.into(),
            sample_size: DEFAULT_SAMPLE_SIZE,
            throughput: None,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    full: bool,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full_id = format!("{}/{}", self.name, id.into());
        run_one(self.full, self.sample_size, self.throughput, &full_id, f);
        self
    }

    /// Ends the group (drop would do; kept for API parity).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    full: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    id: &str,
    mut f: F,
) {
    let mut b = Bencher {
        full,
        sample_size,
        ns_per_iter: f64::NAN,
    };
    f(&mut b);
    if !full {
        println!("bench {id}: ok (smoke run)");
        return;
    }
    let ns = b.ns_per_iter;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if ns > 0.0 => {
            format!("  ({:.2} Melem/s)", n as f64 / ns * 1e3)
        }
        Some(Throughput::Bytes(n)) if ns > 0.0 => {
            format!(
                "  ({:.2} MiB/s)",
                n as f64 / ns * 1e9 / (1024.0 * 1024.0) / 1e6
            )
        }
        _ => String::new(),
    };
    println!("bench {id}: {}{rate}", format_ns(ns));
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_mode_runs_each_routine_once() {
        let mut c = Criterion { full: false };
        let mut calls = 0;
        c.bench_function("counter", |b| b.iter(|| calls += 1));
        assert_eq!(calls, 1);
    }

    #[test]
    fn full_mode_measures_nonzero_time() {
        let mut c = Criterion { full: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("spin", |b| {
            b.iter(|| black_box((0..100u64).sum::<u64>()));
            assert!(b.ns_per_iter > 0.0);
        });
        g.finish();
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion { full: false };
        let mut setups = 0;
        let mut runs = 0;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    vec![1u32; 8]
                },
                |v| runs += v.len(),
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 1);
        assert_eq!(runs, 8);
    }
}
