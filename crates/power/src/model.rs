//! The chip power model: statistics × energies → watts and IPC/W.

use gscalar_sim::{GpuConfig, Stats};

use crate::energy::EnergyModel;

/// Register-file design, for Figure 12's comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RfScheme {
    /// Uncompressed banked register file.
    Baseline,
    /// Prior-work dedicated scalar register file (Gilani et al. \[3\]).
    ScalarRf,
    /// Warped-Compression: BDI-compressed register file (Lee et al. \[4\]).
    WarpedCompression,
    /// The paper's byte-wise compressed register file.
    ByteWise,
}

impl RfScheme {
    /// All schemes in Figure 12 order.
    pub const ALL: [RfScheme; 4] = [
        RfScheme::Baseline,
        RfScheme::ScalarRf,
        RfScheme::WarpedCompression,
        RfScheme::ByteWise,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RfScheme::Baseline => "baseline",
            RfScheme::ScalarRf => "scalar only",
            RfScheme::WarpedCompression => "W-C",
            RfScheme::ByteWise => "ours",
        }
    }
}

/// Register-file dynamic energy under `scheme`, in picojoules.
///
/// The codec (compressor/decompressor) energy is *not* included here —
/// the paper accounts it separately as a small chip-level adder
/// (Table 3 / Section 5.1) — so this matches Figure 12's "RF dynamic
/// power" definition.
#[must_use]
pub fn rf_energy_pj(stats: &Stats, scheme: RfScheme, e: &EnergyModel) -> f64 {
    let rf = &stats.rf;
    match scheme {
        RfScheme::Baseline => rf.baseline_arrays as f64 * e.rf_array_pj,
        RfScheme::ScalarRf => {
            rf.scalar_rf_small as f64 * e.scalar_rf_pj + rf.scalar_rf_arrays as f64 * e.rf_array_pj
        }
        RfScheme::WarpedCompression => rf.bdi_arrays as f64 * e.rf_array_pj,
        RfScheme::ByteWise => {
            rf.ours_arrays as f64 * e.rf_array_pj + rf.ours_bvr as f64 * e.rf_bvr_pj
        }
    }
}

/// A power breakdown for one simulated run.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerReport {
    /// Runtime in seconds (cycles / SM clock).
    pub runtime_s: f64,
    /// Per-component dynamic power in watts, in fixed order.
    pub components: Vec<(&'static str, f64)>,
    /// Static/uncore power in watts.
    pub static_w: f64,
    /// Thread-level IPC.
    pub ipc: f64,
}

impl PowerReport {
    /// Total chip power in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.static_w + self.components.iter().map(|(_, w)| w).sum::<f64>()
    }

    /// Power efficiency (IPC per watt) — the paper's Figure 11 metric.
    #[must_use]
    pub fn ipc_per_watt(&self) -> f64 {
        self.ipc / self.total_w()
    }

    /// Dynamic power of one named component (0.0 when absent).
    #[must_use]
    pub fn component_w(&self, name: &str) -> f64 {
        self.components
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0.0, |(_, w)| *w)
    }
}

impl std::fmt::Display for PowerReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "total {:.2} W | IPC {:.2} | IPC/W {:.4}",
            self.total_w(),
            self.ipc,
            self.ipc_per_watt()
        )?;
        writeln!(f, "  static/uncore: {:.2} W", self.static_w)?;
        for (name, w) in &self.components {
            writeln!(f, "  {name}: {w:.2} W")?;
        }
        Ok(())
    }
}

/// Per-component dynamic energy totals in picojoules, in the fixed
/// Figure-11 component order.
///
/// This is the single accounting point shared by [`chip_power`] (which
/// divides by runtime to get watts), the interval power telemetry in
/// [`telemetry`](crate::telemetry) (which differences cumulative
/// energies between samples), and [`total_energy_pj`]. Every component
/// is linear in the [`Stats`] counters, which is what makes the
/// timeline-integrates-to-total invariant hold structurally.
#[must_use]
pub fn component_energies_pj(
    stats: &Stats,
    rf_scheme: RfScheme,
    count_codec: bool,
    e: &EnergyModel,
) -> Vec<(&'static str, f64)> {
    let exec = stats.exec.int_lane_ops as f64 * e.int_lane_pj
        + stats.exec.fp_lane_ops as f64 * e.fp_lane_pj
        + stats.exec.sfu_lane_ops as f64 * e.sfu_lane_pj;
    let rf = rf_energy_pj(stats, rf_scheme, e);
    let xbar = match rf_scheme {
        RfScheme::ByteWise => stats.rf.xbar_bytes_ours as f64 * e.xbar_byte_pj,
        _ => stats.rf.xbar_bytes_baseline as f64 * e.xbar_byte_pj,
    };
    let oc = (stats.rf.reads + stats.rf.writes) as f64 * e.oc_pj;
    let codec = if count_codec {
        stats.rf.compressor_ops as f64 * e.compressor_pj
            + stats.rf.decompressor_ops as f64 * e.decompressor_pj
    } else {
        0.0
    };
    let l1 = (stats.mem.l1_hits + stats.mem.l1_misses) as f64 * e.l1_pj;
    let l2 = (stats.mem.l2_hits + stats.mem.l2_misses) as f64 * e.l2_pj;
    let dram = stats.mem.l2_misses as f64 * e.dram_pj;
    let shared = stats.mem.shared_accesses as f64 * e.shared_pj;
    let noc = stats.mem.noc_flits as f64 * e.noc_flit_pj;
    let frontend = stats.instr.warp_instrs as f64 * e.frontend_pj;
    vec![
        ("exec-units", exec),
        ("register-file", rf),
        ("crossbar", xbar),
        ("operand-collectors", oc),
        ("codec", codec),
        ("l1", l1),
        ("l2", l2),
        ("dram", dram),
        ("shared-mem", shared),
        ("noc", noc),
        ("frontend", frontend),
    ]
}

/// Total chip energy for a run in picojoules: every dynamic component
/// plus static power integrated over the runtime. This is the one-shot
/// figure the interval power timeline must integrate back to.
#[must_use]
pub fn total_energy_pj(
    stats: &Stats,
    cfg: &GpuConfig,
    rf_scheme: RfScheme,
    count_codec: bool,
    e: &EnergyModel,
) -> f64 {
    let runtime_s = (stats.cycles.max(1)) as f64 / cfg.sm_clock_hz;
    let dynamic: f64 = component_energies_pj(stats, rf_scheme, count_codec, e)
        .iter()
        .map(|(_, pj)| pj)
        .sum();
    dynamic + e.static_w * runtime_s * 1e12
}

/// Computes the chip power breakdown for a run, with the register file
/// modeled under `rf_scheme` (the scheme the simulated architecture
/// actually uses).
///
/// `count_codec` adds the compressor/decompressor event energy — true
/// for the compression-based architectures.
#[must_use]
pub fn chip_power(
    stats: &Stats,
    cfg: &GpuConfig,
    rf_scheme: RfScheme,
    count_codec: bool,
    e: &EnergyModel,
) -> PowerReport {
    let runtime_s = (stats.cycles.max(1)) as f64 / cfg.sm_clock_hz;
    let components = component_energies_pj(stats, rf_scheme, count_codec, e)
        .into_iter()
        .map(|(name, pj)| (name, pj * 1e-12 / runtime_s))
        .collect();
    PowerReport {
        runtime_s,
        components,
        static_w: e.static_w,
        ipc: stats.ipc(),
    }
}

/// Dynamic SFU power alone (for the Section 5.3 BP analysis).
#[must_use]
pub fn sfu_power_w(stats: &Stats, cfg: &GpuConfig, e: &EnergyModel) -> f64 {
    let runtime_s = (stats.cycles.max(1)) as f64 / cfg.sm_clock_hz;
    stats.exec.sfu_lane_ops as f64 * e.sfu_lane_pj * 1e-12 / runtime_s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[allow(clippy::field_reassign_with_default)] // builder-style test fixture
    fn stats_with(f: impl FnOnce(&mut Stats)) -> Stats {
        let mut s = Stats::default();
        s.cycles = 1000;
        s.instr.thread_instrs = 32_000;
        f(&mut s);
        s
    }

    #[test]
    fn rf_scheme_ordering_on_scalar_heavy_mix() {
        // 100 accesses: 40 scalar, 30 3-byte-similar, 30 raw.
        let s = stats_with(|s| {
            s.rf.reads = 100;
            s.rf.baseline_arrays = 100 * 8;
            s.rf.scalar_rf_small = 40;
            s.rf.scalar_rf_arrays = 60 * 8;
            s.rf.ours_arrays = 30 * 2 + 30 * 8;
            s.rf.ours_bvr = 100;
            s.rf.bdi_arrays = 40 + 30 * 3 + 30 * 8;
        });
        let e = EnergyModel::default_40nm();
        let base = rf_energy_pj(&s, RfScheme::Baseline, &e);
        let scalar = rf_energy_pj(&s, RfScheme::ScalarRf, &e);
        let wc = rf_energy_pj(&s, RfScheme::WarpedCompression, &e);
        let ours = rf_energy_pj(&s, RfScheme::ByteWise, &e);
        assert!(scalar < base);
        assert!(wc < scalar);
        assert!(ours < wc, "ours {ours} should beat W-C {wc}");
    }

    #[test]
    fn total_power_includes_static() {
        let s = stats_with(|_| {});
        let cfg = GpuConfig::gtx480();
        let e = EnergyModel::default_40nm();
        let p = chip_power(&s, &cfg, RfScheme::Baseline, false, &e);
        assert!(p.total_w() >= e.static_w);
        assert!(p.ipc_per_watt() > 0.0);
    }

    #[test]
    fn codec_counted_only_when_enabled() {
        let s = stats_with(|s| {
            s.rf.compressor_ops = 1_000_000;
            s.rf.decompressor_ops = 1_000_000;
        });
        let cfg = GpuConfig::gtx480();
        let e = EnergyModel::default_40nm();
        let with = chip_power(&s, &cfg, RfScheme::ByteWise, true, &e);
        let without = chip_power(&s, &cfg, RfScheme::ByteWise, false, &e);
        assert!(with.component_w("codec") > 0.0);
        assert_eq!(without.component_w("codec"), 0.0);
        assert!(with.total_w() > without.total_w());
    }

    #[test]
    fn sfu_energy_dominates_when_heavy() {
        let s = stats_with(|s| {
            s.exec.sfu_lane_ops = 1_000_000;
            s.exec.fp_lane_ops = 1_000_000;
        });
        let cfg = GpuConfig::gtx480();
        let e = EnergyModel::default_40nm();
        let sfu = sfu_power_w(&s, &cfg, &e);
        let p = chip_power(&s, &cfg, RfScheme::Baseline, false, &e);
        let exec = p.component_w("exec-units");
        assert!(sfu / exec > 0.8, "SFU should dominate an equal-count mix");
    }

    #[test]
    fn report_display_mentions_totals() {
        let s = stats_with(|_| {});
        let cfg = GpuConfig::gtx480();
        let p = chip_power(
            &s,
            &cfg,
            RfScheme::Baseline,
            false,
            &EnergyModel::default_40nm(),
        );
        let text = p.to_string();
        assert!(text.contains("IPC/W"));
        assert!(text.contains("register-file"));
    }
}
