//! The paper's Table 3: compressor/decompressor synthesis results
//! (commercial 40 nm standard-cell library, including 1024-bit pipeline
//! registers, at 1.4 GHz) and the chip-level overhead arithmetic of
//! Section 5.1.

/// Synthesis results for one hardware block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SynthesisResult {
    /// Cell area in µm².
    pub area_um2: f64,
    /// Critical-path delay in ns.
    pub delay_ns: f64,
    /// Power at 1.4 GHz in mW.
    pub power_mw: f64,
}

/// Table 3, decompressor column.
pub const DECOMPRESSOR: SynthesisResult = SynthesisResult {
    area_um2: 7332.0,
    delay_ns: 0.35,
    power_mw: 15.86,
};

/// Table 3, compressor column (includes the Figure 7 broadcast logic).
pub const COMPRESSOR: SynthesisResult = SynthesisResult {
    area_um2: 11624.0,
    delay_ns: 0.67,
    power_mw: 16.22,
};

/// Decompressors per SM (one per operand collector).
pub const DECOMPRESSORS_PER_SM: usize = 16;

/// Compressors per SM (one per SIMT execution pipeline).
pub const COMPRESSORS_PER_SM: usize = 4;

/// Chip-level overhead of the codec blocks for one SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmOverhead {
    /// Added power in watts.
    pub power_w: f64,
    /// Added area in mm².
    pub area_mm2: f64,
}

/// Computes the Section 5.1 per-SM overhead: "0.32 W (1.6%) and
/// 0.16 mm² (0.7%)".
#[must_use]
pub fn sm_overhead() -> SmOverhead {
    let power_mw = DECOMPRESSORS_PER_SM as f64 * DECOMPRESSOR.power_mw
        + COMPRESSORS_PER_SM as f64 * COMPRESSOR.power_mw;
    let area_um2 = DECOMPRESSORS_PER_SM as f64 * DECOMPRESSOR.area_um2
        + COMPRESSORS_PER_SM as f64 * COMPRESSOR.area_um2;
    SmOverhead {
        power_w: power_mw / 1000.0,
        area_mm2: area_um2 / 1e6,
    }
}

/// The BVR/EBR/flag array adds ~3% to register-file area; a second set
/// for half-register compression raises it to ~7% (Section 4.3).
#[must_use]
pub fn rf_area_overhead_fraction(half_registers: bool) -> f64 {
    if half_registers {
        0.07
    } else {
        0.03
    }
}

/// Energy of one 38-bit BVR/EBR array access relative to a full
/// 1024-bit bank access (Section 5.1).
pub const BVR_ACCESS_ENERGY_FRACTION: f64 = 0.052;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_constants() {
        assert_eq!(DECOMPRESSOR.area_um2, 7332.0);
        assert_eq!(COMPRESSOR.area_um2, 11624.0);
        assert_eq!(DECOMPRESSOR.power_mw, 15.86);
        assert_eq!(COMPRESSOR.power_mw, 16.22);
    }

    #[test]
    fn delays_fit_the_clock() {
        // One 1.4 GHz cycle is ~0.714 ns; both blocks fit in a cycle
        // (the paper's "one cycle is sufficient" claims).
        let cycle_ns = 1.0 / 1.4;
        assert!(DECOMPRESSOR.delay_ns < cycle_ns);
        assert!(COMPRESSOR.delay_ns < cycle_ns);
    }

    #[test]
    fn per_sm_overhead_matches_section_5_1() {
        let o = sm_overhead();
        // 16 × 15.86 mW + 4 × 16.22 mW ≈ 0.32 W
        assert!((o.power_w - 0.3186).abs() < 0.01, "power {}", o.power_w);
        // 16 × 7332 + 4 × 11624 µm² ≈ 0.16 mm²
        assert!((o.area_mm2 - 0.164).abs() < 0.005, "area {}", o.area_mm2);
    }

    #[test]
    fn rf_overhead_fractions() {
        assert_eq!(rf_area_overhead_fraction(false), 0.03);
        assert_eq!(rf_area_overhead_fraction(true), 0.07);
    }
}
