//! GPUWattch-style event-energy power model for the G-Scalar
//! reproduction.
//!
//! Consumes the scheme-independent activity counters produced by
//! [`gscalar_sim`] and converts them to watts:
//!
//! * [`EnergyModel`] — per-event energies encoding the paper's key
//!   relationships (SFU = 3–24× FP, BVR = 5.2% of a full RF access,
//!   Table 3 codec energies);
//! * [`chip_power`] — the full chip breakdown and IPC/W (Figure 11);
//! * [`rf_energy_pj`] + [`RfScheme`] — register-file dynamic energy
//!   under all four designs of Figure 12 from a single simulation run;
//! * [`synthesis`] — Table 3 and the Section 5.1 area/power overheads;
//! * [`telemetry`] — interval-sampled per-component power timelines
//!   guaranteed to integrate back to [`model::total_energy_pj`].
//!
//! # Examples
//!
//! ```
//! use gscalar_power::{chip_power, EnergyModel, RfScheme};
//! use gscalar_sim::{GpuConfig, Stats};
//!
//! let mut stats = Stats::default();
//! stats.cycles = 10_000;
//! stats.instr.thread_instrs = 200_000;
//! let report = chip_power(
//!     &stats,
//!     &GpuConfig::gtx480(),
//!     RfScheme::Baseline,
//!     false,
//!     &EnergyModel::default_40nm(),
//! );
//! assert!(report.total_w() > 0.0);
//! ```

pub mod energy;
pub mod model;
pub mod synthesis;
pub mod telemetry;

pub use energy::EnergyModel;
pub use model::{
    chip_power, component_energies_pj, rf_energy_pj, sfu_power_w, total_energy_pj, PowerReport,
    RfScheme,
};
pub use telemetry::{PowerInterval, PowerTimeline};
