//! Interval-sampled per-component power telemetry.
//!
//! A [`PowerTimeline`] plugs into the simulator's observer hook
//! ([`gscalar_sim::RunObserver`]) and converts the cumulative activity
//! counters delivered at each sample boundary into per-interval dynamic
//! power for every chip component of the [`chip_power`](crate::model)
//! breakdown, plus the constant static floor.
//!
//! The design invariant — enforced by tests here and property tests in
//! `gscalar-core` — is that the timeline integrates back to the same
//! total energy as the one-shot model:
//! [`PowerTimeline::integrated_energy_pj`] ==
//! [`total_energy_pj`](crate::model::total_energy_pj) (to floating-point
//! accumulation error). Both sides draw from the shared
//! [`component_energies_pj`] accounting, so a component added there is
//! telemetered automatically.

use gscalar_sim::{GpuConfig, RunObserver, Stats};

use crate::energy::EnergyModel;
use crate::model::{component_energies_pj, RfScheme};

/// Power over one sample interval.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerInterval {
    /// First cycle of the interval (exclusive start of integration).
    pub start_cycle: u64,
    /// Last cycle of the interval.
    pub end_cycle: u64,
    /// Per-component dynamic power in watts, fixed component order.
    pub component_w: Vec<(&'static str, f64)>,
    /// Static/uncore power in watts (constant across intervals).
    pub static_w: f64,
}

impl PowerInterval {
    /// Total power over this interval in watts.
    #[must_use]
    pub fn total_w(&self) -> f64 {
        self.static_w + self.component_w.iter().map(|(_, w)| w).sum::<f64>()
    }

    /// Interval length in seconds at `sm_clock_hz`.
    #[must_use]
    pub fn duration_s(&self, sm_clock_hz: f64) -> f64 {
        (self.end_cycle - self.start_cycle) as f64 / sm_clock_hz
    }
}

/// A [`RunObserver`] recording an interval power timeline.
///
/// # Examples
///
/// ```
/// use gscalar_isa::{KernelBuilder, LaunchConfig, Operand};
/// use gscalar_power::{telemetry::PowerTimeline, EnergyModel, RfScheme};
/// use gscalar_sim::{memory::GlobalMemory, ArchConfig, Gpu, GpuConfig};
/// use gscalar_trace::Tracer;
///
/// let mut b = KernelBuilder::new("tiny");
/// b.mov(Operand::Imm(7));
/// b.exit();
/// let kernel = b.build().unwrap();
///
/// let cfg = GpuConfig::test_small();
/// let mut timeline =
///     PowerTimeline::new(&cfg, RfScheme::Baseline, false, EnergyModel::default_40nm());
/// let mut gpu = Gpu::new(cfg.clone(), ArchConfig::baseline());
/// let mut mem = GlobalMemory::new();
/// let stats = gpu.run_observed(
///     &kernel,
///     LaunchConfig::linear(2, 64),
///     &mut mem,
///     &mut Tracer::off(),
///     0,
///     8,
///     &mut timeline,
/// );
/// let total = gscalar_power::model::total_energy_pj(
///     &stats,
///     &cfg,
///     RfScheme::Baseline,
///     false,
///     &EnergyModel::default_40nm(),
/// );
/// let integrated = timeline.integrated_energy_pj();
/// assert!((integrated - total).abs() <= 1e-6 * total);
/// ```
#[derive(Debug, Clone)]
pub struct PowerTimeline {
    sm_clock_hz: f64,
    scheme: RfScheme,
    count_codec: bool,
    energy: EnergyModel,
    last_cycle: u64,
    last_cum_pj: Vec<(&'static str, f64)>,
    intervals: Vec<PowerInterval>,
}

impl PowerTimeline {
    /// Creates a timeline for a run under `cfg` with the register file
    /// modeled as `scheme` (`count_codec` as in
    /// [`chip_power`](crate::model::chip_power)).
    #[must_use]
    pub fn new(cfg: &GpuConfig, scheme: RfScheme, count_codec: bool, energy: EnergyModel) -> Self {
        let zero = component_energies_pj(&Stats::default(), scheme, count_codec, &energy);
        PowerTimeline {
            sm_clock_hz: cfg.sm_clock_hz,
            scheme,
            count_codec,
            energy,
            last_cycle: 0,
            last_cum_pj: zero,
            intervals: Vec::new(),
        }
    }

    fn record_to(&mut self, cycle: u64, stats: &Stats) {
        if cycle <= self.last_cycle {
            return;
        }
        let cum = component_energies_pj(stats, self.scheme, self.count_codec, &self.energy);
        let dt_s = (cycle - self.last_cycle) as f64 / self.sm_clock_hz;
        let component_w = cum
            .iter()
            .zip(self.last_cum_pj.iter())
            .map(|(&(name, now_pj), &(_, prev_pj))| (name, (now_pj - prev_pj) * 1e-12 / dt_s))
            .collect();
        self.intervals.push(PowerInterval {
            start_cycle: self.last_cycle,
            end_cycle: cycle,
            component_w,
            static_w: self.energy.static_w,
        });
        self.last_cycle = cycle;
        self.last_cum_pj = cum;
    }

    /// The recorded intervals, oldest first.
    #[must_use]
    pub fn intervals(&self) -> &[PowerInterval] {
        &self.intervals
    }

    /// Re-integrates the timeline: Σ over intervals of total power ×
    /// interval duration, in picojoules. Must equal
    /// [`total_energy_pj`](crate::model::total_energy_pj) of the run's
    /// final statistics up to floating-point accumulation error.
    #[must_use]
    pub fn integrated_energy_pj(&self) -> f64 {
        self.intervals
            .iter()
            .map(|iv| iv.total_w() * iv.duration_s(self.sm_clock_hz) * 1e12)
            .sum()
    }

    /// Mean total power across the whole timeline in watts (0 when
    /// empty).
    #[must_use]
    pub fn mean_power_w(&self) -> f64 {
        let end = self.last_cycle;
        if end == 0 {
            return 0.0;
        }
        self.integrated_energy_pj() * 1e-12 / (end as f64 / self.sm_clock_hz)
    }

    /// Exports the timeline as per-component power time-series under
    /// `scope` (`<component>` and `total`, one point per interval at its
    /// end cycle, in watts).
    pub fn export(&self, scope: &mut gscalar_metrics::Scope<'_>) {
        for iv in &self.intervals {
            for (name, w) in &iv.component_w {
                scope.series_push(name, iv.end_cycle, *w);
            }
            scope.series_push("static", iv.end_cycle, iv.static_w);
            scope.series_push("total", iv.end_cycle, iv.total_w());
        }
    }
}

impl RunObserver for PowerTimeline {
    fn sample(&mut self, cycle: u64, stats: &Stats) {
        self.record_to(cycle, stats);
    }

    fn finish(&mut self, cycle: u64, merged: &Stats, _per_sm: &[Stats]) {
        // Close the tail interval so the integral covers the full run
        // even when the end cycle is not a sample boundary.
        self.record_to(cycle, merged);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::total_energy_pj;
    use gscalar_isa::{KernelBuilder, LaunchConfig, Operand, SReg};
    use gscalar_sim::{memory::GlobalMemory, ArchConfig, Gpu};
    use gscalar_trace::Tracer;

    fn kernel() -> gscalar_isa::Kernel {
        let mut b = KernelBuilder::new("work");
        let tid = b.s2r(SReg::TidX);
        let off = b.shl(tid.into(), Operand::Imm(2));
        let addr = b.iadd(off.into(), Operand::Imm(0x1000));
        let v = b.ld_global(addr, 0);
        let mut cur = v;
        for i in 0..12 {
            cur = b.iadd(cur.into(), Operand::Imm(i));
        }
        b.st_global(addr, cur, 0);
        b.exit();
        b.build().unwrap()
    }

    fn run_with_timeline(interval: u64) -> (Stats, PowerTimeline, GpuConfig) {
        let cfg = GpuConfig::test_small();
        let mut timeline =
            PowerTimeline::new(&cfg, RfScheme::ByteWise, true, EnergyModel::default_40nm());
        let mut gpu = Gpu::new(cfg.clone(), ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        let stats = gpu.run_observed(
            &kernel(),
            LaunchConfig::linear(4, 64),
            &mut mem,
            &mut Tracer::off(),
            0,
            interval,
            &mut timeline,
        );
        (stats, timeline, cfg)
    }

    #[test]
    fn integrates_to_one_shot_total_energy() {
        for interval in [1, 7, 64, 0] {
            let (stats, timeline, cfg) = run_with_timeline(interval);
            let total = total_energy_pj(
                &stats,
                &cfg,
                RfScheme::ByteWise,
                true,
                &EnergyModel::default_40nm(),
            );
            let integrated = timeline.integrated_energy_pj();
            assert!(
                (integrated - total).abs() <= 1e-6 * total,
                "interval {interval}: integrated {integrated} != total {total}"
            );
        }
    }

    #[test]
    fn intervals_are_contiguous_and_cover_the_run() {
        let (stats, timeline, _) = run_with_timeline(8);
        let ivs = timeline.intervals();
        assert!(!ivs.is_empty());
        assert_eq!(ivs[0].start_cycle, 0);
        assert_eq!(ivs.last().unwrap().end_cycle, stats.cycles);
        for pair in ivs.windows(2) {
            assert_eq!(pair[0].end_cycle, pair[1].start_cycle);
        }
    }

    #[test]
    fn mean_power_at_least_static_floor() {
        let (_, timeline, _) = run_with_timeline(16);
        assert!(timeline.mean_power_w() >= EnergyModel::default_40nm().static_w);
    }

    #[test]
    fn export_emits_series_per_component() {
        let (_, timeline, _) = run_with_timeline(16);
        let mut reg = gscalar_metrics::MetricsRegistry::new();
        timeline.export(&mut reg.scope("power"));
        let total = reg.series("power/total").expect("total series");
        assert_eq!(total.points().len(), timeline.intervals().len());
        assert!(reg.series("power/register-file").is_some());
        assert!(reg.series("power/codec").is_some());
    }
}
