//! Per-event energy constants (40 nm class, GPUWattch-calibrated).
//!
//! Absolute joules are not the point of the reproduction — the paper's
//! results are normalized ratios — but the *relative* magnitudes are
//! what make those ratios come out, so the constants below encode the
//! relationships the paper relies on:
//!
//! * execution units and the register file dominate compute-intensive
//!   workloads (≈24% and ≈16% of chip power, Section 1);
//! * an SFU operation costs 3–24× a floating-point operation
//!   (Section 1; 12× chosen here);
//! * a BVR/EBR access costs 5.2% of a full 1024-bit vector-register
//!   access (Section 5.1);
//! * compressor/decompressor energies follow Table 3 (power at 1.4 GHz
//!   divided by frequency).

/// Energy and static-power constants. All energies in picojoules.
#[derive(Debug, Clone, PartialEq)]
pub struct EnergyModel {
    /// Integer ALU lane-operation.
    pub int_lane_pj: f64,
    /// Floating-point ALU lane-operation.
    pub fp_lane_pj: f64,
    /// SFU lane-operation (3–24× FP per the paper; 12× here).
    pub sfu_lane_pj: f64,
    /// One 128-bit register-file SRAM array access.
    pub rf_array_pj: f64,
    /// One BVR/EBR small-array access (5.2% of a full 8-array access).
    pub rf_bvr_pj: f64,
    /// One access to the prior-work dedicated scalar register file.
    pub scalar_rf_pj: f64,
    /// Crossbar transport per byte.
    pub xbar_byte_pj: f64,
    /// Operand-collector bookkeeping per operand.
    pub oc_pj: f64,
    /// One compressor invocation (Table 3: 16.22 mW / 1.4 GHz).
    pub compressor_pj: f64,
    /// One decompressor invocation (Table 3: 15.86 mW / 1.4 GHz).
    pub decompressor_pj: f64,
    /// L1 access (line granule).
    pub l1_pj: f64,
    /// L2 access (line granule).
    pub l2_pj: f64,
    /// DRAM access (line granule, interface + core).
    pub dram_pj: f64,
    /// Shared-memory access (warp granule).
    pub shared_pj: f64,
    /// One NoC flit.
    pub noc_flit_pj: f64,
    /// Front-end (fetch/decode/schedule) per warp instruction.
    pub frontend_pj: f64,
    /// Chip static + uncore constant power in watts.
    pub static_w: f64,
}

impl EnergyModel {
    /// The default 40 nm-class model.
    #[must_use]
    pub fn default_40nm() -> Self {
        let rf_array_pj = 25.0;
        EnergyModel {
            int_lane_pj: 25.0,
            fp_lane_pj: 40.0,
            sfu_lane_pj: 300.0,
            rf_array_pj,
            // 5.2% of an 8-array (1024-bit) access (Section 5.1).
            rf_bvr_pj: 0.052 * 8.0 * rf_array_pj,
            scalar_rf_pj: 11.0,
            xbar_byte_pj: 0.5,
            oc_pj: 6.0,
            compressor_pj: 16.22 / 1.4,
            decompressor_pj: 15.86 / 1.4,
            l1_pj: 110.0,
            l2_pj: 240.0,
            dram_pj: 22000.0,
            shared_pj: 90.0,
            noc_flit_pj: 26.0,
            frontend_pj: 85.0,
            static_w: 27.0,
        }
    }

    /// Energy of a full (uncompressed) vector-register access.
    #[must_use]
    pub fn rf_full_access_pj(&self, arrays_per_bank: usize) -> f64 {
        self.rf_array_pj * arrays_per_bank as f64
    }
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self::default_40nm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_relationships_hold() {
        let e = EnergyModel::default_40nm();
        // SFU within the 3–24× band of FP energy.
        let ratio = e.sfu_lane_pj / e.fp_lane_pj;
        assert!((3.0..=24.0).contains(&ratio), "SFU/FP ratio {ratio}");
        // BVR access is 5.2% of a full access.
        let frac = e.rf_bvr_pj / e.rf_full_access_pj(8);
        assert!((frac - 0.052).abs() < 1e-9);
        // Table 3 energies: mW at 1.4 GHz → pJ.
        assert!((e.compressor_pj - 11.585).abs() < 0.01);
        assert!((e.decompressor_pj - 11.328).abs() < 0.01);
    }

    #[test]
    fn scalar_rf_cheaper_than_full_access() {
        let e = EnergyModel::default_40nm();
        assert!(e.scalar_rf_pj < e.rf_full_access_pj(8));
        // But the BVR beats even the scalar RF.
        assert!(e.rf_bvr_pj < e.scalar_rf_pj);
    }
}
