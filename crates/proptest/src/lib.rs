//! Hermetic stand-in for the `proptest` crate.
//!
//! The workspace must build and test with no crates.io access, so this
//! crate re-implements exactly the subset of the proptest API our test
//! suites use: `Strategy` with `prop_map`/`prop_recursive`, `Just`,
//! `any`, integer-range and tuple strategies, `collection::vec`,
//! `sample::select`, weighted `prop_oneof!`, and the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//!
//! * Generation is a deterministic SplitMix64 stream seeded from the
//!   test's module path and name, so failures reproduce exactly.
//! * There is no shrinking: a failing case reports its inputs via the
//!   assertion message (our tests all format the offending values).
//! * `prop_recursive(depth, ..)` unrolls the recursion `depth` times
//!   instead of weighting by size, which bounds tree depth identically.

pub mod rng {
    //! The deterministic random stream behind every strategy.

    /// SplitMix64: the entire generator state is one `u64`.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator with the given seed.
        #[must_use]
        pub fn seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// A uniform value in `[0, span)` for `1 <= span <= 2^64`.
        pub fn below(&mut self, span: u128) -> u64 {
            debug_assert!((1..=1u128 << 64).contains(&span));
            ((u128::from(self.next_u64()) * span) >> 64) as u64
        }
    }

    /// FNV-1a over a string, used to derive per-test seeds.
    #[must_use]
    pub fn fnv1a(s: &str) -> u64 {
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }
}

pub mod test_runner {
    //! Test configuration and the case-level error protocol.

    /// Per-`proptest!`-block configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases each test runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the inputs; the case is skipped.
        Reject(String),
        /// A `prop_assert*!` failed; the whole test fails.
        Fail(String),
    }

    impl TestCaseError {
        /// A failing case with the given message.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// A rejected (filtered) case.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

pub mod strategy {
    //! The `Strategy` trait and the combinators our tests use.

    use crate::rng::TestRng;
    use std::rc::Rc;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value from the deterministic stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values with `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }

        /// Erases the concrete strategy type (cheaply clonable).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }

        /// Builds a recursive strategy: `self` is the leaf, and `branch`
        /// wraps the current strategy into one more level of nesting.
        /// The recursion is unrolled `depth` times, which bounds the
        /// generated tree depth the same way real proptest's budget
        /// does; `_desired_size` and `_expected_branch_size` only shape
        /// probabilities upstream and are accepted for API parity.
        fn prop_recursive<S, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            branch: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            S: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S,
        {
            let mut s = self.boxed();
            for _ in 0..depth {
                s = branch(s).boxed();
            }
            s
        }
    }

    /// A type-erased, clonable strategy handle.
    pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A weighted choice between strategies; built by `prop_oneof!`.
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total: u64,
    }

    impl<T> Union<T> {
        /// Builds a union from `(weight, strategy)` arms.
        ///
        /// # Panics
        ///
        /// Panics if `arms` is empty or all weights are zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one weighted arm");
            Union { arms, total }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(u128::from(self.total));
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights summed to total")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let lo = self.start as i128;
                    let span = (self.end as i128 - lo) as u128;
                    (lo + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeFrom<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let lo = self.start as i128;
                    let span = (<$t>::MAX as i128 - lo) as u128 + 1;
                    (lo + rng.below(span) as i128) as $t
                }
            }

            impl Strategy for ::std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start() <= self.end(), "empty range strategy");
                    let lo = *self.start() as i128;
                    let span = (*self.end() as i128 - lo) as u128 + 1;
                    (lo + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($S:ident $idx:tt),+))*) => {$(
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A 0)
        (A 0, B 1)
        (A 0, B 1, C 2)
        (A 0, B 1, C 2, D 3)
        (A 0, B 1, C 2, D 3, E 4)
        (A 0, B 1, C 2, D 3, E 4, F 5)
    }
}

pub mod arbitrary {
    //! `any::<T>()` for the primitive types our tests draw.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_ints {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// The strategy returned by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A strategy over the full domain of `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! `vec(element, size)` collection strategy.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// Inclusive-low, exclusive-high length bounds.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u128;
            let n = self.size.lo + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A vector whose length is drawn from `size` and whose elements
    /// come from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod sample {
    //! Uniform selection from a fixed set.

    use crate::rng::TestRng;
    use crate::strategy::Strategy;

    /// The strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.0.len() as u128) as usize;
            self.0[i].clone()
        }
    }

    /// Uniformly selects one of `options`.
    ///
    /// # Panics
    ///
    /// Panics if `options` is empty.
    #[must_use]
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select(options)
    }
}

pub mod prelude {
    //! One-stop import mirroring `proptest::prelude`.

    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case (returning from the generated closure) when
/// the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two values are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            left,
            right,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Skips the current case when the condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Declares property tests. Each `#[test] fn name(arg in strategy, ...)`
/// becomes a standard test that draws `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            <$crate::test_runner::ProptestConfig as ::std::default::Default>::default();
            $($rest)*
        );
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(#[test] fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            #[test]
            fn $name() {
                let __config: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::rng::TestRng::seed($crate::rng::fnv1a(concat!(
                    module_path!(),
                    "::",
                    stringify!($name)
                )));
                for __case in 0..__config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::generate(&{ $strat }, &mut __rng);
                    )+
                    let __result = (|| -> ::std::result::Result<
                        (),
                        $crate::test_runner::TestCaseError,
                    > {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match __result {
                        ::std::result::Result::Ok(()) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Reject(_),
                        ) => {}
                        ::std::result::Result::Err(
                            $crate::test_runner::TestCaseError::Fail(__msg),
                        ) => {
                            panic!("proptest case {} failed: {}", __case, __msg);
                        }
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_unions_stay_in_bounds() {
        let mut rng = crate::rng::TestRng::seed(1);
        let s = prop_oneof![3 => 0u8..4, 1 => Just(9u8)];
        let mut nines = 0;
        for _ in 0..1000 {
            let v = s.generate(&mut rng);
            assert!(v < 4 || v == 9);
            nines += u32::from(v == 9);
        }
        // Roughly a quarter of draws take the weight-1 arm.
        assert!((150..350).contains(&nines), "got {nines}");
    }

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = crate::rng::TestRng::seed(2);
        for _ in 0..100 {
            assert_eq!(
                crate::collection::vec(any::<u32>(), 32)
                    .generate(&mut rng)
                    .len(),
                32
            );
            let n = crate::collection::vec(any::<bool>(), 1..5)
                .generate(&mut rng)
                .len();
            assert!((1..5).contains(&n));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                // Touch the payload so the variant field counts as used.
                Tree::Leaf(v) => {
                    let _ = v;
                    1
                }
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..16)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                prop_oneof![
                    (0u8..16).prop_map(Tree::Leaf),
                    crate::collection::vec(inner, 1..3).prop_map(Tree::Node),
                ]
            });
        let mut rng = crate::rng::TestRng::seed(3);
        for _ in 0..200 {
            assert!(depth(&s.generate(&mut rng)) <= 4);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn the_macro_itself_works(x in 1u32..100, flag in any::<bool>()) {
            prop_assume!(x != 55);
            prop_assert!((1..100).contains(&x));
            prop_assert_eq!(flag as u32 <= 1, true, "flag was {}", flag);
        }
    }
}
