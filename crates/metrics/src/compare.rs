//! Manifest comparison (the regression harness) and the markdown
//! dashboard aggregator.
//!
//! [`compare`] diffs a baseline manifest set against a current set,
//! metric by metric, and classifies each delta against a percentage
//! threshold; the `report` binary turns a breach into a non-zero exit
//! code. [`aggregate_markdown`] renders one manifest set as a
//! human-readable dashboard, and [`merge_manifests`] folds a set into a
//! single bench-prefixed manifest (the committed `BENCH_*.json`
//! perf-trajectory format).

use crate::manifest::{HostProfile, Manifest};

/// Thresholds for [`compare`].
#[derive(Debug, Clone)]
pub struct CompareConfig {
    /// Threshold in percent applied when no override matches.
    pub default_threshold_pct: f64,
    /// `(path prefix, threshold pct)` overrides; the longest matching
    /// prefix wins. Use a threshold of `f64::INFINITY` to exempt a
    /// subtree (e.g. host-dependent timings) from gating.
    pub overrides: Vec<(String, f64)>,
    /// Whether a bench present in the baseline but absent from the
    /// current set counts as a breach.
    pub fail_on_missing: bool,
}

impl Default for CompareConfig {
    fn default() -> Self {
        CompareConfig {
            default_threshold_pct: 2.0,
            overrides: Vec::new(),
            fail_on_missing: true,
        }
    }
}

impl CompareConfig {
    /// The threshold applying to `path`: the longest matching override
    /// prefix wins; with no override, `host/...` metrics (wall-clock
    /// timings, machine-dependent by construction) are informational —
    /// their delta is printed but can never breach — and everything
    /// else gets the default.
    #[must_use]
    pub fn threshold_for(&self, path: &str) -> f64 {
        if let Some((_, t)) = self
            .overrides
            .iter()
            .filter(|(prefix, _)| path.starts_with(prefix.as_str()))
            .max_by_key(|(prefix, _)| prefix.len())
        {
            return *t;
        }
        if is_host_metric(path) {
            return f64::INFINITY;
        }
        self.default_threshold_pct
    }
}

/// Whether `path` is a host-side (wall-clock, machine-dependent)
/// metric: such metrics are informational everywhere — [`compare`]
/// never gates on them and [`aggregate_markdown`] renders them in a
/// separate section. Merged `BENCH_*` manifests nest them under the
/// bench name, hence the infix form.
#[must_use]
pub fn is_host_metric(path: &str) -> bool {
    path.starts_with("host/") || path.contains("/host/")
}

/// One metric's baseline-vs-current comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    /// Bench the metric belongs to.
    pub bench: String,
    /// Metric path within the bench manifest.
    pub path: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Relative change in percent (`100` when the baseline is zero and
    /// the current value is not).
    pub delta_pct: f64,
    /// The threshold that applied.
    pub threshold_pct: f64,
}

impl Delta {
    /// Whether this delta breaches its threshold.
    #[must_use]
    pub fn breached(&self) -> bool {
        self.delta_pct.abs() > self.threshold_pct
    }
}

/// The result of comparing two manifest sets.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Every compared metric, worst relative change first.
    pub deltas: Vec<Delta>,
    /// Benches in the baseline with no current counterpart.
    pub missing_benches: Vec<String>,
    /// Metrics in the baseline with no current counterpart
    /// (`bench/path`).
    pub missing_metrics: Vec<String>,
    /// Metrics only in the current set (informational, never a breach).
    pub added_metrics: Vec<String>,
    /// Whether missing benches/metrics gate the result.
    pub fail_on_missing: bool,
}

impl CompareReport {
    /// Deltas that breach their threshold, worst first.
    #[must_use]
    pub fn breaches(&self) -> Vec<&Delta> {
        self.deltas.iter().filter(|d| d.breached()).collect()
    }

    /// Whether the comparison passes (no breaches; and, when
    /// configured, nothing missing).
    #[must_use]
    pub fn passed(&self) -> bool {
        self.breaches().is_empty()
            && (!self.fail_on_missing
                || (self.missing_benches.is_empty() && self.missing_metrics.is_empty()))
    }

    /// Renders a human-readable summary. `max_rows` bounds the
    /// non-breaching rows shown (breaches are always all shown).
    #[must_use]
    pub fn render(&self, max_rows: usize) -> String {
        let mut out = String::new();
        let breaches = self.breaches();
        out.push_str(&format!(
            "compared {} metrics: {} within threshold, {} breached\n",
            self.deltas.len(),
            self.deltas.len() - breaches.len(),
            breaches.len()
        ));
        for b in &self.missing_benches {
            out.push_str(&format!("  MISSING bench: {b}\n"));
        }
        for m in &self.missing_metrics {
            out.push_str(&format!("  MISSING metric: {m}\n"));
        }
        if !self.added_metrics.is_empty() {
            out.push_str(&format!(
                "  {} new metrics (not gated)\n",
                self.added_metrics.len()
            ));
        }
        let mut shown = 0usize;
        for d in &self.deltas {
            let flag = if d.breached() { "BREACH" } else { "ok" };
            if !d.breached() {
                if shown >= max_rows || d.delta_pct == 0.0 {
                    continue;
                }
                shown += 1;
            }
            out.push_str(&format!(
                "  {flag:<6} {:<60} {:>14.6} -> {:>14.6}  {:+8.3}% (limit {}%)\n",
                format!("{}/{}", d.bench, d.path),
                d.baseline,
                d.current,
                d.delta_pct,
                d.threshold_pct
            ));
        }
        out.push_str(if self.passed() {
            "result: PASS\n"
        } else {
            "result: FAIL\n"
        });
        out
    }
}

/// Relative change in percent, with zero-baseline handling.
fn delta_pct(base: f64, cur: f64) -> f64 {
    if (cur - base).abs() < 1e-12 {
        0.0
    } else if base == 0.0 {
        100.0
    } else {
        100.0 * (cur - base) / base.abs()
    }
}

/// Compares `current` manifests against `baseline`, pairing them by
/// bench name.
#[must_use]
pub fn compare(baseline: &[Manifest], current: &[Manifest], cfg: &CompareConfig) -> CompareReport {
    let mut report = CompareReport {
        fail_on_missing: cfg.fail_on_missing,
        ..CompareReport::default()
    };
    for base in baseline {
        let Some(cur) = current.iter().find(|m| m.bench == base.bench) else {
            report.missing_benches.push(base.bench.clone());
            continue;
        };
        for (path, &bval) in &base.metrics {
            match cur.get(path) {
                None => report
                    .missing_metrics
                    .push(format!("{}/{path}", base.bench)),
                Some(cval) => {
                    let d = delta_pct(bval, cval);
                    report.deltas.push(Delta {
                        bench: base.bench.clone(),
                        path: path.clone(),
                        baseline: bval,
                        current: cval,
                        delta_pct: d,
                        threshold_pct: cfg.threshold_for(path),
                    });
                }
            }
        }
        for path in cur.metrics.keys() {
            if !base.metrics.contains_key(path) {
                report.added_metrics.push(format!("{}/{path}", cur.bench));
            }
        }
    }
    report
        .deltas
        .sort_by(|a, b| b.delta_pct.abs().total_cmp(&a.delta_pct.abs()));
    report
}

/// Folds a manifest set into one manifest whose metric paths are
/// prefixed with their bench name — the committed perf-trajectory
/// (`BENCH_*.json`) format.
#[must_use]
pub fn merge_manifests(manifests: &[Manifest], name: &str) -> Manifest {
    let mut out = Manifest::new(name);
    let mut wall = 0.0f64;
    let mut cycles = 0u64;
    for m in manifests {
        wall += m.host.wall_time_s;
        cycles += m.host.sim_cycles;
        for (path, &v) in &m.metrics {
            out.set(format!("{}/{path}", m.bench), v);
        }
        out.set(format!("{}/host/wall_time_s", m.bench), m.host.wall_time_s);
    }
    out.host = HostProfile {
        wall_time_s: wall,
        sim_cycles: cycles,
        cycles_per_host_s: if wall > 0.0 {
            cycles as f64 / wall
        } else {
            0.0
        },
    };
    if let Some(first) = manifests.first() {
        out.config_digest = first.config_digest.clone();
    }
    out
}

/// Warning lines for manifests whose trace ring overflowed (metric
/// `trace/dropped_events` > 0): the exported trace is missing its
/// oldest records, so waterfalls and time series silently start late.
/// Returned sorted by bench name; empty when no manifest dropped.
#[must_use]
pub fn dropped_event_warnings(manifests: &[Manifest]) -> Vec<String> {
    let mut sorted: Vec<&Manifest> = manifests.iter().collect();
    sorted.sort_by(|a, b| a.bench.cmp(&b.bench));
    sorted
        .iter()
        .filter_map(|m| {
            let n = m.get("trace/dropped_events")?;
            (n > 0.0).then(|| {
                format!(
                    "warning: {}: trace ring dropped {n:.0} event(s); \
                     exported traces are truncated (raise the event-buffer capacity)",
                    m.bench
                )
            })
        })
        .collect()
}

/// Renders a manifest set as a markdown dashboard: a summary table of
/// every bench (wall time, simulated throughput, config digest) and a
/// per-bench metric table.
#[must_use]
pub fn aggregate_markdown(manifests: &[Manifest]) -> String {
    let mut out = String::from("# G-Scalar bench dashboard\n\n");
    out.push_str(&format!("{} manifests aggregated.\n\n", manifests.len()));
    let warnings = dropped_event_warnings(manifests);
    if !warnings.is_empty() {
        for w in &warnings {
            out.push_str(&format!("> **{w}**\n"));
        }
        out.push('\n');
    }
    out.push_str("| bench | metrics | sim cycles | wall (s) | Mcyc/host-s | config |\n");
    out.push_str("|---|---:|---:|---:|---:|---|\n");
    let mut sorted: Vec<&Manifest> = manifests.iter().collect();
    sorted.sort_by(|a, b| a.bench.cmp(&b.bench));
    for m in &sorted {
        out.push_str(&format!(
            "| {} | {} | {} | {:.2} | {:.2} | `{}` |\n",
            m.bench,
            m.metrics.len(),
            m.host.sim_cycles,
            m.host.wall_time_s,
            m.host.cycles_per_host_s / 1e6,
            if m.config_digest.is_empty() {
                "-"
            } else {
                &m.config_digest
            }
        ));
    }
    out.push('\n');
    for m in &sorted {
        out.push_str(&format!("## {}\n\n", m.bench));
        // Gated (simulated) metrics first; host-side metrics are
        // informational by construction and get their own subsection
        // so readers never mistake them for regression-gated values.
        let (host, gated): (Vec<_>, Vec<_>) =
            m.metrics.iter().partition(|(path, _)| is_host_metric(path));
        out.push_str("| metric | value |\n|---|---:|\n");
        for (path, v) in gated {
            out.push_str(&format!("| {path} | {v:.6} |\n"));
        }
        out.push('\n');
        if !host.is_empty() {
            out.push_str("### Informational (host timings, not gated)\n\n");
            out.push_str("| metric | value |\n|---|---:|\n");
            for (path, v) in host {
                out.push_str(&format!("| {path} | {v:.6} |\n"));
            }
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(bench: &str, pairs: &[(&str, f64)]) -> Manifest {
        let mut m = Manifest::new(bench);
        for (k, v) in pairs {
            m.set(*k, *v);
        }
        m
    }

    #[test]
    fn dropped_event_warnings_flag_only_nonzero() {
        let manifests = vec![
            manifest("clean", &[("trace/dropped_events", 0.0), ("ipc", 1.0)]),
            manifest("lossy", &[("trace/dropped_events", 42.0)]),
            manifest("untraced", &[("ipc", 2.0)]),
        ];
        let warnings = dropped_event_warnings(&manifests);
        assert_eq!(warnings.len(), 1);
        assert!(warnings[0].contains("lossy"), "got: {}", warnings[0]);
        assert!(warnings[0].contains("42 event(s)"), "got: {}", warnings[0]);
        let md = aggregate_markdown(&manifests);
        assert!(
            md.contains("trace ring dropped 42"),
            "dashboard surfaces it"
        );
        assert!(dropped_event_warnings(&[manifest("x", &[("a", 1.0)])]).is_empty());
    }

    #[test]
    fn identical_sets_pass() {
        let base = vec![manifest("a", &[("x", 1.0), ("y", 2.0)])];
        let report = compare(&base, &base.clone(), &CompareConfig::default());
        assert!(report.passed());
        assert_eq!(report.breaches().len(), 0);
        assert!(report.render(10).contains("PASS"));
    }

    #[test]
    fn breach_detected_and_worst_first() {
        let base = vec![manifest("a", &[("x", 100.0), ("y", 100.0)])];
        let cur = vec![manifest("a", &[("x", 101.0), ("y", 150.0)])];
        let report = compare(&base, &cur, &CompareConfig::default());
        assert!(!report.passed());
        let breaches = report.breaches();
        assert_eq!(breaches.len(), 1);
        assert_eq!(breaches[0].path, "y");
        assert_eq!(report.deltas[0].path, "y"); // sorted worst-first
        assert!(report.render(10).contains("BREACH"));
        assert!(report.render(10).contains("FAIL"));
    }

    #[test]
    fn overrides_pick_longest_prefix() {
        let cfg = CompareConfig {
            default_threshold_pct: 1.0,
            overrides: vec![("host".into(), f64::INFINITY), ("host/sim".into(), 5.0)],
            fail_on_missing: true,
        };
        assert_eq!(cfg.threshold_for("host/wall"), f64::INFINITY);
        assert_eq!(cfg.threshold_for("host/sim/cycles"), 5.0);
        assert_eq!(cfg.threshold_for("perf/ipc"), 1.0);
    }

    #[test]
    fn host_metrics_are_informational_without_overrides() {
        let cfg = CompareConfig::default();
        assert_eq!(cfg.threshold_for("host/phase/execute/ns"), f64::INFINITY);
        assert_eq!(
            cfg.threshold_for("fig11/host/wall_time_s"),
            f64::INFINITY,
            "merged BENCH_* manifests nest host under the bench name"
        );
        assert_eq!(cfg.threshold_for("perf/ipc"), cfg.default_threshold_pct);
        // An explicit override still beats the built-in exemption.
        let strict = CompareConfig {
            overrides: vec![("host/pool".into(), 3.0)],
            ..CompareConfig::default()
        };
        assert_eq!(strict.threshold_for("host/pool/steals"), 3.0);
    }

    #[test]
    fn host_deltas_never_fail_compare() {
        let base = vec![manifest(
            "a",
            &[("host/phase/execute/ns", 100.0), ("ipc", 2.0)],
        )];
        let cur = vec![manifest(
            "a",
            &[("host/phase/execute/ns", 900.0), ("ipc", 2.0)],
        )];
        let report = compare(&base, &cur, &CompareConfig::default());
        assert!(report.passed(), "host-only drift must not gate");
        let host = report
            .deltas
            .iter()
            .find(|d| d.path == "host/phase/execute/ns")
            .unwrap();
        assert!(host.delta_pct > 0.0, "delta still printed for trends");
        assert!(!host.breached());
    }

    #[test]
    fn zero_baseline_counts_as_full_change() {
        let base = vec![manifest("a", &[("x", 0.0)])];
        let cur = vec![manifest("a", &[("x", 3.0)])];
        let report = compare(&base, &cur, &CompareConfig::default());
        assert_eq!(report.deltas[0].delta_pct, 100.0);
        assert!(!report.passed());
    }

    #[test]
    fn missing_bench_and_metric_gate_when_configured() {
        let base = vec![
            manifest("a", &[("x", 1.0), ("gone", 2.0)]),
            manifest("b", &[("x", 1.0)]),
        ];
        let cur = vec![manifest("a", &[("x", 1.0), ("new", 9.0)])];
        let strict = compare(&base, &cur, &CompareConfig::default());
        assert!(!strict.passed());
        assert_eq!(strict.missing_benches, vec!["b".to_string()]);
        assert_eq!(strict.missing_metrics, vec!["a/gone".to_string()]);
        assert_eq!(strict.added_metrics, vec!["a/new".to_string()]);
        let lax = compare(
            &base,
            &cur,
            &CompareConfig {
                fail_on_missing: false,
                ..CompareConfig::default()
            },
        );
        assert!(lax.passed());
    }

    #[test]
    fn merge_prefixes_with_bench_names() {
        let mut a = manifest("a", &[("x", 1.0)]);
        a.host.wall_time_s = 2.0;
        a.host.sim_cycles = 100;
        let b = manifest("b", &[("x", 5.0)]);
        let merged = merge_manifests(&[a, b], "BENCH_baseline");
        assert_eq!(merged.get("a/x"), Some(1.0));
        assert_eq!(merged.get("b/x"), Some(5.0));
        assert_eq!(merged.host.sim_cycles, 100);
        assert_eq!(merged.bench, "BENCH_baseline");
    }

    #[test]
    fn dashboard_renders_host_metrics_in_their_own_section() {
        let set = vec![manifest(
            "probe",
            &[
                ("gpu/cycles", 1000.0),
                ("host/phase/execute/ns", 5.0),
                ("host/pool/steals", 2.0),
            ],
        )];
        let md = aggregate_markdown(&set);
        let info = md
            .find("### Informational (host timings, not gated)")
            .expect("host section present");
        // Gated metrics come before the host section; host metrics only
        // after it.
        assert!(md.find("| gpu/cycles |").unwrap() < info);
        assert!(md.find("| host/phase/execute/ns |").unwrap() > info);
        assert!(md.find("| host/pool/steals |").unwrap() > info);
        // No host metrics → no empty section.
        let plain = aggregate_markdown(&[manifest("p", &[("gpu/ipc", 1.0)])]);
        assert!(!plain.contains("Informational"));
    }

    #[test]
    fn dashboard_lists_every_bench() {
        let set = vec![manifest("zz", &[("m", 1.0)]), manifest("aa", &[("n", 2.0)])];
        let md = aggregate_markdown(&set);
        assert!(md.contains("## aa"));
        assert!(md.contains("## zz"));
        assert!(md.find("## aa").unwrap() < md.find("## zz").unwrap());
        assert!(md.contains("| m | 1.000000 |"));
    }
}
