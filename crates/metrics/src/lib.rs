//! Aggregate-metrics layer for the G-Scalar reproduction.
//!
//! This crate is deliberately dependency-free (like `gscalar-trace`, it
//! sits *below* the simulator in the workspace graph): higher layers
//! push plain numbers into a [`MetricsRegistry`] and serialize
//! [`Manifest`]s through the in-repo [`json`] module, so the workspace
//! stays hermetic — no serde, no registry access.
//!
//! The pieces:
//!
//! * [`MetricsRegistry`] — a hierarchical store of named metrics:
//!   monotonic [counters](Metric::Counter), instantaneous
//!   [gauges](Metric::Gauge), log₂-bucketed [`Histogram`]s, and
//!   interval [`TimeSeries`]. Paths are `/`-separated
//!   (`"BP/sm0/pipe/issued"`); [`Scope`] prepends a prefix so callers
//!   write relative names.
//! * [`json`] — a minimal JSON value type with a writer *and* parser,
//!   sufficient for the manifest schema.
//! * [`manifest`] — the [`Manifest`] run-report every bench binary
//!   emits alongside its text output: config digest, host
//!   self-profiling, and a flat metric map.
//! * [`mod@compare`] — baseline-vs-current manifest comparison with
//!   per-metric thresholds (the regression harness) and the markdown
//!   dashboard aggregator.
//!
//! # Examples
//!
//! ```
//! use gscalar_metrics::MetricsRegistry;
//!
//! let mut reg = MetricsRegistry::new();
//! let mut sm = reg.scope("gpu/sm0");
//! sm.counter_add("pipe/issued", 120);
//! sm.histogram_record("mem/latency", 37);
//! sm.series_push("ipc", 64, 1.5);
//! assert_eq!(reg.counter("gpu/sm0/pipe/issued"), Some(120));
//! let flat = reg.flatten();
//! assert!(flat.iter().any(|(k, _)| k == "gpu/sm0/pipe/issued"));
//! ```

pub mod compare;
pub mod json;
pub mod manifest;

pub use compare::{
    aggregate_markdown, compare, dropped_event_warnings, merge_manifests, CompareConfig,
    CompareReport, Delta,
};
pub use manifest::{HostProfile, Manifest};

use std::collections::BTreeMap;

/// A log₂-bucketed histogram of `u64` samples.
///
/// Bucket `i` counts samples whose highest set bit is `i` (bucket 0
/// counts the values 0 and 1), so the 65 buckets cover the full `u64`
/// range with no configuration. Count, sum, min and max are tracked
/// exactly.
///
/// # Examples
///
/// ```
/// use gscalar_metrics::Histogram;
///
/// let mut h = Histogram::default();
/// for v in [1, 2, 3, 900] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.sum(), 906);
/// assert_eq!(h.min(), Some(1));
/// assert_eq!(h.max(), Some(900));
/// assert_eq!(h.bucket(1), 2); // 2 and 3 share the [2,4) bucket
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl Histogram {
    /// Bucket index for a value: the position of its highest set bit.
    fn bucket_index(v: u64) -> usize {
        (64 - v.leading_zeros()).saturating_sub(1) as usize
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        self.buckets[Self::bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Arithmetic mean (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Samples in bucket `i` (values whose highest set bit is `i`).
    #[must_use]
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets[i]
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// An interval-sampled time series of `(cycle, value)` points.
///
/// Pushes must be cycle-monotonic; out-of-order samples are rejected so
/// downstream integration (power timelines, CSV exports) never sees a
/// negative interval.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(u64, f64)>,
}

impl TimeSeries {
    /// Appends a point; ignored if `cycle` does not advance past the
    /// last recorded point.
    pub fn push(&mut self, cycle: u64, value: f64) {
        if self.points.last().is_none_or(|&(c, _)| cycle > c) {
            self.points.push((cycle, value));
        }
    }

    /// The recorded points, oldest first.
    #[must_use]
    pub fn points(&self) -> &[(u64, f64)] {
        &self.points
    }

    /// The most recent value (`None` when empty).
    #[must_use]
    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|&(_, v)| v)
    }

    /// Number of points.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series holds no points.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }
}

/// One named metric in a [`MetricsRegistry`].
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// A monotonically increasing count.
    Counter(u64),
    /// An instantaneous floating-point value.
    Gauge(f64),
    /// A log₂-bucketed distribution.
    Histogram(Box<Histogram>),
    /// An interval time series.
    Series(TimeSeries),
}

/// A hierarchical store of named metrics.
///
/// Paths are `/`-separated strings; the registry itself is a flat
/// ordered map, and hierarchy is purely a naming convention — which
/// keeps lookups trivial and serialization deterministic (keys
/// iterate in sorted order).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    entries: BTreeMap<String, Metric>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A writer that prefixes every path with `prefix` + `/`.
    pub fn scope(&mut self, prefix: &str) -> Scope<'_> {
        Scope {
            reg: self,
            prefix: prefix.to_string(),
        }
    }

    /// Adds `n` to the counter at `path`, creating it at zero.
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-counter metric.
    pub fn counter_add(&mut self, path: &str, n: u64) {
        match self
            .entries
            .entry(path.to_string())
            .or_insert(Metric::Counter(0))
        {
            Metric::Counter(c) => *c += n,
            other => panic!("metric {path} is not a counter: {other:?}"),
        }
    }

    /// Sets the gauge at `path`.
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-gauge metric.
    pub fn gauge_set(&mut self, path: &str, v: f64) {
        match self
            .entries
            .entry(path.to_string())
            .or_insert(Metric::Gauge(0.0))
        {
            Metric::Gauge(g) => *g = v,
            other => panic!("metric {path} is not a gauge: {other:?}"),
        }
    }

    /// Records `v` into the histogram at `path`, creating it if absent.
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-histogram metric.
    pub fn histogram_record(&mut self, path: &str, v: u64) {
        match self
            .entries
            .entry(path.to_string())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(h) => h.record(v),
            other => panic!("metric {path} is not a histogram: {other:?}"),
        }
    }

    /// Merges a prebuilt histogram into the histogram at `path`,
    /// creating it if absent — used by layers that accumulate their own
    /// [`Histogram`]s (e.g. per-PC latency distributions) and export
    /// them wholesale.
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-histogram metric.
    pub fn histogram_merge(&mut self, path: &str, h: &Histogram) {
        match self
            .entries
            .entry(path.to_string())
            .or_insert_with(|| Metric::Histogram(Box::default()))
        {
            Metric::Histogram(dst) => dst.merge(h),
            other => panic!("metric {path} is not a histogram: {other:?}"),
        }
    }

    /// Appends `(cycle, v)` to the series at `path`, creating it if
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics if `path` already holds a non-series metric.
    pub fn series_push(&mut self, path: &str, cycle: u64, v: f64) {
        match self
            .entries
            .entry(path.to_string())
            .or_insert_with(|| Metric::Series(TimeSeries::default()))
        {
            Metric::Series(s) => s.push(cycle, v),
            other => panic!("metric {path} is not a series: {other:?}"),
        }
    }

    /// The metric at `path`, if any.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<&Metric> {
        self.entries.get(path)
    }

    /// Counter value at `path` (`None` if absent or not a counter).
    #[must_use]
    pub fn counter(&self, path: &str) -> Option<u64> {
        match self.entries.get(path) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Gauge value at `path` (`None` if absent or not a gauge).
    #[must_use]
    pub fn gauge(&self, path: &str) -> Option<f64> {
        match self.entries.get(path) {
            Some(Metric::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Series at `path` (`None` if absent or not a series).
    #[must_use]
    pub fn series(&self, path: &str) -> Option<&TimeSeries> {
        match self.entries.get(path) {
            Some(Metric::Series(s)) => Some(s),
            _ => None,
        }
    }

    /// Iterates `(path, metric)` in sorted path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Flattens every metric to scalar `(path, value)` pairs in sorted
    /// path order — the form manifests carry. Counters and gauges map
    /// directly; a histogram contributes `<path>/count`, `/sum`,
    /// `/mean`, `/min` and `/max`; a series contributes `/points` and
    /// `/last`.
    #[must_use]
    pub fn flatten(&self) -> Vec<(String, f64)> {
        let mut out = Vec::with_capacity(self.entries.len());
        for (path, m) in &self.entries {
            match m {
                Metric::Counter(c) => out.push((path.clone(), *c as f64)),
                Metric::Gauge(g) => out.push((path.clone(), *g)),
                Metric::Histogram(h) => {
                    out.push((format!("{path}/count"), h.count() as f64));
                    out.push((format!("{path}/sum"), h.sum() as f64));
                    out.push((format!("{path}/mean"), h.mean()));
                    out.push((format!("{path}/min"), h.min().unwrap_or(0) as f64));
                    out.push((format!("{path}/max"), h.max().unwrap_or(0) as f64));
                }
                Metric::Series(s) => {
                    out.push((format!("{path}/points"), s.len() as f64));
                    out.push((format!("{path}/last"), s.last().unwrap_or(0.0)));
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// A prefix-scoped writer into a [`MetricsRegistry`].
///
/// Created by [`MetricsRegistry::scope`]; every method forwards to the
/// registry with `prefix/` prepended to the path.
#[derive(Debug)]
pub struct Scope<'a> {
    reg: &'a mut MetricsRegistry,
    prefix: String,
}

impl Scope<'_> {
    fn path(&self, name: &str) -> String {
        format!("{}/{name}", self.prefix)
    }

    /// A sub-scope nested one level deeper.
    pub fn scope(&mut self, name: &str) -> Scope<'_> {
        Scope {
            prefix: self.path(name),
            reg: self.reg,
        }
    }

    /// Adds `n` to the counter at `name` under this scope.
    pub fn counter_add(&mut self, name: &str, n: u64) {
        let p = self.path(name);
        self.reg.counter_add(&p, n);
    }

    /// Sets the gauge at `name` under this scope.
    pub fn gauge_set(&mut self, name: &str, v: f64) {
        let p = self.path(name);
        self.reg.gauge_set(&p, v);
    }

    /// Records into the histogram at `name` under this scope.
    pub fn histogram_record(&mut self, name: &str, v: u64) {
        let p = self.path(name);
        self.reg.histogram_record(&p, v);
    }

    /// Merges a prebuilt histogram into `name` under this scope.
    pub fn histogram_merge(&mut self, name: &str, h: &Histogram) {
        let p = self.path(name);
        self.reg.histogram_merge(&p, h);
    }

    /// Appends to the series at `name` under this scope.
    pub fn series_push(&mut self, name: &str, cycle: u64, v: f64) {
        let p = self.path(name);
        self.reg.series_push(&p, cycle, v);
    }
}

/// FNV-1a hash of a string, rendered as 16 hex digits — the config
/// digest every manifest carries.
///
/// # Examples
///
/// ```
/// let d = gscalar_metrics::fnv1a_hex("GpuConfig { num_sms: 15 }");
/// assert_eq!(d.len(), 16);
/// assert_eq!(d, gscalar_metrics::fnv1a_hex("GpuConfig { num_sms: 15 }"));
/// ```
#[must_use]
pub fn fnv1a_hex(s: &str) -> String {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_scope_prefixes() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("a/b", 1);
        reg.counter_add("a/b", 2);
        let mut s = reg.scope("gpu");
        s.counter_add("issued", 5);
        let mut sub = s.scope("sm0");
        sub.counter_add("issued", 7);
        assert_eq!(reg.counter("a/b"), Some(3));
        assert_eq!(reg.counter("gpu/issued"), Some(5));
        assert_eq!(reg.counter("gpu/sm0/issued"), Some(7));
        assert_eq!(reg.counter("missing"), None);
    }

    #[test]
    #[should_panic(expected = "not a counter")]
    fn type_confusion_panics() {
        let mut reg = MetricsRegistry::new();
        reg.gauge_set("x", 1.0);
        reg.counter_add("x", 1);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Histogram::default();
        h.record(0);
        h.record(1);
        h.record(2);
        h.record(1024);
        assert_eq!(h.bucket(0), 2); // 0 and 1
        assert_eq!(h.bucket(1), 1); // 2
        assert_eq!(h.bucket(10), 1); // 1024
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(0));
        assert_eq!(h.max(), Some(1024));
        assert!((h.mean() - 1027.0 / 4.0).abs() < 1e-12);
        let mut other = Histogram::default();
        other.record(u64::MAX);
        h.merge(&other);
        assert_eq!(h.bucket(63), 1);
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Some(u64::MAX));
    }

    #[test]
    fn histogram_merge_into_registry() {
        let mut h = Histogram::default();
        h.record(4);
        h.record(5);
        let mut reg = MetricsRegistry::new();
        reg.histogram_record("lat", 1);
        reg.histogram_merge("lat", &h);
        reg.scope("x").histogram_merge("lat", &h);
        match reg.get("lat") {
            Some(Metric::Histogram(m)) => {
                assert_eq!(m.count(), 3);
                assert_eq!(m.sum(), 10);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
        match reg.get("x/lat") {
            Some(Metric::Histogram(m)) => assert_eq!(m.count(), 2),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn series_rejects_non_monotonic() {
        let mut s = TimeSeries::default();
        s.push(10, 1.0);
        s.push(10, 2.0); // same cycle: rejected
        s.push(5, 3.0); // backwards: rejected
        s.push(20, 4.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.last(), Some(4.0));
        assert_eq!(s.points(), &[(10, 1.0), (20, 4.0)]);
    }

    #[test]
    fn flatten_expands_compound_metrics_sorted() {
        let mut reg = MetricsRegistry::new();
        reg.counter_add("z/count", 9);
        reg.gauge_set("a/ipc", 1.5);
        reg.histogram_record("m/lat", 8);
        reg.series_push("t/ipc", 100, 0.5);
        let flat = reg.flatten();
        let keys: Vec<&str> = flat.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]), "sorted: {keys:?}");
        assert!(keys.contains(&"m/lat/mean"));
        assert!(keys.contains(&"t/ipc/last"));
        let get = |k: &str| flat.iter().find(|(p, _)| p == k).unwrap().1;
        assert_eq!(get("z/count"), 9.0);
        assert_eq!(get("a/ipc"), 1.5);
        assert_eq!(get("m/lat/sum"), 8.0);
        assert_eq!(get("t/ipc/points"), 1.0);
    }

    #[test]
    fn digest_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a_hex("abc"), fnv1a_hex("abc"));
        assert_ne!(fnv1a_hex("abc"), fnv1a_hex("abd"));
    }
}
