//! A minimal JSON value type with writer and parser.
//!
//! Covers exactly what the manifest schema needs — objects, arrays,
//! strings, finite numbers, booleans and null — so the workspace stays
//! free of external serialization crates. Object keys keep sorted order
//! (`BTreeMap`), making output deterministic and diffable.
//!
//! # Examples
//!
//! ```
//! use gscalar_metrics::json::Json;
//!
//! let v = Json::parse(r#"{"a": [1, 2.5, "x\n"], "b": true}"#).unwrap();
//! assert_eq!(v.get("b"), Some(&Json::Bool(true)));
//! let round = Json::parse(&v.to_string()).unwrap();
//! assert_eq!(round, v);
//! ```

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number (serialized via shortest-roundtrip `{:?}`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with sorted keys.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn obj(pairs: impl IntoIterator<Item = (String, Json)>) -> Json {
        Json::Obj(pairs.into_iter().collect())
    }

    /// Member `key` of an object (`None` for other variants).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The members, if this is an object.
    #[must_use]
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Json>> {
        match self {
            Json::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// Parses a JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a message with a byte offset on malformed input,
    /// non-finite numbers, or invalid escapes.
    pub fn parse(s: &str) -> Result<Json, String> {
        let mut p = Parser { s, pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.s.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                // `{:?}` prints the shortest representation that
                // round-trips; integers get a trailing `.0` which JSON
                // readers accept.
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n:?}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    f.write_str(":")?;
                    write!(f, "{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

struct Parser<'a> {
    s: &'a str,
    pos: usize,
}

impl Parser<'_> {
    fn b(&self) -> &[u8] {
        self.s.as_bytes()
    }

    fn skip_ws(&mut self) {
        while self
            .b()
            .get(self.pos)
            .is_some_and(|c| matches!(c, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b().get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", char::from(c), self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.s[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            m.insert(key, v);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(m));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .s
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("surrogate \\u escape")?);
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    let c = self.s[self.pos..].chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = &self.s[start..self.pos];
        let n: f64 = text
            .parse()
            .map_err(|_| format!("bad number {text:?} at byte {start}"))?;
        if n.is_finite() {
            Ok(Json::Num(n))
        } else {
            Err(format!("non-finite number at byte {start}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_structures() {
        let v = Json::obj([
            (
                "metrics".to_string(),
                Json::obj([
                    ("a/b".to_string(), Json::Num(1.5)),
                    ("c".to_string(), Json::Num(-3.0)),
                ]),
            ),
            (
                "tags".to_string(),
                Json::Arr(vec![Json::Str("x\"y\\z\n".into()), Json::Null]),
            ),
            ("ok".to_string(), Json::Bool(false)),
        ]);
        let text = v.to_string();
        let parsed = Json::parse(&text).expect("parses");
        assert_eq!(parsed, v);
    }

    #[test]
    fn integers_print_without_exponent() {
        assert_eq!(Json::Num(42.0).to_string(), "42");
        assert_eq!(Json::Num(-7.0).to_string(), "-7");
        assert_eq!(Json::Num(0.25).to_string(), "0.25");
        // Very large integral values keep full precision via {:?}.
        let big = 1e18;
        let round = Json::parse(&Json::Num(big).to_string()).unwrap();
        assert_eq!(round.as_f64(), Some(big));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , \"\\u0041\\t\" ] } ").unwrap();
        let arr = match v.get("k") {
            Some(Json::Arr(a)) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[1].as_str(), Some("A\t"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\":1} x",
            "\"unterminated",
            "nul",
            "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn keeps_unicode_intact() {
        let v = Json::parse("\"héllo ☃\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ☃"));
        let round = Json::parse(&v.to_string()).unwrap();
        assert_eq!(round, v);
    }
}
