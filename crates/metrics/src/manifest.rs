//! The machine-readable run report every bench binary emits.
//!
//! A [`Manifest`] is the JSON sibling of a `results/*.txt` file: the
//! same run, but as a flat map of metric paths to numbers plus enough
//! provenance (bench name, config digest, schema version) and host
//! self-profiling (wall time, simulated cycles per host-second) to
//! compare runs across commits. The `metrics` map is what
//! [`compare`](crate::compare()) diffs; host numbers are deliberately
//! kept *outside* it, because wall time is machine-dependent and must
//! never gate a regression check.

use std::collections::BTreeMap;

use crate::json::Json;

/// Host-side self-profiling for one bench run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostProfile {
    /// Wall-clock time of the whole binary in seconds.
    pub wall_time_s: f64,
    /// Total simulated cycles across every simulation the binary ran.
    pub sim_cycles: u64,
    /// Simulation throughput: simulated cycles per host-second.
    pub cycles_per_host_s: f64,
}

/// A machine-readable run report.
///
/// # Examples
///
/// ```
/// use gscalar_metrics::Manifest;
///
/// let mut m = Manifest::new("fig01_divergence");
/// m.config_digest = "0123456789abcdef".into();
/// m.set("BP/divergent_pct", 12.5);
/// let text = m.to_json();
/// let back = Manifest::from_json(&text).unwrap();
/// assert_eq!(back, m);
/// assert_eq!(back.get("BP/divergent_pct"), Some(12.5));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Manifest {
    /// Schema version (bumped on incompatible layout changes).
    pub schema: u64,
    /// Bench binary name (e.g. `"fig11_power_efficiency"`).
    pub bench: String,
    /// FNV-1a digest of the hardware configuration used.
    pub config_digest: String,
    /// Host self-profiling.
    pub host: HostProfile,
    /// Flat metric map: `/`-separated path → value.
    pub metrics: BTreeMap<String, f64>,
}

/// Current manifest schema version.
pub const SCHEMA_VERSION: u64 = 1;

impl Manifest {
    /// Creates an empty manifest for `bench`.
    #[must_use]
    pub fn new(bench: impl Into<String>) -> Self {
        Manifest {
            schema: SCHEMA_VERSION,
            bench: bench.into(),
            config_digest: String::new(),
            host: HostProfile::default(),
            metrics: BTreeMap::new(),
        }
    }

    /// Sets metric `path` to `value` (overwriting any previous value).
    /// Non-finite values are stored as 0.0 — JSON cannot carry them,
    /// and a NaN in a manifest would poison every later comparison.
    pub fn set(&mut self, path: impl Into<String>, value: f64) {
        let v = if value.is_finite() { value } else { 0.0 };
        self.metrics.insert(path.into(), v);
    }

    /// The value of metric `path`, if present.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<f64> {
        self.metrics.get(path).copied()
    }

    /// Serializes to a JSON document (sorted keys, deterministic).
    #[must_use]
    pub fn to_json(&self) -> String {
        let metrics = Json::Obj(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), Json::Num(*v)))
                .collect(),
        );
        let host = Json::obj([
            ("wall_time_s".to_string(), Json::Num(self.host.wall_time_s)),
            (
                "sim_cycles".to_string(),
                Json::Num(self.host.sim_cycles as f64),
            ),
            (
                "cycles_per_host_s".to_string(),
                Json::Num(self.host.cycles_per_host_s),
            ),
        ]);
        let doc = Json::obj([
            ("schema".to_string(), Json::Num(self.schema as f64)),
            ("bench".to_string(), Json::Str(self.bench.clone())),
            (
                "config_digest".to_string(),
                Json::Str(self.config_digest.clone()),
            ),
            ("host".to_string(), host),
            ("metrics".to_string(), metrics),
        ]);
        doc.to_string()
    }

    /// Parses a manifest from JSON text.
    ///
    /// # Errors
    ///
    /// Returns a message when the text is not valid JSON, misses a
    /// required field, or declares an unsupported schema version.
    pub fn from_json(text: &str) -> Result<Manifest, String> {
        let doc = Json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Json::as_f64)
            .ok_or("manifest missing numeric 'schema'")? as u64;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "unsupported manifest schema {schema} (expected {SCHEMA_VERSION})"
            ));
        }
        let bench = doc
            .get("bench")
            .and_then(Json::as_str)
            .ok_or("manifest missing string 'bench'")?
            .to_string();
        let config_digest = doc
            .get("config_digest")
            .and_then(Json::as_str)
            .unwrap_or_default()
            .to_string();
        let host_v = doc.get("host");
        let hf = |k: &str| {
            host_v
                .and_then(|h| h.get(k))
                .and_then(Json::as_f64)
                .unwrap_or(0.0)
        };
        let host = HostProfile {
            wall_time_s: hf("wall_time_s"),
            sim_cycles: hf("sim_cycles") as u64,
            cycles_per_host_s: hf("cycles_per_host_s"),
        };
        let metrics_obj = doc
            .get("metrics")
            .and_then(Json::as_obj)
            .ok_or("manifest missing object 'metrics'")?;
        let mut metrics = BTreeMap::new();
        for (k, v) in metrics_obj {
            let n = v
                .as_f64()
                .ok_or_else(|| format!("metric {k:?} is not a number"))?;
            metrics.insert(k.clone(), n);
        }
        Ok(Manifest {
            schema,
            bench,
            config_digest,
            host,
            metrics,
        })
    }

    /// Loads a manifest from a JSON file. Every failure — unreadable
    /// file, truncated/malformed JSON, wrong schema — comes back as a
    /// single message prefixed with the offending path, so callers
    /// aggregating a directory can report exactly which file is bad
    /// instead of dying mid-aggregate.
    ///
    /// # Errors
    ///
    /// Returns `"<path>: <reason>"` on any read or parse failure.
    pub fn load(path: &std::path::Path) -> Result<Manifest, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        Manifest::from_json(&text).map_err(|e| format!("{}: {e}", path.display()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new("fig12_rf_power");
        m.config_digest = "feedfacecafebeef".into();
        m.host = HostProfile {
            wall_time_s: 2.5,
            sim_cycles: 1_000_000,
            cycles_per_host_s: 400_000.0,
        };
        m.set("BP/ours_norm", 0.452);
        m.set("suite/avg/ours_norm", 0.47);
        m
    }

    #[test]
    fn round_trips() {
        let m = sample();
        let back = Manifest::from_json(&m.to_json()).expect("parses");
        assert_eq!(back, m);
    }

    #[test]
    fn non_finite_values_are_sanitized() {
        let mut m = Manifest::new("x");
        m.set("nan", f64::NAN);
        m.set("inf", f64::INFINITY);
        assert_eq!(m.get("nan"), Some(0.0));
        assert_eq!(m.get("inf"), Some(0.0));
        // And the document still parses.
        assert!(Manifest::from_json(&m.to_json()).is_ok());
    }

    #[test]
    fn load_names_the_offending_file() {
        let dir = std::env::temp_dir().join("gscalar-manifest-load");
        std::fs::create_dir_all(&dir).unwrap();
        // Truncated manifest: cut a valid document in half.
        let full = sample().to_json();
        let truncated = &full[..full.len() / 2];
        let bad = dir.join("truncated.json");
        std::fs::write(&bad, truncated).unwrap();
        let err = Manifest::load(&bad).expect_err("truncated JSON must fail");
        assert!(err.contains("truncated.json"), "got: {err}");
        // A missing file also names the path.
        let gone = dir.join("missing.json");
        let err = Manifest::load(&gone).expect_err("missing file must fail");
        assert!(err.contains("missing.json"), "got: {err}");
        // And a good file loads.
        let good = dir.join("good.json");
        std::fs::write(&good, &full).unwrap();
        assert_eq!(Manifest::load(&good).unwrap(), sample());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_wrong_schema_and_missing_fields() {
        let mut m = sample();
        m.schema = 99;
        assert!(Manifest::from_json(&m.to_json())
            .unwrap_err()
            .contains("schema"));
        assert!(Manifest::from_json("{}").is_err());
        assert!(Manifest::from_json("{\"schema\":1,\"bench\":\"b\"}").is_err());
    }
}
