//! The G-Scalar architecture layer (the paper's primary contribution),
//! tying the simulator, compression hardware, and power model together.
//!
//! * [`Arch`] — the evaluated architecture variants (baseline,
//!   prior-work "ALU scalar", "G-Scalar w/o divergent", full G-Scalar)
//!   as presets over [`gscalar_sim::ArchConfig`].
//! * [`Workload`] — a kernel + launch shape + input memory image.
//! * [`Runner`] — runs workloads per architecture and produces
//!   [`RunReport`]s with statistics and a chip power breakdown.
//!
//! # Examples
//!
//! ```
//! use gscalar_core::{Arch, Runner, Workload};
//! use gscalar_isa::{KernelBuilder, LaunchConfig, Operand, SReg};
//! use gscalar_sim::{memory::GlobalMemory, GpuConfig};
//!
//! // A warp-uniform SFU kernel: prime G-Scalar territory.
//! let mut b = KernelBuilder::new("uniform_sfu");
//! let c = b.s2r(SReg::CtaIdX);
//! let f = b.i2f(c.into());
//! b.ex2(f.into());
//! b.exit();
//! let w = Workload::new(
//!     "uniform_sfu", "US",
//!     b.build().unwrap(),
//!     LaunchConfig::linear(2, 64),
//!     GlobalMemory::new(),
//! );
//!
//! let runner = Runner::new(GpuConfig::test_small());
//! let baseline = runner.run(&w, Arch::Baseline);
//! let gscalar = runner.run(&w, Arch::GScalar);
//! assert!(gscalar.stats.instr.executed_scalar > 0);
//! // Scalar execution gates SFU lanes that the baseline drives.
//! assert!(gscalar.stats.exec.sfu_lane_ops < baseline.stats.exec.sfu_lane_ops);
//! ```

pub mod arch;
pub mod rng;
pub mod runner;

pub use arch::Arch;
pub use runner::{
    run_stats_budgeted, BudgetExceeded, MeteredRun, ProfiledRun, RunReport, Runner, Workload,
};
