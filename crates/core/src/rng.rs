//! A small, dependency-free deterministic PRNG for workload generation
//! and tests.
//!
//! The repository must build and test hermetically (no crates.io
//! access), so instead of the `rand` crate we ship a SplitMix64-seeded
//! xorshift generator. Statistical quality is far beyond what the
//! workload generators need (they only shape *value similarity*
//! distributions), and determinism across platforms is guaranteed
//! because everything is plain wrapping 64-bit integer arithmetic.

/// SplitMix64 step: advances `state` and returns the next output.
///
/// Used directly for seeding and stateless hashing, and internally by
/// [`Rng`] for initialization.
#[must_use]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xorshift128+ generator seeded via SplitMix64.
///
/// # Examples
///
/// ```
/// use gscalar_core::rng::Rng;
///
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let x = a.range_u32(0, 10);
/// assert!(x < 10);
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    s0: u64,
    s1: u64,
}

impl Rng {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion, so
    /// nearby seeds give unrelated streams).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s0 = splitmix64(&mut sm);
        let s1 = splitmix64(&mut sm);
        Rng { s0, s1 }
    }

    /// The next 64 random bits (xorshift128+).
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// The next 32 random bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// A uniform `u64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Multiply-shift rejection-free mapping; the bias for spans far
        // below 2^64 is immeasurably small for our purposes.
        let hi128 = (u128::from(self.next_u64()) * u128::from(span)) >> 64;
        lo + hi128 as u64
    }

    /// A uniform `u32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// A uniform `usize` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// A uniform `i64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = lo.abs_diff(hi);
        let off = self.range_u64(0, span);
        lo.wrapping_add(off as i64)
    }

    /// A uniform `f64` in `[0, 1)` (53 mantissa bits).
    pub fn f64_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform `f32` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or either bound is not finite.
    pub fn range_f32(&mut self, lo: f32, hi: f32) -> f32 {
        assert!(lo < hi && lo.is_finite() && hi.is_finite());
        let v = lo as f64 + self.f64_unit() * (f64::from(hi) - f64::from(lo));
        (v as f32).clamp(lo, f32::from_bits(hi.to_bits() - 1).max(lo))
    }

    /// A random `bool` that is true with probability `percent`/100.
    pub fn percent(&mut self, percent: u32) -> bool {
        self.range_u32(0, 100) < percent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.range_u32(5, 17);
            assert!((5..17).contains(&v));
            let f = r.range_f32(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let i = r.range_i64(-10, 10);
            assert!((-10..10).contains(&i));
        }
    }

    #[test]
    fn range_u32_covers_all_values() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.range_usize(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn percent_is_roughly_calibrated() {
        let mut r = Rng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| r.percent(25)).count();
        assert!((2200..2800).contains(&hits), "got {hits}");
    }

    #[test]
    fn unit_floats_are_half_on_average() {
        let mut r = Rng::seed_from_u64(13);
        let mean: f64 = (0..10_000).map(|_| r.f64_unit()).sum::<f64>() / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean}");
    }
}
