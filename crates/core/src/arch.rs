//! The architecture variants evaluated in the paper.

use gscalar_power::RfScheme;
use gscalar_sim::ArchConfig;

/// The four architectures of Figure 11 (plus an uncompressed-G-Scalar
/// ablation used by the extension benches).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Arch {
    /// The unmodified GTX 480-class baseline.
    Baseline,
    /// Prior-work "ALU scalar" (Gilani et al. \[3\]): scalar execution of
    /// non-divergent ALU instructions through a dedicated scalar
    /// register file with a single bank.
    AluScalar,
    /// G-Scalar without divergent or half-warp scalar execution:
    /// compression-based scalar execution on all three pipeline types.
    GScalarNoDivergent,
    /// Full G-Scalar: ALU + SFU + memory + half-warp + divergent scalar
    /// execution on top of byte-wise register compression.
    GScalar,
}

impl Arch {
    /// All variants in Figure 11 order.
    pub const ALL: [Arch; 4] = [
        Arch::Baseline,
        Arch::AluScalar,
        Arch::GScalarNoDivergent,
        Arch::GScalar,
    ];

    /// Display label matching the paper's figure legends.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Arch::Baseline => "baseline",
            Arch::AluScalar => "ALU scalar",
            Arch::GScalarNoDivergent => "G-Scalar w/o divergent",
            Arch::GScalar => "G-Scalar",
        }
    }

    /// The simulator feature flags for this architecture.
    #[must_use]
    pub fn config(self) -> ArchConfig {
        let mut c = ArchConfig::baseline();
        c.name = self.label().into();
        match self {
            Arch::Baseline => {}
            Arch::AluScalar => {
                c.scalar_alu = true;
                c.dedicated_scalar_rf = true;
            }
            Arch::GScalarNoDivergent => {
                c.scalar_alu = true;
                c.scalar_sfu = true;
                c.scalar_mem = true;
                c.compression = true;
                c.extra_latency = 3;
            }
            Arch::GScalar => {
                c.scalar_alu = true;
                c.scalar_sfu = true;
                c.scalar_mem = true;
                c.scalar_half = true;
                c.scalar_divergent = true;
                c.compression = true;
                c.extra_latency = 3;
            }
        }
        c
    }

    /// The register-file design this architecture pays for.
    #[must_use]
    pub fn rf_scheme(self) -> RfScheme {
        match self {
            Arch::Baseline => RfScheme::Baseline,
            Arch::AluScalar => RfScheme::ScalarRf,
            Arch::GScalarNoDivergent | Arch::GScalar => RfScheme::ByteWise,
        }
    }

    /// Whether the codec (compressor/decompressor) energy applies.
    #[must_use]
    pub fn has_codec(self) -> bool {
        matches!(self, Arch::GScalarNoDivergent | Arch::GScalar)
    }
}

impl std::fmt::Display for Arch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_has_no_features() {
        let c = Arch::Baseline.config();
        assert!(!c.any_scalar());
        assert!(!c.compression);
        assert_eq!(c.extra_latency, 0);
        assert_eq!(Arch::Baseline.rf_scheme(), RfScheme::Baseline);
        assert!(!Arch::Baseline.has_codec());
    }

    #[test]
    fn alu_scalar_matches_prior_work() {
        let c = Arch::AluScalar.config();
        assert!(c.scalar_alu);
        assert!(!c.scalar_sfu);
        assert!(!c.scalar_divergent);
        assert!(c.dedicated_scalar_rf);
        assert!(!c.compression);
        assert_eq!(Arch::AluScalar.rf_scheme(), RfScheme::ScalarRf);
    }

    #[test]
    fn gscalar_enables_everything_with_3_cycles() {
        let c = Arch::GScalar.config();
        assert!(c.scalar_alu && c.scalar_sfu && c.scalar_mem);
        assert!(c.scalar_half && c.scalar_divergent);
        assert!(c.compression);
        assert_eq!(c.extra_latency, 3);
        assert!(Arch::GScalar.has_codec());
    }

    #[test]
    fn no_divergent_variant_excludes_half_and_divergent() {
        let c = Arch::GScalarNoDivergent.config();
        assert!(c.scalar_sfu);
        assert!(!c.scalar_half);
        assert!(!c.scalar_divergent);
    }

    #[test]
    fn labels_match_figures() {
        assert_eq!(Arch::GScalar.to_string(), "G-Scalar");
        assert_eq!(Arch::AluScalar.to_string(), "ALU scalar");
    }
}
