//! Workload container and the high-level simulation runner.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

use gscalar_isa::{Kernel, LaunchConfig};
use gscalar_metrics::MetricsRegistry;
use gscalar_power::{chip_power, EnergyModel, PowerReport, PowerTimeline, RfScheme};
use gscalar_profile::{KernelProfile, Profiler};
use gscalar_sim::memory::GlobalMemory;
use gscalar_sim::{Gpu, GpuConfig, LiveObserver, MetricsObserver, RunObserver, Stats};
use gscalar_trace::Tracer;

use crate::arch::Arch;

/// A complete, runnable workload: kernel + launch shape + input memory
/// image.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Full benchmark name (e.g. `"backprop"`).
    pub name: String,
    /// Paper abbreviation (e.g. `"BP"`).
    pub abbr: String,
    /// The kernel to execute.
    pub kernel: Kernel,
    /// Grid/block shape.
    pub launch: LaunchConfig,
    /// Pre-initialized input memory (cloned per run).
    pub memory: GlobalMemory,
}

impl Workload {
    /// Creates a workload.
    #[must_use]
    pub fn new(
        name: impl Into<String>,
        abbr: impl Into<String>,
        kernel: Kernel,
        launch: LaunchConfig,
        memory: GlobalMemory,
    ) -> Self {
        Workload {
            name: name.into(),
            abbr: abbr.into(),
            kernel,
            launch,
            memory,
        }
    }
}

/// Results of running one workload on one architecture.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The architecture simulated.
    pub arch: Arch,
    /// Raw simulator statistics.
    pub stats: Stats,
    /// Chip power breakdown under the architecture's RF scheme.
    pub power: PowerReport,
}

impl RunReport {
    /// Power efficiency in IPC/W — the paper's headline metric.
    #[must_use]
    pub fn ipc_per_watt(&self) -> f64 {
        self.power.ipc_per_watt()
    }
}

/// A fully-instrumented run: report plus interval power timeline plus a
/// populated metrics registry (see [`Runner::run_metered`]).
#[derive(Debug)]
pub struct MeteredRun {
    /// Statistics and one-shot power, as from [`Runner::run`].
    pub report: RunReport,
    /// Interval per-component power telemetry.
    pub timeline: PowerTimeline,
    /// Every simulator counter (`gpu/…`, `sm<i>/…`), interval series
    /// (`gpu/interval/…`), power series (`power/…`) and energy summary
    /// gauges (`energy/…`).
    pub registry: MetricsRegistry,
}

/// A profiled run: report, per-PC profile, and a registry carrying both
/// the aggregate counters (`gpu/…`) and the per-PC export
/// (`profile/k<id>/pc<PC>/…`) — see [`Runner::run_profiled`].
#[derive(Debug)]
pub struct ProfiledRun {
    /// Statistics and one-shot power, as from [`Runner::run`].
    pub report: RunReport,
    /// The per-static-instruction profile.
    pub profile: KernelProfile,
    /// Aggregate counters plus the schema-versioned per-PC tables.
    pub registry: MetricsRegistry,
}

/// A simulation was aborted because it crossed its simulated-cycle
/// budget (see [`Runner::run_budgeted`]).
///
/// The abort is *deterministic*: it triggers on simulated cycles, not
/// wall time, so a budgeted run fails identically on every machine and
/// thread count — the property the sweep engine's byte-identical
/// manifests rely on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// Simulated cycles when the budget tripped (the first observer
    /// sample at or past the budget).
    pub cycles: u64,
    /// The budget that applied.
    pub budget: u64,
}

impl std::fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cycle budget exceeded: {} simulated of {} allowed",
            self.cycles, self.budget
        )
    }
}

/// Granularity of budget checks: the abort observer samples every this
/// many cycles (or at the budget itself, whichever is finer).
const BUDGET_CHECK_INTERVAL: u64 = 4096;

/// Panic payload used to unwind out of a budget-crossed simulation.
/// Thrown with [`resume_unwind`] so the global panic hook never fires
/// (a budget abort is an expected outcome, not a bug to report).
struct BudgetAbort {
    cycles: u64,
}

/// Observer that aborts the run at the first sample past the budget.
struct BudgetObserver {
    budget: u64,
}

impl RunObserver for BudgetObserver {
    fn sample(&mut self, cycle: u64, _stats: &Stats) {
        if cycle >= self.budget {
            resume_unwind(Box::new(BudgetAbort { cycles: cycle }));
        }
    }

    fn finish(&mut self, _cycle: u64, _merged: &Stats, _per_sm: &[Stats]) {}
}

/// Runs `workload` functionally+temporally under an explicit
/// architecture configuration, aborting deterministically once the
/// simulation crosses `budget` cycles (`budget == 0` disables the
/// check). This is the raw entry point for ablations that build their
/// own [`gscalar_sim::ArchConfig`]; see [`Runner::run_budgeted`] for
/// the arch-variant path.
///
/// # Errors
///
/// Returns [`BudgetExceeded`] when the simulation crossed the budget;
/// any other panic propagates unchanged.
pub fn run_stats_budgeted(
    cfg: &GpuConfig,
    arch_cfg: gscalar_sim::ArchConfig,
    workload: &Workload,
    budget: u64,
) -> Result<Stats, BudgetExceeded> {
    let arch_name = arch_cfg.name.clone();
    let mut gpu = Gpu::new(cfg.clone(), arch_cfg);
    let mut mem = workload.memory.clone();
    let mut live = attach_live(workload, &arch_name, cfg.num_sms);
    if budget == 0 {
        return Ok(match live.as_mut() {
            None => gpu.run(&workload.kernel, workload.launch, &mut mem),
            Some(obs) => {
                let interval = obs.sample_interval();
                gpu.run_observed(
                    &workload.kernel,
                    workload.launch,
                    &mut mem,
                    &mut Tracer::off(),
                    0,
                    interval,
                    obs,
                )
            }
        });
    }
    // The budget observer's cadence is part of the determinism
    // contract (it fixes where `BudgetExceeded.cycles` lands), so live
    // telemetry must ride along at this interval unchanged and
    // downsample internally.
    let interval = budget.clamp(1, BUDGET_CHECK_INTERVAL);
    let mut observer = BudgetObserver { budget };
    let attempt = catch_unwind(AssertUnwindSafe(|| match live.as_mut() {
        None => gpu.run_observed(
            &workload.kernel,
            workload.launch,
            &mut mem,
            &mut Tracer::off(),
            0,
            interval,
            &mut observer,
        ),
        Some(obs) => {
            // Live first: the snapshot at the abort boundary still
            // streams before the budget unwinds.
            let mut pair = PairObserver {
                a: obs,
                b: &mut observer,
            };
            gpu.run_observed(
                &workload.kernel,
                workload.launch,
                &mut mem,
                &mut Tracer::off(),
                0,
                interval,
                &mut pair,
            )
        }
    }));
    match attempt {
        Ok(stats) => Ok(stats),
        Err(payload) => match payload.downcast::<BudgetAbort>() {
            Ok(abort) => Err(BudgetExceeded {
                cycles: abort.cycles,
                budget,
            }),
            Err(other) => resume_unwind(other),
        },
    }
}

/// Forwards observer callbacks to two observers watching the same run.
struct PairObserver<'a> {
    a: &'a mut dyn RunObserver,
    b: &'a mut dyn RunObserver,
}

impl RunObserver for PairObserver<'_> {
    fn sample(&mut self, cycle: u64, stats: &Stats) {
        self.a.sample(cycle, stats);
        self.b.sample(cycle, stats);
    }

    fn sample_sm(&mut self, cycle: u64, sm: usize, stats: &Stats) {
        self.a.sample_sm(cycle, sm, stats);
        self.b.sample_sm(cycle, sm, stats);
    }

    fn finish(&mut self, cycle: u64, merged: &Stats, per_sm: &[Stats]) {
        self.a.finish(cycle, merged, per_sm);
        self.b.finish(cycle, merged, per_sm);
    }
}

/// When a process-wide live stream is installed (see
/// [`gscalar_live::install`]), announces `workload` on it and returns
/// the observer to attach to the run. Telemetry is strictly read-only:
/// attaching the observer must never change what the engine computes,
/// so callers keep their own sample interval whenever one is already
/// required (budget checks, metrics cadences) and let the observer
/// downsample internally.
fn attach_live(workload: &Workload, arch: &str, num_sms: usize) -> Option<LiveObserver> {
    gscalar_live::installed().map(|h| LiveObserver::start(h, &workload.name, arch, num_sms))
}

/// Runs workloads under configurable hardware and energy models.
///
/// # Examples
///
/// ```
/// use gscalar_core::{Arch, Runner, Workload};
/// use gscalar_isa::{KernelBuilder, LaunchConfig, Operand};
/// use gscalar_sim::{memory::GlobalMemory, GpuConfig};
///
/// let mut b = KernelBuilder::new("tiny");
/// b.mov(Operand::Imm(1));
/// b.exit();
/// let w = Workload::new(
///     "tiny", "T",
///     b.build().unwrap(),
///     LaunchConfig::linear(2, 64),
///     GlobalMemory::new(),
/// );
/// let runner = Runner::new(GpuConfig::test_small());
/// let report = runner.run(&w, Arch::GScalar);
/// assert!(report.stats.cycles > 0);
/// assert!(report.ipc_per_watt() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Runner {
    cfg: GpuConfig,
    energy: EnergyModel,
}

impl Runner {
    /// Creates a runner with the default 40 nm energy model.
    #[must_use]
    pub fn new(cfg: GpuConfig) -> Self {
        Runner {
            cfg,
            energy: EnergyModel::default_40nm(),
        }
    }

    /// Creates a runner with a custom energy model.
    #[must_use]
    pub fn with_energy(cfg: GpuConfig, energy: EnergyModel) -> Self {
        Runner { cfg, energy }
    }

    /// The hardware configuration.
    #[must_use]
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// The energy model.
    #[must_use]
    pub fn energy(&self) -> &EnergyModel {
        &self.energy
    }

    /// Runs `workload` on `arch` and returns statistics plus power.
    #[must_use]
    pub fn run(&self, workload: &Workload, arch: Arch) -> RunReport {
        self.run_traced(workload, arch, &mut Tracer::off(), 0)
    }

    /// [`Runner::run`] with cycle-level tracing: events go to `tracer`
    /// and, when `snapshot_interval > 0`, per-SM interval metrics are
    /// emitted every `snapshot_interval` cycles.
    #[must_use]
    pub fn run_traced(
        &self,
        workload: &Workload,
        arch: Arch,
        tracer: &mut Tracer<'_>,
        snapshot_interval: u64,
    ) -> RunReport {
        let mut gpu = Gpu::new(self.cfg.clone(), arch.config());
        let mut mem = workload.memory.clone();
        let stats = match attach_live(workload, arch.label(), self.cfg.num_sms).as_mut() {
            None => gpu.run_traced(
                &workload.kernel,
                workload.launch,
                &mut mem,
                tracer,
                snapshot_interval,
            ),
            Some(obs) => {
                let interval = obs.sample_interval();
                gpu.run_observed(
                    &workload.kernel,
                    workload.launch,
                    &mut mem,
                    tracer,
                    snapshot_interval,
                    interval,
                    obs,
                )
            }
        };
        let power = chip_power(
            &stats,
            &self.cfg,
            arch.rf_scheme(),
            arch.has_codec(),
            &self.energy,
        );
        RunReport { arch, stats, power }
    }

    /// Runs `workload` on `arch` with full instrumentation: a metrics
    /// registry fed by the simulator's counters and an interval power
    /// timeline sampled every `sample_interval` cycles (0 still yields
    /// one closing interval covering the whole run).
    ///
    /// The returned registry also carries per-component energy gauges
    /// (`energy/<component>_pj`, `energy/total_pj`) and the power
    /// timeline as `power/<component>` series, so a single flatten
    /// produces a complete machine-readable record of the run.
    #[must_use]
    pub fn run_metered(&self, workload: &Workload, arch: Arch, sample_interval: u64) -> MeteredRun {
        let mut gpu = Gpu::new(self.cfg.clone(), arch.config());
        let mut mem = workload.memory.clone();
        let mut metrics = MetricsObserver::new();
        let mut timeline = PowerTimeline::new(
            &self.cfg,
            arch.rf_scheme(),
            arch.has_codec(),
            self.energy.clone(),
        );
        // Live telemetry rides along at the caller's cadence: changing
        // `sample_interval` here would change the metrics/power series
        // that end up in manifests. With `sample_interval == 0` the
        // engine delivers no samples, so the stream then carries only
        // run_start/run_end for this run.
        let mut live = attach_live(workload, arch.label(), self.cfg.num_sms);
        let stats = {
            let mut pair = PairObserver {
                a: &mut metrics,
                b: &mut timeline,
            };
            let mut with_live;
            let observer: &mut dyn RunObserver = match live.as_mut() {
                None => &mut pair,
                Some(obs) => {
                    with_live = PairObserver {
                        a: obs,
                        b: &mut pair,
                    };
                    &mut with_live
                }
            };
            gpu.run_observed(
                &workload.kernel,
                workload.launch,
                &mut mem,
                &mut Tracer::off(),
                0,
                sample_interval,
                observer,
            )
        };
        let power = chip_power(
            &stats,
            &self.cfg,
            arch.rf_scheme(),
            arch.has_codec(),
            &self.energy,
        );
        let mut registry = metrics.into_registry();
        timeline.export(&mut registry.scope("power"));
        let mut e = registry.scope("energy");
        for (name, pj) in gscalar_power::component_energies_pj(
            &stats,
            arch.rf_scheme(),
            arch.has_codec(),
            &self.energy,
        ) {
            e.gauge_set(&format!("{name}_pj"), pj);
        }
        e.gauge_set(
            "total_pj",
            gscalar_power::total_energy_pj(
                &stats,
                &self.cfg,
                arch.rf_scheme(),
                arch.has_codec(),
                &self.energy,
            ),
        );
        registry.gauge_set("power/total_w", power.total_w());
        registry.gauge_set("power/ipc_per_watt", power.ipc_per_watt());
        MeteredRun {
            report: RunReport { arch, stats, power },
            timeline,
            registry,
        }
    }

    /// Runs `workload` on `arch` with the per-static-instruction
    /// profiler attached: every issue slot, stall cycle, eligibility
    /// classification, execution span, compressor outcome and branch
    /// execution is attributed to its PC (see `gscalar_profile` for the
    /// attribution rules).
    ///
    /// The returned registry carries the aggregate counters under
    /// `gpu/…` and the schema-versioned per-PC tables under
    /// `profile/k<id>/pc<PC>/…` with zero-padded keys, so manifests
    /// built from a flatten are byte-stable.
    #[must_use]
    pub fn run_profiled(&self, workload: &Workload, arch: Arch) -> ProfiledRun {
        let mut gpu = Gpu::new(self.cfg.clone(), arch.config());
        let mut mem = workload.memory.clone();
        let mut profiler = Profiler::for_kernel(0, workload.kernel.name(), workload.kernel.len());
        let stats = gpu.run_profiled(
            &workload.kernel,
            workload.launch,
            &mut mem,
            &mut Tracer::off(),
            &mut profiler,
        );
        let power = chip_power(
            &stats,
            &self.cfg,
            arch.rf_scheme(),
            arch.has_codec(),
            &self.energy,
        );
        let profile = profiler
            .into_profile()
            .expect("profiler was created enabled");
        let mut registry = MetricsRegistry::new();
        stats.export(&mut registry.scope("gpu"));
        profile.export(&mut registry.scope("profile"));
        ProfiledRun {
            report: RunReport { arch, stats, power },
            profile,
            registry,
        }
    }

    /// [`Runner::run`] under a simulated-cycle budget: the run aborts
    /// deterministically at the first budget check past `budget`
    /// cycles (`budget == 0` disables the check). Statistics and power
    /// of a within-budget run are identical to [`Runner::run`]'s.
    ///
    /// # Errors
    ///
    /// Returns [`BudgetExceeded`] when the simulation crossed the
    /// budget.
    pub fn run_budgeted(
        &self,
        workload: &Workload,
        arch: Arch,
        budget: u64,
    ) -> Result<RunReport, BudgetExceeded> {
        let stats = run_stats_budgeted(&self.cfg, arch.config(), workload, budget)?;
        let power = chip_power(
            &stats,
            &self.cfg,
            arch.rf_scheme(),
            arch.has_codec(),
            &self.energy,
        );
        Ok(RunReport { arch, stats, power })
    }

    /// Runs `workload` on every Figure 11 architecture.
    #[must_use]
    pub fn run_all(&self, workload: &Workload) -> Vec<RunReport> {
        Arch::ALL.iter().map(|&a| self.run(workload, a)).collect()
    }

    /// Register-file dynamic power under each Figure 12 scheme,
    /// normalized to the baseline scheme, from a single run.
    #[must_use]
    pub fn rf_power_normalized(&self, workload: &Workload) -> Vec<(RfScheme, f64)> {
        let report = self.run(workload, Arch::GScalar);
        let base = gscalar_power::rf_energy_pj(&report.stats, RfScheme::Baseline, &self.energy);
        RfScheme::ALL
            .iter()
            .map(|&s| {
                let e = gscalar_power::rf_energy_pj(&report.stats, s, &self.energy);
                (s, if base > 0.0 { e / base } else { 0.0 })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gscalar_isa::{CmpOp, KernelBuilder, Operand, SReg};

    /// A workload with uniform SFU work, divergence, and memory traffic.
    fn mixed_workload() -> Workload {
        let mut b = KernelBuilder::new("mixed");
        let tid = b.s2r(SReg::TidX);
        let cta = b.s2r(SReg::CtaIdX);
        // Uniform SFU chain (scalar-eligible).
        let f = b.i2f(cta.into());
        let g = b.ex2(f.into());
        let _h = b.fmul(g.into(), Operand::imm_f32(0.5));
        // Divergence.
        let p = b.isetp(CmpOp::Lt, tid.into(), Operand::Imm(16));
        b.if_then(p.into(), |b| {
            b.iadd(tid.into(), Operand::Imm(1));
        });
        // Memory.
        let off = b.shl(tid.into(), Operand::Imm(2));
        let addr = b.iadd(off.into(), Operand::Imm(0x10000));
        let v = b.ld_global(addr, 0);
        let v2 = b.iadd(v.into(), Operand::Imm(1));
        b.st_global(addr, v2, 0);
        b.exit();
        Workload::new(
            "mixed",
            "MX",
            b.build().unwrap(),
            LaunchConfig::linear(4, 64),
            GlobalMemory::new(),
        )
    }

    #[test]
    fn run_all_covers_every_arch() {
        let runner = Runner::new(GpuConfig::test_small());
        let reports = runner.run_all(&mixed_workload());
        assert_eq!(reports.len(), 4);
        let archs: Vec<_> = reports.iter().map(|r| r.arch).collect();
        assert_eq!(archs, Arch::ALL.to_vec());
        // Same workload ⇒ same instruction counts everywhere.
        let w0 = reports[0].stats.instr.warp_instrs;
        assert!(reports.iter().all(|r| r.stats.instr.warp_instrs == w0));
    }

    #[test]
    fn gscalar_beats_baseline_efficiency_on_scalar_friendly_work() {
        // SFU-heavy warp-uniform work with enough warps to hide the
        // +3-cycle compression latency — the BP-like case where the
        // paper reports the largest gains.
        let mut b = KernelBuilder::new("sfu_heavy");
        let cta = b.s2r(SReg::CtaIdX);
        let f = b.i2f(cta.into());
        let acc = b.mov_f32(1.0);
        for _ in 0..12 {
            let e = b.ex2(acc.into());
            let m = b.fmul(e.into(), Operand::imm_f32(0.25));
            b.fadd_to(acc, m.into(), f.into());
        }
        b.exit();
        let w = Workload::new(
            "sfu_heavy",
            "SH",
            b.build().unwrap(),
            LaunchConfig::linear(60, 256),
            GlobalMemory::new(),
        );
        // Full-chip configuration: the efficiency argument needs real
        // activity levels, not the single-SM test configuration.
        let runner = Runner::new(GpuConfig::gtx480());
        let base = runner.run(&w, Arch::Baseline);
        let gs = runner.run(&w, Arch::GScalar);
        assert!(gs.stats.instr.executed_scalar > 0);
        assert!(
            gs.ipc_per_watt() > base.ipc_per_watt(),
            "G-Scalar {:.4} vs baseline {:.4}",
            gs.ipc_per_watt(),
            base.ipc_per_watt()
        );
    }

    #[test]
    fn run_metered_matches_plain_run_and_integrates() {
        let runner = Runner::new(GpuConfig::test_small());
        let w = mixed_workload();
        let plain = runner.run(&w, Arch::GScalar);
        let metered = runner.run_metered(&w, Arch::GScalar, 16);
        // Instrumentation must not perturb the simulation.
        assert_eq!(metered.report.stats, plain.stats);
        assert_eq!(metered.report.power, plain.power);
        // Registry carries the merged counters.
        assert_eq!(
            metered.registry.counter("gpu/cycles"),
            Some(plain.stats.cycles)
        );
        // Timeline integral equals the one-shot total energy.
        let total = metered.registry.gauge("energy/total_pj").unwrap();
        let integrated = metered.timeline.integrated_energy_pj();
        assert!((integrated - total).abs() <= 1e-6 * total);
        // And the power series exists per component.
        assert!(metered.registry.series("power/register-file").is_some());
        assert!(metered.registry.gauge("power/total_w").unwrap() > 0.0);
    }

    #[test]
    fn run_profiled_matches_plain_run_and_reconciles() {
        let runner = Runner::new(GpuConfig::test_small());
        let w = mixed_workload();
        let plain = runner.run(&w, Arch::GScalar);
        let profiled = runner.run_profiled(&w, Arch::GScalar);
        // Profiling must not perturb the simulation.
        assert_eq!(profiled.report.stats, plain.stats);
        assert_eq!(profiled.report.power, plain.power);
        // Per-PC totals reconcile exactly with the aggregate counters.
        let prof = &profiled.profile;
        assert_eq!(prof.total_issues(), plain.stats.pipe.issued);
        assert_eq!(
            prof.total_stall_cycles(),
            plain.stats.pipe.scheduler_idle_cycles
        );
        // The registry carries both views, schema-stamped.
        assert_eq!(
            profiled.registry.counter("gpu/cycles"),
            Some(plain.stats.cycles)
        );
        assert_eq!(
            profiled.registry.counter("profile/k00/schema"),
            Some(gscalar_profile::PROFILE_SCHEMA_VERSION)
        );
        assert_eq!(
            profiled.registry.counter("profile/k00/issues"),
            Some(plain.stats.pipe.issued)
        );
        // Every executed PC is within the kernel.
        let pcs: Vec<usize> = prof.executed_pcs().collect();
        assert!(!pcs.is_empty());
        assert!(pcs.iter().all(|&pc| pc < w.kernel.len()));
    }

    #[test]
    fn run_budgeted_within_budget_matches_plain_run() {
        let runner = Runner::new(GpuConfig::test_small());
        let w = mixed_workload();
        let plain = runner.run(&w, Arch::GScalar);
        let budgeted = runner
            .run_budgeted(&w, Arch::GScalar, plain.stats.cycles + 1)
            .expect("within budget");
        assert_eq!(budgeted.stats, plain.stats);
        assert_eq!(budgeted.power, plain.power);
        // Budget 0 disables the check entirely.
        let unlimited = runner
            .run_budgeted(&w, Arch::GScalar, 0)
            .expect("unlimited");
        assert_eq!(unlimited.stats, plain.stats);
    }

    #[test]
    fn run_budgeted_aborts_deterministically() {
        let runner = Runner::new(GpuConfig::test_small());
        let w = mixed_workload();
        let full = runner.run(&w, Arch::GScalar).stats.cycles;
        assert!(full > 2, "workload too small to truncate");
        let err = runner
            .run_budgeted(&w, Arch::GScalar, 2)
            .expect_err("must trip");
        assert_eq!(err.budget, 2);
        assert!(err.cycles >= 2 && err.cycles < full);
        // Deterministic: the abort point is cycle-based, not
        // wall-clock-based, so it reproduces exactly.
        let again = runner
            .run_budgeted(&w, Arch::GScalar, 2)
            .expect_err("must trip again");
        assert_eq!(again, err);
        assert!(err.to_string().contains("cycle budget exceeded"));
    }

    #[test]
    fn run_stats_budgeted_accepts_custom_arch_configs() {
        let w = mixed_workload();
        let cfg = GpuConfig::test_small();
        let mut arch = Arch::GScalar.config();
        arch.extra_latency = 3;
        let stats = run_stats_budgeted(&cfg, arch.clone(), &w, 0).expect("unlimited");
        assert!(stats.cycles > 0);
        let err = run_stats_budgeted(&cfg, arch, &w, 2).expect_err("must trip");
        assert_eq!(err.budget, 2);
    }

    #[test]
    fn rf_power_normalized_baseline_is_one() {
        let runner = Runner::new(GpuConfig::test_small());
        let rows = runner.rf_power_normalized(&mixed_workload());
        assert_eq!(rows.len(), 4);
        assert!((rows[0].1 - 1.0).abs() < 1e-9);
        // Our scheme saves power vs baseline.
        let ours = rows
            .iter()
            .find(|(s, _)| *s == RfScheme::ByteWise)
            .expect("scheme present");
        assert!(ours.1 < 1.0);
    }
}
