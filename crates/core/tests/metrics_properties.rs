//! Property tests for the instrumented run path: on randomly generated
//! structured kernels, the interval power timeline must integrate to
//! exactly the one-shot energy total, and the stall taxonomy must stay
//! exhaustive (per-reason cycles sum to the scheduler idle count).

use gscalar_core::{Arch, Runner, Workload};
use gscalar_isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, Pred, Reg, SReg};
use gscalar_sim::memory::GlobalMemory;
use gscalar_sim::GpuConfig;
use proptest::prelude::*;

/// A random structured statement (a slimmed-down version of the
/// differential-fuzz generator in `gscalar-sim`): enough variety to hit
/// ALU, SFU, memory, and divergent control flow.
#[derive(Debug, Clone)]
enum Stmt {
    AddImm(u32),
    MulTid,
    SfuRound,
    IfTidLt(u32, Vec<Stmt>),
    StoreLoad,
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = prop_oneof![
        (1u32..100).prop_map(Stmt::AddImm),
        Just(Stmt::MulTid),
        Just(Stmt::SfuRound),
        Just(Stmt::StoreLoad),
    ];
    leaf.prop_recursive(2, 12, 3, |inner| {
        prop_oneof![
            (1u32..100).prop_map(Stmt::AddImm),
            Just(Stmt::MulTid),
            Just(Stmt::StoreLoad),
            ((1u32..64), proptest::collection::vec(inner, 1..3))
                .prop_map(|(n, b)| Stmt::IfTidLt(n, b)),
        ]
    })
}

struct Ctx {
    x: Reg,
    tid: Reg,
    scratch: Reg,
    p: Pred,
}

fn emit(b: &mut KernelBuilder, c: &Ctx, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::AddImm(v) => b.iadd_to(c.x, c.x.into(), Operand::Imm(*v)),
            Stmt::MulTid => {
                b.alu_to(
                    gscalar_isa::AluOp::IMad,
                    c.x,
                    c.x.into(),
                    Operand::Imm(3),
                    c.tid.into(),
                );
            }
            Stmt::SfuRound => {
                b.alu_to(
                    gscalar_isa::AluOp::And,
                    c.scratch,
                    c.x.into(),
                    Operand::Imm(0xFF),
                    Reg::RZ.into(),
                );
                b.alu_to(
                    gscalar_isa::AluOp::I2F,
                    c.scratch,
                    c.scratch.into(),
                    Reg::RZ.into(),
                    Reg::RZ.into(),
                );
                b.sfu_to(gscalar_isa::SfuOp::Sqrt, c.scratch, c.scratch.into());
                b.alu_to(
                    gscalar_isa::AluOp::F2I,
                    c.scratch,
                    c.scratch.into(),
                    Reg::RZ.into(),
                    Reg::RZ.into(),
                );
                b.iadd_to(c.x, c.x.into(), c.scratch.into());
            }
            Stmt::IfTidLt(n, body) => {
                b.isetp_to(c.p, CmpOp::Lt, c.tid.into(), Operand::Imm(*n));
                b.if_then(c.p.into(), |b| emit(b, c, body));
            }
            Stmt::StoreLoad => {
                let off = b.shl(c.tid.into(), Operand::Imm(2));
                let addr = b.iadd(off.into(), Operand::Imm(0x20_0000));
                b.st_global(addr, c.x, 0);
                b.ld_global_to(c.x, addr, 0);
            }
        }
    }
}

fn build_workload(prog: &[Stmt]) -> Workload {
    let mut b = KernelBuilder::new("metrics-fuzz");
    let tid = b.s2r(SReg::TidX);
    let x = b.mov(Operand::Imm(1));
    let scratch = b.mov(Operand::Imm(0));
    let p = b.pred();
    let ctx = Ctx { x, tid, scratch, p };
    emit(&mut b, &ctx, prog);
    let off = b.shl(tid.into(), Operand::Imm(2));
    let addr = b.iadd(off.into(), Operand::Imm(0x30_0000));
    b.st_global(addr, x, 0);
    b.exit();
    Workload::new(
        "metrics-fuzz",
        "MF",
        b.build().expect("fuzz kernel builds"),
        LaunchConfig::linear(2, 64),
        GlobalMemory::new(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn timeline_integrates_to_one_shot_energy_and_stalls_stay_exhaustive(
        prog in proptest::collection::vec(stmt(), 1..5),
        arch_pick in 0usize..3,
        interval_pick in 0usize..3,
    ) {
        let w = build_workload(&prog);
        let arch = [Arch::Baseline, Arch::AluScalar, Arch::GScalar][arch_pick];
        let sample_interval = [0u64, 7, 64][interval_pick];
        let runner = Runner::new(GpuConfig::test_small());
        let run = runner.run_metered(&w, arch, sample_interval);
        let stats = &run.report.stats;

        // Invariant 1: the interval timeline re-integrates (sum of
        // interval power × interval duration) to the one-shot total.
        let integrated = run.timeline.integrated_energy_pj();
        let one_shot = gscalar_power::total_energy_pj(
            stats,
            runner.config(),
            arch.rf_scheme(),
            arch.has_codec(),
            runner.energy(),
        );
        let rel = (integrated - one_shot).abs() / one_shot.max(1e-12);
        prop_assert!(
            rel < 1e-6,
            "timeline {integrated} pJ vs one-shot {one_shot} pJ (rel {rel:.3e}, \
             arch {arch:?}, interval {sample_interval})"
        );

        // Invariant 2: exactly one stall reason is charged per idle
        // scheduler-cycle, with metrics observation enabled.
        prop_assert_eq!(stats.pipe.stalls.total(), stats.pipe.scheduler_idle_cycles);

        // The registry saw the same run: its exported cycle counter
        // matches the merged statistics.
        let flat = run.registry.flatten();
        let cycles = flat
            .iter()
            .find(|(p, _)| p == "gpu/cycles")
            .expect("gpu/cycles exported")
            .1;
        prop_assert_eq!(cycles, stats.cycles as f64);
    }

    #[test]
    fn per_pc_profile_reconciles_with_aggregate_stats(
        prog in proptest::collection::vec(stmt(), 1..5),
        arch_pick in 0usize..3,
    ) {
        use gscalar_profile::EligClass;

        let w = build_workload(&prog);
        let arch = [Arch::Baseline, Arch::AluScalar, Arch::GScalar][arch_pick];
        let runner = Runner::new(GpuConfig::test_small());
        let run = runner.run_profiled(&w, arch);
        let stats = &run.report.stats;
        let prof = &run.profile;

        // Profiling must not perturb the simulation.
        let plain = runner.run(&w, arch);
        prop_assert_eq!(&plain.stats, stats);

        // Issue slots: every issued warp-instruction is attributed to
        // exactly one PC; every idle scheduler-cycle is charged to the
        // losing warp's PC or recorded as unattributed.
        prop_assert_eq!(prof.total_issues(), stats.pipe.issued);
        prop_assert_eq!(
            prof.total_stall_cycles(),
            stats.pipe.scheduler_idle_cycles
        );

        // Lane-level totals.
        let recs = prof.records();
        let lanes: u64 = recs.iter().map(|r| r.active_lanes).sum();
        prop_assert_eq!(lanes, stats.instr.thread_instrs);
        let divergent: u64 = recs.iter().map(|r| r.divergent_issues).sum();
        prop_assert_eq!(divergent, stats.instr.divergent_instrs);

        // Scalar-eligibility classes: per-PC class counts sum to the
        // aggregate eligible_* counters.
        let class_sum = |c: EligClass| -> u64 {
            recs.iter().map(|r| r.class_count(c)).sum()
        };
        prop_assert_eq!(class_sum(EligClass::Alu), stats.instr.eligible_alu);
        prop_assert_eq!(class_sum(EligClass::Sfu), stats.instr.eligible_sfu);
        prop_assert_eq!(class_sum(EligClass::Mem), stats.instr.eligible_mem);
        prop_assert_eq!(class_sum(EligClass::Half), stats.instr.eligible_half);
        prop_assert_eq!(
            class_sum(EligClass::Divergent),
            stats.instr.eligible_divergent
        );

        // Register-write compressor outcomes: per-PC byte totals match
        // the aggregate register-file accounting (divergent writes are
        // excluded from both, by the same rule).
        let raw: u64 = recs.iter().map(|r| r.raw_bytes).sum();
        prop_assert_eq!(raw, stats.rf.raw_bytes);
        let compressed: u64 = recs.iter().map(|r| r.compressed_bytes).sum();
        prop_assert_eq!(compressed, stats.rf.ours_bytes);
        let writes: u64 = recs
            .iter()
            .map(|r| (0..gscalar_profile::ENCODING_SLOTS)
                .map(|t| r.enc_count(t))
                .sum::<u64>() + r.enc_divergent)
            .sum();
        prop_assert_eq!(writes, stats.rf.writes);
    }
}
