//! Per-static-instruction (PC-level) profiling for the G-Scalar
//! simulator — the attribution layer the aggregate counters lack.
//!
//! The simulator's `Stats` answer *how much* (issued instructions,
//! stall cycles, scalar executions); this crate answers *where*: which
//! static instruction is the hotspot, which branch originates the
//! divergence of the paper's Figure 1, which instructions carry the
//! scalar-execution opportunity of Figure 9 and the register
//! compressibility of Figure 8.
//!
//! The collection handle follows the same off-path-free pattern as
//! `gscalar_trace::Tracer`: a [`Profiler`] holds either a boxed
//! [`KernelProfile`] or nothing, and every `record_*` site reduces to a
//! single predictable branch when profiling is off — no payload is
//! built, no map is touched.
//!
//! Attribution rules (also documented in `DESIGN.md`):
//!
//! * An **issue slot** is charged to the PC of the issued instruction.
//! * A **stall cycle** is charged to the current PC of the warp the
//!   stall classification pinned the idle cycle on — the instruction at
//!   the head of the losing warp is the one *waiting*, so it is the one
//!   that accumulates the cost, exactly like `perf annotate` charges a
//!   stalled load.
//! * Idle cycles with no culprit warp (the scheduler drained at the
//!   kernel tail) go to the profile-level
//!   [`unattributed`](KernelProfile::unattributed) breakdown.
//!
//! Together these give the reconciliation invariant the property tests
//! pin down: summed over PCs, `issues` equals `Stats::pipe.issued` and
//! `stalls + unattributed` equals `Stats::pipe.scheduler_idle_cycles`.
//!
//! Per-PC records are kept in a dense `Vec` indexed by PC, so iteration
//! order is the program order — exports and reports are byte-stable by
//! construction, with no hash-map iteration anywhere.
//!
//! # Examples
//!
//! ```
//! use gscalar_profile::{EligClass, Profiler};
//! use gscalar_trace::StallReason;
//!
//! let mut p = Profiler::for_kernel(0, "tiny", 3);
//! p.record_issue(0, 32, false);
//! p.record_class(0, EligClass::Alu);
//! p.record_stall(Some(1), StallReason::Scoreboard);
//! p.record_stall(None, StallReason::Drained);
//! let prof = p.into_profile().unwrap();
//! assert_eq!(prof.total_issues(), 1);
//! assert_eq!(prof.record(1).stalls.get(StallReason::Scoreboard), 1);
//! assert_eq!(prof.unattributed.get(StallReason::Drained), 1);
//!
//! let mut off = Profiler::off();
//! off.record_issue(0, 32, false); // single branch, nothing recorded
//! assert!(!off.is_on());
//! ```

pub mod report;

pub use report::{annotate, branch_markdown, hotspot_markdown};

use gscalar_metrics::{Histogram, Scope};
use gscalar_trace::{StallBreakdown, StallReason};

/// Version of the per-PC export schema under the metrics registry.
///
/// Bump when the path layout or the meaning of an exported counter
/// changes; the value itself is exported as `<scope>/schema`.
pub const PROFILE_SCHEMA_VERSION: u64 = 1;

/// Number of byte-wise encoding outcome slots tracked per PC.
///
/// Indexed by the simulator's encoding tag: 0 = scalar, 1 = b321,
/// 2 = b32, 3 = b3, 4 = none (uncompressed).
pub const ENCODING_SLOTS: usize = 5;

/// Stable labels for the encoding tags, in tag order.
pub const ENCODING_LABELS: [&str; ENCODING_SLOTS] = ["scalar", "b321", "b32", "b3", "none"];

// ---------------------------------------------------------------------------
// Eligibility classes
// ---------------------------------------------------------------------------

/// Scalar-eligibility classification of an executed instruction
/// (paper Fig. 9), mirroring the simulator's `ScalarClass` without a
/// dependency on the sim crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum EligClass {
    /// Not scalar-eligible: lanes hold distinct values.
    Vector,
    /// Scalar-eligible ALU instruction.
    Alu,
    /// Scalar-eligible SFU instruction.
    Sfu,
    /// Scalar-eligible memory instruction.
    Mem,
    /// Eligible only for half-width execution (prior-work designs).
    Half,
    /// Scalar-eligible but under a divergent mask (G-Scalar §4.2).
    Divergent,
}

impl EligClass {
    /// Every class, in reporting order.
    pub const ALL: [EligClass; 6] = [
        EligClass::Vector,
        EligClass::Alu,
        EligClass::Sfu,
        EligClass::Mem,
        EligClass::Half,
        EligClass::Divergent,
    ];

    /// A stable label used in metric paths and JSON.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EligClass::Vector => "vector",
            EligClass::Alu => "alu",
            EligClass::Sfu => "sfu",
            EligClass::Mem => "mem",
            EligClass::Half => "half",
            EligClass::Divergent => "divergent",
        }
    }

    /// A short fixed-width label for annotated-disassembly columns.
    #[must_use]
    pub fn short(self) -> &'static str {
        match self {
            EligClass::Vector => "vec",
            EligClass::Alu => "alu",
            EligClass::Sfu => "sfu",
            EligClass::Mem => "mem",
            EligClass::Half => "half",
            EligClass::Divergent => "div",
        }
    }

    fn index(self) -> usize {
        match self {
            EligClass::Vector => 0,
            EligClass::Alu => 1,
            EligClass::Sfu => 2,
            EligClass::Mem => 3,
            EligClass::Half => 4,
            EligClass::Divergent => 5,
        }
    }
}

// ---------------------------------------------------------------------------
// Per-PC record
// ---------------------------------------------------------------------------

/// Per-branch divergence and reconvergence statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BranchStats {
    /// Times the branch executed (with a non-empty path mask).
    pub execs: u64,
    /// Executions that split the warp onto both paths.
    pub diverged: u64,
    /// Total lanes that took the branch, across executions.
    pub taken_lanes: u64,
    /// Total lanes that fell through, across executions.
    pub not_taken_lanes: u64,
    /// SIMT-stack paths pushed by this branch that later popped at
    /// their reconvergence point (the paths that rejoined).
    pub rejoined_paths: u64,
    /// Paths pushed by this branch that died before reconvergence
    /// (every lane exited on the path).
    pub exited_paths: u64,
}

impl BranchStats {
    fn merge(&mut self, other: &BranchStats) {
        self.execs += other.execs;
        self.diverged += other.diverged;
        self.taken_lanes += other.taken_lanes;
        self.not_taken_lanes += other.not_taken_lanes;
        self.rejoined_paths += other.rejoined_paths;
        self.exited_paths += other.exited_paths;
    }
}

/// Everything attributed to one static instruction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PcRecord {
    /// Warp-instruction issue slots charged to this PC.
    pub issues: u64,
    /// Total active lanes across issues (thread instructions).
    pub active_lanes: u64,
    /// Issues whose active mask was narrower than the full warp.
    pub divergent_issues: u64,
    /// Issues whose guard predicated every lane off.
    pub predicated_off: u64,
    /// Stall cycles charged to this PC, by reason (the warp whose head
    /// was this instruction lost the idle cycle).
    pub stalls: StallBreakdown,
    /// Log₂ histogram of functional-unit occupancy spans (cycles from
    /// dispatch to writeback) for this instruction.
    pub latency: Histogram,
    /// Log₂ histogram of active-lane counts at issue.
    pub lanes: Histogram,
    /// Scalar-eligibility class counts, indexed by [`EligClass`].
    class_counts: [u64; EligClass::ALL.len()],
    /// Byte-wise compressor outcomes for this instruction's register
    /// writes, indexed by encoding tag (see [`ENCODING_LABELS`]).
    enc_counts: [u64; ENCODING_SLOTS],
    /// Register writes under a divergent mask (bypass the compressor).
    pub enc_divergent: u64,
    /// Uncompressed bytes this instruction's writes would occupy.
    pub raw_bytes: u64,
    /// Bytes its writes occupy after byte-wise compression.
    pub compressed_bytes: u64,
    /// Branch statistics (all-zero for non-branches).
    pub branch: BranchStats,
}

impl PcRecord {
    /// Executions recorded for `class`.
    #[must_use]
    pub fn class_count(&self, class: EligClass) -> u64 {
        self.class_counts[class.index()]
    }

    /// Compressor outcomes recorded for encoding tag `tag`.
    #[must_use]
    pub fn enc_count(&self, tag: usize) -> u64 {
        self.enc_counts[tag]
    }

    /// Whether anything at all was attributed to this PC.
    #[must_use]
    pub fn has_activity(&self) -> bool {
        self.issues > 0 || self.stalls.total() > 0
    }

    /// Attribution cost used for hotspot ranking: issue slots plus
    /// stall cycles charged here.
    #[must_use]
    pub fn cost(&self) -> u64 {
        self.issues + self.stalls.total()
    }

    /// Mean active lanes per issue (0.0 when never issued).
    #[must_use]
    pub fn avg_active_lanes(&self) -> f64 {
        if self.issues == 0 {
            0.0
        } else {
            self.active_lanes as f64 / self.issues as f64
        }
    }

    /// Compression ratio (raw / compressed bytes) of this
    /// instruction's register writes; `None` when it wrote nothing.
    #[must_use]
    pub fn compression_ratio(&self) -> Option<f64> {
        (self.compressed_bytes > 0).then(|| self.raw_bytes as f64 / self.compressed_bytes as f64)
    }

    /// The most frequent eligibility class (`None` when the
    /// instruction never reached classification — control flow or
    /// fully predicated-off). Ties break toward the earlier class in
    /// [`EligClass::ALL`], keeping reports deterministic.
    #[must_use]
    pub fn dominant_class(&self) -> Option<EligClass> {
        let mut best: Option<(u64, EligClass)> = None;
        for class in EligClass::ALL {
            let n = self.class_counts[class.index()];
            if n > 0 && best.is_none_or(|(m, _)| n > m) {
                best = Some((n, class));
            }
        }
        best.map(|(_, c)| c)
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &PcRecord) {
        self.issues += other.issues;
        self.active_lanes += other.active_lanes;
        self.divergent_issues += other.divergent_issues;
        self.predicated_off += other.predicated_off;
        self.stalls.merge(&other.stalls);
        self.latency.merge(&other.latency);
        self.lanes.merge(&other.lanes);
        for (a, b) in self.class_counts.iter_mut().zip(other.class_counts.iter()) {
            *a += b;
        }
        for (a, b) in self.enc_counts.iter_mut().zip(other.enc_counts.iter()) {
            *a += b;
        }
        self.enc_divergent += other.enc_divergent;
        self.raw_bytes += other.raw_bytes;
        self.compressed_bytes += other.compressed_bytes;
        self.branch.merge(&other.branch);
    }
}

// ---------------------------------------------------------------------------
// Kernel profile
// ---------------------------------------------------------------------------

/// The complete per-PC profile of one kernel run.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelProfile {
    kernel_id: u32,
    kernel: String,
    records: Vec<PcRecord>,
    /// Idle scheduler cycles with no culprit warp (drained tail).
    pub unattributed: StallBreakdown,
}

impl KernelProfile {
    /// An empty profile for a kernel of `len` static instructions.
    #[must_use]
    pub fn new(kernel_id: u32, kernel: impl Into<String>, len: usize) -> Self {
        KernelProfile {
            kernel_id,
            kernel: kernel.into(),
            records: vec![PcRecord::default(); len],
            unattributed: StallBreakdown::default(),
        }
    }

    /// The kernel id this profile belongs to.
    #[must_use]
    pub fn kernel_id(&self) -> u32 {
        self.kernel_id
    }

    /// The kernel name.
    #[must_use]
    pub fn kernel(&self) -> &str {
        &self.kernel
    }

    /// Number of static instructions covered.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the kernel had no instructions.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// The record for `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn record(&self, pc: usize) -> &PcRecord {
        &self.records[pc]
    }

    /// All records, indexed by PC (program order — deterministic).
    #[must_use]
    pub fn records(&self) -> &[PcRecord] {
        &self.records
    }

    /// PCs with any attributed activity, ascending.
    pub fn executed_pcs(&self) -> impl Iterator<Item = usize> + '_ {
        self.records
            .iter()
            .enumerate()
            .filter(|(_, r)| r.has_activity())
            .map(|(pc, _)| pc)
    }

    /// Total issue slots attributed across PCs.
    #[must_use]
    pub fn total_issues(&self) -> u64 {
        self.records.iter().map(|r| r.issues).sum()
    }

    /// Stall cycles attributed to specific PCs.
    #[must_use]
    pub fn attributed_stall_cycles(&self) -> u64 {
        self.records.iter().map(|r| r.stalls.total()).sum()
    }

    /// All idle scheduler cycles: attributed plus unattributed.
    #[must_use]
    pub fn total_stall_cycles(&self) -> u64 {
        self.attributed_stall_cycles() + self.unattributed.total()
    }

    /// The `n` highest-cost PCs (issues + stalls), cost descending,
    /// ties broken by ascending PC — deterministic.
    #[must_use]
    pub fn hotspots(&self, n: usize) -> Vec<usize> {
        let mut pcs: Vec<usize> = self.executed_pcs().collect();
        pcs.sort_by_key(|&pc| (std::cmp::Reverse(self.records[pc].cost()), pc));
        pcs.truncate(n);
        pcs
    }

    /// Accumulates another profile of the *same kernel* into this one.
    ///
    /// # Panics
    ///
    /// Panics if the kernel ids or lengths differ.
    pub fn merge(&mut self, other: &KernelProfile) {
        assert_eq!(self.kernel_id, other.kernel_id, "kernel id mismatch");
        assert_eq!(self.records.len(), other.records.len(), "length mismatch");
        for (a, b) in self.records.iter_mut().zip(other.records.iter()) {
            a.merge(b);
        }
        self.unattributed.merge(&other.unattributed);
    }

    /// Exports the profile under `scope` as
    /// `k<kernel_id>/pc<PC>/<metric>` counters and histograms.
    ///
    /// Kernel ids and PCs are zero-padded so the registry's
    /// lexicographic key order equals (kernel id, PC) numeric order —
    /// manifests built from this export are byte-stable. Only PCs with
    /// activity are emitted; zero-valued sub-counters are skipped.
    pub fn export(&self, scope: &mut Scope<'_>) {
        let mut k = scope.scope(&format!("k{:02}", self.kernel_id));
        k.counter_add("schema", PROFILE_SCHEMA_VERSION);
        k.counter_add("pcs", self.records.len() as u64);
        k.counter_add("issues", self.total_issues());
        k.counter_add("attributed_stalls", self.attributed_stall_cycles());
        k.counter_add("unattributed_stalls", self.unattributed.total());
        for (reason, n) in self.unattributed.iter() {
            if n > 0 {
                k.counter_add(&format!("unattributed_stall/{}", reason.label()), n);
            }
        }
        for (pc, r) in self.records.iter().enumerate() {
            if !r.has_activity() {
                continue;
            }
            let mut s = k.scope(&format!("pc{pc:04}"));
            s.counter_add("issues", r.issues);
            if r.active_lanes > 0 {
                s.counter_add("active_lanes", r.active_lanes);
            }
            if r.divergent_issues > 0 {
                s.counter_add("divergent_issues", r.divergent_issues);
            }
            if r.predicated_off > 0 {
                s.counter_add("predicated_off", r.predicated_off);
            }
            for (reason, n) in r.stalls.iter() {
                if n > 0 {
                    s.counter_add(&format!("stall/{}", reason.label()), n);
                }
            }
            for class in EligClass::ALL {
                let n = r.class_count(class);
                if n > 0 {
                    s.counter_add(&format!("class/{}", class.label()), n);
                }
            }
            for (tag, label) in ENCODING_LABELS.iter().enumerate() {
                if r.enc_counts[tag] > 0 {
                    s.counter_add(&format!("enc/{label}"), r.enc_counts[tag]);
                }
            }
            if r.enc_divergent > 0 {
                s.counter_add("enc/divergent", r.enc_divergent);
            }
            if r.raw_bytes > 0 {
                s.counter_add("raw_bytes", r.raw_bytes);
                s.counter_add("compressed_bytes", r.compressed_bytes);
            }
            if r.latency.count() > 0 {
                s.histogram_merge("latency", &r.latency);
            }
            if r.lanes.count() > 0 {
                s.histogram_merge("lanes", &r.lanes);
            }
            if r.branch.execs > 0 {
                let mut b = s.scope("branch");
                b.counter_add("execs", r.branch.execs);
                if r.branch.diverged > 0 {
                    b.counter_add("diverged", r.branch.diverged);
                }
                if r.branch.taken_lanes > 0 {
                    b.counter_add("taken_lanes", r.branch.taken_lanes);
                }
                if r.branch.not_taken_lanes > 0 {
                    b.counter_add("not_taken_lanes", r.branch.not_taken_lanes);
                }
                if r.branch.rejoined_paths > 0 {
                    b.counter_add("rejoined_paths", r.branch.rejoined_paths);
                }
                if r.branch.exited_paths > 0 {
                    b.counter_add("exited_paths", r.branch.exited_paths);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Collection handle
// ---------------------------------------------------------------------------

/// The handle the simulator's collection sites record through.
///
/// Holds either a [`KernelProfile`] or nothing; every `record_*`
/// method is a single branch when profiling is off, mirroring
/// `gscalar_trace::Tracer` — the simulator threads one `&mut Profiler`
/// through the run and pays nothing on the disabled path.
#[derive(Debug, Default)]
pub struct Profiler {
    data: Option<Box<KernelProfile>>,
}

impl Profiler {
    /// A disabled profiler; every record call is a no-op.
    #[must_use]
    pub fn off() -> Profiler {
        Profiler { data: None }
    }

    /// A profiler collecting for a kernel of `len` static
    /// instructions.
    #[must_use]
    pub fn for_kernel(kernel_id: u32, kernel: impl Into<String>, len: usize) -> Profiler {
        Profiler {
            data: Some(Box::new(KernelProfile::new(kernel_id, kernel, len))),
        }
    }

    /// Whether records are being collected.
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.data.is_some()
    }

    /// A view of the collected profile, if any.
    #[must_use]
    pub fn profile(&self) -> Option<&KernelProfile> {
        self.data.as_deref()
    }

    /// Consumes the profiler, returning the collected profile.
    #[must_use]
    pub fn into_profile(self) -> Option<KernelProfile> {
        self.data.map(|b| *b)
    }

    /// An empty profiler of the same shape (same kernel, zeroed
    /// counters) — or an off profiler if this one is off. Used by the
    /// parallel engine to give each SM a private profiler whose counts
    /// [`Profiler::absorb`] folds back in; every per-PC record is a
    /// commutative counter or histogram, so the fold is
    /// order-independent.
    #[must_use]
    pub fn fork(&self) -> Profiler {
        match self.data.as_deref() {
            Some(p) => Profiler::for_kernel(p.kernel_id(), p.kernel(), p.len()),
            None => Profiler::off(),
        }
    }

    /// Merges a forked profiler's counts back in.
    ///
    /// # Panics
    ///
    /// Panics if exactly one side is off, or if both are on but for
    /// different kernels (a fork of this profiler never is).
    pub fn absorb(&mut self, other: Profiler) {
        match (self.data.as_deref_mut(), other.data) {
            (None, None) => {}
            (Some(p), Some(o)) => p.merge(&o),
            _ => panic!("absorbing a profiler with a different on/off state"),
        }
    }

    /// Charges one issue slot to `pc` with `lanes` active lanes;
    /// `divergent` marks a mask narrower than the full warp.
    #[inline]
    pub fn record_issue(&mut self, pc: usize, lanes: u32, divergent: bool) {
        if let Some(p) = self.data.as_deref_mut() {
            let r = &mut p.records[pc];
            r.issues += 1;
            r.active_lanes += u64::from(lanes);
            r.lanes.record(u64::from(lanes));
            if divergent {
                r.divergent_issues += 1;
            }
            if lanes == 0 {
                r.predicated_off += 1;
            }
        }
    }

    /// Records the scalar-eligibility classification of one execution
    /// of the instruction at `pc`.
    #[inline]
    pub fn record_class(&mut self, pc: usize, class: EligClass) {
        if let Some(p) = self.data.as_deref_mut() {
            p.records[pc].class_counts[class.index()] += 1;
        }
    }

    /// Charges one idle scheduler cycle to the instruction at `pc`
    /// (the head of the culprit warp), or to the unattributed pool
    /// when the classification produced no culprit.
    #[inline]
    pub fn record_stall(&mut self, pc: Option<usize>, reason: StallReason) {
        if let Some(p) = self.data.as_deref_mut() {
            match pc {
                Some(pc) => p.records[pc].stalls.add(reason),
                None => p.unattributed.add(reason),
            }
        }
    }

    /// Records a functional-unit occupancy span of `cycles` for the
    /// instruction at `pc`.
    #[inline]
    pub fn record_latency(&mut self, pc: usize, cycles: u64) {
        if let Some(p) = self.data.as_deref_mut() {
            p.records[pc].latency.record(cycles);
        }
    }

    /// Records a compressor outcome for a register write performed by
    /// the instruction at `pc`: encoding tag, uncompressed and
    /// compressed byte footprint, and whether the write happened under
    /// a divergent mask. Divergent writes bypass the compressor, so —
    /// matching the aggregate `rf` byte accounting — they count toward
    /// `enc_divergent` only, not the byte totals.
    #[inline]
    pub fn record_write(
        &mut self,
        pc: usize,
        enc_tag: u8,
        raw: u64,
        compressed: u64,
        divergent: bool,
    ) {
        if let Some(p) = self.data.as_deref_mut() {
            let r = &mut p.records[pc];
            if divergent {
                r.enc_divergent += 1;
            } else {
                if (enc_tag as usize) < ENCODING_SLOTS {
                    r.enc_counts[enc_tag as usize] += 1;
                }
                r.raw_bytes += raw;
                r.compressed_bytes += compressed;
            }
        }
    }

    /// Records one execution of the branch at `pc`.
    #[inline]
    pub fn record_branch(
        &mut self,
        pc: usize,
        diverged: bool,
        taken_lanes: u32,
        not_taken_lanes: u32,
    ) {
        if let Some(p) = self.data.as_deref_mut() {
            let b = &mut p.records[pc].branch;
            b.execs += 1;
            if diverged {
                b.diverged += 1;
            }
            b.taken_lanes += u64::from(taken_lanes);
            b.not_taken_lanes += u64::from(not_taken_lanes);
        }
    }

    /// Records the end of a SIMT path pushed by the branch at
    /// `origin_pc`: it either `rejoined` at its reconvergence point or
    /// died when all its lanes exited.
    #[inline]
    pub fn record_path_end(&mut self, origin_pc: usize, rejoined: bool) {
        if let Some(p) = self.data.as_deref_mut() {
            let b = &mut p.records[origin_pc].branch;
            if rejoined {
                b.rejoined_paths += 1;
            } else {
                b.exited_paths += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gscalar_metrics::MetricsRegistry;

    fn sample_profile() -> KernelProfile {
        let mut p = Profiler::for_kernel(0, "demo", 4);
        for _ in 0..10 {
            p.record_issue(0, 32, false);
            p.record_class(0, EligClass::Alu);
        }
        for _ in 0..4 {
            p.record_issue(1, 8, true);
            p.record_class(1, EligClass::Vector);
        }
        p.record_class(1, EligClass::Divergent);
        p.record_issue(2, 0, true);
        p.record_stall(Some(1), StallReason::MemPending);
        p.record_stall(Some(1), StallReason::MemPending);
        p.record_stall(Some(3), StallReason::Scoreboard);
        p.record_stall(None, StallReason::Drained);
        p.record_latency(0, 5);
        p.record_write(0, 0, 128, 4, false);
        p.record_write(0, 4, 128, 128, false);
        p.record_write(1, 0, 128, 40, true);
        p.record_branch(2, true, 8, 24);
        p.record_path_end(2, true);
        p.record_path_end(2, false);
        p.into_profile().unwrap()
    }

    #[test]
    fn off_profiler_records_nothing() {
        let mut p = Profiler::off();
        p.record_issue(0, 32, false);
        p.record_stall(Some(0), StallReason::Barrier);
        p.record_write(0, 0, 128, 4, false);
        assert!(!p.is_on());
        assert!(p.into_profile().is_none());
    }

    #[test]
    fn totals_reconcile() {
        let prof = sample_profile();
        assert_eq!(prof.total_issues(), 15);
        assert_eq!(prof.attributed_stall_cycles(), 3);
        assert_eq!(prof.unattributed.total(), 1);
        assert_eq!(prof.total_stall_cycles(), 4);
        assert_eq!(prof.record(0).issues, 10);
        assert_eq!(prof.record(0).avg_active_lanes(), 32.0);
        assert_eq!(prof.record(1).divergent_issues, 4);
        assert_eq!(prof.record(2).predicated_off, 1);
        assert_eq!(prof.record(2).branch.diverged, 1);
        assert_eq!(prof.record(2).branch.rejoined_paths, 1);
        assert_eq!(prof.record(2).branch.exited_paths, 1);
    }

    #[test]
    fn dominant_class_breaks_ties_deterministically() {
        let prof = sample_profile();
        assert_eq!(prof.record(0).dominant_class(), Some(EligClass::Alu));
        // pc1: 4× Vector vs 1× Divergent → Vector wins on count.
        assert_eq!(prof.record(1).dominant_class(), Some(EligClass::Vector));
        // pc2 never reached classification.
        assert_eq!(prof.record(2).dominant_class(), None);
        let mut r = PcRecord::default();
        r.class_counts[EligClass::Alu.index()] = 3;
        r.class_counts[EligClass::Mem.index()] = 3;
        // Tie → earlier class in ALL order.
        assert_eq!(r.dominant_class(), Some(EligClass::Alu));
    }

    #[test]
    fn compression_ratio_and_write_accounting() {
        let prof = sample_profile();
        let r0 = prof.record(0);
        assert_eq!(r0.enc_count(0), 1);
        assert_eq!(r0.enc_count(4), 1);
        assert_eq!(r0.raw_bytes, 256);
        assert_eq!(r0.compressed_bytes, 132);
        let ratio = r0.compression_ratio().unwrap();
        assert!((ratio - 256.0 / 132.0).abs() < 1e-12);
        // Divergent write counts bytes but not an encoding slot.
        let r1 = prof.record(1);
        assert_eq!(r1.enc_divergent, 1);
        assert_eq!(r1.enc_count(0), 0);
        // pc3 only stalled — no writes.
        assert_eq!(prof.record(3).compression_ratio(), None);
    }

    #[test]
    fn hotspots_rank_by_cost_then_pc() {
        let prof = sample_profile();
        // Costs: pc0 = 10, pc1 = 4 + 2 = 6, pc2 = 1, pc3 = 1.
        assert_eq!(prof.hotspots(10), vec![0, 1, 2, 3]);
        assert_eq!(prof.hotspots(2), vec![0, 1]);
    }

    #[test]
    fn merge_accumulates_everything() {
        let a = sample_profile();
        let mut m = sample_profile();
        m.merge(&a);
        assert_eq!(m.total_issues(), 2 * a.total_issues());
        assert_eq!(m.total_stall_cycles(), 2 * a.total_stall_cycles());
        assert_eq!(m.record(0).latency.count(), 2);
        assert_eq!(m.record(2).branch.execs, 2);
        assert_eq!(m.record(0).raw_bytes, 512);
    }

    #[test]
    fn export_paths_are_zero_padded_and_reconcile() {
        let prof = sample_profile();
        let mut reg = MetricsRegistry::new();
        prof.export(&mut reg.scope("profile"));
        assert_eq!(
            reg.counter("profile/k00/schema"),
            Some(PROFILE_SCHEMA_VERSION)
        );
        assert_eq!(reg.counter("profile/k00/issues"), Some(15));
        assert_eq!(reg.counter("profile/k00/pc0000/issues"), Some(10));
        assert_eq!(reg.counter("profile/k00/pc0000/class/alu"), Some(10));
        assert_eq!(reg.counter("profile/k00/pc0001/stall/mem_pending"), Some(2));
        assert_eq!(reg.counter("profile/k00/pc0002/branch/execs"), Some(1));
        assert_eq!(
            reg.counter("profile/k00/unattributed_stall/drained"),
            Some(1)
        );
        // Flattened keys sort so numeric PC order == lexicographic order.
        let flat = reg.flatten();
        let keys: Vec<&str> = flat.iter().map(|(k, _)| k.as_str()).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        let per_pc_issues: f64 = flat
            .iter()
            .filter(|(k, _)| k.starts_with("profile/k00/pc") && k.ends_with("/issues"))
            .map(|(_, v)| v)
            .sum();
        assert_eq!(per_pc_issues, 15.0);
    }

    #[test]
    fn export_is_byte_stable() {
        let prof = sample_profile();
        let render = || {
            let mut reg = MetricsRegistry::new();
            prof.export(&mut reg.scope("profile"));
            format!("{:?}", reg.flatten())
        };
        assert_eq!(render(), render());
    }
}
