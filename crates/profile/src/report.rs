//! Human-readable renderings of a [`KernelProfile`]: annotated
//! disassembly (`perf annotate` style), a top-N hotspot table, and a
//! per-branch divergence report.
//!
//! All output is deterministic: rows follow PC order (or the
//! deterministic hotspot ranking) and every number is formatted with a
//! fixed precision, so the texts are byte-stable across runs and can be
//! pinned by golden-file tests.

use gscalar_isa::{InstrKind, Kernel};

use crate::KernelProfile;

fn pct(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        100.0 * part as f64 / whole as f64
    }
}

/// Renders the kernel's disassembly with each line prefixed by the
/// profile columns: issue count, issue share, stall share, average
/// active lanes, dominant scalar-eligibility class, and compression
/// ratio of the instruction's register writes.
///
/// Never-executed PCs render with `-` placeholders so the full program
/// text is always visible. Stall share is relative to *all* idle
/// scheduler cycles (attributed + unattributed).
///
/// # Panics
///
/// Panics if the profile length does not match the kernel length.
#[must_use]
pub fn annotate(kernel: &Kernel, profile: &KernelProfile) -> String {
    assert_eq!(
        kernel.len(),
        profile.len(),
        "profile does not match kernel {}",
        kernel.name()
    );
    let issues = profile.total_issues();
    let idle = profile.total_stall_cycles();
    let mut out = String::new();
    out.push_str(&format!(
        "# profile: kernel `{}` (id {}), schema {}\n",
        kernel.name(),
        profile.kernel_id(),
        crate::PROFILE_SCHEMA_VERSION
    ));
    out.push_str(&format!(
        "# issued {} warp-instructions; {} idle scheduler cycles ({} attributed to PCs, {} unattributed)\n",
        issues,
        idle,
        profile.attributed_stall_cycles(),
        profile.unattributed.total()
    ));
    out.push_str("#   pc   issues  issue%  stall%  lanes  class   comp  disasm\n");
    for (pc, instr) in kernel.instrs().iter().enumerate() {
        let r = profile.record(pc);
        if r.has_activity() {
            let class = r.dominant_class().map_or("-", crate::EligClass::short);
            let comp = r
                .compression_ratio()
                .map_or_else(|| "-".to_string(), |c| format!("{c:.2}"));
            out.push_str(&format!(
                "{pc:6}  {issues:7}  {ip:6.1}  {sp:6.1}  {lanes:5.1}  {class:<5}  {comp:>5}  {instr}\n",
                issues = r.issues,
                ip = pct(r.issues, issues),
                sp = pct(r.stalls.total(), idle),
                lanes = r.avg_active_lanes(),
            ));
        } else {
            out.push_str(&format!(
                "{pc:6}  {:>7}  {:>6}  {:>6}  {:>5}  {:<5}  {:>5}  {instr}\n",
                "-", "-", "-", "-", "-", "-"
            ));
        }
    }
    out
}

/// Renders a markdown table of the `n` highest-cost PCs (issue slots
/// plus attributed stall cycles).
///
/// # Panics
///
/// Panics if the profile length does not match the kernel length.
#[must_use]
pub fn hotspot_markdown(kernel: &Kernel, profile: &KernelProfile, n: usize) -> String {
    assert_eq!(kernel.len(), profile.len(), "profile/kernel mismatch");
    let issues = profile.total_issues();
    let idle = profile.total_stall_cycles();
    let mut out = String::new();
    out.push_str(&format!("## Hotspots — `{}` (top {n})\n\n", kernel.name()));
    out.push_str("| rank | pc | cost | issue% | stall% | lanes | class | instr |\n");
    out.push_str("|---:|---:|---:|---:|---:|---:|:--|:--|\n");
    for (rank, pc) in profile.hotspots(n).into_iter().enumerate() {
        let r = profile.record(pc);
        let class = r.dominant_class().map_or("-", crate::EligClass::label);
        out.push_str(&format!(
            "| {rank} | {pc} | {cost} | {ip:.1} | {sp:.1} | {lanes:.1} | {class} | `{instr}` |\n",
            rank = rank + 1,
            cost = r.cost(),
            ip = pct(r.issues, issues),
            sp = pct(r.stalls.total(), idle),
            lanes = r.avg_active_lanes(),
            instr = kernel.instr(pc),
        ));
    }
    out
}

/// Renders a markdown table of every executed branch: execution count,
/// divergence rate, average lanes per path, path reconvergence
/// outcomes, and the compiler-annotated reconvergence PC.
///
/// This is the per-branch decomposition of the paper's Figure 1
/// divergent-instruction fraction: branches with a high `div%` are the
/// ones manufacturing divergent instructions downstream.
///
/// # Panics
///
/// Panics if the profile length does not match the kernel length.
#[must_use]
pub fn branch_markdown(kernel: &Kernel, profile: &KernelProfile) -> String {
    assert_eq!(kernel.len(), profile.len(), "profile/kernel mismatch");
    let mut out = String::new();
    out.push_str(&format!("## Branch divergence — `{}`\n\n", kernel.name()));
    out.push_str(
        "| pc | execs | diverged | div% | taken lanes | fall lanes | rejoined | exited | target | reconv | instr |\n",
    );
    out.push_str("|---:|---:|---:|---:|---:|---:|---:|---:|---:|---:|:--|\n");
    let mut any = false;
    for (pc, instr) in kernel.instrs().iter().enumerate() {
        let b = &profile.record(pc).branch;
        if b.execs == 0 {
            continue;
        }
        any = true;
        let target = match instr.kind {
            InstrKind::Bra { target } => target.to_string(),
            _ => "-".to_string(),
        };
        let reconv = kernel
            .reconvergence_pc(pc)
            .map_or_else(|| "-".to_string(), |r| r.to_string());
        out.push_str(&format!(
            "| {pc} | {execs} | {div} | {rate:.1} | {tl:.1} | {ntl:.1} | {rj} | {ex} | {target} | {reconv} | `{instr}` |\n",
            execs = b.execs,
            div = b.diverged,
            rate = pct(b.diverged, b.execs),
            tl = b.taken_lanes as f64 / b.execs as f64,
            ntl = b.not_taken_lanes as f64 / b.execs as f64,
            rj = b.rejoined_paths,
            ex = b.exited_paths,
        ));
    }
    if !any {
        out.push_str("\n(no branches executed)\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EligClass, Profiler};
    use gscalar_isa::{CmpOp, KernelBuilder, Operand, SReg};
    use gscalar_trace::StallReason;

    fn branchy_kernel() -> Kernel {
        let mut b = KernelBuilder::new("branchy");
        let tid = b.s2r(SReg::TidX);
        let p = b.isetp(CmpOp::Lt, tid.into(), Operand::Imm(8));
        b.if_then(p.into(), |b| {
            b.mov(Operand::Imm(1));
        });
        b.mov(Operand::Imm(2));
        b.exit();
        b.build().unwrap()
    }

    fn profile_for(kernel: &Kernel) -> KernelProfile {
        let mut p = Profiler::for_kernel(0, kernel.name(), kernel.len());
        for pc in 0..kernel.len() {
            p.record_issue(pc, 32, false);
        }
        p.record_class(0, EligClass::Alu);
        p.record_stall(Some(1), StallReason::Scoreboard);
        p.record_branch(2, true, 8, 24);
        p.record_path_end(2, true);
        p.record_write(0, 0, 128, 4, false);
        p.into_profile().unwrap()
    }

    #[test]
    fn annotate_covers_every_pc() {
        let kernel = branchy_kernel();
        let profile = profile_for(&kernel);
        let text = annotate(&kernel, &profile);
        let body: Vec<&str> = text.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(body.len(), kernel.len());
        assert!(text.contains("kernel `branchy`"));
        // pc0 wrote compressed scalar data: ratio 32.00.
        assert!(text.lines().any(|l| l.contains("32.00")), "{text}");
    }

    #[test]
    fn annotate_renders_placeholders_for_unexecuted() {
        let kernel = branchy_kernel();
        let mut p = Profiler::for_kernel(0, kernel.name(), kernel.len());
        p.record_issue(0, 32, false);
        let profile = p.into_profile().unwrap();
        let text = annotate(&kernel, &profile);
        let last = text.lines().last().unwrap();
        assert!(last.contains('-'), "{last}");
    }

    #[test]
    fn hotspots_and_branches_render() {
        let kernel = branchy_kernel();
        let profile = profile_for(&kernel);
        let hot = hotspot_markdown(&kernel, &profile, 3);
        assert!(hot.contains("| rank |"));
        assert_eq!(hot.lines().filter(|l| l.starts_with("| ")).count(), 3 + 1);
        let br = branch_markdown(&kernel, &profile);
        assert!(br.contains("| 2 | 1 | 1 | 100.0 |"), "{br}");
    }

    #[test]
    fn reports_are_deterministic() {
        let kernel = branchy_kernel();
        let profile = profile_for(&kernel);
        assert_eq!(annotate(&kernel, &profile), annotate(&kernel, &profile));
        assert_eq!(
            hotspot_markdown(&kernel, &profile, 5),
            hotspot_markdown(&kernel, &profile, 5)
        );
        assert_eq!(
            branch_markdown(&kernel, &profile),
            branch_markdown(&kernel, &profile)
        );
    }
}
