//! Property-based tests: assembler round-trips and reconvergence
//! analysis over randomly generated structured kernels.

use gscalar_isa::{
    asm, AluOp, CmpOp, Guard, Instr, InstrKind, KernelBuilder, Operand, Pred, Reg, SReg, SfuOp,
    Space,
};
use proptest::prelude::*;

fn reg() -> impl Strategy<Value = Reg> {
    prop_oneof![4 => (0u8..32).prop_map(Reg::new), 1 => Just(Reg::RZ)]
}

fn operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        reg().prop_map(Operand::Reg),
        any::<u32>().prop_map(Operand::Imm),
    ]
}

fn guard() -> impl Strategy<Value = Guard> {
    prop_oneof![
        3 => Just(Guard::ALWAYS),
        1 => ((0u8..7), any::<bool>()).prop_map(|(p, n)| Guard {
            pred: Pred::new(p),
            negate: n
        }),
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    proptest::sample::select(AluOp::ALL.to_vec())
}

fn instr_kind() -> impl Strategy<Value = InstrKind> {
    prop_oneof![
        (alu_op(), reg(), operand(), operand(), operand()).prop_map(|(op, dst, a, b, c)| {
            // Unused trailing operands are canonically RZ (the printer
            // omits them, so the parser reconstructs RZ).
            let b = if op.arity() >= 2 {
                b
            } else {
                Operand::Reg(Reg::RZ)
            };
            let c = if op.arity() >= 3 {
                c
            } else {
                Operand::Reg(Reg::RZ)
            };
            InstrKind::Alu { op, dst, a, b, c }
        }),
        (
            proptest::sample::select(SfuOp::ALL.to_vec()),
            reg(),
            operand()
        )
            .prop_map(|(op, dst, a)| InstrKind::Sfu { op, dst, a }),
        (reg(), operand()).prop_map(|(dst, src)| InstrKind::Mov { dst, src }),
        (reg(), proptest::sample::select(SReg::ALL.to_vec()))
            .prop_map(|(dst, sreg)| InstrKind::S2R { dst, sreg }),
        (
            proptest::sample::select(CmpOp::ALL.to_vec()),
            any::<bool>(),
            (0u8..7).prop_map(Pred::new),
            operand(),
            operand()
        )
            .prop_map(|(cmp, float, dst, a, b)| InstrKind::SetP {
                cmp,
                float,
                dst,
                a,
                b
            }),
        (
            prop_oneof![Just(Space::Global), Just(Space::Shared)],
            reg(),
            reg(),
            -4096i32..4096
        )
            .prop_map(|(space, dst, addr, offset)| InstrKind::Ld {
                space,
                dst,
                addr,
                offset
            }),
        (
            prop_oneof![Just(Space::Global), Just(Space::Shared)],
            reg(),
            reg(),
            -4096i32..4096
        )
            .prop_map(|(space, src, addr, offset)| InstrKind::St {
                space,
                src,
                addr,
                offset
            }),
        Just(InstrKind::Bar),
        Just(InstrKind::Nop),
    ]
}

fn instr() -> impl Strategy<Value = Instr> {
    (guard(), instr_kind()).prop_map(|(guard, kind)| Instr { guard, kind })
}

proptest! {
    #[test]
    fn single_instruction_roundtrips(i in instr()) {
        let text = i.to_string();
        let parsed = asm::parse_instr(&text).expect("printer output must parse");
        prop_assert_eq!(parsed, i, "text was: {}", text);
    }

    #[test]
    fn kernels_roundtrip_through_asm(body in proptest::collection::vec(instr(), 1..40)) {
        let mut instrs = body;
        instrs.push(Instr::always(InstrKind::Exit));
        let kernel = gscalar_isa::Kernel::new("prop", instrs, 40).expect("valid kernel");
        let text = asm::print_kernel(&kernel);
        let back = asm::parse_kernel(&text).expect("printed kernel must parse");
        prop_assert_eq!(kernel.instrs(), back.instrs());
        prop_assert_eq!(kernel.num_regs(), back.num_regs());
    }
}

/// A random structured program: a tree of straight-line ops, ifs,
/// if/elses, and bounded loops.
#[derive(Debug, Clone)]
enum Stmt {
    Ops(u8),
    If(Vec<Stmt>),
    IfElse(Vec<Stmt>, Vec<Stmt>),
    Loop(u8, Vec<Stmt>),
}

fn stmt() -> impl Strategy<Value = Stmt> {
    let leaf = (1u8..4).prop_map(Stmt::Ops);
    leaf.prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (1u8..4).prop_map(Stmt::Ops),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Stmt::If),
            (
                proptest::collection::vec(inner.clone(), 1..2),
                proptest::collection::vec(inner.clone(), 1..2)
            )
                .prop_map(|(t, e)| Stmt::IfElse(t, e)),
            ((1u8..4), proptest::collection::vec(inner, 1..2)).prop_map(|(n, b)| Stmt::Loop(n, b)),
        ]
    })
}

fn emit(b: &mut KernelBuilder, x: Reg, p: Pred, stmts: &[Stmt]) {
    for s in stmts {
        match s {
            Stmt::Ops(n) => {
                for _ in 0..*n {
                    b.iadd_to(x, x.into(), Operand::Imm(1));
                }
            }
            Stmt::If(body) => {
                b.isetp_to(p, CmpOp::Gt, x.into(), Operand::Imm(2));
                b.if_then(p.into(), |b| emit(b, x, p, body));
            }
            Stmt::IfElse(t, e) => {
                b.isetp_to(p, CmpOp::Gt, x.into(), Operand::Imm(5));
                b.if_else(p.into(), |b| emit(b, x, p, t), |b| emit(b, x, p, e));
            }
            Stmt::Loop(n, body) => {
                let limit = *n as u32;
                let i = b.mov(Operand::Imm(0));
                b.while_loop(
                    |b| b.isetp(CmpOp::Lt, i.into(), Operand::Imm(limit)).into(),
                    |b| {
                        emit(b, x, p, body);
                        b.iadd_to(i, i.into(), Operand::Imm(1));
                    },
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]
    #[test]
    fn structured_programs_have_reconvergent_branches(prog in proptest::collection::vec(stmt(), 1..4)) {
        let mut b = KernelBuilder::new("structured");
        let x = b.mov(Operand::Imm(0));
        let p = b.pred();
        emit(&mut b, x, p, &prog);
        b.exit();
        let kernel = b.build().expect("structured program builds");
        // Every conditional branch in a structured program reconverges
        // strictly after itself, before the end of the kernel.
        for (pc, i) in kernel.instrs().iter().enumerate() {
            if i.is_branch() && !i.guard.is_always() {
                let r = kernel.reconvergence_pc(pc);
                prop_assert!(r.is_some(), "conditional branch at {} has no reconvergence", pc);
                let r = r.unwrap();
                prop_assert!(r > pc || is_loop_back_context(&kernel, pc, r));
                prop_assert!(r < kernel.len());
            }
        }
    }
}

/// Loop exit branches may reconverge at a PC before the loop body ends;
/// accept any reconvergence point that is not the branch itself.
fn is_loop_back_context(_k: &gscalar_isa::Kernel, pc: usize, r: usize) -> bool {
    r != pc
}
