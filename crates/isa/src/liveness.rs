//! Register liveness analysis.
//!
//! Backward may-liveness over the kernel CFG, used for the paper's
//! compiler-assisted optimization of Section 3.3: a divergent partial
//! write to a compressed register normally needs a decompress-move to
//! restore the raw layout first — but if the register's *previous*
//! value is dead (no path reads it before an unconditional full
//! overwrite), the move is unnecessary. The paper reports this brings
//! the ~2% dynamic-instruction overhead of the hardware-only scheme
//! down further.
//!
//! Kill rules are conservative for SIMT semantics: only an *unguarded*
//! register write fully overwrites all lanes and kills liveness; a
//! guarded (predicated) write merges with the old value and therefore
//! both reads and writes the register.

use crate::cfg::Cfg;
use crate::instr::{Instr, InstrKind};
use crate::reg::Reg;

/// Per-instruction liveness results for one kernel's register set.
///
/// # Examples
///
/// ```
/// use gscalar_isa::{KernelBuilder, Operand};
/// use gscalar_isa::liveness::Liveness;
///
/// let mut b = KernelBuilder::new("l");
/// let x = b.mov(Operand::Imm(1));      // pc 0: write x
/// let y = b.iadd(x.into(), Operand::Imm(2)); // pc 1: read x, write y
/// b.mov_to(x, Operand::Imm(3));        // pc 2: overwrite x
/// b.st_global(y, y, 0);                // pc 3: read y
/// b.exit();
/// let k = b.build().unwrap();
/// let live = Liveness::analyze(&k.instrs(), k.cfg(), k.num_regs());
/// assert!(live.live_out(0, x));  // x read at pc 1
/// assert!(!live.live_out(1, x)); // dead: overwritten at pc 2 before any read
/// ```
#[derive(Debug, Clone)]
pub struct Liveness {
    /// `live_out[pc]` = bitset of registers live after instruction `pc`.
    live_out: Vec<Vec<u64>>,
    words: usize,
}

impl Liveness {
    /// Runs the backward dataflow over `code` with `cfg`'s block
    /// structure, for registers `0..num_regs`.
    #[must_use]
    pub fn analyze(code: &[Instr], cfg: &Cfg, num_regs: u16) -> Self {
        let n = code.len();
        let words = (num_regs as usize).div_ceil(64).max(1);
        let mut live_in: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        let mut live_out: Vec<Vec<u64>> = vec![vec![0u64; words]; n];
        let set = |s: &mut [u64], r: Reg| {
            if !r.is_zero() {
                s[(r.index() as usize) / 64] |= 1 << (r.index() % 64);
            }
        };
        let clear = |s: &mut [u64], r: Reg| {
            if !r.is_zero() {
                s[(r.index() as usize) / 64] &= !(1 << (r.index() % 64));
            }
        };
        // Successor PCs of each instruction.
        let succs: Vec<Vec<usize>> = code
            .iter()
            .enumerate()
            .map(|(pc, i)| match i.kind {
                InstrKind::Exit => Vec::new(),
                InstrKind::Bra { target } => {
                    if i.guard.is_always() {
                        vec![target]
                    } else if pc + 1 < n {
                        vec![target, pc + 1]
                    } else {
                        vec![target]
                    }
                }
                _ => {
                    if pc + 1 < n {
                        vec![pc + 1]
                    } else {
                        Vec::new()
                    }
                }
            })
            .collect();
        let _ = cfg; // block structure is implicit in the succ edges
        let mut changed = true;
        while changed {
            changed = false;
            for pc in (0..n).rev() {
                let mut out = vec![0u64; words];
                for &s in &succs[pc] {
                    for w in 0..words {
                        out[w] |= live_in[s][w];
                    }
                }
                // in = gen ∪ (out \ kill)
                let mut inp = out.clone();
                let i = &code[pc];
                if i.guard.is_always() {
                    if let Some(d) = i.dst_reg() {
                        clear(&mut inp, Reg::new(d.index()));
                    }
                }
                for r in i.src_regs() {
                    set(&mut inp, r);
                }
                // A guarded write reads the old value (lane merge).
                if !i.guard.is_always() {
                    if let Some(d) = i.dst_reg() {
                        set(&mut inp, d);
                    }
                }
                if out != live_out[pc] || inp != live_in[pc] {
                    live_out[pc] = out;
                    live_in[pc] = inp;
                    changed = true;
                }
            }
        }
        Liveness { live_out, words }
    }

    /// Whether `reg`'s value may be read after instruction `pc`
    /// executes (before any full overwrite).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn live_out(&self, pc: usize, reg: Reg) -> bool {
        if reg.is_zero() {
            return false;
        }
        let idx = reg.index() as usize;
        if idx / 64 >= self.words {
            return false;
        }
        self.live_out[pc][idx / 64] & (1 << (idx % 64)) != 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::instr::Operand;
    use crate::op::CmpOp;

    fn analyze(k: &crate::kernel::Kernel) -> Liveness {
        Liveness::analyze(k.instrs(), k.cfg(), k.num_regs())
    }

    #[test]
    fn straight_line_kill() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Operand::Imm(1)); // 0
        b.iadd(x.into(), Operand::Imm(2)); // 1 reads x
        b.mov_to(x, Operand::Imm(3)); // 2 overwrites x
        b.exit(); // 3
        let k = b.build().unwrap();
        let l = analyze(&k);
        assert!(l.live_out(0, x));
        assert!(!l.live_out(1, x), "x is overwritten before any read");
        assert!(!l.live_out(2, x), "no further reads");
    }

    #[test]
    fn loop_keeps_carried_values_live() {
        let mut b = KernelBuilder::new("k");
        let acc = b.mov(Operand::Imm(0));
        let i = b.mov(Operand::Imm(0));
        b.while_loop(
            |b| b.isetp(CmpOp::Lt, i.into(), Operand::Imm(4)).into(),
            |b| {
                b.iadd_to(acc, acc.into(), i.into());
                b.iadd_to(i, i.into(), Operand::Imm(1));
            },
        );
        let out = b.mov(Operand::Imm(64));
        b.st_global(out, acc, 0);
        b.exit();
        let k = b.build().unwrap();
        let l = analyze(&k);
        // acc is live out of its accumulation (read next iteration or
        // at the final store).
        let acc_write = k
            .instrs()
            .iter()
            .position(|ins| ins.dst_reg() == Some(acc) && !ins.src_regs().is_empty())
            .expect("acc accumulation exists");
        assert!(l.live_out(acc_write, acc));
        // The loop counter is live at the back edge too.
        assert!(l.live_out(acc_write, i));
    }

    #[test]
    fn guarded_write_does_not_kill() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Operand::Imm(1)); // pc 0
        let p = b.isetp(CmpOp::Gt, x.into(), Operand::Imm(0)); // pc 1
                                                               // pc 2: guarded write merges lanes — old x stays live above it.
        b.mov_to(x, Operand::Imm(9));
        b.guard_last(p.into());
        let out = b.mov(Operand::Imm(64)); // pc 3
        b.st_global(out, x, 0); // pc 4 reads x
        b.exit();
        let k = b.build().unwrap();
        let l = analyze(&k);
        assert!(
            l.live_out(1, x),
            "old x must stay live across a predicated write"
        );
        assert!(l.live_out(2, x));
    }

    #[test]
    fn branch_paths_union() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Operand::Imm(1));
        let y = b.mov(Operand::Imm(2));
        let p = b.isetp(CmpOp::Gt, x.into(), Operand::Imm(0));
        b.if_else(
            p.into(),
            |b| {
                b.iadd(x.into(), Operand::Imm(1)); // reads x
            },
            |b| {
                b.iadd(y.into(), Operand::Imm(1)); // reads y
            },
        );
        b.exit();
        let k = b.build().unwrap();
        let l = analyze(&k);
        // At the branch, both x and y may be read on some path.
        let bra = k
            .instrs()
            .iter()
            .position(|i| i.is_branch())
            .expect("branch exists");
        assert!(l.live_out(bra, x));
        assert!(l.live_out(bra, y));
    }

    #[test]
    fn rz_is_never_live() {
        let mut b = KernelBuilder::new("k");
        b.mov(Operand::Imm(1));
        b.exit();
        let k = b.build().unwrap();
        let l = analyze(&k);
        assert!(!l.live_out(0, crate::reg::Reg::RZ));
    }
}
