//! Structured kernel construction DSL.
//!
//! [`KernelBuilder`] hands out fresh registers and predicates, emits
//! instructions through small per-opcode helpers, and lowers structured
//! control flow (`if`, `if/else`, `while`, `do/while`) to predicated
//! branches whose reconvergence points the CFG analysis later recovers.

use crate::instr::{Guard, Instr, InstrKind, Operand};
use crate::kernel::{Kernel, KernelError};
use crate::op::{AluOp, CmpOp, SReg, SfuOp, Space};
use crate::reg::{Pred, Reg};

/// An unresolved branch-target label.
///
/// Created by [`KernelBuilder::new_label`], positioned with
/// [`KernelBuilder::place`], and referenced by
/// [`KernelBuilder::bra`]. All labels must be placed before
/// [`KernelBuilder::build`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// Incremental builder for [`Kernel`]s.
///
/// See the [crate-level example](crate) for typical usage. All emit
/// helpers allocate a fresh destination register and return it; the
/// `*_to` variants write a caller-chosen register (needed for loop
/// accumulators).
///
/// # Examples
///
/// Structured divergence — compute `|x|` via an `if`:
///
/// ```
/// use gscalar_isa::{KernelBuilder, Operand, CmpOp};
///
/// let mut b = KernelBuilder::new("abs");
/// let x = b.mov(Operand::Imm((-5i32) as u32));
/// let p = b.isetp(CmpOp::Lt, x.into(), Operand::Imm(0));
/// b.if_then(p.into(), |b| {
///     let neg = b.isub(Operand::Imm(0), x.into());
///     b.mov_to(x, neg.into());
/// });
/// b.exit();
/// let k = b.build().unwrap();
/// assert!(k.len() >= 5);
/// ```
#[derive(Debug)]
pub struct KernelBuilder {
    name: String,
    instrs: Vec<Instr>,
    labels: Vec<Option<usize>>,
    next_reg: u16,
    next_pred: u8,
    shared_mem_bytes: u32,
}

/// A guard expression used by structured control flow: a predicate and
/// polarity, mirroring [`Guard`] but used as a *condition* rather than an
/// instruction annotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Cond {
    /// The predicate holding the condition.
    pub pred: Pred,
    /// If true, the condition is the predicate's negation.
    pub negate: bool,
}

impl Cond {
    /// The logical negation of this condition.
    #[allow(clippy::should_implement_trait)] // DSL reads as `cond.not()`
    #[must_use]
    pub fn not(self) -> Cond {
        Cond {
            pred: self.pred,
            negate: !self.negate,
        }
    }

    fn guard(self) -> Guard {
        Guard {
            pred: self.pred,
            negate: self.negate,
        }
    }
}

impl From<Pred> for Cond {
    fn from(pred: Pred) -> Self {
        Cond {
            pred,
            negate: false,
        }
    }
}

impl KernelBuilder {
    /// Creates an empty builder for a kernel called `name`.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        KernelBuilder {
            name: name.into(),
            instrs: Vec::new(),
            labels: Vec::new(),
            next_reg: 0,
            next_pred: 0,
            shared_mem_bytes: 0,
        }
    }

    /// Declares `bytes` of CTA shared memory.
    pub fn shared_mem(&mut self, bytes: u32) -> &mut Self {
        self.shared_mem_bytes = bytes;
        self
    }

    /// Allocates a fresh general-purpose register.
    ///
    /// # Panics
    ///
    /// Panics when more than 254 registers have been allocated.
    pub fn reg(&mut self) -> Reg {
        assert!(self.next_reg < 255, "register budget exhausted");
        let r = Reg::new(self.next_reg as u8);
        self.next_reg += 1;
        r
    }

    /// Allocates a fresh predicate register.
    ///
    /// # Panics
    ///
    /// Panics when more than 7 predicates have been allocated.
    pub fn pred(&mut self) -> Pred {
        assert!(self.next_pred < 7, "predicate budget exhausted");
        let p = Pred::new(self.next_pred);
        self.next_pred += 1;
        p
    }

    /// Number of instructions emitted so far (the next instruction's pc).
    #[must_use]
    pub fn here(&self) -> usize {
        self.instrs.len()
    }

    /// Emits a raw instruction.
    pub fn emit(&mut self, instr: Instr) -> &mut Self {
        self.instrs.push(instr);
        self
    }

    // ---- labels and raw branches -------------------------------------

    /// Creates a new, unplaced label.
    pub fn new_label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already placed.
    pub fn place(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label placed twice");
        self.labels[label.0] = Some(self.instrs.len());
    }

    /// Emits a branch to `label`, guarded by `cond` (pass
    /// `None` for an unconditional branch).
    pub fn bra(&mut self, cond: Option<Cond>, label: Label) {
        let guard = cond.map_or(Guard::ALWAYS, Cond::guard);
        // Targets are patched in `build`; stash the label id.
        self.instrs.push(Instr::new(
            guard,
            InstrKind::Bra {
                target: usize::MAX - label.0,
            },
        ));
    }

    // ---- structured control flow -------------------------------------

    /// Emits `if (cond) { body }`.
    ///
    /// Lowered as a guarded skip branch; the reconvergence analysis
    /// places the SIMT-stack join right after the body.
    pub fn if_then(&mut self, cond: Cond, body: impl FnOnce(&mut Self)) {
        let end = self.new_label();
        self.bra(Some(cond.not()), end);
        body(self);
        self.place(end);
    }

    /// Emits `if (cond) { then_body } else { else_body }`.
    pub fn if_else(
        &mut self,
        cond: Cond,
        then_body: impl FnOnce(&mut Self),
        else_body: impl FnOnce(&mut Self),
    ) {
        let else_l = self.new_label();
        let end = self.new_label();
        self.bra(Some(cond.not()), else_l);
        then_body(self);
        self.bra(None, end);
        self.place(else_l);
        else_body(self);
        self.place(end);
    }

    /// Emits `while (cond) { body }`; `cond` emits the test and returns
    /// the continue-condition.
    pub fn while_loop(
        &mut self,
        cond: impl FnOnce(&mut Self) -> Cond,
        body: impl FnOnce(&mut Self),
    ) {
        let head = self.new_label();
        let end = self.new_label();
        self.place(head);
        let c = cond(self);
        self.bra(Some(c.not()), end);
        body(self);
        self.bra(None, head);
        self.place(end);
    }

    /// Emits `do { body } while (cond)`; `cond` runs after the body and
    /// returns the repeat-condition.
    pub fn do_while(&mut self, body: impl FnOnce(&mut Self), cond: impl FnOnce(&mut Self) -> Cond) {
        let head = self.new_label();
        self.place(head);
        body(self);
        let c = cond(self);
        self.bra(Some(c), head);
    }

    /// Emits a counted loop running `n` times with a fresh counter
    /// register, passing the counter to the body.
    ///
    /// The counter starts at 0 and increments by 1 per iteration. When
    /// `n` is an immediate of 0 the body still executes once (do-while
    /// lowering); counted loops in the workloads always have `n ≥ 1`.
    pub fn repeat(&mut self, n: Operand, body: impl FnOnce(&mut Self, Reg)) {
        let counter = self.mov(Operand::Imm(0));
        self.do_while(
            |b| {
                body(b, counter);
                b.iadd_to(counter, counter.into(), Operand::Imm(1));
            },
            |b| b.isetp(CmpOp::Lt, counter.into(), n).into(),
        );
    }

    // ---- ALU helpers ---------------------------------------------------

    /// Emits a 3-input ALU op into an existing destination register.
    pub fn alu_to(&mut self, op: AluOp, dst: Reg, a: Operand, b: Operand, c: Operand) {
        self.instrs
            .push(Instr::always(InstrKind::Alu { op, dst, a, b, c }));
    }

    /// Emits an ALU op into a fresh register and returns it.
    pub fn alu(&mut self, op: AluOp, a: Operand, b: Operand, c: Operand) -> Reg {
        let dst = self.reg();
        self.alu_to(op, dst, a, b, c);
        dst
    }

    fn alu2(&mut self, op: AluOp, a: Operand, b: Operand) -> Reg {
        self.alu(op, a, b, Operand::Reg(Reg::RZ))
    }

    fn alu1(&mut self, op: AluOp, a: Operand) -> Reg {
        self.alu(op, a, Operand::Reg(Reg::RZ), Operand::Reg(Reg::RZ))
    }

    /// `dst = a + b` (fresh destination).
    pub fn iadd(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::IAdd, a, b)
    }

    /// `dst = a + b` into an existing register.
    pub fn iadd_to(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu_to(AluOp::IAdd, dst, a, b, Operand::Reg(Reg::RZ));
    }

    /// `dst = a - b`.
    pub fn isub(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::ISub, a, b)
    }

    /// `dst = a * b` (integer).
    pub fn imul(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::IMul, a, b)
    }

    /// `dst = a * b + c` (integer multiply-add).
    pub fn imad(&mut self, a: Operand, b: Operand, c: Operand) -> Reg {
        self.alu(AluOp::IMad, a, b, c)
    }

    /// `dst = a / b` (signed; long-latency).
    pub fn idiv(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::IDiv, a, b)
    }

    /// `dst = min(a, b)` (signed).
    pub fn imin(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::IMin, a, b)
    }

    /// `dst = max(a, b)` (signed).
    pub fn imax(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::IMax, a, b)
    }

    /// `dst = |a|` (signed).
    pub fn iabs(&mut self, a: Operand) -> Reg {
        self.alu1(AluOp::IAbs, a)
    }

    /// `dst = a & b`.
    pub fn and(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::And, a, b)
    }

    /// `dst = a | b`.
    pub fn or(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::Or, a, b)
    }

    /// `dst = a ^ b`.
    pub fn xor(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::Xor, a, b)
    }

    /// `dst = a << (b & 31)`.
    pub fn shl(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::Shl, a, b)
    }

    /// `dst = a >> (b & 31)` (logical).
    pub fn shr(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::Shr, a, b)
    }

    /// `dst = a + b` in `f32`.
    pub fn fadd(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::FAdd, a, b)
    }

    /// `dst = a + b` in `f32`, into an existing register.
    pub fn fadd_to(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu_to(AluOp::FAdd, dst, a, b, Operand::Reg(Reg::RZ));
    }

    /// `dst = a - b` in `f32`.
    pub fn fsub(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::FSub, a, b)
    }

    /// `dst = a * b` in `f32`.
    pub fn fmul(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::FMul, a, b)
    }

    /// `dst = a * b` in `f32`, into an existing register.
    pub fn fmul_to(&mut self, dst: Reg, a: Operand, b: Operand) {
        self.alu_to(AluOp::FMul, dst, a, b, Operand::Reg(Reg::RZ));
    }

    /// `dst = a * b + c` fused multiply-add in `f32`.
    pub fn ffma(&mut self, a: Operand, b: Operand, c: Operand) -> Reg {
        self.alu(AluOp::FFma, a, b, c)
    }

    /// `dst = a * b + c` in `f32`, into an existing register.
    pub fn ffma_to(&mut self, dst: Reg, a: Operand, b: Operand, c: Operand) {
        self.alu_to(AluOp::FFma, dst, a, b, c);
    }

    /// `dst = max(a, b)` in `f32`.
    pub fn fmax(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::FMax, a, b)
    }

    /// `dst = min(a, b)` in `f32`.
    pub fn fmin(&mut self, a: Operand, b: Operand) -> Reg {
        self.alu2(AluOp::FMin, a, b)
    }

    /// `dst = |a|` in `f32`.
    pub fn fabs(&mut self, a: Operand) -> Reg {
        self.alu1(AluOp::FAbs, a)
    }

    /// Convert signed integer to `f32`.
    pub fn i2f(&mut self, a: Operand) -> Reg {
        self.alu1(AluOp::I2F, a)
    }

    /// Convert `f32` to signed integer.
    pub fn f2i(&mut self, a: Operand) -> Reg {
        self.alu1(AluOp::F2I, a)
    }

    // ---- SFU helpers ---------------------------------------------------

    /// Emits an SFU op into a fresh register.
    pub fn sfu(&mut self, op: SfuOp, a: Operand) -> Reg {
        let dst = self.reg();
        self.sfu_to(op, dst, a);
        dst
    }

    /// Emits an SFU op into an existing register.
    pub fn sfu_to(&mut self, op: SfuOp, dst: Reg, a: Operand) {
        self.instrs
            .push(Instr::always(InstrKind::Sfu { op, dst, a }));
    }

    /// `dst = sin(a)`.
    pub fn sin(&mut self, a: Operand) -> Reg {
        self.sfu(SfuOp::Sin, a)
    }

    /// `dst = cos(a)`.
    pub fn cos(&mut self, a: Operand) -> Reg {
        self.sfu(SfuOp::Cos, a)
    }

    /// `dst = 2^a`.
    pub fn ex2(&mut self, a: Operand) -> Reg {
        self.sfu(SfuOp::Ex2, a)
    }

    /// `dst = log2(a)`.
    pub fn lg2(&mut self, a: Operand) -> Reg {
        self.sfu(SfuOp::Lg2, a)
    }

    /// `dst = 1/a`.
    pub fn rcp(&mut self, a: Operand) -> Reg {
        self.sfu(SfuOp::Rcp, a)
    }

    /// `dst = 1/sqrt(a)`.
    pub fn rsqrt(&mut self, a: Operand) -> Reg {
        self.sfu(SfuOp::Rsqrt, a)
    }

    /// `dst = sqrt(a)`.
    pub fn sqrt(&mut self, a: Operand) -> Reg {
        self.sfu(SfuOp::Sqrt, a)
    }

    // ---- moves, predicates, memory, control ---------------------------

    /// Moves `src` into a fresh register.
    pub fn mov(&mut self, src: Operand) -> Reg {
        let dst = self.reg();
        self.mov_to(dst, src);
        dst
    }

    /// Moves `src` into an existing register.
    pub fn mov_to(&mut self, dst: Reg, src: Operand) {
        self.instrs.push(Instr::always(InstrKind::Mov { dst, src }));
    }

    /// Moves an `f32` immediate into a fresh register.
    pub fn mov_f32(&mut self, v: f32) -> Reg {
        self.mov(Operand::imm_f32(v))
    }

    /// Reads a special register into a fresh register.
    pub fn s2r(&mut self, sreg: SReg) -> Reg {
        let dst = self.reg();
        self.instrs
            .push(Instr::always(InstrKind::S2R { dst, sreg }));
        dst
    }

    /// Integer compare into a fresh predicate.
    pub fn isetp(&mut self, cmp: CmpOp, a: Operand, b: Operand) -> Pred {
        let dst = self.pred();
        self.isetp_to(dst, cmp, a, b);
        dst
    }

    /// Integer compare into an existing predicate.
    pub fn isetp_to(&mut self, dst: Pred, cmp: CmpOp, a: Operand, b: Operand) {
        self.instrs.push(Instr::always(InstrKind::SetP {
            cmp,
            float: false,
            dst,
            a,
            b,
        }));
    }

    /// Floating-point compare into a fresh predicate.
    pub fn fsetp(&mut self, cmp: CmpOp, a: Operand, b: Operand) -> Pred {
        let dst = self.pred();
        self.instrs.push(Instr::always(InstrKind::SetP {
            cmp,
            float: true,
            dst,
            a,
            b,
        }));
        dst
    }

    /// Loads a global 32-bit value into a fresh register.
    pub fn ld_global(&mut self, addr: Reg, offset: i32) -> Reg {
        let dst = self.reg();
        self.ld_global_to(dst, addr, offset);
        dst
    }

    /// Loads a global 32-bit value into an existing register.
    pub fn ld_global_to(&mut self, dst: Reg, addr: Reg, offset: i32) {
        self.instrs.push(Instr::always(InstrKind::Ld {
            space: Space::Global,
            dst,
            addr,
            offset,
        }));
    }

    /// Stores a 32-bit value to global memory.
    pub fn st_global(&mut self, addr: Reg, src: Reg, offset: i32) {
        self.instrs.push(Instr::always(InstrKind::St {
            space: Space::Global,
            src,
            addr,
            offset,
        }));
    }

    /// Loads a shared-memory 32-bit value into a fresh register.
    pub fn ld_shared(&mut self, addr: Reg, offset: i32) -> Reg {
        let dst = self.reg();
        self.instrs.push(Instr::always(InstrKind::Ld {
            space: Space::Shared,
            dst,
            addr,
            offset,
        }));
        dst
    }

    /// Stores a 32-bit value to shared memory.
    pub fn st_shared(&mut self, addr: Reg, src: Reg, offset: i32) {
        self.instrs.push(Instr::always(InstrKind::St {
            space: Space::Shared,
            src,
            addr,
            offset,
        }));
    }

    /// Emits a CTA-wide barrier.
    pub fn bar(&mut self) {
        self.instrs.push(Instr::always(InstrKind::Bar));
    }

    /// Emits an `EXIT`.
    pub fn exit(&mut self) {
        self.instrs.push(Instr::always(InstrKind::Exit));
    }

    /// Applies a guard to the most recently emitted instruction.
    ///
    /// Useful for hand-predicated (non-branching) divergent code.
    ///
    /// # Panics
    ///
    /// Panics if no instruction has been emitted.
    pub fn guard_last(&mut self, cond: Cond) {
        let last = self.instrs.last_mut().expect("no instruction to guard");
        last.guard = cond.guard();
    }

    /// Finalizes the kernel: patches label targets, appends a trailing
    /// `EXIT` if the stream does not already end in one, and validates.
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] if a label was never placed (reported as
    /// an out-of-range branch) or validation fails.
    pub fn build(mut self) -> Result<Kernel, KernelError> {
        if self
            .instrs
            .last()
            .is_none_or(|i| !(i.is_exit() || (i.is_branch() && i.guard.is_always())))
        {
            self.exit();
        }
        // Patch label-encoded targets (stored as usize::MAX - label_id).
        let n = self.instrs.len();
        for (pc, i) in self.instrs.iter_mut().enumerate() {
            if let InstrKind::Bra { target } = &mut i.kind {
                if *target >= n {
                    let label_id = usize::MAX - *target;
                    match self.labels.get(label_id).copied().flatten() {
                        Some(t) => *target = t,
                        None => {
                            return Err(KernelError::BranchOutOfRange {
                                pc,
                                target: *target,
                            })
                        }
                    }
                }
            }
        }
        Kernel::new(self.name, self.instrs, self.next_reg.max(1)).map(|k| {
            if self.shared_mem_bytes > 0 {
                // Rebuild with shared memory (validation already passed).
                Kernel::with_shared_mem(
                    k.name().to_owned(),
                    k.instrs().to_vec(),
                    k.num_regs(),
                    self.shared_mem_bytes,
                )
                .expect("already validated")
            } else {
                k
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::FuncUnit;

    #[test]
    fn fresh_registers_are_distinct() {
        let mut b = KernelBuilder::new("k");
        let r0 = b.reg();
        let r1 = b.reg();
        assert_ne!(r0, r1);
        let p0 = b.pred();
        let p1 = b.pred();
        assert_ne!(p0, p1);
    }

    #[test]
    fn build_appends_exit() {
        let mut b = KernelBuilder::new("k");
        b.mov(Operand::Imm(1));
        let k = b.build().unwrap();
        assert!(k.instrs().last().unwrap().is_exit());
    }

    #[test]
    fn if_then_lowering_and_reconvergence() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Operand::Imm(1));
        let p = b.isetp(CmpOp::Gt, x.into(), Operand::Imm(0));
        b.if_then(p.into(), |b| {
            b.iadd(x.into(), Operand::Imm(1));
        });
        b.exit();
        let k = b.build().unwrap();
        // Find the guarded branch and check it reconverges at the
        // instruction right after the body.
        let (pc, i) = k
            .instrs()
            .iter()
            .enumerate()
            .find(|(_, i)| i.is_branch())
            .unwrap();
        assert!(!i.guard.is_always());
        assert!(i.guard.negate, "if_then skips when the condition fails");
        assert_eq!(k.reconvergence_pc(pc), Some(pc + 2));
    }

    #[test]
    fn if_else_produces_two_paths() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov(Operand::Imm(1));
        let p = b.isetp(CmpOp::Eq, x.into(), Operand::Imm(1));
        b.if_else(
            p.into(),
            |b| {
                b.iadd(x.into(), Operand::Imm(1));
            },
            |b| {
                b.isub(x.into(), Operand::Imm(1));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        let branches: Vec<_> = k
            .instrs()
            .iter()
            .enumerate()
            .filter(|(_, i)| i.is_branch())
            .collect();
        assert_eq!(branches.len(), 2);
        // Conditional entry branch reconverges at the join after else.
        let (pc0, _) = branches[0];
        let reconv = k.reconvergence_pc(pc0).unwrap();
        assert!(k.instr(reconv).is_exit());
    }

    #[test]
    fn while_loop_lowering() {
        let mut b = KernelBuilder::new("k");
        let i = b.mov(Operand::Imm(0));
        b.while_loop(
            |b| b.isetp(CmpOp::Lt, i.into(), Operand::Imm(10)).into(),
            |b| {
                b.iadd_to(i, i.into(), Operand::Imm(1));
            },
        );
        b.exit();
        let k = b.build().unwrap();
        // Exit branch of the loop reconverges right after the loop.
        let (pc, _) = k
            .instrs()
            .iter()
            .enumerate()
            .find(|(_, i)| i.is_branch() && !i.guard.is_always())
            .unwrap();
        let r = k.reconvergence_pc(pc).unwrap();
        assert!(k.instr(r).is_exit());
    }

    #[test]
    fn repeat_runs_counter_loop() {
        let mut b = KernelBuilder::new("k");
        let acc = b.mov(Operand::Imm(0));
        b.repeat(Operand::Imm(4), |b, i| {
            b.iadd_to(acc, acc.into(), i.into());
        });
        let k = b.build().unwrap();
        assert!(k.instrs().iter().any(|i| i.is_branch()));
    }

    #[test]
    fn unplaced_label_is_an_error() {
        let mut b = KernelBuilder::new("k");
        let l = b.new_label();
        b.bra(None, l);
        assert!(matches!(
            b.build().unwrap_err(),
            KernelError::BranchOutOfRange { .. }
        ));
    }

    #[test]
    fn guard_last_predicates_previous_instruction() {
        let mut b = KernelBuilder::new("k");
        let p = b.pred();
        let x = b.mov(Operand::Imm(3));
        b.iadd_to(x, x.into(), Operand::Imm(1));
        b.guard_last(Cond::from(p).not());
        let k = b.build().unwrap();
        let g = k.instr(1).guard;
        assert_eq!(g.pred, p);
        assert!(g.negate);
    }

    #[test]
    fn helpers_classify_to_expected_units() {
        let mut b = KernelBuilder::new("k");
        let x = b.mov_f32(1.0);
        b.sin(x.into());
        let a = b.mov(Operand::Imm(64));
        b.ld_global(a, 0);
        let k = b.build().unwrap();
        let units: Vec<_> = k.instrs().iter().map(Instr::func_unit).collect();
        assert!(units.contains(&FuncUnit::Sfu));
        assert!(units.contains(&FuncUnit::Mem));
        assert!(units.contains(&FuncUnit::Alu));
    }

    #[test]
    fn shared_mem_recorded() {
        let mut b = KernelBuilder::new("k");
        b.shared_mem(1024);
        b.exit();
        let k = b.build().unwrap();
        assert_eq!(k.shared_mem_bytes(), 1024);
    }
}
