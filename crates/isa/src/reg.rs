//! Register and predicate identifiers.

use std::fmt;

/// A 32-bit general-purpose (vector) register identifier.
///
/// Every thread of a warp owns a private 32-bit copy of each register, so
/// at the microarchitecture level a `Reg` names a *vector register* of
/// `warp_size × 4` bytes — the unit the G-Scalar compression scheme and
/// register-file banking operate on.
///
/// `R255` is the hard-wired zero register [`Reg::RZ`] (reads as `0`,
/// writes are discarded), matching NVIDIA SASS conventions.
///
/// # Examples
///
/// ```
/// use gscalar_isa::Reg;
/// let r = Reg::new(3);
/// assert_eq!(r.index(), 3);
/// assert_eq!(r.to_string(), "R3");
/// assert!(Reg::RZ.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(u8);

impl Reg {
    /// The hard-wired zero register.
    pub const RZ: Reg = Reg(255);

    /// Creates a register identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index` is 255, which is reserved for [`Reg::RZ`]; use
    /// the constant instead.
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index != 255, "R255 is reserved for RZ; use Reg::RZ");
        Reg(index)
    }

    /// The raw register index (255 for [`Reg::RZ`]).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired zero register.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self.0 == 255
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            write!(f, "RZ")
        } else {
            write!(f, "R{}", self.0)
        }
    }
}

/// A 1-bit predicate register identifier.
///
/// Predicates guard instructions (`@P0`, `@!P1`) and receive the results
/// of comparison instructions. `P7` is the hard-wired true predicate
/// [`Pred::PT`].
///
/// # Examples
///
/// ```
/// use gscalar_isa::Pred;
/// assert_eq!(Pred::new(0).to_string(), "P0");
/// assert!(Pred::PT.is_true());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pred(u8);

impl Pred {
    /// The hard-wired always-true predicate.
    pub const PT: Pred = Pred(7);

    /// Number of addressable predicate registers, including `PT`.
    pub const COUNT: usize = 8;

    /// Creates a predicate identifier.
    ///
    /// # Panics
    ///
    /// Panics if `index > 6` (P7 is reserved for [`Pred::PT`]).
    #[must_use]
    pub fn new(index: u8) -> Self {
        assert!(index <= 6, "P7 is reserved for PT; use Pred::PT");
        Pred(index)
    }

    /// The raw predicate index (7 for [`Pred::PT`]).
    #[must_use]
    pub fn index(self) -> u8 {
        self.0
    }

    /// Whether this is the hard-wired true predicate.
    #[must_use]
    pub fn is_true(self) -> bool {
        self.0 == 7
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_true() {
            write!(f, "PT")
        } else {
            write!(f, "P{}", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_display_and_index() {
        assert_eq!(Reg::new(0).to_string(), "R0");
        assert_eq!(Reg::new(63).to_string(), "R63");
        assert_eq!(Reg::RZ.to_string(), "RZ");
        assert_eq!(Reg::RZ.index(), 255);
        assert!(!Reg::new(7).is_zero());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn reg_255_reserved() {
        let _ = Reg::new(255);
    }

    #[test]
    fn pred_display_and_index() {
        assert_eq!(Pred::new(0).to_string(), "P0");
        assert_eq!(Pred::new(6).to_string(), "P6");
        assert_eq!(Pred::PT.to_string(), "PT");
        assert!(Pred::PT.is_true());
        assert!(!Pred::new(3).is_true());
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn pred_7_reserved() {
        let _ = Pred::new(7);
    }

    #[test]
    fn ordering_is_by_index() {
        assert!(Reg::new(1) < Reg::new(2));
        assert!(Reg::new(200) < Reg::RZ);
        assert!(Pred::new(0) < Pred::PT);
    }
}
