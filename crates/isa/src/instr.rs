//! Instruction representation.

use std::fmt;

use crate::op::{AluOp, CmpOp, FuncUnit, SReg, SfuOp, Space};
use crate::reg::{Pred, Reg};

/// A source operand: a register or a 32-bit immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Read a general-purpose register.
    Reg(Reg),
    /// A literal 32-bit value (also used for `f32` immediates as raw bits).
    Imm(u32),
}

impl Operand {
    /// The register read by this operand, if any.
    #[must_use]
    pub fn reg(self) -> Option<Reg> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }

    /// Constructs an immediate operand carrying the bits of an `f32`.
    #[must_use]
    pub fn imm_f32(v: f32) -> Self {
        Operand::Imm(v.to_bits())
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Self {
        Operand::Reg(r)
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "{:#x}", v),
        }
    }
}

/// A predicate guard, e.g. `@P0` or `@!P2`.
///
/// An instruction only takes effect in lanes where the guard evaluates
/// true. The default guard is `@PT` (always true) and is omitted when
/// printing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Guard {
    /// The predicate register consulted.
    pub pred: Pred,
    /// If true the guard passes where the predicate is *false*.
    pub negate: bool,
}

impl Guard {
    /// The always-true guard `@PT`.
    pub const ALWAYS: Guard = Guard {
        pred: Pred::PT,
        negate: false,
    };

    /// Creates a positive guard `@P`.
    #[must_use]
    pub fn pos(pred: Pred) -> Self {
        Guard {
            pred,
            negate: false,
        }
    }

    /// Creates a negated guard `@!P`.
    #[must_use]
    pub fn neg(pred: Pred) -> Self {
        Guard { pred, negate: true }
    }

    /// Whether the guard statically always passes.
    #[must_use]
    pub fn is_always(self) -> bool {
        self.pred.is_true() && !self.negate
    }
}

impl Default for Guard {
    fn default() -> Self {
        Guard::ALWAYS
    }
}

impl fmt::Display for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negate {
            write!(f, "@!{}", self.pred)
        } else {
            write!(f, "@{}", self.pred)
        }
    }
}

/// The operation an [`Instr`] performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrKind {
    /// Arithmetic/logic operation. `c` is only read by 3-input opcodes
    /// ([`AluOp::IMad`], [`AluOp::FFma`]); 1-input opcodes read only `a`.
    Alu {
        /// Opcode.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source (ignored by 1-input opcodes).
        b: Operand,
        /// Third source (read only by 3-input opcodes).
        c: Operand,
    },
    /// Special-function operation (single source).
    Sfu {
        /// Opcode.
        op: SfuOp,
        /// Destination register.
        dst: Reg,
        /// Source operand.
        a: Operand,
    },
    /// Move a register or immediate into a register.
    Mov {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Operand,
    },
    /// Read a special register (`S2R dst, SR_TID.X`).
    S2R {
        /// Destination register.
        dst: Reg,
        /// The special register to read.
        sreg: SReg,
    },
    /// Integer or floating-point compare-and-set-predicate.
    SetP {
        /// Comparison kind.
        cmp: CmpOp,
        /// Compare as `f32` when true, signed integer otherwise.
        float: bool,
        /// Destination predicate.
        dst: Pred,
        /// Left-hand source.
        a: Operand,
        /// Right-hand source.
        b: Operand,
    },
    /// Load a 32-bit value: `dst = [addr + offset]`.
    Ld {
        /// Address space.
        space: Space,
        /// Destination register.
        dst: Reg,
        /// Base address register (byte address).
        addr: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// Store a 32-bit value: `[addr + offset] = src`.
    St {
        /// Address space.
        space: Space,
        /// Value register.
        src: Reg,
        /// Base address register (byte address).
        addr: Reg,
        /// Byte offset added to the base.
        offset: i32,
    },
    /// Branch to `target` in lanes where the guard passes.
    ///
    /// A guarded branch is potentially divergent; the simulator consults
    /// the kernel's reconvergence analysis to drive its SIMT stack.
    Bra {
        /// Target instruction index within the kernel.
        target: usize,
    },
    /// CTA-wide barrier (`BAR.SYNC`).
    Bar,
    /// Terminate the thread (all active lanes).
    Exit,
    /// No operation.
    Nop,
}

/// A single SIMT machine instruction: a guard plus an operation.
///
/// # Examples
///
/// ```
/// use gscalar_isa::{Instr, InstrKind, Guard, Operand, Reg, AluOp, Pred};
///
/// let i = Instr::new(
///     Guard::pos(Pred::new(0)),
///     InstrKind::Alu {
///         op: AluOp::IAdd,
///         dst: Reg::new(1),
///         a: Operand::Reg(Reg::new(2)),
///         b: Operand::Imm(4),
///         c: Operand::Reg(Reg::RZ),
///     },
/// );
/// assert_eq!(i.to_string(), "@P0 IADD R1, R2, 0x4");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Instr {
    /// The predicate guard.
    pub guard: Guard,
    /// The operation.
    pub kind: InstrKind,
}

impl Instr {
    /// Creates a guarded instruction.
    #[must_use]
    pub fn new(guard: Guard, kind: InstrKind) -> Self {
        Instr { guard, kind }
    }

    /// Creates an unguarded (`@PT`) instruction.
    #[must_use]
    pub fn always(kind: InstrKind) -> Self {
        Instr {
            guard: Guard::ALWAYS,
            kind,
        }
    }

    /// The functional unit this instruction dispatches to.
    #[must_use]
    pub fn func_unit(&self) -> FuncUnit {
        match self.kind {
            InstrKind::Alu { .. }
            | InstrKind::Mov { .. }
            | InstrKind::S2R { .. }
            | InstrKind::SetP { .. } => FuncUnit::Alu,
            InstrKind::Sfu { .. } => FuncUnit::Sfu,
            InstrKind::Ld { .. } | InstrKind::St { .. } => FuncUnit::Mem,
            InstrKind::Bra { .. } | InstrKind::Bar | InstrKind::Exit | InstrKind::Nop => {
                FuncUnit::Control
            }
        }
    }

    /// The general-purpose register written, if any.
    #[must_use]
    pub fn dst_reg(&self) -> Option<Reg> {
        let r = match self.kind {
            InstrKind::Alu { dst, .. }
            | InstrKind::Sfu { dst, .. }
            | InstrKind::Mov { dst, .. }
            | InstrKind::S2R { dst, .. }
            | InstrKind::Ld { dst, .. } => dst,
            _ => return None,
        };
        if r.is_zero() {
            None
        } else {
            Some(r)
        }
    }

    /// The predicate register written, if any.
    #[must_use]
    pub fn dst_pred(&self) -> Option<Pred> {
        match self.kind {
            InstrKind::SetP { dst, .. } if !dst.is_true() => Some(dst),
            _ => None,
        }
    }

    /// The general-purpose registers read, in operand order.
    ///
    /// Includes the guard's implied predicate only via [`Instr::src_preds`];
    /// this method reports GPR sources (deduplicated, `RZ` excluded).
    #[must_use]
    pub fn src_regs(&self) -> Vec<Reg> {
        let mut out = Vec::with_capacity(3);
        let mut push = |o: Operand| {
            if let Operand::Reg(r) = o {
                if !r.is_zero() && !out.contains(&r) {
                    out.push(r);
                }
            }
        };
        match self.kind {
            InstrKind::Alu { op, a, b, c, .. } => {
                push(a);
                if op.arity() >= 2 {
                    push(b);
                }
                if op.arity() >= 3 {
                    push(c);
                }
            }
            InstrKind::Sfu { a, .. } => push(a),
            InstrKind::Mov { src, .. } => push(src),
            InstrKind::SetP { a, b, .. } => {
                push(a);
                push(b);
            }
            InstrKind::Ld { addr, .. } => push(Operand::Reg(addr)),
            InstrKind::St { src, addr, .. } => {
                push(Operand::Reg(src));
                push(Operand::Reg(addr));
            }
            InstrKind::S2R { .. }
            | InstrKind::Bra { .. }
            | InstrKind::Bar
            | InstrKind::Exit
            | InstrKind::Nop => {}
        }
        out
    }

    /// The predicate registers read (the guard plus comparison inputs).
    #[must_use]
    pub fn src_preds(&self) -> Vec<Pred> {
        let mut out = Vec::new();
        if !self.guard.pred.is_true() {
            out.push(self.guard.pred);
        }
        out
    }

    /// Whether this is a (potentially divergent) branch.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, InstrKind::Bra { .. })
    }

    /// Whether this instruction ends the thread.
    #[must_use]
    pub fn is_exit(&self) -> bool {
        matches!(self.kind, InstrKind::Exit)
    }

    /// Whether this is a load or store.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, InstrKind::Ld { .. } | InstrKind::St { .. })
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.guard.is_always() {
            write!(f, "{} ", self.guard)?;
        }
        match self.kind {
            InstrKind::Alu { op, dst, a, b, c } => match op.arity() {
                1 => write!(f, "{op} {dst}, {a}"),
                2 => write!(f, "{op} {dst}, {a}, {b}"),
                _ => write!(f, "{op} {dst}, {a}, {b}, {c}"),
            },
            InstrKind::Sfu { op, dst, a } => write!(f, "{op} {dst}, {a}"),
            InstrKind::Mov { dst, src } => write!(f, "MOV {dst}, {src}"),
            InstrKind::S2R { dst, sreg } => write!(f, "S2R {dst}, {sreg}"),
            InstrKind::SetP {
                cmp,
                float,
                dst,
                a,
                b,
            } => {
                let base = if float { "FSETP" } else { "ISETP" };
                write!(f, "{base}.{cmp} {dst}, {a}, {b}")
            }
            InstrKind::Ld {
                space,
                dst,
                addr,
                offset,
            } => {
                if offset == 0 {
                    write!(f, "LD.{space} {dst}, [{addr}]")
                } else {
                    write!(f, "LD.{space} {dst}, [{addr}{offset:+}]")
                }
            }
            InstrKind::St {
                space,
                src,
                addr,
                offset,
            } => {
                if offset == 0 {
                    write!(f, "ST.{space} [{addr}], {src}")
                } else {
                    write!(f, "ST.{space} [{addr}{offset:+}], {src}")
                }
            }
            InstrKind::Bra { target } => write!(f, "BRA {target}"),
            InstrKind::Bar => write!(f, "BAR.SYNC"),
            InstrKind::Exit => write!(f, "EXIT"),
            InstrKind::Nop => write!(f, "NOP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg::new(i)
    }

    #[test]
    fn func_unit_classification() {
        let add = Instr::always(InstrKind::Alu {
            op: AluOp::IAdd,
            dst: r(0),
            a: r(1).into(),
            b: r(2).into(),
            c: Reg::RZ.into(),
        });
        assert_eq!(add.func_unit(), FuncUnit::Alu);
        let sin = Instr::always(InstrKind::Sfu {
            op: SfuOp::Sin,
            dst: r(0),
            a: r(1).into(),
        });
        assert_eq!(sin.func_unit(), FuncUnit::Sfu);
        let ld = Instr::always(InstrKind::Ld {
            space: Space::Global,
            dst: r(0),
            addr: r(1),
            offset: 0,
        });
        assert_eq!(ld.func_unit(), FuncUnit::Mem);
        assert_eq!(
            Instr::always(InstrKind::Exit).func_unit(),
            FuncUnit::Control
        );
    }

    #[test]
    fn dst_of_rz_write_is_none() {
        let i = Instr::always(InstrKind::Mov {
            dst: Reg::RZ,
            src: Operand::Imm(1),
        });
        assert_eq!(i.dst_reg(), None);
    }

    #[test]
    fn src_regs_respect_arity_and_dedup() {
        let mad = Instr::always(InstrKind::Alu {
            op: AluOp::IMad,
            dst: r(0),
            a: r(1).into(),
            b: r(1).into(),
            c: r(2).into(),
        });
        assert_eq!(mad.src_regs(), vec![r(1), r(2)]);
        // 2-operand op must not report c as a source.
        let add = Instr::always(InstrKind::Alu {
            op: AluOp::IAdd,
            dst: r(0),
            a: r(1).into(),
            b: Operand::Imm(3),
            c: r(9).into(),
        });
        assert_eq!(add.src_regs(), vec![r(1)]);
        // 1-operand op reads only a.
        let not = Instr::always(InstrKind::Alu {
            op: AluOp::Not,
            dst: r(0),
            a: r(4).into(),
            b: r(5).into(),
            c: r(6).into(),
        });
        assert_eq!(not.src_regs(), vec![r(4)]);
    }

    #[test]
    fn store_reads_value_and_address() {
        let st = Instr::always(InstrKind::St {
            space: Space::Global,
            src: r(3),
            addr: r(4),
            offset: 8,
        });
        assert_eq!(st.src_regs(), vec![r(3), r(4)]);
        assert_eq!(st.dst_reg(), None);
    }

    #[test]
    fn guard_pred_is_a_source() {
        let i = Instr::new(Guard::neg(Pred::new(2)), InstrKind::Nop);
        assert_eq!(i.src_preds(), vec![Pred::new(2)]);
        assert!(Instr::always(InstrKind::Nop).src_preds().is_empty());
    }

    #[test]
    fn display_formats() {
        let i = Instr::always(InstrKind::Ld {
            space: Space::Global,
            dst: r(2),
            addr: r(4),
            offset: 16,
        });
        assert_eq!(i.to_string(), "LD.GLOBAL R2, [R4+16]");
        let s = Instr::always(InstrKind::SetP {
            cmp: CmpOp::Lt,
            float: false,
            dst: Pred::new(0),
            a: r(1).into(),
            b: Operand::Imm(10),
        });
        assert_eq!(s.to_string(), "ISETP.LT P0, R1, 0xa");
    }

    #[test]
    fn operand_f32_roundtrip() {
        let o = Operand::imm_f32(2.5);
        assert_eq!(o, Operand::Imm(2.5f32.to_bits()));
    }
}
