//! SIMT instruction set architecture for the G-Scalar GPU simulator.
//!
//! This crate defines everything the simulator needs to describe a GPU
//! kernel, mirroring (a simplified form of) the NVIDIA Fermi SASS machine
//! ISA that the G-Scalar paper (HPCA 2017) evaluates on:
//!
//! * [`Reg`]/[`Pred`] — 32-bit vector registers and 1-bit predicate
//!   registers, including the hard-wired zero register [`Reg::RZ`] and
//!   true predicate [`Pred::PT`].
//! * [`Instr`] — a guarded SIMT instruction ([`InstrKind`] enumerates
//!   arithmetic, special-function, memory, predicate-set, and control
//!   operations).
//! * [`Kernel`] — a validated linear instruction stream plus resource
//!   requirements, with a [control-flow graph](cfg::Cfg) and
//!   immediate-post-dominator based reconvergence analysis used by the
//!   simulator's SIMT stack.
//! * [`KernelBuilder`] — a structured-control-flow DSL (`if`/`if-else`/
//!   counted and conditional loops) that lowers to predicated branches.
//! * [`asm`] — a round-trippable textual assembly format.
//!
//! # Examples
//!
//! Build a small SAXPY-like kernel with the DSL:
//!
//! ```
//! use gscalar_isa::{KernelBuilder, SReg, Operand};
//!
//! let mut b = KernelBuilder::new("saxpy");
//! let tid = b.s2r(SReg::TidX);
//! let x_base = b.mov(Operand::Imm(0x1000));
//! let off = b.shl(tid.into(), Operand::Imm(2));
//! let addr = b.iadd(x_base.into(), off.into());
//! let x = b.ld_global(addr, 0);
//! let y = b.fmul(x.into(), Operand::Imm(0x4000_0000)); // * 2.0f32
//! b.st_global(addr, y, 0);
//! b.exit();
//! let kernel = b.build().expect("valid kernel");
//! assert_eq!(kernel.name(), "saxpy");
//! ```

pub mod asm;
pub mod builder;
pub mod cfg;
pub mod instr;
pub mod kernel;
pub mod liveness;
pub mod op;
pub mod reg;

pub use builder::KernelBuilder;
pub use cfg::Cfg;
pub use instr::{Guard, Instr, InstrKind, Operand};
pub use kernel::{Dim3, Kernel, KernelError, LaunchConfig};
pub use liveness::Liveness;
pub use op::{AluOp, CmpOp, FuncUnit, SReg, SfuOp, Space};
pub use reg::{Pred, Reg};
