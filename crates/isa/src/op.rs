//! Opcode enumerations and functional-unit classification.

use std::fmt;

/// The execution pipeline an instruction dispatches to.
///
/// Each SM in the modeled GPU (NVIDIA GTX 480-like, see the paper's
/// Table 1) has two 16-lane arithmetic/logic pipelines, one 16-lane
/// memory pipeline and one 4-lane special-function pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FuncUnit {
    /// Integer/floating-point arithmetic and logic (16-lane, ×2 per SM).
    Alu,
    /// Special-function unit: `sin`, `cos`, `ex2`, … (4-lane, ×1 per SM).
    Sfu,
    /// Load/store pipeline (16-lane, ×1 per SM).
    Mem,
    /// Branch/control handled at issue (executes on the ALU pipe).
    Control,
}

impl fmt::Display for FuncUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FuncUnit::Alu => "ALU",
            FuncUnit::Sfu => "SFU",
            FuncUnit::Mem => "MEM",
            FuncUnit::Control => "CTRL",
        };
        f.write_str(s)
    }
}

/// Arithmetic/logic opcodes executed on the ALU pipelines.
///
/// Integer operations treat the 32-bit lane value as `u32`/`i32`;
/// floating-point operations reinterpret it as `f32` (IEEE-754 bits).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// `d = a + b` (wrapping).
    IAdd,
    /// `d = a - b` (wrapping).
    ISub,
    /// `d = a * b` (wrapping, low 32 bits).
    IMul,
    /// `d = a * b + c` (wrapping multiply-add).
    IMad,
    /// `d = min(a, b)` as signed integers.
    IMin,
    /// `d = max(a, b)` as signed integers.
    IMax,
    /// `d = a / b` as signed integers (`0` when `b == 0`). Long-latency.
    IDiv,
    /// `d = |a|` as a signed integer.
    IAbs,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Bitwise NOT of `a`.
    Not,
    /// Logical shift left by `b & 31`.
    Shl,
    /// Logical shift right by `b & 31`.
    Shr,
    /// Arithmetic shift right by `b & 31`.
    Sra,
    /// `d = a + b` in `f32`.
    FAdd,
    /// `d = a - b` in `f32`.
    FSub,
    /// `d = a * b` in `f32`.
    FMul,
    /// `d = a * b + c` fused multiply-add in `f32`.
    FFma,
    /// `d = min(a, b)` in `f32`.
    FMin,
    /// `d = max(a, b)` in `f32`.
    FMax,
    /// `d = |a|` in `f32`.
    FAbs,
    /// `d = -a` in `f32`.
    FNeg,
    /// Convert signed integer to `f32`.
    I2F,
    /// Convert `f32` to signed integer (truncating; saturates on overflow).
    F2I,
}

impl AluOp {
    /// Number of source operands the opcode consumes (1, 2 or 3).
    #[must_use]
    pub fn arity(self) -> usize {
        match self {
            AluOp::IMad | AluOp::FFma => 3,
            AluOp::IAbs | AluOp::Not | AluOp::FAbs | AluOp::FNeg | AluOp::I2F | AluOp::F2I => 1,
            _ => 2,
        }
    }

    /// Whether the opcode operates on `f32` lane values.
    #[must_use]
    pub fn is_float(self) -> bool {
        matches!(
            self,
            AluOp::FAdd
                | AluOp::FSub
                | AluOp::FMul
                | AluOp::FFma
                | AluOp::FMin
                | AluOp::FMax
                | AluOp::FAbs
                | AluOp::FNeg
                | AluOp::F2I
        )
    }

    /// The assembly mnemonic.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::IAdd => "IADD",
            AluOp::ISub => "ISUB",
            AluOp::IMul => "IMUL",
            AluOp::IMad => "IMAD",
            AluOp::IMin => "IMIN",
            AluOp::IMax => "IMAX",
            AluOp::IDiv => "IDIV",
            AluOp::IAbs => "IABS",
            AluOp::And => "AND",
            AluOp::Or => "OR",
            AluOp::Xor => "XOR",
            AluOp::Not => "NOT",
            AluOp::Shl => "SHL",
            AluOp::Shr => "SHR",
            AluOp::Sra => "SRA",
            AluOp::FAdd => "FADD",
            AluOp::FSub => "FSUB",
            AluOp::FMul => "FMUL",
            AluOp::FFma => "FFMA",
            AluOp::FMin => "FMIN",
            AluOp::FMax => "FMAX",
            AluOp::FAbs => "FABS",
            AluOp::FNeg => "FNEG",
            AluOp::I2F => "I2F",
            AluOp::F2I => "F2I",
        }
    }

    /// All ALU opcodes, in mnemonic-table order (used by the assembler).
    pub const ALL: [AluOp; 25] = [
        AluOp::IAdd,
        AluOp::ISub,
        AluOp::IMul,
        AluOp::IMad,
        AluOp::IMin,
        AluOp::IMax,
        AluOp::IDiv,
        AluOp::IAbs,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Not,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sra,
        AluOp::FAdd,
        AluOp::FSub,
        AluOp::FMul,
        AluOp::FFma,
        AluOp::FMin,
        AluOp::FMax,
        AluOp::FAbs,
        AluOp::FNeg,
        AluOp::I2F,
        AluOp::F2I,
    ];
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Special-function opcodes executed on the SFU pipeline.
///
/// The paper notes these consume 3–24× the energy of ordinary
/// floating-point instructions (Section 1), which is why scalar
/// execution of SFU instructions matters so much for G-Scalar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SfuOp {
    /// `sin(a)` in `f32`.
    Sin,
    /// `cos(a)` in `f32`.
    Cos,
    /// `2^a` in `f32`.
    Ex2,
    /// `log2(a)` in `f32`.
    Lg2,
    /// `1/a` in `f32`.
    Rcp,
    /// `1/sqrt(a)` in `f32`.
    Rsqrt,
    /// `sqrt(a)` in `f32`.
    Sqrt,
}

impl SfuOp {
    /// The assembly mnemonic (all SFU ops use the `MUFU.<fn>` form).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            SfuOp::Sin => "MUFU.SIN",
            SfuOp::Cos => "MUFU.COS",
            SfuOp::Ex2 => "MUFU.EX2",
            SfuOp::Lg2 => "MUFU.LG2",
            SfuOp::Rcp => "MUFU.RCP",
            SfuOp::Rsqrt => "MUFU.RSQ",
            SfuOp::Sqrt => "MUFU.SQRT",
        }
    }

    /// All SFU opcodes (used by the assembler).
    pub const ALL: [SfuOp; 7] = [
        SfuOp::Sin,
        SfuOp::Cos,
        SfuOp::Ex2,
        SfuOp::Lg2,
        SfuOp::Rcp,
        SfuOp::Rsqrt,
        SfuOp::Sqrt,
    ];
}

impl fmt::Display for SfuOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Comparison kind for predicate-set instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Less than.
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

impl CmpOp {
    /// The suffix used in assembly (`ISETP.LT`, …).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "EQ",
            CmpOp::Ne => "NE",
            CmpOp::Lt => "LT",
            CmpOp::Le => "LE",
            CmpOp::Gt => "GT",
            CmpOp::Ge => "GE",
        }
    }

    /// The logically negated comparison (`a < b` ⇔ `!(a >= b)`).
    #[must_use]
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }

    /// All comparison kinds (used by the assembler).
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Memory address spaces.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Space {
    /// Off-chip global memory, cached in L1/L2.
    Global,
    /// On-chip per-CTA shared memory.
    Shared,
}

impl Space {
    /// The assembly suffix (`LD.GLOBAL`, `ST.SHARED`, …).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            Space::Global => "GLOBAL",
            Space::Shared => "SHARED",
        }
    }
}

impl fmt::Display for Space {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Special (read-only) registers readable via `S2R`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SReg {
    /// Thread index within the CTA, x dimension.
    TidX,
    /// Thread index within the CTA, y dimension.
    TidY,
    /// CTA index within the grid, x dimension.
    CtaIdX,
    /// CTA index within the grid, y dimension.
    CtaIdY,
    /// CTA size, x dimension.
    NTidX,
    /// CTA size, y dimension.
    NTidY,
    /// Grid size in CTAs, x dimension.
    NCtaIdX,
    /// Lane index within the warp (0..warp_size).
    LaneId,
    /// Warp index within the CTA.
    WarpId,
}

impl SReg {
    /// The assembly name (`SR_TID.X`, …).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            SReg::TidX => "SR_TID.X",
            SReg::TidY => "SR_TID.Y",
            SReg::CtaIdX => "SR_CTAID.X",
            SReg::CtaIdY => "SR_CTAID.Y",
            SReg::NTidX => "SR_NTID.X",
            SReg::NTidY => "SR_NTID.Y",
            SReg::NCtaIdX => "SR_NCTAID.X",
            SReg::LaneId => "SR_LANEID",
            SReg::WarpId => "SR_WARPID",
        }
    }

    /// All special registers (used by the assembler).
    pub const ALL: [SReg; 9] = [
        SReg::TidX,
        SReg::TidY,
        SReg::CtaIdX,
        SReg::CtaIdY,
        SReg::NTidX,
        SReg::NTidY,
        SReg::NCtaIdX,
        SReg::LaneId,
        SReg::WarpId,
    ];
}

impl fmt::Display for SReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_opcode_class() {
        assert_eq!(AluOp::IMad.arity(), 3);
        assert_eq!(AluOp::FFma.arity(), 3);
        assert_eq!(AluOp::IAdd.arity(), 2);
        assert_eq!(AluOp::Not.arity(), 1);
        assert_eq!(AluOp::F2I.arity(), 1);
    }

    #[test]
    fn float_classification() {
        assert!(AluOp::FAdd.is_float());
        assert!(AluOp::F2I.is_float());
        assert!(!AluOp::I2F.is_float());
        assert!(!AluOp::IAdd.is_float());
    }

    #[test]
    fn cmp_negation_is_involutive() {
        for c in CmpOp::ALL {
            assert_eq!(c.negate().negate(), c);
        }
    }

    #[test]
    fn mnemonics_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for op in AluOp::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate {}", op.mnemonic());
        }
        for op in SfuOp::ALL {
            assert!(seen.insert(op.mnemonic()), "duplicate {}", op.mnemonic());
        }
    }

    #[test]
    fn display_uses_mnemonic() {
        assert_eq!(AluOp::IAdd.to_string(), "IADD");
        assert_eq!(SfuOp::Rsqrt.to_string(), "MUFU.RSQ");
        assert_eq!(Space::Global.to_string(), "GLOBAL");
        assert_eq!(SReg::TidX.to_string(), "SR_TID.X");
        assert_eq!(FuncUnit::Sfu.to_string(), "SFU");
    }
}
