//! Control-flow graph construction and post-dominator analysis.
//!
//! The simulator handles branch divergence with a SIMT reconvergence
//! stack (Section 2 of the paper, following GPGPU-Sim). The canonical
//! reconvergence point of a divergent branch is the *immediate
//! post-dominator* of the branch's basic block; this module computes it.

use crate::instr::{Instr, InstrKind};

/// A basic block: a maximal single-entry straight-line range of
/// instructions `[start, end)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Index of the first instruction.
    pub start: usize,
    /// One past the index of the last instruction.
    pub end: usize,
    /// Indices of successor blocks.
    pub succs: Vec<usize>,
}

/// A control-flow graph over a kernel's instruction stream.
///
/// # Examples
///
/// ```
/// use gscalar_isa::{Cfg, Instr, InstrKind, Guard, Pred};
///
/// // if (!p0) goto 2; nop; exit
/// let code = vec![
///     Instr::new(Guard::neg(Pred::new(0)), InstrKind::Bra { target: 2 }),
///     Instr::always(InstrKind::Nop),
///     Instr::always(InstrKind::Exit),
/// ];
/// let cfg = Cfg::build(&code);
/// assert_eq!(cfg.blocks().len(), 3);
/// // The branch reconverges at the exit block (pc 2).
/// assert_eq!(cfg.reconvergence_table(&code)[0], Some(2));
/// ```
#[derive(Debug, Clone)]
pub struct Cfg {
    blocks: Vec<Block>,
    /// Block index containing each instruction.
    block_of: Vec<usize>,
    /// Immediate post-dominator of each block (`None` = the virtual exit).
    ipostdom: Vec<Option<usize>>,
}

impl Cfg {
    /// Builds the CFG (blocks, edges, post-dominators) for a code stream.
    ///
    /// # Panics
    ///
    /// Panics if a branch target is out of range; call sites validate
    /// targets first (see [`crate::Kernel::new`]).
    #[must_use]
    pub fn build(code: &[Instr]) -> Self {
        let n = code.len();
        // 1. Find leaders.
        let mut leader = vec![false; n];
        if n > 0 {
            leader[0] = true;
        }
        for (pc, i) in code.iter().enumerate() {
            if let InstrKind::Bra { target } = i.kind {
                assert!(target < n, "branch target {target} out of range");
                leader[target] = true;
                if pc + 1 < n {
                    leader[pc + 1] = true;
                }
            }
            if i.is_exit() && pc + 1 < n {
                leader[pc + 1] = true;
            }
        }
        // 2. Form blocks.
        let mut blocks: Vec<Block> = Vec::new();
        let mut block_of = vec![0usize; n];
        let mut start = 0usize;
        for (pc, &is_leader) in leader.iter().enumerate() {
            if pc > 0 && is_leader {
                blocks.push(Block {
                    start,
                    end: pc,
                    succs: Vec::new(),
                });
                start = pc;
            }
        }
        if n > 0 {
            blocks.push(Block {
                start,
                end: n,
                succs: Vec::new(),
            });
        }
        let mut block_at_pc = vec![usize::MAX; n + 1];
        for (bi, b) in blocks.iter().enumerate() {
            for pc in b.start..b.end {
                block_of[pc] = bi;
                block_at_pc[pc] = bi;
            }
        }
        // 3. Edges.
        for block in &mut blocks {
            let last_pc = block.end - 1;
            let last = &code[last_pc];
            let mut succs = Vec::new();
            match last.kind {
                InstrKind::Bra { target } => {
                    succs.push(block_at_pc[target]);
                    if !last.guard.is_always() && last_pc + 1 < n {
                        let ft = block_at_pc[last_pc + 1];
                        if !succs.contains(&ft) {
                            succs.push(ft);
                        }
                    }
                }
                InstrKind::Exit => {}
                _ => {
                    if last_pc + 1 < n {
                        succs.push(block_at_pc[last_pc + 1]);
                    }
                }
            }
            block.succs = succs;
        }
        let ipostdom = compute_ipostdom(&blocks);
        Cfg {
            blocks,
            block_of,
            ipostdom,
        }
    }

    /// The basic blocks, in program order.
    #[must_use]
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The block index containing instruction `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn block_of(&self, pc: usize) -> usize {
        self.block_of[pc]
    }

    /// The immediate post-dominator block of `block`, or `None` when the
    /// block's only post-dominator is the virtual exit.
    #[must_use]
    pub fn immediate_postdom(&self, block: usize) -> Option<usize> {
        self.ipostdom[block]
    }

    /// For each instruction index, the reconvergence PC if the
    /// instruction is a branch (the start of the branch block's
    /// immediate post-dominator), `None` otherwise or when reconvergence
    /// only happens at thread exit.
    #[must_use]
    pub fn reconvergence_table(&self, code: &[Instr]) -> Vec<Option<usize>> {
        code.iter()
            .enumerate()
            .map(|(pc, i)| {
                if !i.is_branch() {
                    return None;
                }
                self.ipostdom[self.block_of[pc]].map(|b| self.blocks[b].start)
            })
            .collect()
    }
}

/// Iterative post-dominator computation over small graphs.
///
/// Uses set-based dataflow with `u64` word bitsets: `postdom(b) = {b} ∪
/// ⋂ postdom(s) for s ∈ succ(b)`, with exit-free blocks joining a
/// virtual exit. Kernels in this workload suite are tens of blocks, so
/// the O(n²·iters/64) cost is negligible.
fn compute_ipostdom(blocks: &[Block]) -> Vec<Option<usize>> {
    let n = blocks.len();
    if n == 0 {
        return Vec::new();
    }
    let words = n.div_ceil(64);
    let full = vec![u64::MAX; words];
    // postdom sets; virtual exit handled implicitly: blocks with no
    // successors start from just themselves.
    let mut sets: Vec<Vec<u64>> = (0..n)
        .map(|b| {
            if blocks[b].succs.is_empty() {
                let mut s = vec![0u64; words];
                s[b / 64] |= 1 << (b % 64);
                s
            } else {
                full.clone()
            }
        })
        .collect();
    let mut changed = true;
    while changed {
        changed = false;
        // Reverse program order converges quickly for postdominators.
        for b in (0..n).rev() {
            if blocks[b].succs.is_empty() {
                continue;
            }
            let mut inter = full.clone();
            for &s in &blocks[b].succs {
                for w in 0..words {
                    inter[w] &= sets[s][w];
                }
            }
            inter[b / 64] |= 1 << (b % 64);
            if inter != sets[b] {
                sets[b] = inter;
                changed = true;
            }
        }
    }
    let contains = |s: &[u64], i: usize| s[i / 64] & (1 << (i % 64)) != 0;
    let count = |s: &[u64]| s.iter().map(|w| w.count_ones() as usize).sum::<usize>();
    // ipostdom(b) = the p ∈ postdom(b)\{b} with |postdom(p)| = |postdom(b)|-1.
    (0..n)
        .map(|b| {
            let target = count(&sets[b]).wrapping_sub(1);
            (0..n).find(|&p| p != b && contains(&sets[b], p) && count(&sets[p]) == target)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Guard;
    use crate::reg::Pred;

    fn bra(target: usize) -> Instr {
        Instr::new(Guard::pos(Pred::new(0)), InstrKind::Bra { target })
    }

    fn jmp(target: usize) -> Instr {
        Instr::always(InstrKind::Bra { target })
    }

    fn nop() -> Instr {
        Instr::always(InstrKind::Nop)
    }

    fn exit() -> Instr {
        Instr::always(InstrKind::Exit)
    }

    #[test]
    fn straight_line_single_block() {
        let code = vec![nop(), nop(), exit()];
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks().len(), 1);
        assert!(cfg.blocks()[0].succs.is_empty());
        assert_eq!(cfg.reconvergence_table(&code), vec![None, None, None]);
    }

    #[test]
    fn if_then_reconverges_after_then() {
        // 0: @P0 BRA 3   (skip then-part when P0)
        // 1: nop          then
        // 2: nop
        // 3: exit         join
        let code = vec![bra(3), nop(), nop(), exit()];
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.blocks().len(), 3);
        assert_eq!(cfg.reconvergence_table(&code)[0], Some(3));
    }

    #[test]
    fn if_else_reconverges_at_join() {
        // 0: @P0 BRA 3
        // 1: nop (else)
        // 2: BRA 4
        // 3: nop (then)
        // 4: exit (join)
        let code = vec![bra(3), nop(), jmp(4), nop(), exit()];
        let cfg = Cfg::build(&code);
        let t = cfg.reconvergence_table(&code);
        assert_eq!(t[0], Some(4));
        // The unconditional branch has a trivial reconvergence at its target.
        assert_eq!(t[2], Some(4));
    }

    #[test]
    fn loop_reconverges_at_exit_block() {
        // 0: nop           (header)
        // 1: @P0 BRA 0     (loop back while P0)
        // 2: exit
        let code = vec![nop(), bra(0), exit()];
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.reconvergence_table(&code)[1], Some(2));
    }

    #[test]
    fn divergent_exit_branch_has_no_reconvergence() {
        // 0: @P0 BRA 2 (to exit)
        // 1: exit
        // 2: exit
        let code = vec![bra(2), exit(), exit()];
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.reconvergence_table(&code)[0], None);
    }

    #[test]
    fn nested_if_reconverges_innermost_first() {
        // 0: @P0 BRA 5      outer skip
        // 1: @P0 BRA 3      inner skip (reuses P0 for simplicity)
        // 2: nop            inner then
        // 3: nop            inner join
        // 4: nop
        // 5: exit           outer join
        let code = vec![bra(5), bra(3), nop(), nop(), nop(), exit()];
        let cfg = Cfg::build(&code);
        let t = cfg.reconvergence_table(&code);
        assert_eq!(t[0], Some(5));
        assert_eq!(t[1], Some(3));
    }

    #[test]
    fn block_of_maps_each_pc() {
        let code = vec![bra(2), nop(), exit()];
        let cfg = Cfg::build(&code);
        assert_eq!(cfg.block_of(0), 0);
        assert_eq!(cfg.block_of(1), 1);
        assert_eq!(cfg.block_of(2), 2);
    }

    #[test]
    fn exit_blocks_have_no_succs() {
        let code = vec![nop(), exit(), nop(), exit()];
        let cfg = Cfg::build(&code);
        // exit at pc1 splits; second (unreachable) block still modeled.
        for b in cfg.blocks() {
            let last = b.end - 1;
            if code[last].is_exit() {
                assert!(b.succs.is_empty());
            }
        }
    }
}
