//! Textual assembly: parsing and printing.
//!
//! The format round-trips with [`print_kernel`]/[`parse_kernel`]:
//!
//! ```text
//! .kernel saxpy regs=6
//!     S2R R0, SR_TID.X
//!     SHL R1, R0, 0x2
//!     IADD R2, R1, 0x1000
//!     LD.GLOBAL R3, [R2]
//!     FMUL R4, R3, 0x40000000
//!     ST.GLOBAL [R2], R4
//!     EXIT
//! ```
//!
//! Branch targets may be numeric instruction indices (`BRA 12`) or
//! labels (`BRA done` with a `done:` line elsewhere). Comments start
//! with `//` or `#` and run to end of line.

use std::collections::HashMap;
use std::fmt;

use crate::instr::{Guard, Instr, InstrKind, Operand};
use crate::kernel::{Kernel, KernelError};
use crate::op::{AluOp, CmpOp, SReg, SfuOp, Space};
use crate::reg::{Pred, Reg};

/// An assembly parse error with a 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line where the error occurred (0 for kernel-level errors).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<KernelError> for ParseError {
    fn from(e: KernelError) -> Self {
        ParseError {
            line: 0,
            message: e.to_string(),
        }
    }
}

/// Prints a kernel in parseable assembly form (numeric branch targets).
#[must_use]
pub fn print_kernel(kernel: &Kernel) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        ".kernel {} regs={}",
        kernel.name(),
        kernel.num_regs()
    ));
    if kernel.shared_mem_bytes() > 0 {
        out.push_str(&format!(" shared={}", kernel.shared_mem_bytes()));
    }
    out.push('\n');
    for i in kernel.instrs() {
        out.push_str("    ");
        out.push_str(&i.to_string());
        out.push('\n');
    }
    out
}

/// Parses a complete kernel from assembly text.
///
/// # Errors
///
/// Returns a [`ParseError`] for syntax errors, unknown mnemonics,
/// undefined labels, or kernel validation failures.
pub fn parse_kernel(text: &str) -> Result<Kernel, ParseError> {
    let mut name = String::from("kernel");
    let mut num_regs: Option<u16> = None;
    let mut shared = 0u32;
    let mut raw: Vec<(usize, String)> = Vec::new(); // (line_no, text)
    let mut labels: HashMap<String, usize> = HashMap::new();
    let mut max_reg_seen: u16 = 0;

    let mut pc = 0usize;
    for (ln0, line) in text.lines().enumerate() {
        let ln = ln0 + 1;
        let line = strip_comment(line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".kernel") {
            for (i, tok) in rest.split_whitespace().enumerate() {
                if i == 0 {
                    name = tok.to_owned();
                } else if let Some(v) = tok.strip_prefix("regs=") {
                    num_regs = Some(v.parse().map_err(|_| err(ln, "bad regs= value"))?);
                } else if let Some(v) = tok.strip_prefix("shared=") {
                    shared = v.parse().map_err(|_| err(ln, "bad shared= value"))?;
                } else {
                    return Err(err(ln, format!("unknown directive token `{tok}`")));
                }
            }
            continue;
        }
        // Possibly several `label:` prefixes before the instruction.
        let mut rest = line;
        loop {
            if let Some(colon) = rest.find(':') {
                let (head, tail) = rest.split_at(colon);
                let head = head.trim();
                if !head.is_empty()
                    && head.chars().all(|c| c.is_alphanumeric() || c == '_')
                    && !head.starts_with('@')
                {
                    if labels.insert(head.to_owned(), pc).is_some() {
                        return Err(err(ln, format!("label `{head}` defined twice")));
                    }
                    rest = tail[1..].trim();
                    continue;
                }
            }
            break;
        }
        if rest.is_empty() {
            continue;
        }
        raw.push((ln, rest.to_owned()));
        pc += 1;
    }

    let mut instrs = Vec::with_capacity(raw.len());
    for (ln, line) in &raw {
        let i = parse_instr_inner(line, *ln, Some(&labels))?;
        for r in i.src_regs().into_iter().chain(i.dst_reg()) {
            if !r.is_zero() {
                max_reg_seen = max_reg_seen.max(u16::from(r.index()) + 1);
            }
        }
        instrs.push(i);
    }
    let regs = num_regs.unwrap_or(max_reg_seen.max(1));
    let kernel = if shared > 0 {
        Kernel::with_shared_mem(name, instrs, regs, shared)?
    } else {
        Kernel::new(name, instrs, regs)?
    };
    Ok(kernel)
}

/// Parses a single instruction (no labels available).
///
/// # Errors
///
/// Returns a [`ParseError`] on syntax errors or unknown mnemonics.
pub fn parse_instr(line: &str) -> Result<Instr, ParseError> {
    parse_instr_inner(strip_comment(line).trim(), 1, None)
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn strip_comment(line: &str) -> &str {
    let cut = line.find("//").or_else(|| line.find('#'));
    match cut {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_instr_inner(
    line: &str,
    ln: usize,
    labels: Option<&HashMap<String, usize>>,
) -> Result<Instr, ParseError> {
    let mut rest = line.trim();
    // Guard.
    let mut guard = Guard::ALWAYS;
    if let Some(g) = rest.strip_prefix('@') {
        let (negate, g) = match g.strip_prefix('!') {
            Some(g) => (true, g),
            None => (false, g),
        };
        let end = g
            .find(char::is_whitespace)
            .ok_or_else(|| err(ln, "guard with no instruction"))?;
        let pred = parse_pred(&g[..end], ln)?;
        guard = Guard { pred, negate };
        rest = g[end..].trim();
    }
    // Mnemonic.
    let (mn, ops) = match rest.find(char::is_whitespace) {
        Some(i) => (&rest[..i], rest[i..].trim()),
        None => (rest, ""),
    };
    let operands: Vec<String> = if ops.is_empty() {
        Vec::new()
    } else {
        ops.split(',').map(|s| s.trim().to_owned()).collect()
    };
    let kind = parse_kind(mn, &operands, ln, labels)?;
    Ok(Instr::new(guard, kind))
}

fn parse_kind(
    mn: &str,
    ops: &[String],
    ln: usize,
    labels: Option<&HashMap<String, usize>>,
) -> Result<InstrKind, ParseError> {
    let want = |n: usize| -> Result<(), ParseError> {
        if ops.len() == n {
            Ok(())
        } else {
            Err(err(
                ln,
                format!("{mn} expects {n} operands, got {}", ops.len()),
            ))
        }
    };
    // ALU ops.
    if let Some(op) = AluOp::ALL.iter().find(|o| o.mnemonic() == mn) {
        let op = *op;
        want(1 + op.arity())?;
        let dst = parse_reg(&ops[0], ln)?;
        let a = parse_operand(&ops[1], ln)?;
        let b = if op.arity() >= 2 {
            parse_operand(&ops[2], ln)?
        } else {
            Operand::Reg(Reg::RZ)
        };
        let c = if op.arity() >= 3 {
            parse_operand(&ops[3], ln)?
        } else {
            Operand::Reg(Reg::RZ)
        };
        return Ok(InstrKind::Alu { op, dst, a, b, c });
    }
    // SFU ops.
    if let Some(op) = SfuOp::ALL.iter().find(|o| o.mnemonic() == mn) {
        want(2)?;
        return Ok(InstrKind::Sfu {
            op: *op,
            dst: parse_reg(&ops[0], ln)?,
            a: parse_operand(&ops[1], ln)?,
        });
    }
    // SETP.
    if let Some(cmp_s) = mn.strip_prefix("ISETP.") {
        let cmp = parse_cmp(cmp_s, ln)?;
        want(3)?;
        return Ok(InstrKind::SetP {
            cmp,
            float: false,
            dst: parse_pred(&ops[0], ln)?,
            a: parse_operand(&ops[1], ln)?,
            b: parse_operand(&ops[2], ln)?,
        });
    }
    if let Some(cmp_s) = mn.strip_prefix("FSETP.") {
        let cmp = parse_cmp(cmp_s, ln)?;
        want(3)?;
        return Ok(InstrKind::SetP {
            cmp,
            float: true,
            dst: parse_pred(&ops[0], ln)?,
            a: parse_operand(&ops[1], ln)?,
            b: parse_operand(&ops[2], ln)?,
        });
    }
    // Memory.
    if let Some(sp) = mn.strip_prefix("LD.") {
        let space = parse_space(sp, ln)?;
        want(2)?;
        let dst = parse_reg(&ops[0], ln)?;
        let (addr, offset) = parse_mem(&ops[1], ln)?;
        return Ok(InstrKind::Ld {
            space,
            dst,
            addr,
            offset,
        });
    }
    if let Some(sp) = mn.strip_prefix("ST.") {
        let space = parse_space(sp, ln)?;
        want(2)?;
        let (addr, offset) = parse_mem(&ops[0], ln)?;
        let src = parse_reg(&ops[1], ln)?;
        return Ok(InstrKind::St {
            space,
            src,
            addr,
            offset,
        });
    }
    match mn {
        "MOV" => {
            want(2)?;
            Ok(InstrKind::Mov {
                dst: parse_reg(&ops[0], ln)?,
                src: parse_operand(&ops[1], ln)?,
            })
        }
        "S2R" => {
            want(2)?;
            let sreg = SReg::ALL
                .iter()
                .find(|s| s.mnemonic() == ops[1])
                .copied()
                .ok_or_else(|| err(ln, format!("unknown special register `{}`", ops[1])))?;
            Ok(InstrKind::S2R {
                dst: parse_reg(&ops[0], ln)?,
                sreg,
            })
        }
        "BRA" => {
            want(1)?;
            let t = &ops[0];
            let target = if let Ok(n) = t.parse::<usize>() {
                n
            } else if let Some(labels) = labels {
                *labels
                    .get(t.as_str())
                    .ok_or_else(|| err(ln, format!("undefined label `{t}`")))?
            } else {
                return Err(err(ln, format!("undefined label `{t}`")));
            };
            Ok(InstrKind::Bra { target })
        }
        "BAR.SYNC" | "BAR" => Ok(InstrKind::Bar),
        "EXIT" => Ok(InstrKind::Exit),
        "NOP" => Ok(InstrKind::Nop),
        _ => Err(err(ln, format!("unknown mnemonic `{mn}`"))),
    }
}

fn parse_cmp(s: &str, ln: usize) -> Result<CmpOp, ParseError> {
    CmpOp::ALL
        .iter()
        .find(|c| c.mnemonic() == s)
        .copied()
        .ok_or_else(|| err(ln, format!("unknown comparison `{s}`")))
}

fn parse_space(s: &str, ln: usize) -> Result<Space, ParseError> {
    match s {
        "GLOBAL" => Ok(Space::Global),
        "SHARED" => Ok(Space::Shared),
        _ => Err(err(ln, format!("unknown address space `{s}`"))),
    }
}

fn parse_reg(s: &str, ln: usize) -> Result<Reg, ParseError> {
    if s == "RZ" {
        return Ok(Reg::RZ);
    }
    s.strip_prefix('R')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n < 255)
        .map(Reg::new)
        .ok_or_else(|| err(ln, format!("expected register, got `{s}`")))
}

fn parse_pred(s: &str, ln: usize) -> Result<Pred, ParseError> {
    if s == "PT" {
        return Ok(Pred::PT);
    }
    s.strip_prefix('P')
        .and_then(|n| n.parse::<u8>().ok())
        .filter(|&n| n <= 6)
        .map(Pred::new)
        .ok_or_else(|| err(ln, format!("expected predicate, got `{s}`")))
}

fn parse_operand(s: &str, ln: usize) -> Result<Operand, ParseError> {
    if s.starts_with('R') {
        return parse_reg(s, ln).map(Operand::Reg);
    }
    parse_imm(s)
        .map(Operand::Imm)
        .ok_or_else(|| err(ln, format!("expected operand, got `{s}`")))
}

fn parse_imm(s: &str) -> Option<u32> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        return u32::from_str_radix(hex, 16).ok();
    }
    if let Some(neg) = s.strip_prefix('-') {
        if let Some(hex) = neg.strip_prefix("0x") {
            return i64::from_str_radix(hex, 16)
                .ok()
                .map(|v| (-v) as i32 as u32);
        }
        return neg.parse::<i64>().ok().map(|v| (-v) as i32 as u32);
    }
    s.parse::<u32>().ok()
}

/// Parses `[Rn]`, `[Rn+off]`, `[Rn-off]` memory operands.
fn parse_mem(s: &str, ln: usize) -> Result<(Reg, i32), ParseError> {
    let inner = s
        .strip_prefix('[')
        .and_then(|t| t.strip_suffix(']'))
        .ok_or_else(|| err(ln, format!("expected [addr], got `{s}`")))?;
    let (reg_s, off) = match inner.find(['+', '-']) {
        Some(i) => {
            let (r, o) = inner.split_at(i);
            let sign = if o.starts_with('-') { -1i64 } else { 1 };
            let mag = o[1..].trim();
            let v = if let Some(hex) = mag.strip_prefix("0x") {
                i64::from_str_radix(hex, 16).map_err(|_| err(ln, "bad offset"))?
            } else {
                mag.parse::<i64>().map_err(|_| err(ln, "bad offset"))?
            };
            (r.trim(), (sign * v) as i32)
        }
        None => (inner.trim(), 0),
    };
    Ok((parse_reg(reg_s, ln)?, off))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::KernelBuilder;
    use crate::op::SReg;

    #[test]
    fn parse_simple_alu() {
        let i = parse_instr("IADD R1, R2, 0x10").unwrap();
        assert_eq!(i.to_string(), "IADD R1, R2, 0x10");
    }

    #[test]
    fn parse_guarded() {
        let i = parse_instr("@!P2 FMUL R3, R4, R5").unwrap();
        assert!(i.guard.negate);
        assert_eq!(i.guard.pred, Pred::new(2));
    }

    #[test]
    fn parse_memory_forms() {
        assert_eq!(
            parse_instr("LD.GLOBAL R2, [R4]").unwrap().to_string(),
            "LD.GLOBAL R2, [R4]"
        );
        assert_eq!(
            parse_instr("LD.GLOBAL R2, [R4+16]").unwrap().to_string(),
            "LD.GLOBAL R2, [R4+16]"
        );
        assert_eq!(
            parse_instr("ST.SHARED [R4-4], R2").unwrap().to_string(),
            "ST.SHARED [R4-4], R2"
        );
    }

    #[test]
    fn parse_rejects_nonsense() {
        assert!(parse_instr("FROB R1, R2").is_err());
        assert!(parse_instr("IADD R1").is_err());
        assert!(parse_instr("LD.GLOBAL R2, R4").is_err());
        assert!(parse_instr("MOV R256, 0").is_err());
    }

    #[test]
    fn labels_resolve() {
        let text = "
            .kernel jumpy regs=4
            MOV R0, 0
            @P0 BRA done
            IADD R0, R0, 1
            done: EXIT
        ";
        let k = parse_kernel(text).unwrap();
        assert_eq!(k.name(), "jumpy");
        assert_eq!(k.instr(1).kind, InstrKind::Bra { target: 3 },);
    }

    #[test]
    fn undefined_label_rejected() {
        let e = parse_kernel(".kernel k regs=2\nBRA nowhere\nEXIT").unwrap_err();
        assert!(e.message.contains("undefined label"));
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = parse_kernel(".kernel k regs=2\na: NOP\na: EXIT").unwrap_err();
        assert!(e.message.contains("defined twice"));
    }

    #[test]
    fn comments_are_stripped() {
        let k = parse_kernel(
            "// header comment\n.kernel k regs=2\nMOV R0, 1 // set\n# full line\nEXIT",
        )
        .unwrap();
        assert_eq!(k.len(), 2);
    }

    #[test]
    fn regs_inferred_when_missing() {
        let k = parse_kernel("MOV R5, 1\nEXIT").unwrap();
        assert_eq!(k.num_regs(), 6);
    }

    #[test]
    fn roundtrip_builder_kernel() {
        let mut b = KernelBuilder::new("rt");
        let tid = b.s2r(SReg::TidX);
        let p = b.isetp(CmpOp::Lt, tid.into(), Operand::Imm(16));
        b.if_else(
            p.into(),
            |b| {
                let x = b.sin(tid.into());
                b.fadd(x.into(), Operand::imm_f32(1.0));
            },
            |b| {
                b.iadd(tid.into(), Operand::Imm(2));
            },
        );
        let addr = b.mov(Operand::Imm(256));
        let v = b.ld_global(addr, 8);
        b.st_global(addr, v, -4);
        b.bar();
        b.exit();
        let k = b.build().unwrap();
        let text = print_kernel(&k);
        let k2 = parse_kernel(&text).unwrap();
        assert_eq!(k.instrs(), k2.instrs());
        assert_eq!(k.name(), k2.name());
        assert_eq!(k.num_regs(), k2.num_regs());
    }

    #[test]
    fn negative_immediates() {
        let i = parse_instr("MOV R0, -5").unwrap();
        match i.kind {
            InstrKind::Mov { src, .. } => assert_eq!(src, Operand::Imm((-5i32) as u32)),
            _ => panic!("not a mov"),
        }
    }
}
