//! Kernel container and launch configuration.

use std::fmt;

use crate::cfg::Cfg;
use crate::instr::{Instr, InstrKind};
use crate::liveness::Liveness;
use crate::reg::Reg;

/// A three-dimensional size, used for grid and CTA (thread-block) shapes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Dim3 {
    /// Extent in x.
    pub x: u32,
    /// Extent in y.
    pub y: u32,
    /// Extent in z.
    pub z: u32,
}

impl Dim3 {
    /// A one-dimensional shape `(x, 1, 1)`.
    #[must_use]
    pub fn x(x: u32) -> Self {
        Dim3 { x, y: 1, z: 1 }
    }

    /// A two-dimensional shape `(x, y, 1)`.
    #[must_use]
    pub fn xy(x: u32, y: u32) -> Self {
        Dim3 { x, y, z: 1 }
    }

    /// Total number of elements.
    #[must_use]
    pub fn count(self) -> u64 {
        u64::from(self.x) * u64::from(self.y) * u64::from(self.z)
    }
}

impl fmt::Display for Dim3 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {}, {})", self.x, self.y, self.z)
    }
}

/// Grid and CTA dimensions for one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LaunchConfig {
    /// Number of CTAs in the grid.
    pub grid: Dim3,
    /// Number of threads per CTA.
    pub block: Dim3,
}

impl LaunchConfig {
    /// A one-dimensional launch of `grid_x` CTAs of `block_x` threads.
    #[must_use]
    pub fn linear(grid_x: u32, block_x: u32) -> Self {
        LaunchConfig {
            grid: Dim3::x(grid_x),
            block: Dim3::x(block_x),
        }
    }

    /// Threads per CTA.
    #[must_use]
    pub fn threads_per_cta(&self) -> u32 {
        (self.block.count()).min(u64::from(u32::MAX)) as u32
    }

    /// Total threads in the launch.
    #[must_use]
    pub fn total_threads(&self) -> u64 {
        self.grid.count() * self.block.count()
    }
}

/// Errors produced by [`Kernel::new`] validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KernelError {
    /// The instruction stream is empty.
    Empty,
    /// A branch at `pc` targets the out-of-range index `target`.
    BranchOutOfRange {
        /// The branch's instruction index.
        pc: usize,
        /// The invalid target.
        target: usize,
    },
    /// Execution can fall off the end of the instruction stream.
    MissingExit,
    /// An instruction uses a register index at or above `num_regs`.
    RegisterOutOfRange {
        /// The instruction index.
        pc: usize,
        /// The offending register.
        reg: Reg,
        /// The kernel's declared register count.
        num_regs: u16,
    },
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Empty => write!(f, "kernel has no instructions"),
            KernelError::BranchOutOfRange { pc, target } => {
                write!(f, "branch at pc {pc} targets out-of-range index {target}")
            }
            KernelError::MissingExit => {
                write!(f, "control flow can fall off the end of the kernel")
            }
            KernelError::RegisterOutOfRange { pc, reg, num_regs } => write!(
                f,
                "instruction at pc {pc} uses {reg} but kernel declares {num_regs} registers"
            ),
        }
    }
}

impl std::error::Error for KernelError {}

/// A validated GPU kernel: a linear stream of [`Instr`]s plus the
/// resources it requires.
///
/// Branch targets are instruction indices into the stream. On
/// construction the kernel is validated (targets in range, stream ends in
/// control flow that cannot fall through, registers within the declared
/// count) and its control-flow graph and reconvergence points are
/// computed; the simulator queries [`Kernel::reconvergence_pc`] when it
/// pushes SIMT-stack entries for a divergent branch.
///
/// # Examples
///
/// ```
/// use gscalar_isa::{Instr, InstrKind, Kernel};
///
/// let k = Kernel::new("noop", vec![Instr::always(InstrKind::Exit)], 8).unwrap();
/// assert_eq!(k.len(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Kernel {
    name: String,
    instrs: Vec<Instr>,
    num_regs: u16,
    shared_mem_bytes: u32,
    cfg: Cfg,
    reconv: Vec<Option<usize>>,
    liveness: Liveness,
}

impl Kernel {
    /// Creates and validates a kernel.
    ///
    /// `num_regs` is the number of general-purpose registers each thread
    /// requires (drives occupancy in the simulator).
    ///
    /// # Errors
    ///
    /// Returns a [`KernelError`] if the stream is empty, a branch target
    /// is out of range, execution can fall off the end, or an instruction
    /// names a register at or above `num_regs`.
    pub fn new(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        num_regs: u16,
    ) -> Result<Self, KernelError> {
        Self::with_shared_mem(name, instrs, num_regs, 0)
    }

    /// Creates and validates a kernel that uses CTA shared memory.
    ///
    /// # Errors
    ///
    /// Same as [`Kernel::new`].
    pub fn with_shared_mem(
        name: impl Into<String>,
        instrs: Vec<Instr>,
        num_regs: u16,
        shared_mem_bytes: u32,
    ) -> Result<Self, KernelError> {
        if instrs.is_empty() {
            return Err(KernelError::Empty);
        }
        for (pc, i) in instrs.iter().enumerate() {
            if let InstrKind::Bra { target } = i.kind {
                if target >= instrs.len() {
                    return Err(KernelError::BranchOutOfRange { pc, target });
                }
            }
            let check = |reg: Reg| -> Result<(), KernelError> {
                if !reg.is_zero() && u16::from(reg.index()) >= num_regs {
                    Err(KernelError::RegisterOutOfRange { pc, reg, num_regs })
                } else {
                    Ok(())
                }
            };
            for r in i.src_regs() {
                check(r)?;
            }
            if let Some(d) = i.dst_reg() {
                check(d)?;
            }
        }
        // The last instruction must not fall through: it must be an exit
        // or an unconditional branch.
        let last = instrs[instrs.len() - 1];
        let terminates = last.is_exit() || (last.is_branch() && last.guard.is_always());
        if !terminates {
            return Err(KernelError::MissingExit);
        }
        let cfg = Cfg::build(&instrs);
        let reconv = cfg.reconvergence_table(&instrs);
        let liveness = Liveness::analyze(&instrs, &cfg, num_regs);
        Ok(Kernel {
            name: name.into(),
            instrs,
            num_regs,
            shared_mem_bytes,
            cfg,
            reconv,
            liveness,
        })
    }

    /// The kernel's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instruction stream.
    #[must_use]
    pub fn instrs(&self) -> &[Instr] {
        &self.instrs
    }

    /// The instruction at `pc`.
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn instr(&self, pc: usize) -> &Instr {
        &self.instrs[pc]
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instrs.len()
    }

    /// Whether the kernel has no instructions (never true for a
    /// successfully constructed kernel).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instrs.is_empty()
    }

    /// Registers required per thread.
    #[must_use]
    pub fn num_regs(&self) -> u16 {
        self.num_regs
    }

    /// Shared memory required per CTA, in bytes.
    #[must_use]
    pub fn shared_mem_bytes(&self) -> u32 {
        self.shared_mem_bytes
    }

    /// The control-flow graph.
    #[must_use]
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// Whether `reg`'s pre-existing value may still be read after the
    /// instruction at `pc` executes (register liveness; used by the
    /// compiler-assisted decompress-move elision of Section 3.3).
    ///
    /// # Panics
    ///
    /// Panics if `pc` is out of range.
    #[must_use]
    pub fn value_live_after(&self, pc: usize, reg: Reg) -> bool {
        self.liveness.live_out(pc, reg)
    }

    /// The reconvergence PC for the branch at `pc`, i.e. the first
    /// instruction of the branch block's immediate post-dominator.
    ///
    /// Returns `None` if `pc` is not a branch or the branch never
    /// reconverges before thread exit (the SIMT stack then reconverges at
    /// exit).
    #[must_use]
    pub fn reconvergence_pc(&self, pc: usize) -> Option<usize> {
        self.reconv.get(pc).copied().flatten()
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, ".kernel {} regs={}", self.name, self.num_regs)?;
        for (pc, i) in self.instrs.iter().enumerate() {
            writeln!(f, "{pc:4}: {i}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::{Guard, Operand};
    use crate::op::AluOp;
    use crate::reg::Pred;

    fn exit() -> Instr {
        Instr::always(InstrKind::Exit)
    }

    #[test]
    fn empty_kernel_rejected() {
        assert_eq!(Kernel::new("k", vec![], 4).unwrap_err(), KernelError::Empty);
    }

    #[test]
    fn branch_target_validated() {
        let bad = vec![Instr::always(InstrKind::Bra { target: 5 }), exit()];
        assert_eq!(
            Kernel::new("k", bad, 4).unwrap_err(),
            KernelError::BranchOutOfRange { pc: 0, target: 5 }
        );
    }

    #[test]
    fn fallthrough_end_rejected() {
        let bad = vec![Instr::always(InstrKind::Nop)];
        assert_eq!(
            Kernel::new("k", bad, 4).unwrap_err(),
            KernelError::MissingExit
        );
        // A guarded branch as the last instruction can fall through.
        let bad2 = vec![Instr::new(
            Guard::pos(Pred::new(0)),
            InstrKind::Bra { target: 0 },
        )];
        assert_eq!(
            Kernel::new("k", bad2, 4).unwrap_err(),
            KernelError::MissingExit
        );
        // An unconditional backward branch is a valid terminator.
        let ok = vec![exit(), Instr::always(InstrKind::Bra { target: 0 })];
        assert!(Kernel::new("k", ok, 4).is_ok());
    }

    #[test]
    fn register_bounds_validated() {
        let bad = vec![
            Instr::always(InstrKind::Alu {
                op: AluOp::IAdd,
                dst: Reg::new(9),
                a: Operand::Imm(0),
                b: Operand::Imm(0),
                c: Reg::RZ.into(),
            }),
            exit(),
        ];
        assert!(matches!(
            Kernel::new("k", bad, 4).unwrap_err(),
            KernelError::RegisterOutOfRange { pc: 0, .. }
        ));
        // RZ never counts against the register budget.
        let ok = vec![
            Instr::always(InstrKind::Mov {
                dst: Reg::RZ,
                src: Operand::Imm(1),
            }),
            exit(),
        ];
        assert!(Kernel::new("k", ok, 0).is_ok());
    }

    #[test]
    fn display_lists_instructions() {
        let k = Kernel::new("demo", vec![exit()], 2).unwrap();
        let s = k.to_string();
        assert!(s.contains(".kernel demo"));
        assert!(s.contains("EXIT"));
    }

    #[test]
    fn launch_config_counts() {
        let lc = LaunchConfig::linear(10, 256);
        assert_eq!(lc.threads_per_cta(), 256);
        assert_eq!(lc.total_threads(), 2560);
        assert_eq!(Dim3::xy(3, 4).count(), 12);
    }
}
