//! Synthetic Rodinia-suite kernels (Table 2, left column).
//!
//! Each kernel reproduces the *value structure* of the real CUDA
//! benchmark's inner loop — warp-uniform parameters, divergence
//! patterns, SFU usage — which is what drives every G-Scalar result.

use gscalar_core::Workload;
use gscalar_isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, SReg};
use gscalar_sim::memory::GlobalMemory;

use crate::gen::{self, bufs};
use crate::util::{elem_addr, global_tid, load_param, Scale};

/// `b+tree` (BT): warp-uniform tree traversal. The search key and node
/// pointer chain are scalar; per-thread work probes the node's fan-out
/// slots. Divergence is rare (leaf-level compare hits).
#[must_use]
pub fn btree(scale: Scale) -> Workload {
    let ctas = scale.pick(60, 3);
    let block = 192;
    let levels = scale.pick(24, 6);
    let mut b = KernelBuilder::new("b+tree");
    let gid = global_tid(&mut b);
    let tid = b.s2r(SReg::TidX);
    let ctaid = b.s2r(SReg::CtaIdX);
    // All threads of the CTA load the same search key: scalar memory.
    let kaddr = elem_addr(&mut b, bufs::B, ctaid);
    let key = b.ld_global(kaddr, 0);
    let levels_r = load_param(&mut b, 0);
    let node = b.mov(Operand::Imm(0));
    let hits = b.mov(Operand::Imm(0));
    let lvl = b.mov(Operand::Imm(0));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, lvl.into(), levels_r.into()).into(),
        |b| {
            // Per-thread probe of one fan-out slot.
            let slot = b.and(tid.into(), Operand::Imm(15));
            let base = b.shl(node.into(), Operand::Imm(4));
            let idx = b.iadd(base.into(), slot.into());
            let addr = elem_addr(b, bufs::A, idx);
            let k = b.ld_global(addr, 0);
            let p = b.isetp(CmpOp::Le, k.into(), key.into());
            // Rare divergent bookkeeping on the compare outcome.
            b.if_then(p.into(), |b| {
                b.iadd_to(hits, hits.into(), Operand::Imm(1));
                let _mark = b.or(hits.into(), Operand::Imm(0x100));
            });
            // Warp-uniform descent: next node from the key nibble.
            let nib = b.and(key.into(), Operand::Imm(15));
            let scaled = b.shl(node.into(), Operand::Imm(4));
            let nn = b.iadd(scaled.into(), nib.into());
            b.iadd_to(node, nn.into(), Operand::Imm(1));
            b.alu_to(
                gscalar_isa::AluOp::Shr,
                key,
                key.into(),
                Operand::Imm(2),
                gscalar_isa::Reg::RZ.into(),
            );
            b.iadd_to(lvl, lvl.into(), Operand::Imm(1));
        },
    );
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, hits, 0);
    b.exit();
    let kernel = b.build().expect("btree kernel is valid");

    let n = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_u32_slice(bufs::A, &gen::small_ints(4096, 1 << 20, 0xB7));
    mem.write_u32_slice(bufs::B, &gen::small_ints(ctas as usize, 1 << 20, 0xB8));
    mem.write_u32(bufs::PARAMS, levels);
    let _ = n;
    Workload::new(
        "b+tree",
        "BT",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `backprop` (BP): the paper's star benchmark — each thread computes
/// `2^n` via the SFU with a warp-uniform exponent (Section 5.3), plus
/// half-warp-uniform momentum terms (12% half-scalar in Figure 9).
#[must_use]
pub fn backprop(scale: Scale) -> Workload {
    let ctas = scale.pick(56, 3);
    let block = 256;
    let iters = scale.pick(14, 4);
    let mut b = KernelBuilder::new("backprop");
    let gid = global_tid(&mut b);
    let tid = b.s2r(SReg::TidX);
    // Half-warp-uniform value: tid >> 4 is constant per 16-lane chunk.
    let half = b.shr(tid.into(), Operand::Imm(4));
    let halff = b.i2f(half.into());
    let waddr = elem_addr(&mut b, bufs::A, gid);
    let w = b.ld_global(waddr, 0);
    let n = load_param(&mut b, 0);
    let eta = load_param(&mut b, 1);
    let acc = b.mov_f32(0.0);
    let i = b.mov(Operand::Imm(0));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, i.into(), n.into()).into(),
        |b| {
            // 2^i on the SFU with a warp-uniform argument: SFU scalar.
            let fi = b.i2f(i.into());
            let pw = b.ex2(fi.into());
            let pw1 = b.fadd(pw.into(), Operand::imm_f32(1.0));
            let sg = b.rcp(pw1.into());
            // Half-warp-uniform momentum term: a half-scalar ALU op.
            let hstep = b.fmul(halff.into(), Operand::imm_f32(0.01));
            // Per-thread weighted sum.
            let t = b.fmul(w.into(), eta.into());
            b.ffma_to(acc, t.into(), sg.into(), acc.into());
            b.fadd_to(acc, acc.into(), hstep.into());
            b.iadd_to(i, i.into(), Operand::Imm(1));
        },
    );
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, acc, 0);
    b.exit();
    let kernel = b.build().expect("backprop kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(bufs::A, &gen::f32_uniform(n_threads, 0.1, 0.9, 0xBB));
    mem.write_u32(bufs::PARAMS, iters);
    mem.write_f32(bufs::PARAMS + 4, 0.3);
    Workload::new(
        "backprop",
        "BP",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `heartwall` (HW): data-dependent per-thread search loops make ~half
/// of all instructions divergent (Section 4.2 cites ~50%); the loop
/// body mixes vector tracking math with uniform-coefficient updates
/// that become divergent-scalar work.
#[must_use]
pub fn heartwall(scale: Scale) -> Workload {
    let ctas = scale.pick(52, 3);
    let block = 192;
    let base_trips = scale.pick(6, 2);
    let mut b = KernelBuilder::new("heartwall");
    let gid = global_tid(&mut b);
    let vaddr = elem_addr(&mut b, bufs::A, gid);
    let v = b.ld_global(vaddr, 0);
    let naddr = elem_addr(&mut b, bufs::B, gid);
    let n = b.ld_global(naddr, 0);
    let coeff = load_param(&mut b, 0);
    let best = b.mov_f32(-1.0e30);
    let i = b.mov(Operand::Imm(0));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, i.into(), n.into()).into(),
        |b| {
            // Uniform-coefficient chain: divergent-scalar once lanes
            // with small trip counts retire.
            let u = b.fadd(coeff.into(), Operand::imm_f32(0.125));
            let u2 = b.fmul(u.into(), Operand::imm_f32(0.5));
            let u3 = b.fadd(u2.into(), coeff.into());
            let us = b.sqrt(u3.into());
            let u4 = b.fadd(us.into(), u.into());
            // Per-thread template correlation.
            let t = b.fmul(v.into(), u4.into());
            let s = b.fadd(t.into(), v.into());
            b.alu_to(
                gscalar_isa::AluOp::FMax,
                best,
                best.into(),
                s.into(),
                gscalar_isa::Reg::RZ.into(),
            );
            b.iadd_to(i, i.into(), Operand::Imm(1));
        },
    );
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, best, 0);
    b.exit();
    let kernel = b.build().expect("heartwall kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(bufs::A, &gen::f32_uniform(n_threads, 0.2, 0.8, 0x48));
    mem.write_u32_slice(
        bufs::B,
        &gen::trip_counts(n_threads, base_trips, 2 * base_trips, 2, 0x4A),
    );
    mem.write_f32(bufs::PARAMS, 0.75);
    Workload::new(
        "heartwall",
        "HW",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `hotspot` (HS): a 2-D thermal stencil whose row-edge lanes skip the
/// interior update — warps covering an image edge run the body
/// divergently, and the body's ambient-coefficient chain is
/// divergent-scalar (17% in Figure 9).
#[must_use]
pub fn hotspot(scale: Scale) -> Workload {
    let ctas = scale.pick(60, 3);
    let block = 256;
    let width: u32 = 64;
    let mut b = KernelBuilder::new("hotspot");
    let gid = global_tid(&mut b);
    let col = b.and(gid.into(), Operand::Imm(width - 1));
    let caddr = elem_addr(&mut b, bufs::A, gid);
    let center = b.ld_global(caddr, 0);
    let amb = load_param(&mut b, 0);
    let step = load_param(&mut b, 1);
    let result = b.mov(Operand::Imm(0));
    b.mov_to(result, center.into());
    // Interior test: the left-edge lane (col == 0) skips the update, so
    // every other warp runs the body divergently with one lane masked.
    let p_lo = b.isetp(CmpOp::Gt, col.into(), Operand::Imm(0));
    b.if_then(p_lo.into(), |b| {
        // Neighbor loads.
        let left = b.ld_global(caddr, -4);
        let right = b.ld_global(caddr, 4);
        let up = b.ld_global(caddr, -(4 * width as i32));
        let down = b.ld_global(caddr, 4 * width as i32);
        // Uniform coefficient chain (divergent-scalar on edge warps).
        let k1 = b.fmul(amb.into(), Operand::imm_f32(0.5));
        let k2 = b.fadd(k1.into(), step.into());
        let k3 = b.fmul(k2.into(), Operand::imm_f32(0.25));
        let k4 = b.fadd(k3.into(), Operand::imm_f32(1.0e-3));
        let k5 = b.fmul(k4.into(), step.into());
        let k6 = b.fadd(k5.into(), k1.into());
        let k7 = b.fmul(k6.into(), Operand::imm_f32(0.5));
        let k8 = b.fadd(k7.into(), k2.into());
        // Vector stencil math.
        let h = b.fadd(left.into(), right.into());
        let v = b.fadd(up.into(), down.into());
        let sum = b.fadd(h.into(), v.into());
        let c4 = b.fmul(center.into(), Operand::imm_f32(4.0));
        let delta = b.fsub(sum.into(), c4.into());
        let upd = b.ffma(delta.into(), k8.into(), center.into());
        b.mov_to(result, upd.into());
    });
    // Right-edge bookkeeping: the other warp of each row diverges here.
    let p_hi = b.isetp(CmpOp::Eq, col.into(), Operand::Imm(width - 1));
    b.if_then(p_hi.into(), |b| {
        let e1 = b.fmul(amb.into(), Operand::imm_f32(0.9));
        let e2 = b.fadd(e1.into(), step.into());
        b.mov_to(result, e2.into());
    });
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, result, 0);
    b.exit();
    let kernel = b.build().expect("hotspot kernel is valid");

    let n_threads = (ctas * block) as usize + 2 * width as usize;
    let mut mem = GlobalMemory::new();
    // Guard rows above/below so up/down loads stay in-bounds data.
    mem.write_f32_slice(
        bufs::A,
        &gen::f32_uniform(n_threads + width as usize, 20.0, 90.0, 0x45),
    );
    mem.write_f32(bufs::PARAMS, 80.0);
    mem.write_f32(bufs::PARAMS + 4, 0.05);
    Workload::new(
        "hotspot",
        "HS",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `leukocyte` (LC): few resident warps plus long-latency integer
/// division in the GICOV loop — the paper's most latency-sensitive
/// benchmark (worst IPC loss from the +3-cycle pipeline, Section 5.4).
#[must_use]
pub fn leukocyte(scale: Scale) -> Workload {
    let ctas = scale.pick(12, 2);
    let block = 128;
    let trips = scale.pick(24, 5);
    let mut b = KernelBuilder::new("leukocyte");
    let gid = global_tid(&mut b);
    let vaddr = elem_addr(&mut b, bufs::A, gid);
    let v = b.ld_global(vaddr, 0);
    let d = load_param(&mut b, 0);
    let acc = b.mov(Operand::Imm(0));
    let x = b.mov(Operand::Imm(0));
    b.mov_to(x, v.into());
    let i = b.mov(Operand::Imm(0));
    let trips_r = load_param(&mut b, 1);
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, i.into(), trips_r.into()).into(),
        |b| {
            // Long-latency integer division on per-thread data.
            let q = b.idiv(x.into(), d.into());
            let r = b.imad(q.into(), d.into(), Operand::Imm(1));
            let f = b.i2f(r.into());
            let s = b.sqrt(f.into());
            let si = b.f2i(s.into());
            let pr = b.isetp(CmpOp::Gt, si.into(), Operand::Imm(8));
            b.if_then(pr.into(), |b| {
                // Boundary refinement on the uniform divisor.
                let dd = b.iadd(d.into(), Operand::Imm(1));
                let d2 = b.shl(dd.into(), Operand::Imm(1));
                b.iadd_to(acc, acc.into(), d2.into());
            });
            b.iadd_to(acc, acc.into(), si.into());
            b.iadd_to(x, x.into(), Operand::Imm(3));
            b.iadd_to(i, i.into(), Operand::Imm(1));
        },
    );
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, acc, 0);
    b.exit();
    let kernel = b.build().expect("leukocyte kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_u32_slice(bufs::A, &gen::small_ints(n_threads, 1 << 16, 0x7C));
    mem.write_u32(bufs::PARAMS, 7);
    mem.write_u32(bufs::PARAMS + 4, trips);
    Workload::new(
        "leukocyte",
        "LC",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `pathfinder` (PF): dynamic-programming row sweep through shared
/// memory with CTA barriers each step; loop bookkeeping is scalar,
/// the min-reduction is vector.
#[must_use]
pub fn pathfinder(scale: Scale) -> Workload {
    let ctas = scale.pick(48, 3);
    let block: u32 = 256;
    let rows = scale.pick(16, 4);
    let mut b = KernelBuilder::new("pathfinder");
    b.shared_mem(block * 4);
    let gid = global_tid(&mut b);
    let tid = b.s2r(SReg::TidX);
    let soff = b.shl(tid.into(), Operand::Imm(2));
    let first = elem_addr(&mut b, bufs::A, gid);
    let c0 = b.ld_global(first, 0);
    b.st_shared(soff, c0, 0);
    b.bar();
    let width = load_param(&mut b, 0);
    let rows_r = load_param(&mut b, 1);
    let t = b.mov(Operand::Imm(1));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, t.into(), rows_r.into()).into(),
        |b| {
            // Clamped neighbor indices.
            let lm = b.isub(tid.into(), Operand::Imm(1));
            let lc = b.imax(lm.into(), Operand::Imm(0));
            let rm = b.iadd(tid.into(), Operand::Imm(1));
            let rc = b.imin(rm.into(), Operand::Imm(block - 1));
            let loff = b.shl(lc.into(), Operand::Imm(2));
            let roff = b.shl(rc.into(), Operand::Imm(2));
            let l = b.ld_shared(loff, 0);
            let m = b.ld_shared(soff, 0);
            let r = b.ld_shared(roff, 0);
            let mn1 = b.imin(l.into(), m.into());
            let mn = b.imin(mn1.into(), r.into());
            // Next row's cost: row offset is scalar arithmetic.
            let rowoff = b.imul(t.into(), width.into());
            let idx = b.iadd(rowoff.into(), gid.into());
            let caddr = elem_addr(b, bufs::A, idx);
            let c = b.ld_global(caddr, 0);
            let cur = b.iadd(c.into(), mn.into());
            // Occasional per-lane clamp: mild divergence.
            let low = b.and(cur.into(), Operand::Imm(7));
            let pc = b.isetp(CmpOp::Eq, low.into(), Operand::Imm(0));
            b.if_then(pc.into(), |b| {
                b.iadd_to(cur, cur.into(), Operand::Imm(1));
            });
            b.bar();
            b.st_shared(soff, cur, 0);
            b.bar();
            b.iadd_to(t, t.into(), Operand::Imm(1));
        },
    );
    let res = b.ld_shared(soff, 0);
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, res, 0);
    b.exit();
    let kernel = b.build().expect("pathfinder kernel is valid");

    let n = (ctas * block * (rows + 1)) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_u32_slice(bufs::A, &gen::small_ints(n, 100, 0x9F));
    mem.write_u32(bufs::PARAMS, ctas * block);
    mem.write_u32(bufs::PARAMS + 4, rows);
    Workload::new(
        "pathfinder",
        "PF",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `srad_1` (SR1): diffusion-coefficient pass of SRAD — gradient math
/// on per-pixel values, a uniform-parameter chain, and a clipping
/// branch that diverges on a minority of lanes.
#[must_use]
pub fn srad_1(scale: Scale) -> Workload {
    let ctas = scale.pick(56, 3);
    let block = 256;
    let width: u32 = 256;
    let mut b = KernelBuilder::new("srad_1");
    let gid = global_tid(&mut b);
    let caddr = elem_addr(&mut b, bufs::A, gid);
    let v = b.ld_global(caddr, 0);
    let n = b.ld_global(caddr, -(4 * width as i32));
    let s = b.ld_global(caddr, 4 * width as i32);
    let e = b.ld_global(caddr, 4);
    let w = b.ld_global(caddr, -4);
    let dn = b.fsub(n.into(), v.into());
    let ds = b.fsub(s.into(), v.into());
    let de = b.fsub(e.into(), v.into());
    let dw = b.fsub(w.into(), v.into());
    let g1 = b.fmul(dn.into(), dn.into());
    let g2 = b.ffma(ds.into(), ds.into(), g1.into());
    let g3 = b.ffma(de.into(), de.into(), g2.into());
    let g4 = b.ffma(dw.into(), dw.into(), g3.into());
    // Uniform q0 chain: scalar ALU.
    let lambda = load_param(&mut b, 0);
    let q0 = load_param(&mut b, 1);
    let l1 = b.fmul(lambda.into(), Operand::imm_f32(0.25));
    let l2 = b.fadd(l1.into(), q0.into());
    let l3 = b.fmul(l2.into(), l2.into());
    // Uniform normalization: a scalar SFU op.
    let ql = b.sqrt(l3.into());
    let l4 = b.fadd(l3.into(), ql.into());
    // Coefficient with an SFU reciprocal.
    let denom = b.ffma(g4.into(), l4.into(), Operand::imm_f32(1.0));
    let c = b.rcp(denom.into());
    // Clip large coefficients: lanes split on the threshold.
    let p = b.fsetp(CmpOp::Gt, c.into(), Operand::imm_f32(0.55));
    b.if_then(p.into(), |b| {
        let capped = b.fmul(ql.into(), Operand::imm_f32(0.9));
        b.mov_to(c, capped.into());
    });
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, c, 0);
    b.exit();
    let kernel = b.build().expect("srad_1 kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(
        bufs::A,
        &gen::f32_uniform(n_threads + 2 * width as usize, 0.5, 2.0, 0x51),
    );
    mem.write_f32(bufs::PARAMS, 0.5);
    mem.write_f32(bufs::PARAMS + 4, 0.05);
    Workload::new(
        "srad_1",
        "SR1",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `srad_2` (SR2): the update pass — non-divergent FMA-dense stencil
/// with uniform step parameters.
#[must_use]
pub fn srad_2(scale: Scale) -> Workload {
    let ctas = scale.pick(56, 3);
    let block = 256;
    let width: u32 = 256;
    let mut b = KernelBuilder::new("srad_2");
    let gid = global_tid(&mut b);
    let iaddr = elem_addr(&mut b, bufs::A, gid);
    let img = b.ld_global(iaddr, 0);
    let cadr = elem_addr(&mut b, bufs::B, gid);
    let cc = b.ld_global(cadr, 0);
    let cs = b.ld_global(cadr, 4 * width as i32);
    let ce = b.ld_global(cadr, 4);
    let lambda = load_param(&mut b, 0);
    let li = b.rcp(lambda.into());
    let l4 = b.fmul(li.into(), Operand::imm_f32(0.25));
    let d1 = b.fadd(cs.into(), ce.into());
    let d2 = b.ffma(cc.into(), Operand::imm_f32(2.0), d1.into());
    let upd = b.ffma(d2.into(), l4.into(), img.into());
    let sm = b.fmul(upd.into(), Operand::imm_f32(0.999));
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, sm, 0);
    b.exit();
    let kernel = b.build().expect("srad_2 kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(
        bufs::A,
        &gen::f32_uniform(n_threads + width as usize, 0.5, 2.0, 0x52),
    );
    mem.write_f32_slice(
        bufs::B,
        &gen::f32_uniform(n_threads + width as usize, 0.0, 1.0, 0x53),
    );
    mem.write_f32(bufs::PARAMS, 0.5);
    Workload::new(
        "srad_2",
        "SR2",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}
