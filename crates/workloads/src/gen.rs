//! Deterministic input generators with controlled value similarity.
//!
//! The G-Scalar results are driven by *value structure* — warp-uniform
//! parameters, address-like integers that differ only in low bytes,
//! clustered floats sharing exponent bytes — so each generator documents
//! which register-compression category its data lands in.

use gscalar_core::rng::Rng;

/// Standard buffer base addresses used by every workload.
pub mod bufs {
    /// First input buffer.
    pub const A: u64 = 0x1000_0000;
    /// Second input buffer.
    pub const B: u64 = 0x2000_0000;
    /// Third input buffer.
    pub const C: u64 = 0x3000_0000;
    /// Parameter block (warp-uniform reads).
    pub const PARAMS: u64 = 0x0800_0000;
    /// Output buffer.
    pub const OUT: u64 = 0x4000_0000;
    /// Auxiliary output buffer.
    pub const OUT2: u64 = 0x5000_0000;
}

/// A seeded RNG for workload `seed` (deterministic across runs).
#[must_use]
pub fn rng(seed: u64) -> Rng {
    Rng::seed_from_u64(seed)
}

/// Uniformly random `f32` values in `[lo, hi)` — clustered magnitudes
/// share the sign/exponent byte, so vector registers of these typically
/// compress to the 1-byte ("B3") category.
#[must_use]
pub fn f32_uniform(n: usize, lo: f32, hi: f32, seed: u64) -> Vec<f32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.range_f32(lo, hi)).collect()
}

/// Small non-negative integers below `max` — values share the top three
/// bytes (all zero), compressing to the 3-byte ("B321") category.
#[must_use]
pub fn small_ints(n: usize, max: u32, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n).map(|_| r.range_u32(0, max)).collect()
}

/// Ascending integers from `start` with step `step` — address-like
/// values where consecutive lanes differ only in low bytes.
#[must_use]
pub fn ascending(n: usize, start: u32, step: u32) -> Vec<u32> {
    (0..n as u32)
        .map(|i| start.wrapping_add(i * step))
        .collect()
}

/// A constant vector (fully scalar).
#[must_use]
pub fn constant(n: usize, v: u32) -> Vec<u32> {
    vec![v; n]
}

/// Per-element loop trip counts: mostly `base`, with every
/// `1/outlier_every`-th element boosted to `base + extra` — creating
/// intra-warp divergence with a controlled footprint.
#[must_use]
pub fn trip_counts(n: usize, base: u32, extra: u32, outlier_every: usize, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| {
            if outlier_every > 0 && r.range_usize(0, outlier_every) == 0 {
                base + extra
            } else {
                base
            }
        })
        .collect()
}

/// Cell-type flags where runs of `run_len` elements share a type drawn
/// from `0..types`; warps covering one run see a uniform flag (scalar
/// compare), warps straddling runs diverge — the LBM/heartwall pattern.
#[must_use]
pub fn run_flags(n: usize, types: u32, run_len: usize, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let t = r.range_u32(0, types);
        for _ in 0..run_len.min(n - out.len()) {
            out.push(t);
        }
    }
    out
}

/// Cell-type flags alternating deterministically every `run_len`
/// elements (0, 1, 0, 1, …). With `run_len` smaller than the warp size
/// every warp straddles at least one boundary and diverges — the
/// strongly-divergent LBM pattern.
#[must_use]
pub fn alternating_flags(n: usize, run_len: usize) -> Vec<u32> {
    (0..n).map(|i| ((i / run_len.max(1)) % 2) as u32).collect()
}

/// Per-warp-uniform loop trip counts: every lane of a 32-thread warp
/// gets the same count (`base + hash(warp) % spread`), so loops bound by
/// these never diverge — rows of similar length sorted warp-wise, the
/// spmv pattern.
#[must_use]
pub fn warp_uniform_trips(n: usize, base: u32, spread: u32, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    let mut out = Vec::with_capacity(n);
    let mut current = base;
    for i in 0..n {
        if i % 32 == 0 {
            current = base + r.range_u32(0, spread.max(1));
        }
        out.push(current);
    }
    out
}

/// Per-lane mixed flags: each element drawn independently — warps
/// always diverge on these (the irregular-control pattern).
#[must_use]
pub fn random_flags(n: usize, p_true_percent: u32, seed: u64) -> Vec<u32> {
    let mut r = rng(seed);
    (0..n)
        .map(|_| u32::from(r.percent(p_true_percent)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gscalar_compress::{bytewise, full_mask, Encoding};

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(f32_uniform(8, 0.0, 1.0, 7), f32_uniform(8, 0.0, 1.0, 7));
        assert_eq!(small_ints(8, 100, 3), small_ints(8, 100, 3));
        assert_eq!(trip_counts(8, 4, 8, 4, 1), trip_counts(8, 4, 8, 4, 1));
    }

    #[test]
    fn ascending_compresses_to_3byte() {
        let v = ascending(32, 0x1000_0000, 4);
        assert_eq!(bytewise::encode(&v, full_mask(32)), Encoding::B321);
    }

    #[test]
    fn constants_are_scalar() {
        let v = constant(32, 42);
        assert_eq!(bytewise::encode(&v, full_mask(32)), Encoding::Scalar);
    }

    #[test]
    fn clustered_floats_share_exponent_byte() {
        let v: Vec<u32> = f32_uniform(32, 64.0, 127.0, 5)
            .iter()
            .map(|f| f.to_bits())
            .collect();
        let enc = bytewise::encode(&v, full_mask(32));
        assert!(enc >= Encoding::B3, "clustered f32 got {enc}");
    }

    #[test]
    fn small_ints_share_high_bytes() {
        let v = small_ints(32, 200, 9);
        let enc = bytewise::encode(&v, full_mask(32));
        assert!(enc >= Encoding::B321);
    }

    #[test]
    fn run_flags_have_uniform_runs() {
        let v = run_flags(256, 3, 64, 11);
        assert_eq!(v.len(), 256);
        // Within one run all values equal.
        assert!(v[..64].iter().all(|&x| x == v[0]));
        assert!(v.iter().all(|&x| x < 3));
    }

    #[test]
    fn trip_counts_mix_base_and_outliers() {
        let v = trip_counts(1000, 4, 8, 5, 13);
        let outliers = v.iter().filter(|&&x| x == 12).count();
        assert!(outliers > 100 && outliers < 350, "got {outliers}");
        assert!(v.iter().all(|&x| x == 4 || x == 12));
    }

    #[test]
    fn random_flags_probability() {
        let v = random_flags(2000, 25, 17);
        let ones = v.iter().sum::<u32>();
        assert!((350..650).contains(&ones), "got {ones}");
    }
}
