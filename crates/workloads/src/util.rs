//! Shared kernel-building idioms used by every benchmark.

use gscalar_isa::{KernelBuilder, Operand, Reg, SReg};

/// Workload sizing: full size for the figure harness, reduced for unit
/// tests (debug-build friendly).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// The sizes used by the benchmark harness.
    Full,
    /// Small grids and short loops for tests.
    Test,
}

impl Scale {
    /// Picks `(full, test)` by scale.
    #[must_use]
    pub fn pick(self, full: u32, test: u32) -> u32 {
        match self {
            Scale::Full => full,
            Scale::Test => test,
        }
    }
}

/// Emits the canonical global-thread-id computation
/// (`ctaid.x * ntid.x + tid.x`).
pub fn global_tid(b: &mut KernelBuilder) -> Reg {
    let tid = b.s2r(SReg::TidX);
    let ctaid = b.s2r(SReg::CtaIdX);
    let ntid = b.s2r(SReg::NTidX);
    b.imad(ctaid.into(), ntid.into(), tid.into())
}

/// Emits `base + (idx << 2)` — the address of a 4-byte element.
pub fn elem_addr(b: &mut KernelBuilder, base: u64, idx: Reg) -> Reg {
    let off = b.shl(idx.into(), Operand::Imm(2));
    b.iadd(off.into(), Operand::Imm(base as u32))
}

/// Loads the `word`-th 4-byte value of the parameter block through a
/// warp-uniform address — a *scalar* memory instruction (all lanes read
/// the same location).
pub fn load_param(b: &mut KernelBuilder, word: u32) -> Reg {
    let a = b.mov(Operand::Imm(crate::gen::bufs::PARAMS as u32 + word * 4));
    b.ld_global(a, 0)
}

/// Loads a per-32-thread-group parameter: every 32-thread group of the
/// CTA reads `base[ctaid * groups_per_cta + tid/32]`. At warp size 32
/// the address is warp-uniform (a scalar load, like per-warp tile
/// metadata in real kernels); at warp size 64 the two merged groups
/// read different values, which is exactly the source of the paper's
/// Figure 10 half-scalar growth.
pub fn warp_group_param(b: &mut KernelBuilder, base: u64, groups_per_cta: u32) -> Reg {
    let tid = b.s2r(SReg::TidX);
    let ctaid = b.s2r(SReg::CtaIdX);
    let grp = b.shr(tid.into(), Operand::Imm(5));
    let idx = b.imad(ctaid.into(), Operand::Imm(groups_per_cta), grp.into());
    let addr = elem_addr(b, base, idx);
    b.ld_global(addr, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gscalar_isa::LaunchConfig;
    use gscalar_sim::memory::GlobalMemory;
    use gscalar_sim::{ArchConfig, Gpu, GpuConfig};

    #[test]
    fn scale_pick() {
        assert_eq!(Scale::Full.pick(30, 4), 30);
        assert_eq!(Scale::Test.pick(30, 4), 4);
    }

    #[test]
    fn global_tid_is_unique_across_grid() {
        let mut b = KernelBuilder::new("gid");
        let gid = global_tid(&mut b);
        let addr = elem_addr(&mut b, crate::gen::bufs::OUT, gid);
        let one = b.mov(Operand::Imm(1));
        b.st_global(addr, one, 0);
        b.exit();
        let k = b.build().unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        gpu.run(&k, LaunchConfig::linear(3, 64), &mut mem);
        for i in 0..(3 * 64) {
            assert_eq!(mem.read_u32(crate::gen::bufs::OUT + i * 4), 1, "gid {i}");
        }
    }

    #[test]
    fn param_load_is_scalar_memory() {
        let mut b = KernelBuilder::new("param");
        let p = load_param(&mut b, 2);
        b.iadd(p.into(), Operand::Imm(1));
        b.exit();
        let k = b.build().unwrap();
        let mut gpu = Gpu::new(GpuConfig::test_small(), ArchConfig::baseline());
        let mut mem = GlobalMemory::new();
        mem.write_u32(crate::gen::bufs::PARAMS + 8, 77);
        let stats = gpu.run(&k, LaunchConfig::linear(1, 32), &mut mem);
        assert_eq!(stats.instr.eligible_mem, 1);
        // The dependent add reads a scalar register: ALU-scalar.
        assert!(stats.instr.eligible_alu >= 1);
    }
}
