//! The 17 synthetic benchmarks of the G-Scalar evaluation (Table 2).
//!
//! The paper evaluates on Parboil and Rodinia CUDA binaries, which
//! cannot be executed here; each workload in this crate is a kernel
//! written in the [`gscalar_isa`] builder DSL that reproduces the
//! *value structure* of the corresponding benchmark's dominant kernel —
//! warp-uniform parameters, byte-level value similarity, divergence
//! patterns, SFU usage and memory intensity — since those are precisely
//! the properties G-Scalar exploits. Input data comes from seeded
//! deterministic [generators](gen).
//!
//! # Examples
//!
//! ```
//! use gscalar_workloads::{suite, Scale};
//!
//! let all = suite(Scale::Test);
//! assert_eq!(all.len(), 17);
//! assert!(all.iter().any(|w| w.abbr == "BP"));
//! ```

pub mod gen;
pub mod parboil;
pub mod rodinia;
pub mod util;

pub use util::Scale;

use gscalar_core::Workload;
use gscalar_isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, SReg};
use gscalar_sim::memory::GlobalMemory;

/// Benchmark abbreviations in Table 2 order (Rodinia, then Parboil).
pub const ABBRS: [&str; 17] = [
    "BT", "BP", "HW", "HS", "LC", "PF", "SR1", "SR2", // Rodinia
    "CC", "LBM", "MG", "MQ", "SAD", "MM", "MV", "ST", "ACF", // Parboil
];

/// Builds the full benchmark suite in Table 2 order.
#[must_use]
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![
        rodinia::btree(scale),
        rodinia::backprop(scale),
        rodinia::heartwall(scale),
        rodinia::hotspot(scale),
        rodinia::leukocyte(scale),
        rodinia::pathfinder(scale),
        rodinia::srad_1(scale),
        rodinia::srad_2(scale),
        parboil::cutcp(scale),
        parboil::lbm(scale),
        parboil::mri_grid(scale),
        parboil::mri_q(scale),
        parboil::sad(scale),
        parboil::sgemm(scale),
        parboil::spmv(scale),
        parboil::stencil(scale),
        parboil::tpacf(scale),
    ]
}

/// Builds one benchmark by its Table 2 abbreviation.
#[must_use]
pub fn by_abbr(abbr: &str, scale: Scale) -> Option<Workload> {
    suite(scale).into_iter().find(|w| w.abbr == abbr)
}

/// The divergent example kernel (paper Figure 7b), abbreviation `DIV`:
/// a branch on `tid < 8` whose taken path runs a scalar chain on a
/// warp-uniform value and whose other path does per-lane math, then a
/// store. Small and fixed-shape, it is the shared probe kernel of the
/// `trace` and `profile` tools and the profiler golden tests.
#[must_use]
pub fn divergent_example() -> Workload {
    let mut b = KernelBuilder::new("divergent");
    let tid = b.s2r(SReg::TidX);
    let omega = b.mov(Operand::imm_f32(1.85)); // uniform parameter
    let acc = b.mov_f32(0.0);
    let p = b.isetp(CmpOp::Lt, tid.into(), Operand::Imm(8));
    b.if_else(
        p.into(),
        |b| {
            // Path A: chain on the uniform omega → divergent-scalar.
            let c1 = b.fmul(omega.into(), Operand::imm_f32(0.5));
            let c2 = b.fadd(c1.into(), Operand::imm_f32(0.1));
            let c3 = b.fmul(c2.into(), c1.into());
            b.fadd_to(acc, acc.into(), c3.into());
        },
        |b| {
            // Path B: per-lane math → vector execution.
            let t = b.i2f(tid.into());
            let u = b.fmul(t.into(), Operand::imm_f32(0.25));
            b.fadd_to(acc, acc.into(), u.into());
        },
    );
    let off = b.shl(tid.into(), Operand::Imm(2));
    let addr = b.iadd(off.into(), Operand::Imm(0x1_0000));
    b.st_global(addr, acc, 0);
    b.exit();
    Workload::new(
        "divergent",
        "DIV",
        b.build().expect("kernel is valid"),
        LaunchConfig::linear(4, 64),
        GlobalMemory::new(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2() {
        let all = suite(Scale::Test);
        assert_eq!(all.len(), 17);
        let abbrs: Vec<&str> = all.iter().map(|w| w.abbr.as_str()).collect();
        assert_eq!(abbrs, ABBRS.to_vec());
        // Abbreviations are unique.
        let mut sorted = abbrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 17);
    }

    #[test]
    fn by_abbr_finds_and_misses() {
        assert!(by_abbr("LBM", Scale::Test).is_some());
        assert!(by_abbr("XXX", Scale::Test).is_none());
    }

    #[test]
    fn divergent_example_actually_diverges() {
        use gscalar_core::{Arch, Runner};
        use gscalar_sim::GpuConfig;
        let w = divergent_example();
        assert_eq!(w.abbr, "DIV");
        let report = Runner::new(GpuConfig::test_small()).run(&w, Arch::GScalar);
        assert!(report.stats.instr.divergent_instrs > 0);
        assert!(report.stats.instr.executed_scalar > 0);
    }

    #[test]
    fn kernels_fit_register_and_occupancy_budget() {
        for w in suite(Scale::Test) {
            // 56 registers still leaves ≥18 resident warps per SM
            // (1024 vector registers / SM); the real LBM kernel is the
            // suite's register hog too.
            assert!(
                w.kernel.num_regs() <= 56,
                "{} uses {} registers",
                w.abbr,
                w.kernel.num_regs()
            );
        }
    }
}
