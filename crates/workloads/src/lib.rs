//! The 17 synthetic benchmarks of the G-Scalar evaluation (Table 2).
//!
//! The paper evaluates on Parboil and Rodinia CUDA binaries, which
//! cannot be executed here; each workload in this crate is a kernel
//! written in the [`gscalar_isa`] builder DSL that reproduces the
//! *value structure* of the corresponding benchmark's dominant kernel —
//! warp-uniform parameters, byte-level value similarity, divergence
//! patterns, SFU usage and memory intensity — since those are precisely
//! the properties G-Scalar exploits. Input data comes from seeded
//! deterministic [generators](gen).
//!
//! # Examples
//!
//! ```
//! use gscalar_workloads::{suite, Scale};
//!
//! let all = suite(Scale::Test);
//! assert_eq!(all.len(), 17);
//! assert!(all.iter().any(|w| w.abbr == "BP"));
//! ```

pub mod gen;
pub mod parboil;
pub mod rodinia;
pub mod util;

pub use util::Scale;

use gscalar_core::Workload;

/// Benchmark abbreviations in Table 2 order (Rodinia, then Parboil).
pub const ABBRS: [&str; 17] = [
    "BT", "BP", "HW", "HS", "LC", "PF", "SR1", "SR2", // Rodinia
    "CC", "LBM", "MG", "MQ", "SAD", "MM", "MV", "ST", "ACF", // Parboil
];

/// Builds the full benchmark suite in Table 2 order.
#[must_use]
pub fn suite(scale: Scale) -> Vec<Workload> {
    vec![
        rodinia::btree(scale),
        rodinia::backprop(scale),
        rodinia::heartwall(scale),
        rodinia::hotspot(scale),
        rodinia::leukocyte(scale),
        rodinia::pathfinder(scale),
        rodinia::srad_1(scale),
        rodinia::srad_2(scale),
        parboil::cutcp(scale),
        parboil::lbm(scale),
        parboil::mri_grid(scale),
        parboil::mri_q(scale),
        parboil::sad(scale),
        parboil::sgemm(scale),
        parboil::spmv(scale),
        parboil::stencil(scale),
        parboil::tpacf(scale),
    ]
}

/// Builds one benchmark by its Table 2 abbreviation.
#[must_use]
pub fn by_abbr(abbr: &str, scale: Scale) -> Option<Workload> {
    suite(scale).into_iter().find(|w| w.abbr == abbr)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table2() {
        let all = suite(Scale::Test);
        assert_eq!(all.len(), 17);
        let abbrs: Vec<&str> = all.iter().map(|w| w.abbr.as_str()).collect();
        assert_eq!(abbrs, ABBRS.to_vec());
        // Abbreviations are unique.
        let mut sorted = abbrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 17);
    }

    #[test]
    fn by_abbr_finds_and_misses() {
        assert!(by_abbr("LBM", Scale::Test).is_some());
        assert!(by_abbr("XXX", Scale::Test).is_none());
    }

    #[test]
    fn kernels_fit_register_and_occupancy_budget() {
        for w in suite(Scale::Test) {
            // 56 registers still leaves ≥18 resident warps per SM
            // (1024 vector registers / SM); the real LBM kernel is the
            // suite's register hog too.
            assert!(
                w.kernel.num_regs() <= 56,
                "{} uses {} registers",
                w.abbr,
                w.kernel.num_regs()
            );
        }
    }
}
