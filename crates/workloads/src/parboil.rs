//! Synthetic Parboil-suite kernels (Table 2, right column).

use gscalar_core::Workload;
use gscalar_isa::{CmpOp, KernelBuilder, LaunchConfig, Operand, SReg};
use gscalar_sim::memory::GlobalMemory;

use crate::gen::{self, bufs};
use crate::util::{elem_addr, global_tid, load_param, warp_group_param, Scale};

/// `cutcp` (CC): cutoff Coulomb potential — every thread scans the same
/// atom list (scalar loads), computes a per-thread distance, and enters
/// a divergent cutoff branch containing an SFU `rsqrt` plus
/// uniform-charge scalar math.
#[must_use]
pub fn cutcp(scale: Scale) -> Workload {
    let ctas = scale.pick(52, 3);
    let block = 192;
    let atoms = scale.pick(16, 4);
    let mut b = KernelBuilder::new("cutcp");
    let gid = global_tid(&mut b);
    let xaddr = elem_addr(&mut b, bufs::A, gid);
    let x = b.ld_global(xaddr, 0);
    let natoms = load_param(&mut b, 0);
    let cutoff2 = load_param(&mut b, 1);
    let acc = b.mov_f32(0.0);
    let a = b.mov(Operand::Imm(0));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, a.into(), natoms.into()).into(),
        |b| {
            // Atom position/charge: warp-uniform (scalar) loads.
            let aoff = b.shl(a.into(), Operand::Imm(2));
            let abase = b.iadd(aoff.into(), Operand::Imm(bufs::B as u32));
            let ax = b.ld_global(abase, 0);
            // Uniform charge and cutoff normalization: scalar ALU + SFU.
            let aq = b.fmul(ax.into(), Operand::imm_f32(0.125));
            let cnorm = b.rsqrt(cutoff2.into());
            // Per-thread distance.
            let dx = b.fsub(x.into(), ax.into());
            let r2 = b.fmul(dx.into(), dx.into());
            let p = b.fsetp(CmpOp::Lt, r2.into(), cutoff2.into());
            b.if_then(p.into(), |b| {
                let s = b.rsqrt(r2.into());
                // Uniform charge scaling: divergent-scalar.
                let q2 = b.fmul(aq.into(), cnorm.into());
                let q3 = b.fadd(q2.into(), Operand::imm_f32(0.01));
                let e = b.fmul(s.into(), q3.into());
                b.fadd_to(acc, acc.into(), e.into());
            });
            b.iadd_to(a, a.into(), Operand::Imm(1));
        },
    );
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, acc, 0);
    b.exit();
    let kernel = b.build().expect("cutcp kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(bufs::A, &gen::f32_uniform(n_threads, 0.0, 8.0, 0xCC));
    mem.write_f32_slice(bufs::B, &gen::f32_uniform(atoms as usize, 0.5, 7.5, 0xCD));
    mem.write_u32(bufs::PARAMS, atoms);
    mem.write_f32(bufs::PARAMS + 4, 4.0);
    Workload::new(
        "cutcp",
        "CC",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `lbm` (LBM): lattice-Boltzmann collision — memory-dominated (eight
/// distribution loads and stores) with a fluid/obstacle branch whose
/// relaxation-constant chain is the paper's flagship divergent-scalar
/// case (~30% divergent-scalar, Section 5.2).
#[must_use]
pub fn lbm(scale: Scale) -> Workload {
    let ctas = scale.pick(48, 3);
    let block = 192;
    let mut b = KernelBuilder::new("lbm");
    let gid = global_tid(&mut b);
    let faddr = elem_addr(&mut b, bufs::A, gid);
    let flag_addr = elem_addr(&mut b, bufs::C, gid);
    let flag = b.ld_global(flag_addr, 0);
    let omega = load_param(&mut b, 0);
    let stride = 4 * 8192i32; // distribution-plane stride in bytes
                              // Load 6 distribution planes (stand-ins for the 19 of D3Q19).
    let f0 = b.ld_global(faddr, 0);
    let f1 = b.ld_global(faddr, stride);
    let f2 = b.ld_global(faddr, 2 * stride);
    let f3 = b.ld_global(faddr, 3 * stride);
    let f4 = b.ld_global(faddr, 4 * stride);
    let f5 = b.ld_global(faddr, 5 * stride);
    let r1 = b.fadd(f0.into(), f1.into());
    let r2 = b.fadd(f2.into(), f3.into());
    let r3 = b.fadd(f4.into(), f5.into());
    let r12 = b.fadd(r1.into(), r2.into());
    let rho = b.fadd(r12.into(), r3.into());
    let p = b.isetp(CmpOp::Eq, flag.into(), Operand::Imm(0));
    b.if_else(
        p.into(),
        |b| {
            // Fluid collision: relaxation-constant chain on the uniform
            // omega — divergent-scalar in straddling warps.
            let c1 = b.fmul(omega.into(), Operand::imm_f32(1.85));
            let c2 = b.fadd(c1.into(), Operand::imm_f32(0.1));
            let c3 = b.fmul(c2.into(), Operand::imm_f32(0.25));
            let c4 = b.fadd(c3.into(), Operand::imm_f32(0.01));
            let c5 = b.fmul(c4.into(), c2.into());
            let c6 = b.fadd(c5.into(), c1.into());
            let c7 = b.fmul(c6.into(), Operand::imm_f32(0.5));
            let c8 = b.fadd(c7.into(), Operand::imm_f32(0.02));
            let c9 = b.fmul(c8.into(), c3.into());
            let c10 = b.fadd(c9.into(), c4.into());
            let c11 = b.fmul(c10.into(), Operand::imm_f32(0.3));
            let cr = b.rcp(c11.into());
            let c5 = b.fadd(cr.into(), c5.into());
            // Vector relaxation toward equilibrium.
            let eq = b.fmul(rho.into(), c5.into());
            let d0 = b.fsub(eq.into(), f0.into());
            b.ffma_to(f0, d0.into(), omega.into(), f0.into());
            let d1 = b.fsub(eq.into(), f1.into());
            b.ffma_to(f1, d1.into(), omega.into(), f1.into());
            let d2 = b.fsub(eq.into(), f2.into());
            b.ffma_to(f2, d2.into(), omega.into(), f2.into());
            let d3 = b.fsub(eq.into(), f3.into());
            b.ffma_to(f3, d3.into(), omega.into(), f3.into());
        },
        |b| {
            // Obstacle: bounce-back swaps plus uniform bookkeeping.
            let t0 = b.mov(f0.into());
            b.mov_to(f0, f1.into());
            b.mov_to(f1, t0.into());
            let t2 = b.mov(f2.into());
            b.mov_to(f2, f3.into());
            b.mov_to(f3, t2.into());
            let w1 = b.fadd(omega.into(), Operand::imm_f32(0.3));
            let w2 = b.fmul(w1.into(), Operand::imm_f32(0.9));
            let w3 = b.fadd(w2.into(), Operand::imm_f32(0.05));
            let w4 = b.fmul(w3.into(), w1.into());
            let w5 = b.fadd(w4.into(), w2.into());
            let _w6 = b.fmul(w5.into(), Operand::imm_f32(0.7));
        },
    );
    let oaddr = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(oaddr, f0, 0);
    b.st_global(oaddr, f1, stride);
    b.st_global(oaddr, f2, 2 * stride);
    b.st_global(oaddr, f3, 3 * stride);
    b.st_global(oaddr, f4, 4 * stride);
    b.st_global(oaddr, f5, 5 * stride);
    b.exit();
    let kernel = b.build().expect("lbm kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    for plane in 0..6u64 {
        mem.write_f32_slice(
            bufs::A + plane * 4 * 8192,
            &gen::f32_uniform(n_threads, 0.05, 0.15, 0x7B + plane),
        );
    }
    // Alternating 24-cell runs: every warp straddles a fluid/obstacle
    // boundary and runs both collision paths divergently.
    mem.write_u32_slice(bufs::C, &gen::alternating_flags(n_threads, 24));
    mem.write_f32(bufs::PARAMS, 1.85);
    Workload::new("lbm", "LBM", kernel, LaunchConfig::linear(ctas, block), mem)
}

/// `mri-grid` (MG): gridding scatter — sample coordinates map to grid
/// cells through small-integer index arithmetic (the 3-/2-byte-heavy
/// register mix of Figure 8), with few scalar registers.
#[must_use]
pub fn mri_grid(scale: Scale) -> Workload {
    let ctas = scale.pick(52, 3);
    let block = 192;
    let neighbors = scale.pick(6, 2);
    let mut b = KernelBuilder::new("mri-grid");
    let gid = global_tid(&mut b);
    let saddr = elem_addr(&mut b, bufs::A, gid);
    let x = b.ld_global(saddr, 0);
    let scalef = load_param(&mut b, 0);
    // Grid cell index: per-thread small integer.
    let xf = b.fmul(x.into(), scalef.into());
    let cell = b.f2i(xf.into());
    let c4 = b.shl(cell.into(), Operand::Imm(2));
    let nn = load_param(&mut b, 1);
    let g = b.mov(Operand::Imm(0));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, g.into(), nn.into()).into(),
        |b| {
            let woff = b.imad(gid.into(), nn.into(), g.into());
            let waddr = elem_addr(b, bufs::B, woff);
            let w = b.ld_global(waddr, 0);
            // Scatter target: small-int address math. The cell index
            // perturbs a per-thread slot so deposits never collide
            // (the real code uses atomics; collision-free slots keep
            // the simulation deterministic for differential testing).
            let slot = b.shl(gid.into(), Operand::Imm(3));
            let goff = b.shl(g.into(), Operand::Imm(2));
            let cmix = b.and(c4.into(), Operand::Imm(3));
            let tg = b.iadd(goff.into(), cmix.into());
            let tgt = b.iadd(slot.into(), tg.into());
            let taddr = b.iadd(tgt.into(), Operand::Imm(bufs::OUT as u32));
            // Deposit only significant weights: per-lane divergence.
            let pw = b.fsetp(CmpOp::Gt, w.into(), Operand::imm_f32(0.35));
            b.if_then(pw.into(), |b| {
                let old = b.ld_global(taddr, 0);
                let upd = b.fadd(old.into(), w.into());
                b.st_global(taddr, upd, 0);
            });
            b.iadd_to(g, g.into(), Operand::Imm(1));
        },
    );
    b.exit();
    let kernel = b.build().expect("mri-grid kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(bufs::A, &gen::f32_uniform(n_threads, 0.0, 1000.0, 0x36));
    mem.write_f32_slice(
        bufs::B,
        &gen::f32_uniform(n_threads * neighbors as usize, 0.0, 1.0, 0x37),
    );
    mem.write_f32(bufs::PARAMS, 4.0);
    mem.write_u32(bufs::PARAMS + 4, neighbors);
    Workload::new(
        "mri-grid",
        "MG",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `mri-q` (MQ): Q-matrix computation — non-divergent, with warp-uniform
/// k-space sample loads (scalar memory) feeding per-thread sin/cos SFU
/// work.
#[must_use]
pub fn mri_q(scale: Scale) -> Workload {
    let ctas = scale.pick(52, 3);
    let block = 192;
    let ksamples = scale.pick(10, 3);
    let mut b = KernelBuilder::new("mri-q");
    let gid = global_tid(&mut b);
    let xaddr = elem_addr(&mut b, bufs::A, gid);
    let x = b.ld_global(xaddr, 0);
    let nk = load_param(&mut b, 0);
    // Per-coil (32-thread group) phase offset.
    let phase = warp_group_param(&mut b, bufs::PARAMS + 0x1000, 8);
    let qr = b.mov_f32(0.0);
    let qi = b.mov_f32(0.0);
    let k = b.mov(Operand::Imm(0));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, k.into(), nk.into()).into(),
        |b| {
            // k-space sample: scalar load + scalar magnitude math.
            let koff = b.shl(k.into(), Operand::Imm(2));
            let kaddr = b.iadd(koff.into(), Operand::Imm(bufs::B as u32));
            let kx = b.ld_global(kaddr, 0);
            let m2 = b.fmul(kx.into(), kx.into());
            let norm = b.rcp(m2.into());
            let ph = b.fadd(phase.into(), norm.into());
            let m3 = b.fmul(ph.into(), Operand::imm_f32(0.5));
            // Per-thread phase.
            let arg = b.fmul(kx.into(), x.into());
            let s = b.sin(arg.into());
            let c = b.cos(arg.into());
            b.ffma_to(qr, c.into(), m3.into(), qr.into());
            b.ffma_to(qi, s.into(), m3.into(), qi.into());
            b.iadd_to(k, k.into(), Operand::Imm(1));
        },
    );
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, qr, 0);
    let out2 = elem_addr(&mut b, bufs::OUT2, gid);
    b.st_global(out2, qi, 0);
    b.exit();
    let kernel = b.build().expect("mri-q kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(bufs::A, &gen::f32_uniform(n_threads, -1.0, 1.0, 0x91));
    mem.write_f32_slice(
        bufs::B,
        &gen::f32_uniform(2 * ksamples as usize, 0.1, 2.0, 0x92),
    );
    mem.write_u32(bufs::PARAMS, ksamples);
    mem.write_f32_slice(
        bufs::PARAMS + 0x1000,
        &gen::f32_uniform(8 * ctas as usize, 0.0, 0.2, 0x93),
    );
    Workload::new(
        "mri-q",
        "MQ",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `sad` (SAD): sum-of-absolute-differences block matching — uniform
/// search-position loops around per-pixel vector work, with a
/// divergent best-candidate update whose bookkeeping is scalar
/// (19% divergent-scalar, Section 5.2).
#[must_use]
pub fn sad(scale: Scale) -> Workload {
    let ctas = scale.pick(48, 3);
    let block = 192;
    let positions = scale.pick(12, 3);
    let mut b = KernelBuilder::new("sad");
    let gid = global_tid(&mut b);
    let faddr = elem_addr(&mut b, bufs::A, gid);
    let cur = b.ld_global(faddr, 0);
    let npos = load_param(&mut b, 0);
    // Per-macroblock (32-thread group) search bias.
    let bias = warp_group_param(&mut b, bufs::PARAMS + 0x1000, 8);
    let best = b.mov(Operand::Imm(0x7FFF_FFFF));
    let bestpos = b.mov(Operand::Imm(0));
    let pos = b.mov(Operand::Imm(0));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, pos.into(), npos.into()).into(),
        |b| {
            // Reference pixel at this search position.
            let ridx = b.iadd(gid.into(), pos.into());
            let raddr = elem_addr(b, bufs::B, ridx);
            let refv = b.ld_global(raddr, 0);
            let d = b.isub(cur.into(), refv.into());
            let bb = b.iadd(bias.into(), Operand::Imm(1));
            let b2 = b.shr(bb.into(), Operand::Imm(1));
            let ad0 = b.iabs(d.into());
            let ad = b.iadd(ad0.into(), b2.into());
            let p = b.isetp(CmpOp::Lt, ad.into(), best.into());
            b.if_then(p.into(), |b| {
                b.mov_to(best, ad.into());
                // Candidate bookkeeping on the uniform position:
                // divergent-scalar.
                b.mov_to(bestpos, pos.into());
                let biased = b.iadd(pos.into(), Operand::Imm(3));
                let _scaled = b.shl(biased.into(), Operand::Imm(1));
            });
            b.iadd_to(pos, pos.into(), Operand::Imm(1));
        },
    );
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, bestpos, 0);
    b.exit();
    let kernel = b.build().expect("sad kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_u32_slice(bufs::A, &gen::small_ints(n_threads, 256, 0x5A));
    mem.write_u32_slice(
        bufs::B,
        &gen::small_ints(n_threads + positions as usize, 256, 0x5B),
    );
    mem.write_u32(bufs::PARAMS, positions);
    mem.write_u32_slice(
        bufs::PARAMS + 0x1000,
        &gen::small_ints(8 * ctas as usize, 16, 0x5C),
    );
    Workload::new("sad", "SAD", kernel, LaunchConfig::linear(ctas, block), mem)
}

/// `sgemm` (MM): tiled matrix multiply through shared memory — fully
/// non-divergent, loop bookkeeping and tile offsets scalar, the
/// half-warp-uniform tile row (`tid >> 4`) feeding half-scalar address
/// math.
#[must_use]
pub fn sgemm(scale: Scale) -> Workload {
    let ctas = scale.pick(48, 3);
    let block: u32 = 256;
    let tiles = scale.pick(6, 2);
    let tile: u32 = 16;
    let mut b = KernelBuilder::new("sgemm");
    b.shared_mem(2 * tile * tile * 4);
    let gid = global_tid(&mut b);
    let tid = b.s2r(SReg::TidX);
    let tx = b.and(tid.into(), Operand::Imm(tile - 1));
    let ty = b.shr(tid.into(), Operand::Imm(4)); // half-warp uniform
    let ntiles = load_param(&mut b, 0);
    let width = load_param(&mut b, 1);
    let acc = b.mov_f32(0.0);
    let kt = b.mov(Operand::Imm(0));
    // Shared-memory byte offsets for this thread's tile slots.
    let tyrow = b.shl(ty.into(), Operand::Imm(4)); // ty*16 — half-scalar
    let slot = b.iadd(tyrow.into(), tx.into());
    let soff = b.shl(slot.into(), Operand::Imm(2));
    let bbase = b.iadd(soff.into(), Operand::Imm(tile * tile * 4));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, kt.into(), ntiles.into()).into(),
        |b| {
            // Global tile loads (A row-major, B column tile).
            let koff = b.imul(kt.into(), Operand::Imm(tile));
            let arow = b.imad(ty.into(), width.into(), koff.into()); // half-scalar-ish
            let aidx = b.iadd(arow.into(), tx.into());
            let gaddr = elem_addr(b, bufs::A, aidx);
            let av = b.ld_global(gaddr, 0);
            let bidx = b.iadd(aidx.into(), gid.into());
            let baddr = elem_addr(b, bufs::B, bidx);
            let bv = b.ld_global(baddr, 0);
            b.st_shared(soff, av, 0);
            b.st_shared(bbase, bv, 0);
            b.bar();
            // Inner product over the tile; the A-tile address walks a
            // half-warp-uniform register.
            let kk = b.mov(Operand::Imm(0));
            let aor = b.shl(tyrow.into(), Operand::Imm(2));
            b.while_loop(
                |b| b.isetp(CmpOp::Lt, kk.into(), Operand::Imm(tile)).into(),
                |b| {
                    let a = b.ld_shared(aor, 0);
                    b.iadd_to(aor, aor.into(), Operand::Imm(4));
                    let bi = b.shl(kk.into(), Operand::Imm(4));
                    let bj = b.iadd(bi.into(), tx.into());
                    let bo = b.shl(bj.into(), Operand::Imm(2));
                    let bb = b.ld_shared(bo, tile as i32 * tile as i32 * 4);
                    b.ffma_to(acc, a.into(), bb.into(), acc.into());
                    b.iadd_to(kk, kk.into(), Operand::Imm(1));
                },
            );
            b.bar();
            b.iadd_to(kt, kt.into(), Operand::Imm(1));
        },
    );
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, acc, 0);
    b.exit();
    let kernel = b.build().expect("sgemm kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(bufs::A, &gen::f32_uniform(n_threads + 1024, 0.1, 1.0, 0x71));
    mem.write_f32_slice(
        bufs::B,
        &gen::f32_uniform(2 * n_threads + 1024, 0.1, 1.0, 0x72),
    );
    mem.write_u32(bufs::PARAMS, tiles);
    mem.write_u32(bufs::PARAMS + 4, 64);
    Workload::new(
        "sgemm",
        "MM",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `spmv` (MV): CSR sparse matrix-vector product — per-row loops with
/// occasional long rows (tail divergence), column-index gathers that
/// keep registers in the 3-/2-byte similarity classes, and few scalars.
#[must_use]
pub fn spmv(scale: Scale) -> Workload {
    let ctas = scale.pick(48, 3);
    let block = 192;
    let base_nnz = scale.pick(8, 3);
    let mut b = KernelBuilder::new("spmv");
    let gid = global_tid(&mut b);
    // Row extent: start = gid * max_nnz; length varies per row.
    let laddr = elem_addr(&mut b, bufs::C, gid);
    let len = b.ld_global(laddr, 0);
    let maxnnz = load_param(&mut b, 0);
    // Per-row-group scaling factor (warp-uniform at warp size 32).
    let scale = warp_group_param(&mut b, bufs::PARAMS + 0x1000, 8);
    let start = b.imul(gid.into(), maxnnz.into());
    let end = b.iadd(start.into(), len.into());
    let acc = b.mov_f32(0.0);
    let sacc = b.mov_f32(0.0);
    let j = b.mov(Operand::Imm(0));
    b.mov_to(j, start.into());
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, j.into(), end.into()).into(),
        |b| {
            let caddr = elem_addr(b, bufs::A, j);
            let col = b.ld_global(caddr, 0);
            let vaddr = elem_addr(b, bufs::B, j);
            let v = b.ld_global(vaddr, 0);
            let xaddr = elem_addr(b, bufs::OUT2, col);
            let xv = b.ld_global(xaddr, 0);
            b.ffma_to(acc, v.into(), xv.into(), acc.into());
            // Row-group normalization chain (operates on `scale` only).
            let s1 = b.fmul(scale.into(), Operand::imm_f32(1.0 / 64.0));
            b.fadd_to(sacc, sacc.into(), s1.into());
            b.iadd_to(j, j.into(), Operand::Imm(1));
        },
    );
    b.fadd_to(acc, acc.into(), sacc.into());
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, acc, 0);
    b.exit();
    let kernel = b.build().expect("spmv kernel is valid");

    let n_threads = (ctas * block) as usize;
    let max_nnz = base_nnz * 2;
    let mut mem = GlobalMemory::new();
    mem.write_u32_slice(
        bufs::C,
        &gen::warp_uniform_trips(n_threads, base_nnz, base_nnz, 0x3C),
    );
    mem.write_u32_slice(
        bufs::A,
        &gen::small_ints(n_threads * max_nnz as usize, 4096, 0x3D),
    );
    mem.write_f32_slice(
        bufs::B,
        &gen::f32_uniform(n_threads * max_nnz as usize, 0.1, 1.0, 0x3E),
    );
    mem.write_f32_slice(bufs::OUT2, &gen::f32_uniform(4096, 0.1, 1.0, 0x3F));
    mem.write_f32_slice(
        bufs::PARAMS + 0x1000,
        &gen::f32_uniform(8 * ctas as usize, 0.5, 1.5, 0x40),
    );
    mem.write_u32(bufs::PARAMS, max_nnz);
    Workload::new("spmv", "MV", kernel, LaunchConfig::linear(ctas, block), mem)
}

/// `stencil` (ST): 7-point 3-D stencil — non-divergent, uniform
/// coefficients, perfectly coalesced neighbor loads.
#[must_use]
pub fn stencil(scale: Scale) -> Workload {
    let ctas = scale.pick(56, 3);
    let block = 256;
    let width: i32 = 64;
    let plane: i32 = 64 * 64;
    let mut b = KernelBuilder::new("stencil");
    let gid = global_tid(&mut b);
    let caddr = elem_addr(&mut b, bufs::A, gid);
    let c = b.ld_global(caddr, 0);
    let xm = b.ld_global(caddr, -4);
    let xp = b.ld_global(caddr, 4);
    let ym = b.ld_global(caddr, -4 * width);
    let yp = b.ld_global(caddr, 4 * width);
    let zm = b.ld_global(caddr, -4 * plane);
    let zp = b.ld_global(caddr, 4 * plane);
    let c0 = load_param(&mut b, 0);
    let c1 = load_param(&mut b, 1);
    // Uniform coefficient prep: scalar ALU.
    let cn = b.rsqrt(c0.into());
    let c0h = b.fmul(cn.into(), Operand::imm_f32(0.5));
    let c1h = b.fmul(c1.into(), Operand::imm_f32(0.1666));
    let s1 = b.fadd(xm.into(), xp.into());
    let s2 = b.fadd(ym.into(), yp.into());
    let s3 = b.fadd(zm.into(), zp.into());
    let s12 = b.fadd(s1.into(), s2.into());
    let nsum = b.fadd(s12.into(), s3.into());
    let t1 = b.fmul(c.into(), c0h.into());
    let r = b.ffma(nsum.into(), c1h.into(), t1.into());
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, r, 0);
    b.exit();
    let kernel = b.build().expect("stencil kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(
        bufs::A,
        &gen::f32_uniform(n_threads + plane as usize, 1.0, 2.0, 0x57),
    );
    mem.write_f32(bufs::PARAMS, 0.6);
    mem.write_f32(bufs::PARAMS + 4, 0.4);
    Workload::new(
        "stencil",
        "ST",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}

/// `tpacf` (ACF): two-point angular correlation — per-thread dot
/// products binned against warp-uniform bin boundaries (scalar loads
/// and compares) with a divergent histogram update.
#[must_use]
pub fn tpacf(scale: Scale) -> Workload {
    let ctas = scale.pick(48, 3);
    let block = 192;
    let samples = scale.pick(12, 3);
    let mut b = KernelBuilder::new("tpacf");
    let gid = global_tid(&mut b);
    let daddr = elem_addr(&mut b, bufs::A, gid);
    let d = b.ld_global(daddr, 0);
    let ns = load_param(&mut b, 0);
    let hist = b.mov(Operand::Imm(0));
    let jj = b.mov(Operand::Imm(0));
    b.while_loop(
        |b| b.isetp(CmpOp::Lt, jj.into(), ns.into()).into(),
        |b| {
            // Random-catalog sample: scalar load.
            let roff = b.shl(jj.into(), Operand::Imm(2));
            let raddr = b.iadd(roff.into(), Operand::Imm(bufs::B as u32));
            let r = b.ld_global(raddr, 0);
            let dot = b.fmul(d.into(), r.into());
            // Bin boundary: scalar load + scalar threshold math.
            let bt = b.ld_global(raddr, 4096);
            let btl = b.lg2(bt.into());
            let bt2 = b.ffma(btl.into(), Operand::imm_f32(0.01), bt.into());
            let p = b.fsetp(CmpOp::Lt, dot.into(), bt2.into());
            b.if_then(p.into(), |b| {
                // Divergent histogram bookkeeping: the bin index chain
                // on uniform data is divergent-scalar.
                let bin = b.iadd(jj.into(), Operand::Imm(1));
                let _sc = b.shl(bin.into(), Operand::Imm(1));
                b.iadd_to(hist, hist.into(), Operand::Imm(1));
            });
            b.iadd_to(jj, jj.into(), Operand::Imm(1));
        },
    );
    let out = elem_addr(&mut b, bufs::OUT, gid);
    b.st_global(out, hist, 0);
    b.exit();
    let kernel = b.build().expect("tpacf kernel is valid");

    let n_threads = (ctas * block) as usize;
    let mut mem = GlobalMemory::new();
    mem.write_f32_slice(bufs::A, &gen::f32_uniform(n_threads, 0.0, 1.0, 0xAC));
    mem.write_f32_slice(bufs::B, &gen::f32_uniform(samples as usize, 0.0, 1.0, 0xAD));
    mem.write_f32_slice(
        bufs::B + 4096,
        &gen::f32_uniform(samples as usize, 0.3, 0.8, 0xAE),
    );
    mem.write_u32(bufs::PARAMS, samples);
    Workload::new(
        "tpacf",
        "ACF",
        kernel,
        LaunchConfig::linear(ctas, block),
        mem,
    )
}
