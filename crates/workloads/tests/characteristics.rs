//! Per-benchmark characteristic guards: each synthetic kernel must keep
//! the qualitative properties of the real application it stands in for
//! (the properties every G-Scalar result depends on). Bounds are loose
//! — the reduced test scale shifts fractions — but the *shape* must not
//! silently regress when kernels are edited.

use gscalar_core::Arch;
use gscalar_sim::{Gpu, GpuConfig, Stats};
use gscalar_workloads::{by_abbr, Scale};

fn stats(abbr: &str) -> Stats {
    let w = by_abbr(abbr, Scale::Test).expect("benchmark exists");
    let mut gpu = Gpu::new(GpuConfig::test_small(), Arch::Baseline.config());
    let mut mem = w.memory.clone();
    gpu.run(&w.kernel, w.launch, &mut mem)
}

fn frac(n: u64, d: u64) -> f64 {
    n as f64 / d.max(1) as f64
}

#[test]
fn backprop_is_sfu_scalar_and_half_scalar() {
    let s = stats("BP");
    let wi = s.instr.warp_instrs;
    assert!(frac(s.instr.sfu_instrs, wi) > 0.08, "BP needs SFU work");
    assert!(
        frac(s.instr.eligible_sfu, s.instr.sfu_instrs) > 0.8,
        "BP's SFU arguments are warp-uniform"
    );
    assert!(
        frac(s.instr.eligible_half, wi) > 0.03,
        "BP's momentum term is half-warp uniform"
    );
    assert!(s.divergent_fraction() < 0.2, "BP is mostly convergent");
}

#[test]
fn heartwall_and_lbm_are_heavily_divergent() {
    for abbr in ["HW", "LBM"] {
        let s = stats(abbr);
        assert!(
            s.divergent_fraction() > 0.3,
            "{abbr} divergence {:.2} too low",
            s.divergent_fraction()
        );
        assert!(
            s.instr.eligible_divergent > 0,
            "{abbr} must expose divergent-scalar work"
        );
    }
}

#[test]
fn lbm_divergent_scalar_dominates_its_eligibility() {
    let s = stats("LBM");
    let others = s.instr.eligible_alu + s.instr.eligible_sfu + s.instr.eligible_mem;
    assert!(
        s.instr.eligible_divergent >= others,
        "LBM: divergent-scalar ({}) should dominate ({} others)",
        s.instr.eligible_divergent,
        others
    );
}

#[test]
fn the_nondivergent_benchmarks_stay_nondivergent() {
    // Section 5.1 lists mri-q, sgemm and spmv as non-divergent.
    for abbr in ["MQ", "MM", "MV", "ST", "SR2"] {
        let s = stats(abbr);
        assert!(
            s.divergent_fraction() < 0.15,
            "{abbr} divergence {:.2} too high",
            s.divergent_fraction()
        );
    }
}

#[test]
fn btree_is_scalar_heavy() {
    let s = stats("BT");
    assert!(
        frac(s.instr.eligible_alu, s.instr.warp_instrs) > 0.3,
        "BT's traversal chain is warp-uniform"
    );
    assert!(s.instr.eligible_mem > 0, "BT's key loads are scalar memory");
}

#[test]
fn spmv_is_value_similar_but_rarely_scalar() {
    let s = stats("MV");
    let f = s.rf.histogram.fractions();
    let similar = f[1] + f[2] + f[3]; // 3-/2-/1-byte categories
    assert!(
        similar > 0.3,
        "MV needs byte-similar registers, got {similar:.2}"
    );
    assert!(f[0] < 0.35, "MV scalars should be rare, got {:.2}", f[0]);
}

#[test]
fn sgemm_uses_shared_memory_and_barriers() {
    let s = stats("MM");
    assert!(s.mem.shared_accesses > 0);
    assert!(frac(s.instr.eligible_half, s.instr.warp_instrs) > 0.05);
}

#[test]
fn lbm_is_memory_heavy() {
    let s = stats("LBM");
    assert!(
        frac(s.instr.mem_instrs, s.instr.warp_instrs) > 0.2,
        "LBM moves many distribution values"
    );
}

#[test]
fn leukocyte_uses_long_latency_division() {
    let w = by_abbr("LC", Scale::Test).expect("benchmark exists");
    let has_div = w.kernel.instrs().iter().any(|i| {
        matches!(
            i.kind,
            gscalar_isa::InstrKind::Alu {
                op: gscalar_isa::AluOp::IDiv,
                ..
            }
        )
    });
    assert!(
        has_div,
        "LC must carry the IDIV that makes it latency-bound"
    );
    // Few CTAs: limited latency hiding (the Section 5.4 story).
    assert!(w.launch.grid.count() <= 16);
}

#[test]
fn every_benchmark_has_meaningful_scalar_eligibility() {
    for abbr in gscalar_workloads::ABBRS {
        let s = stats(abbr);
        let total = frac(s.instr.eligible_total(), s.instr.warp_instrs);
        assert!(
            total > 0.02,
            "{abbr}: only {:.1}% scalar-eligible",
            100.0 * total
        );
        assert!(total < 0.9, "{abbr}: suspiciously scalar ({:.2})", total);
    }
}

#[test]
fn compression_beats_raw_on_every_benchmark() {
    for abbr in gscalar_workloads::ABBRS {
        let s = stats(abbr);
        assert!(
            s.rf.ours_arrays < s.rf.baseline_arrays,
            "{abbr}: compression saved no array activations"
        );
        assert!(s.rf.ours_ratio() > 1.0, "{abbr}: no compression achieved");
    }
}
