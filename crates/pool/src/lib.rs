//! Shared thread-pool primitives for the G-Scalar workspace.
//!
//! Two executors live here, one per parallelism grain:
//!
//! - [`run_indexed`]: a work-stealing pool over an index-addressed task
//!   grid (whole simulations, milliseconds to minutes each). Used by
//!   `gscalar-sweep` to parallelize *across* experiments.
//! - [`run_epochs`]: a persistent-worker gang executor for barrier-
//!   synchronized epochs (one simulated cycle, microseconds each).
//!   Used by the simulator's parallel engine to parallelize *within*
//!   one simulation, where spawning threads per cycle would dwarf the
//!   work.
//!
//! Both are built on scoped threads and standard-library primitives
//! only.
//!
//! Both executors carry `gscalar-hostprof` probes (steal counters,
//! queue-depth and barrier-wait histograms, epoch-wait phase timers);
//! the probes are no-ops unless host profiling is globally enabled.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Mutex;
use std::time::Instant;

use gscalar_hostprof as hostprof;

/// Runs `work(i)` for every `i` in `0..count` on `threads` workers,
/// invoking `on_done(i, result)` on the calling thread as each task
/// completes (completion order, not index order).
///
/// Tasks are the integers `0..count`; each worker owns a deque seeded
/// round-robin and pops from its *back* (LIFO keeps caches warm for
/// neighboring grid cells), stealing from the *front* of sibling
/// deques when its own runs dry (FIFO steals take the oldest — largest
/// remaining — work). The pool uses plain mutex-guarded deques: the
/// workload is coarse, so lock traffic is noise and a lock-free
/// Chase–Lev deque would buy nothing.
///
/// `threads == 0` resolves to the machine's available parallelism. A
/// single thread still goes through the pool, so the scheduling code
/// path is identical for serial and parallel runs.
pub fn run_indexed<R, W, D>(threads: usize, count: usize, work: W, mut on_done: D)
where
    R: Send,
    W: Fn(usize) -> R + Sync,
    D: FnMut(usize, R),
{
    if count == 0 {
        return;
    }
    let threads = resolve_threads(threads).min(count);
    // Round-robin seeding spreads neighboring (usually similarly
    // sized) grid cells across workers.
    let queues: Vec<Mutex<VecDeque<usize>>> = (0..threads)
        .map(|w| Mutex::new((0..count).filter(|i| i % threads == w).collect()))
        .collect();
    let (tx, rx) = mpsc::channel::<(usize, R)>();
    std::thread::scope(|scope| {
        for w in 0..threads {
            let queues = &queues;
            let work = &work;
            let tx = tx.clone();
            scope.spawn(move || {
                while let Some(i) = next_task(queues, w) {
                    // A send can only fail if the receiver is gone,
                    // which means the caller is unwinding already.
                    let _ = tx.send((i, work(i)));
                }
            });
        }
        drop(tx);
        for _ in 0..count {
            let (i, r) = rx.recv().expect("a worker died without reporting");
            on_done(i, r);
        }
    });
}

/// Pops the next task for worker `w`: its own back, else steal the
/// front of the first non-empty sibling. `None` when every deque is
/// empty (no tasks are ever re-enqueued, so empty-everywhere is
/// terminal).
fn next_task(queues: &[Mutex<VecDeque<usize>>], w: usize) -> Option<usize> {
    let (depth, own) = {
        let mut q = queues[w].lock().expect("queue lock");
        (q.len() as u64, q.pop_back())
    };
    hostprof::hist_record(hostprof::Hist::QueueDepth, depth);
    if let Some(i) = own {
        return Some(i);
    }
    let n = queues.len();
    for off in 1..n {
        let victim = (w + off) % n;
        if let Some(i) = queues[victim].lock().expect("queue lock").pop_front() {
            hostprof::counter_add(hostprof::Counter::PoolSteals, 1);
            return Some(i);
        }
        hostprof::counter_add(hostprof::Counter::PoolFailedSteals, 1);
    }
    None
}

/// Resolves a thread-count request: 0 means "all the machine has".
#[must_use]
pub fn resolve_threads(requested: usize) -> usize {
    if requested > 0 {
        requested
    } else {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    }
}

/// Shared control word for one [`run_epochs`] gang.
struct EpochCtl {
    /// Monotonic epoch counter; a bump releases the waiting workers.
    epoch: AtomicU64,
    /// The epoch's timestamp, published before the bump.
    now: AtomicU64,
    /// Next unclaimed work index for the current epoch.
    next: AtomicUsize,
    /// Workers finished with the current epoch.
    done: AtomicUsize,
    /// Tells workers to exit their wait loop.
    stop: AtomicBool,
    /// A worker died; the coordinator re-raises instead of hanging.
    panicked: AtomicBool,
}

/// Increments `done` even if `work` unwound, so the coordinator's
/// barrier never waits for a dead worker; a panic additionally stops
/// the gang so the coordinator can re-raise.
struct DoneGuard<'a>(&'a EpochCtl);

impl Drop for DoneGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.panicked.store(true, Ordering::Release);
            self.0.stop.store(true, Ordering::Release);
        }
        self.0.done.fetch_add(1, Ordering::Release);
    }
}

/// Stops the workers when the coordinator leaves the epoch loop — by
/// returning or by unwinding (a panic in `work`/`next` on the caller's
/// thread must not leave workers spinning, or the scope join would
/// deadlock).
struct StopGuard<'a>(&'a EpochCtl);

impl Drop for StopGuard<'_> {
    fn drop(&mut self) {
        self.0.stop.store(true, Ordering::Release);
    }
}

/// Spin briefly, then yield: epochs are microseconds apart, so a short
/// spin usually wins, but a descheduled sibling must not be starved.
#[inline]
fn backoff(spins: &mut u32) {
    *spins += 1;
    if *spins < 128 {
        std::hint::spin_loop();
    } else {
        std::thread::yield_now();
    }
}

/// Runs barrier-synchronized epochs over `count` work items on
/// `threads` persistent workers (0 resolves to the machine's available
/// parallelism).
///
/// Each epoch `t` (starting at `first`) calls `work(i, t)` exactly once
/// for every `i` in `0..count`, distributed dynamically over the
/// workers *and* the calling thread. When all items have completed —
/// the barrier — `next(t)` runs on the calling thread and returns the
/// next epoch's timestamp, or `None` to finish. Everything `work`
/// wrote is visible to `next`, and everything `next` wrote is visible
/// to the following epoch's `work` calls.
///
/// With one thread (or one work item) no threads are spawned and the
/// loop runs inline, so the serial path stays the trivially correct
/// reference.
///
/// # Panics
///
/// A panic in `work` or `next` propagates to the caller; the gang is
/// stopped first so the internal scope join cannot deadlock.
pub fn run_epochs<W, N>(threads: usize, count: usize, first: u64, work: W, mut next: N)
where
    W: Fn(usize, u64) + Sync,
    N: FnMut(u64) -> Option<u64>,
{
    let threads = resolve_threads(threads).min(count.max(1));
    if threads <= 1 {
        let mut now = Some(first);
        while let Some(t) = now {
            for i in 0..count {
                work(i, t);
            }
            now = next(t);
        }
        return;
    }
    let ctl = EpochCtl {
        epoch: AtomicU64::new(0),
        now: AtomicU64::new(0),
        next: AtomicUsize::new(0),
        done: AtomicUsize::new(0),
        stop: AtomicBool::new(false),
        panicked: AtomicBool::new(false),
    };
    let workers = threads - 1;
    std::thread::scope(|scope| {
        for _ in 0..workers {
            let ctl = &ctl;
            let work = &work;
            scope.spawn(move || {
                let mut seen = 0u64;
                loop {
                    let mut spins = 0u32;
                    // Epoch-release wait: attributed to PoolIdle so the
                    // per-worker barrier cost shows up in phase totals.
                    let idle = hostprof::phase(hostprof::Phase::PoolIdle);
                    let e = loop {
                        if ctl.stop.load(Ordering::Acquire) {
                            return;
                        }
                        let e = ctl.epoch.load(Ordering::Acquire);
                        if e != seen {
                            break e;
                        }
                        backoff(&mut spins);
                    };
                    drop(idle);
                    seen = e;
                    let guard = DoneGuard(ctl);
                    let now = ctl.now.load(Ordering::Relaxed);
                    loop {
                        let i = ctl.next.fetch_add(1, Ordering::Relaxed);
                        if i >= count {
                            break;
                        }
                        work(i, now);
                    }
                    drop(guard);
                }
            });
        }
        let _stop = StopGuard(&ctl);
        let mut now = first;
        loop {
            // Publish the epoch (Release) so workers' Acquire load of
            // the bumped counter also sees `now`, the reset claim/done
            // words, and every serial-phase write since the last
            // barrier.
            ctl.now.store(now, Ordering::Relaxed);
            ctl.done.store(0, Ordering::Relaxed);
            ctl.next.store(0, Ordering::Relaxed);
            ctl.epoch.fetch_add(1, Ordering::Release);
            // The coordinator claims alongside the workers.
            loop {
                let i = ctl.next.fetch_add(1, Ordering::Relaxed);
                if i >= count {
                    break;
                }
                work(i, now);
            }
            // Barrier: their Release increments of `done` make every
            // worker's writes visible here.
            let wait_t0 = hostprof::enabled().then(Instant::now);
            {
                let _idle = hostprof::phase(hostprof::Phase::PoolIdle);
                let mut spins = 0u32;
                while ctl.done.load(Ordering::Acquire) < workers {
                    if ctl.panicked.load(Ordering::Acquire) {
                        break;
                    }
                    backoff(&mut spins);
                }
            }
            if let Some(t0) = wait_t0 {
                hostprof::hist_record(
                    hostprof::Hist::BarrierWaitNs,
                    u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
                hostprof::counter_add(hostprof::Counter::PoolEpochs, 1);
            }
            assert!(
                !ctl.panicked.load(Ordering::Acquire),
                "an epoch worker panicked"
            );
            match next(now) {
                Some(t) => now = t,
                None => break,
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn executes_every_task_exactly_once() {
        for threads in [1, 2, 5, 16] {
            let hits = (0..37).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
            let mut seen = Vec::new();
            run_indexed(
                threads,
                hits.len(),
                |i| {
                    hits[i].fetch_add(1, Ordering::SeqCst);
                    i * 2
                },
                |i, r| {
                    assert_eq!(r, i * 2);
                    seen.push(i);
                },
            );
            assert_eq!(seen.len(), hits.len());
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
        }
    }

    #[test]
    fn stealing_drains_imbalanced_grids() {
        // One task is 100× the others: with 4 workers the other three
        // must steal the remaining work. Correctness (all done, once)
        // is what's asserted; the imbalance exercises the steal path.
        let done = AtomicUsize::new(0);
        run_indexed(
            4,
            64,
            |i| {
                let spins = if i == 0 { 100_000 } else { 1_000 };
                let mut x = 0u64;
                for k in 0..spins {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(k);
                }
                done.fetch_add(1, Ordering::SeqCst);
                x
            },
            |_, _| {},
        );
        assert_eq!(done.load(Ordering::SeqCst), 64);
    }

    #[test]
    fn zero_tasks_is_a_no_op() {
        run_indexed(
            4,
            0,
            |_| unreachable!("no tasks"),
            |_, _: ()| unreachable!("no results"),
        );
    }

    #[test]
    fn more_threads_than_tasks_is_fine() {
        let mut n = 0;
        run_indexed(64, 3, |i| i, |_, _| n += 1);
        assert_eq!(n, 3);
    }

    #[test]
    fn epochs_cover_every_item_every_epoch() {
        for threads in [1, 2, 4, 8] {
            let cells: Vec<AtomicU64> = (0..11).map(|_| AtomicU64::new(0)).collect();
            let mut epochs = 0u64;
            run_epochs(
                threads,
                cells.len(),
                100,
                |i, now| {
                    cells[i].fetch_add(now, Ordering::SeqCst);
                },
                |now| {
                    epochs += 1;
                    // Uneven steps: the timestamp is the coordinator's
                    // to choose, workers just read it.
                    (epochs < 5).then_some(now + epochs)
                },
            );
            assert_eq!(epochs, 5);
            // Epochs ran at now = 100, 101, 103, 106, 110.
            let expected = 100 + 101 + 103 + 106 + 110;
            for c in &cells {
                assert_eq!(c.load(Ordering::SeqCst), expected, "threads={threads}");
            }
        }
    }

    #[test]
    fn barrier_orders_work_before_next() {
        // `next` observes the exact all-items count each epoch: any
        // work call leaking past the barrier would overshoot, any
        // straggler would undershoot.
        let count = 23;
        let done = AtomicUsize::new(0);
        let mut epoch = 0usize;
        run_epochs(
            4,
            count,
            0,
            |_, _| {
                done.fetch_add(1, Ordering::SeqCst);
            },
            |now| {
                epoch += 1;
                assert_eq!(done.load(Ordering::SeqCst), epoch * count);
                (epoch < 7).then_some(now + 1)
            },
        );
        assert_eq!(done.load(Ordering::SeqCst), 7 * count);
    }

    #[test]
    fn hostprof_telemetry_records_epochs_and_queue_depths() {
        // Telemetry is process-global and other tests may run
        // concurrently (they leave it disabled, so only this test's
        // window records) — assert lower bounds, not exact counts.
        hostprof::reset();
        hostprof::set_enabled(true);
        run_epochs(4, 16, 0, |_, _| {}, |now| (now < 3).then_some(now + 1));
        run_indexed(4, 32, |i| i, |_, _| {});
        hostprof::set_enabled(false);
        let s = hostprof::snapshot();
        assert!(s.counter(hostprof::Counter::PoolEpochs) >= 4);
        assert!(s.hist(hostprof::Hist::BarrierWaitNs).count() >= 4);
        assert!(s.hist(hostprof::Hist::QueueDepth).count() >= 32);
        assert!(s.phase(hostprof::Phase::PoolIdle).calls >= 4);
        hostprof::reset();
    }

    #[test]
    fn worker_panic_propagates_without_deadlock() {
        let hit = std::panic::catch_unwind(|| {
            run_epochs(
                4,
                16,
                0,
                |i, now| {
                    assert!(!(i == 7 && now == 2), "induced worker failure");
                },
                |now| (now < 5).then_some(now + 1),
            );
        });
        assert!(hit.is_err(), "the induced panic must propagate");
    }

    #[test]
    fn coordinator_panic_releases_workers() {
        let hit = std::panic::catch_unwind(|| {
            run_epochs(
                4,
                16,
                0,
                |_, _| {},
                |now| {
                    assert!(now < 3, "induced coordinator failure");
                    Some(now + 1)
                },
            );
        });
        assert!(hit.is_err(), "the induced panic must propagate");
    }
}
