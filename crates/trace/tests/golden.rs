//! Golden-file tests for the trace exporters, plus an exactness
//! property for the ring buffer's drop accounting.
//!
//! The golden files under `tests/golden/` pin the exact bytes of the
//! Chrome trace-event JSON and interval CSV exporters; any format change
//! must be deliberate. Regenerate with:
//!
//! ```sh
//! GOLDEN_REGEN=1 cargo test -p gscalar-trace --test golden
//! ```

use std::path::PathBuf;

use gscalar_trace::{
    export, EventBuf, MemLevel, ModeKind, Record, StallReason, TraceEvent, TraceSink, UnitKind,
};
use proptest::prelude::*;

/// A deterministic fixture exercising every event variant across two
/// SMs, in non-monotonic record order (exporters must not assume
/// sorting).
fn fixture() -> Vec<Record> {
    vec![
        Record {
            now: 1,
            ev: TraceEvent::Issue {
                sm: 0,
                sched: 0,
                warp: 3,
                pc: 0,
                unit: UnitKind::Alu,
                mode: ModeKind::Scalar,
                mask: 0xFFFF_FFFF,
            },
        },
        Record {
            now: 2,
            ev: TraceEvent::ExecSpan {
                sm: 0,
                warp: 3,
                pc: 0,
                unit: UnitKind::Alu,
                mode: ModeKind::Scalar,
                end: 10,
            },
        },
        Record {
            now: 3,
            ev: TraceEvent::Stall {
                sm: 0,
                sched: 1,
                warp: Some(4),
                reason: StallReason::MemPending,
            },
        },
        Record {
            now: 4,
            ev: TraceEvent::Stall {
                sm: 1,
                sched: 0,
                warp: None,
                reason: StallReason::Drained,
            },
        },
        Record {
            now: 6,
            ev: TraceEvent::SimtPush {
                sm: 0,
                warp: 3,
                pc: 12,
                taken: 0x0000_FFFF,
                not_taken: 0xFFFF_0000,
                depth: 1,
            },
        },
        Record {
            now: 9,
            ev: TraceEvent::SimtPop {
                sm: 0,
                warp: 3,
                pc: 20,
                depth: 0,
            },
        },
        Record {
            now: 11,
            ev: TraceEvent::CompressWrite {
                sm: 1,
                warp: 0,
                reg: 7,
                encoding: 2,
                bytes: 8,
                uniform: true,
            },
        },
        Record {
            now: 12,
            ev: TraceEvent::Decompress {
                sm: 1,
                warp: 0,
                pc: 14,
                assisted: false,
            },
        },
        Record {
            now: 5,
            ev: TraceEvent::Mem {
                sm: 0,
                addr: 0x1000,
                store: false,
                level: MemLevel::Dram,
                done: 300,
            },
        },
        Record {
            now: 7,
            ev: TraceEvent::Mem {
                sm: 1,
                addr: 0x2040,
                store: true,
                level: MemLevel::L1Hit,
                done: 8,
            },
        },
        Record {
            now: 100,
            ev: TraceEvent::Snapshot {
                sm: 0,
                issued: 50,
                scalar: 10,
                rf_bytes_compressed: 400,
                rf_bytes_uncompressed: 1600,
                rf_activations: 90,
            },
        },
        Record {
            now: 100,
            ev: TraceEvent::Snapshot {
                sm: 1,
                issued: 40,
                scalar: 0,
                rf_bytes_compressed: 0,
                rf_bytes_uncompressed: 0,
                rf_activations: 70,
            },
        },
        Record {
            now: 200,
            ev: TraceEvent::Snapshot {
                sm: 0,
                issued: 150,
                scalar: 30,
                rf_bytes_compressed: 900,
                rf_bytes_uncompressed: 3200,
                rf_activations: 180,
            },
        },
    ]
}

fn check_golden(name: &str, actual: &str) {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name);
    if std::env::var_os("GOLDEN_REGEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); regenerate with GOLDEN_REGEN=1",
            path.display()
        )
    });
    assert_eq!(
        actual,
        expected,
        "exporter output drifted from {}; if intentional, regenerate with GOLDEN_REGEN=1",
        path.display()
    );
}

#[test]
fn chrome_json_matches_golden() {
    check_golden("chrome.json", &export::chrome_json(&fixture()));
}

#[test]
fn csv_timeseries_matches_golden() {
    check_golden("intervals.csv", &export::csv_timeseries(&fixture()));
}

// The ring's drop counter is exact: after `n` records into a ring of
// capacity `cap`, exactly `max(n - cap, 0)` were dropped, the newest
// `min(n, cap)` survive, and `len + dropped == n`.
proptest! {
    #[test]
    fn event_buf_dropped_is_exact(cap in 1usize..50, n in 0u64..200) {
        let mut buf = EventBuf::new(cap);
        for c in 0..n {
            buf.record(c, TraceEvent::Stall {
                sm: 0,
                sched: 0,
                warp: None,
                reason: StallReason::Drained,
            });
        }
        prop_assert_eq!(buf.dropped(), n.saturating_sub(cap as u64));
        prop_assert_eq!(buf.len() as u64, n.min(cap as u64));
        prop_assert_eq!(buf.len() as u64 + buf.dropped(), n);
        let cycles: Vec<u64> = buf.records().iter().map(|r| r.now).collect();
        let expect: Vec<u64> = (n.saturating_sub(cap as u64)..n).collect();
        prop_assert_eq!(cycles, expect);
    }
}
