//! Cycle-level tracing for the G-Scalar simulator.
//!
//! This crate is deliberately dependency-free (it sits *below*
//! `gscalar-sim` in the workspace graph): the simulator converts its own
//! types into the small enums defined here and pushes typed
//! [`TraceEvent`]s through a [`Tracer`] handle. When tracing is off the
//! handle holds no sink and every emission site reduces to a single
//! predictable branch — event payloads are built inside a closure that
//! is never called ([`Tracer::emit_with`]).
//!
//! The pieces:
//!
//! * [`TraceEvent`] — typed events: issue decisions, per-cycle
//!   [stall reasons](StallReason), SIMT stack pushes/pops, compressor
//!   encode/decode decisions, memory-hierarchy transactions, execution
//!   spans, and periodic interval [snapshots](TraceEvent::Snapshot).
//! * [`TraceSink`] / [`EventBuf`] — where events go; `EventBuf` is a
//!   bounded ring that drops the oldest events once full.
//! * [`StallBreakdown`] — an always-on counter block embedded in the
//!   simulator's statistics; the simulator maintains the invariant that
//!   its total equals the scheduler idle-cycle count.
//! * [`export`] — Chrome trace-event JSON (open in Perfetto or
//!   `chrome://tracing`), CSV time-series, a per-warp text waterfall,
//!   and a stall-breakdown report.
//!
//! # Examples
//!
//! ```
//! use gscalar_trace::{EventBuf, Tracer, TraceEvent, StallReason};
//!
//! let mut buf = EventBuf::new(1024);
//! let mut t = Tracer::new(&mut buf);
//! t.emit_with(10, || TraceEvent::Stall {
//!     sm: 0,
//!     sched: 1,
//!     warp: None,
//!     reason: StallReason::Scoreboard,
//! });
//! assert_eq!(buf.len(), 1);
//!
//! let mut off = Tracer::off();
//! off.emit_with(11, || unreachable!("never built when tracing is off"));
//! ```

pub mod export;

use std::collections::VecDeque;

// ---------------------------------------------------------------------------
// Stall taxonomy
// ---------------------------------------------------------------------------

/// Why a scheduler failed to issue in a cycle.
///
/// Exactly one reason is charged per idle scheduler-cycle, so the sum
/// over all reasons equals the scheduler idle-cycle count — the
/// simulator enforces this invariant in its tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StallReason {
    /// No live warps left on this scheduler (drained at kernel tail).
    Drained,
    /// Every live warp is waiting at a CTA barrier.
    Barrier,
    /// Blocked on a scoreboard entry owned by an outstanding load/store.
    MemPending,
    /// Blocked on a scoreboard entry owned by an ALU/SFU instruction.
    Scoreboard,
    /// A warp was ready but no operand-collector slot was free.
    NoCollector,
    /// No collector slot was free *and* this cycle's bank arbitration
    /// had conflicts — collectors are draining slowly because of
    /// register-bank contention.
    RfBankConflict,
}

impl StallReason {
    /// Every reason, in reporting order.
    pub const ALL: [StallReason; 6] = [
        StallReason::Drained,
        StallReason::Barrier,
        StallReason::MemPending,
        StallReason::Scoreboard,
        StallReason::NoCollector,
        StallReason::RfBankConflict,
    ];

    /// A short stable label (used in CSV headers and reports).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallReason::Drained => "drained",
            StallReason::Barrier => "barrier",
            StallReason::MemPending => "mem_pending",
            StallReason::Scoreboard => "scoreboard",
            StallReason::NoCollector => "no_collector",
            StallReason::RfBankConflict => "rf_bank_conflict",
        }
    }

    fn index(self) -> usize {
        match self {
            StallReason::Drained => 0,
            StallReason::Barrier => 1,
            StallReason::MemPending => 2,
            StallReason::Scoreboard => 3,
            StallReason::NoCollector => 4,
            StallReason::RfBankConflict => 5,
        }
    }
}

/// Per-reason stall-cycle counters.
///
/// # Examples
///
/// ```
/// use gscalar_trace::{StallBreakdown, StallReason};
///
/// let mut b = StallBreakdown::default();
/// b.add(StallReason::Barrier);
/// b.add(StallReason::Barrier);
/// b.add(StallReason::MemPending);
/// assert_eq!(b.get(StallReason::Barrier), 2);
/// assert_eq!(b.total(), 3);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StallBreakdown {
    counts: [u64; StallReason::ALL.len()],
}

impl StallBreakdown {
    /// Charges one idle cycle to `reason`.
    pub fn add(&mut self, reason: StallReason) {
        self.counts[reason.index()] += 1;
    }

    /// Charges `n` cycles to `reason` at once (idle-skip jumps charge
    /// a whole gap to the last classified reason in one call).
    pub fn add_n(&mut self, reason: StallReason, n: u64) {
        self.counts[reason.index()] += n;
    }

    /// Cycles charged to `reason`.
    #[must_use]
    pub fn get(&self, reason: StallReason) -> u64 {
        self.counts[reason.index()]
    }

    /// Total cycles across all reasons.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Accumulates `other` into `self`.
    pub fn merge(&mut self, other: &StallBreakdown) {
        for (a, b) in self.counts.iter_mut().zip(other.counts.iter()) {
            *a += b;
        }
    }

    /// Iterates `(reason, cycles)` pairs in reporting order.
    pub fn iter(&self) -> impl Iterator<Item = (StallReason, u64)> + '_ {
        StallReason::ALL
            .iter()
            .map(|&r| (r, self.counts[r.index()]))
    }
}

// ---------------------------------------------------------------------------
// Event vocabulary
// ---------------------------------------------------------------------------

/// Which functional unit an instruction used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitKind {
    /// Integer/FP ALU pipeline.
    Alu,
    /// Special-function unit.
    Sfu,
    /// Load/store unit.
    Mem,
    /// Control flow (branch/exit/barrier), handled at issue.
    Control,
}

impl UnitKind {
    /// A short stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            UnitKind::Alu => "alu",
            UnitKind::Sfu => "sfu",
            UnitKind::Mem => "mem",
            UnitKind::Control => "ctl",
        }
    }
}

/// How an instruction executed (paper terminology).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModeKind {
    /// Full-width SIMD execution.
    Vector,
    /// Scalar execution on one lane.
    Scalar,
    /// Half-width execution (scalar SFU on the prior-work design).
    Half,
}

impl ModeKind {
    /// A short stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ModeKind::Vector => "vector",
            ModeKind::Scalar => "scalar",
            ModeKind::Half => "half",
        }
    }
}

/// Where in the memory hierarchy a transaction was resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Served by the SM-local L1.
    L1Hit,
    /// Merged into an outstanding L1 miss (MSHR hit).
    MshrMerge,
    /// Missed L1, hit the partitioned L2.
    L2Hit,
    /// Missed L2; serviced by a DRAM channel.
    Dram,
    /// Served by per-SM shared memory (never leaves the SM).
    Shared,
}

impl MemLevel {
    /// A short stable label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MemLevel::L1Hit => "l1_hit",
            MemLevel::MshrMerge => "mshr_merge",
            MemLevel::L2Hit => "l2_hit",
            MemLevel::Dram => "dram",
            MemLevel::Shared => "shared",
        }
    }
}

/// One typed trace event. The cycle it occurred at travels alongside in
/// a [`Record`].
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A scheduler issued an instruction.
    Issue {
        /// SM index.
        sm: u32,
        /// Scheduler index within the SM.
        sched: u32,
        /// Warp slot index within the SM.
        warp: u32,
        /// Program counter of the issued instruction.
        pc: u32,
        /// Functional unit it was sent to.
        unit: UnitKind,
        /// Vector/scalar/half execution decision.
        mode: ModeKind,
        /// Active lane mask at issue.
        mask: u64,
    },
    /// A scheduler idled for one cycle.
    Stall {
        /// SM index.
        sm: u32,
        /// Scheduler index within the SM.
        sched: u32,
        /// The warp the classification pinned the stall on, if any.
        warp: Option<u32>,
        /// Why nothing issued.
        reason: StallReason,
    },
    /// A branch diverged and pushed paths onto the SIMT stack.
    SimtPush {
        /// SM index.
        sm: u32,
        /// Warp slot index.
        warp: u32,
        /// PC of the diverging branch.
        pc: u32,
        /// Lanes that took the branch.
        taken: u64,
        /// Lanes that fell through.
        not_taken: u64,
        /// Stack depth after the push.
        depth: u32,
    },
    /// The SIMT stack popped back toward reconvergence.
    SimtPop {
        /// SM index.
        sm: u32,
        /// Warp slot index.
        warp: u32,
        /// PC after the pop.
        pc: u32,
        /// Stack depth after the pop.
        depth: u32,
    },
    /// The register-file compressor encoded a written value vector.
    CompressWrite {
        /// SM index.
        sm: u32,
        /// Warp slot index.
        warp: u32,
        /// Architectural destination register index.
        reg: u32,
        /// Encoding tag (the compress crate's `Encoding as u8`).
        encoding: u8,
        /// Bytes occupied after compression.
        bytes: u32,
        /// Whether the value was warp-uniform (scalar-eligible).
        uniform: bool,
    },
    /// A compressed operand had to be expanded before execution.
    Decompress {
        /// SM index.
        sm: u32,
        /// Warp slot index.
        warp: u32,
        /// PC of the consuming instruction.
        pc: u32,
        /// Whether the decode was hidden by a compiler-assisted move
        /// (`true`) or charged as extra pipeline latency (`false`).
        assisted: bool,
    },
    /// A memory transaction was resolved somewhere in the hierarchy.
    Mem {
        /// SM index that originated the access.
        sm: u32,
        /// Line-aligned address.
        addr: u64,
        /// Store (`true`) or load (`false`).
        store: bool,
        /// Where the transaction was resolved.
        level: MemLevel,
        /// Cycle at which data is available / the store retires.
        done: u64,
    },
    /// An instruction occupied a functional unit over a span of cycles.
    ExecSpan {
        /// SM index.
        sm: u32,
        /// Warp slot index.
        warp: u32,
        /// Program counter.
        pc: u32,
        /// The unit occupied.
        unit: UnitKind,
        /// Execution decision.
        mode: ModeKind,
        /// Completion cycle (the span starts at the record's cycle).
        end: u64,
    },
    /// Periodic interval metrics (one per SM per interval boundary).
    Snapshot {
        /// SM index.
        sm: u32,
        /// Cumulative warp instructions issued.
        issued: u64,
        /// Cumulative instructions executed scalar.
        scalar: u64,
        /// Cumulative compressed register-file bytes written.
        rf_bytes_compressed: u64,
        /// Cumulative uncompressed register-file bytes written.
        rf_bytes_uncompressed: u64,
        /// Cumulative register-file array activations.
        rf_activations: u64,
    },
}

/// A [`TraceEvent`] plus the cycle it was recorded at.
#[derive(Debug, Clone, PartialEq)]
pub struct Record {
    /// Simulation cycle.
    pub now: u64,
    /// The event.
    pub ev: TraceEvent,
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Receives trace events; implemented by [`EventBuf`] and by tests.
pub trait TraceSink {
    /// Records one event at cycle `now`.
    fn record(&mut self, now: u64, ev: TraceEvent);

    /// Number of records accepted so far. Sinks that want deferred
    /// events spliced back into recording order (the parallel engine's
    /// epoch sinks) override this; for sinks that never splice the
    /// default of 0 is fine, as positions are only compared among
    /// events recorded into the same sink.
    fn position(&self) -> u64 {
        0
    }
}

/// A bounded in-memory ring of trace records.
///
/// Once `capacity` records are held, each new record evicts the oldest
/// and bumps [`dropped`](EventBuf::dropped) — long runs keep the *tail*
/// of the trace, which is usually what post-mortem debugging wants.
///
/// # Examples
///
/// ```
/// use gscalar_trace::{EventBuf, TraceSink, TraceEvent, StallReason};
///
/// let mut buf = EventBuf::new(2);
/// for c in 0..5 {
///     buf.record(c, TraceEvent::Stall {
///         sm: 0, sched: 0, warp: None, reason: StallReason::Drained,
///     });
/// }
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.dropped(), 3);
/// assert_eq!(buf.records()[0].now, 3);
/// ```
#[derive(Debug)]
pub struct EventBuf {
    buf: VecDeque<Record>,
    capacity: usize,
    dropped: u64,
}

impl EventBuf {
    /// Creates a ring holding at most `capacity` records.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "EventBuf capacity must be non-zero");
        EventBuf {
            buf: VecDeque::with_capacity(capacity.min(1 << 20)),
            capacity,
            dropped: 0,
        }
    }

    /// Number of records currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the ring is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Records evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The held records, oldest first.
    #[must_use]
    pub fn records(&self) -> Vec<&Record> {
        self.buf.iter().collect()
    }

    /// Consumes the ring, returning the records oldest-first.
    #[must_use]
    pub fn into_records(self) -> Vec<Record> {
        self.buf.into_iter().collect()
    }
}

impl TraceSink for EventBuf {
    fn record(&mut self, now: u64, ev: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Record { now, ev });
    }

    fn position(&self) -> u64 {
        self.buf.len() as u64 + self.dropped
    }
}

/// The handle instrumentation sites emit through.
///
/// Holds either a sink or nothing; [`emit_with`](Tracer::emit_with)
/// takes the event as a closure so the disabled path never constructs
/// the payload — the cost of a dormant trace point is one branch.
pub struct Tracer<'a> {
    sink: Option<&'a mut dyn TraceSink>,
}

impl<'a> Tracer<'a> {
    /// A tracer that records into `sink`.
    pub fn new(sink: &'a mut dyn TraceSink) -> Self {
        Tracer { sink: Some(sink) }
    }

    /// A disabled tracer; every emission is a no-op.
    #[must_use]
    pub fn off() -> Tracer<'a> {
        Tracer { sink: None }
    }

    /// Whether events are being recorded.
    #[must_use]
    pub fn is_on(&self) -> bool {
        self.sink.is_some()
    }

    /// Records the event built by `f` at cycle `now`; `f` is not called
    /// when tracing is off.
    #[inline]
    pub fn emit_with(&mut self, now: u64, f: impl FnOnce() -> TraceEvent) {
        if let Some(sink) = self.sink.as_mut() {
            sink.record(now, f());
        }
    }

    /// The sink's [`TraceSink::position`], or 0 when tracing is off.
    #[must_use]
    pub fn position(&self) -> u64 {
        self.sink.as_ref().map_or(0, |s| s.position())
    }
}

impl std::fmt::Debug for Tracer<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer").field("on", &self.is_on()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stall(reason: StallReason) -> TraceEvent {
        TraceEvent::Stall {
            sm: 0,
            sched: 0,
            warp: None,
            reason,
        }
    }

    #[test]
    fn ring_keeps_newest_and_counts_drops() {
        let mut buf = EventBuf::new(3);
        for c in 0..10 {
            buf.record(c, stall(StallReason::Drained));
        }
        assert_eq!(buf.len(), 3);
        assert_eq!(buf.dropped(), 7);
        let cycles: Vec<u64> = buf.records().iter().map(|r| r.now).collect();
        assert_eq!(cycles, vec![7, 8, 9]);
    }

    #[test]
    fn tracer_off_never_builds_payload() {
        let mut t = Tracer::off();
        assert!(!t.is_on());
        t.emit_with(0, || panic!("payload built while tracing is off"));
    }

    #[test]
    fn tracer_on_records() {
        let mut buf = EventBuf::new(8);
        let mut t = Tracer::new(&mut buf);
        assert!(t.is_on());
        t.emit_with(42, || stall(StallReason::Barrier));
        assert_eq!(buf.len(), 1);
        assert_eq!(buf.records()[0].now, 42);
    }

    #[test]
    fn breakdown_totals_and_merge() {
        let mut a = StallBreakdown::default();
        a.add(StallReason::MemPending);
        a.add(StallReason::MemPending);
        let mut b = StallBreakdown::default();
        b.add(StallReason::RfBankConflict);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.get(StallReason::MemPending), 2);
        assert_eq!(a.get(StallReason::RfBankConflict), 1);
        assert_eq!(a.get(StallReason::Drained), 0);
        let sum: u64 = a.iter().map(|(_, n)| n).sum();
        assert_eq!(sum, a.total());
    }

    #[test]
    fn add_n_matches_repeated_add() {
        let mut a = StallBreakdown::default();
        let mut b = StallBreakdown::default();
        for _ in 0..17 {
            a.add(StallReason::Barrier);
        }
        b.add_n(StallReason::Barrier, 17);
        b.add_n(StallReason::Drained, 0);
        assert_eq!(a, b);
        assert_eq!(b.total(), 17);
    }

    #[test]
    fn every_reason_has_distinct_index_and_label() {
        let mut b = StallBreakdown::default();
        for r in StallReason::ALL {
            b.add(r);
        }
        assert_eq!(b.total(), StallReason::ALL.len() as u64);
        let mut labels: Vec<_> = StallReason::ALL.iter().map(|r| r.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), StallReason::ALL.len());
    }
}
