//! Trace exporters: Chrome trace-event JSON, CSV time-series, a
//! per-warp text waterfall, and a stall-breakdown report.
//!
//! All exporters are pure functions from recorded events to `String`;
//! callers decide where the bytes go.

use crate::{MemLevel, Record, StallBreakdown, TraceEvent};

/// Renders records as Chrome trace-event JSON (the format Perfetto and
/// `chrome://tracing` open directly).
///
/// Layout: one process per SM (`pid` = SM index). Within an SM,
/// execution spans land on one track per warp (`tid` = warp slot),
/// issue/stall instants on one track per scheduler (`tid` = 1000 +
/// scheduler index), and interval snapshots become counter tracks.
///
/// # Examples
///
/// ```
/// use gscalar_trace::{Record, TraceEvent, UnitKind, ModeKind, export};
///
/// let recs = vec![Record {
///     now: 5,
///     ev: TraceEvent::ExecSpan {
///         sm: 0, warp: 2, pc: 7,
///         unit: UnitKind::Alu, mode: ModeKind::Vector, end: 9,
///     },
/// }];
/// let json = export::chrome_json(&recs);
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.contains("\"ph\":\"X\""));
/// assert!(json.ends_with("]}"));
/// ```
#[must_use]
pub fn chrome_json(records: &[Record]) -> String {
    let mut out = String::with_capacity(64 + records.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, item: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&item);
    };
    for r in records {
        let ts = r.now;
        match &r.ev {
            TraceEvent::ExecSpan {
                sm,
                warp,
                pc,
                unit,
                mode,
                end,
            } => {
                let dur = end.saturating_sub(ts).max(1);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"pc{pc} {}\",\"cat\":\"exec\",\"ph\":\"X\",\
                         \"ts\":{ts},\"dur\":{dur},\"pid\":{sm},\"tid\":{warp},\
                         \"args\":{{\"mode\":\"{}\"}}}}",
                        unit.label(),
                        mode.label()
                    ),
                );
            }
            TraceEvent::Issue {
                sm,
                sched,
                warp,
                pc,
                unit,
                mode,
                mask,
            } => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"issue w{warp} pc{pc}\",\"cat\":\"issue\",\
                         \"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{sm},\
                         \"tid\":{},\"args\":{{\"unit\":\"{}\",\"mode\":\"{}\",\
                         \"mask\":{mask}}}}}",
                        1000 + sched,
                        unit.label(),
                        mode.label()
                    ),
                );
            }
            TraceEvent::Stall {
                sm,
                sched,
                warp,
                reason,
            } => {
                let w = warp.map_or(-1i64, i64::from);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"stall {}\",\"cat\":\"stall\",\"ph\":\"i\",\
                         \"s\":\"t\",\"ts\":{ts},\"pid\":{sm},\"tid\":{},\
                         \"args\":{{\"warp\":{w}}}}}",
                        reason.label(),
                        1000 + sched
                    ),
                );
            }
            TraceEvent::SimtPush {
                sm,
                warp,
                pc,
                taken,
                not_taken,
                depth,
            } => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"diverge pc{pc}\",\"cat\":\"simt\",\"ph\":\"i\",\
                         \"s\":\"t\",\"ts\":{ts},\"pid\":{sm},\"tid\":{warp},\
                         \"args\":{{\"taken\":{taken},\"not_taken\":{not_taken},\
                         \"depth\":{depth}}}}}"
                    ),
                );
            }
            TraceEvent::SimtPop {
                sm,
                warp,
                pc,
                depth,
            } => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"reconverge pc{pc}\",\"cat\":\"simt\",\
                         \"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{sm},\
                         \"tid\":{warp},\"args\":{{\"depth\":{depth}}}}}"
                    ),
                );
            }
            TraceEvent::CompressWrite {
                sm,
                warp,
                reg,
                encoding,
                bytes,
                uniform,
            } => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"compress r{reg}\",\"cat\":\"compress\",\
                         \"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{sm},\
                         \"tid\":{warp},\"args\":{{\"encoding\":{encoding},\
                         \"bytes\":{bytes},\"uniform\":{uniform}}}}}"
                    ),
                );
            }
            TraceEvent::Decompress {
                sm,
                warp,
                pc,
                assisted,
            } => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"decompress pc{pc}\",\"cat\":\"compress\",\
                         \"ph\":\"i\",\"s\":\"t\",\"ts\":{ts},\"pid\":{sm},\
                         \"tid\":{warp},\"args\":{{\"assisted\":{assisted}}}}}"
                    ),
                );
            }
            TraceEvent::Mem {
                sm,
                addr,
                store,
                level,
                done,
            } => {
                let dur = done.saturating_sub(ts).max(1);
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"{} {}\",\"cat\":\"mem\",\"ph\":\"X\",\
                         \"ts\":{ts},\"dur\":{dur},\"pid\":{sm},\"tid\":2000,\
                         \"args\":{{\"addr\":{addr}}}}}",
                        if *store { "st" } else { "ld" },
                        level.label()
                    ),
                );
            }
            TraceEvent::Snapshot {
                sm,
                issued,
                scalar,
                rf_bytes_compressed,
                rf_bytes_uncompressed,
                rf_activations,
            } => {
                push(
                    &mut out,
                    format!(
                        "{{\"name\":\"progress\",\"cat\":\"interval\",\"ph\":\"C\",\
                         \"ts\":{ts},\"pid\":{sm},\
                         \"args\":{{\"issued\":{issued},\"scalar\":{scalar},\
                         \"rf_bytes_compressed\":{rf_bytes_compressed},\
                         \"rf_bytes_uncompressed\":{rf_bytes_uncompressed},\
                         \"rf_activations\":{rf_activations}}}}}"
                    ),
                );
            }
        }
    }
    out.push_str("]}");
    out
}

/// Incremental builder for Chrome trace-event JSON, for callers whose
/// events are not simulator [`Record`]s — e.g. the host-side
/// self-profiler's wall-time timeline. Timestamps and durations are in
/// microseconds, per the trace-event format.
///
/// Names and categories are escaped, so arbitrary strings are safe.
///
/// # Examples
///
/// ```
/// use gscalar_trace::export::ChromeTraceBuilder;
///
/// let mut b = ChromeTraceBuilder::new();
/// b.complete("run \"BP\"", "host", 0, 1500, 0, 1);
/// b.counter("steals", 1500, 0, &[("ok", 12.0), ("failed", 3.0)]);
/// b.instant("flush", 1600, 0, 1);
/// let json = b.finish();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// assert!(json.ends_with("]}"));
/// ```
#[derive(Debug, Default)]
pub struct ChromeTraceBuilder {
    out: String,
    any: bool,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl ChromeTraceBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, item: &str) {
        if self.any {
            self.out.push(',');
        }
        self.any = true;
        self.out.push_str(item);
    }

    /// Appends a complete span (`ph:"X"`).
    pub fn complete(&mut self, name: &str, cat: &str, ts_us: u64, dur_us: u64, pid: u64, tid: u64) {
        self.push(&format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us},\
             \"dur\":{},\"pid\":{pid},\"tid\":{tid}}}",
            json_escape(name),
            json_escape(cat),
            dur_us.max(1)
        ));
    }

    /// Appends an instant event (`ph:"i"`, thread scope).
    pub fn instant(&mut self, name: &str, ts_us: u64, pid: u64, tid: u64) {
        self.push(&format!(
            "{{\"name\":\"{}\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{ts_us},\
             \"pid\":{pid},\"tid\":{tid}}}",
            json_escape(name)
        ));
    }

    /// Appends a counter sample (`ph:"C"`) with one arg per series.
    pub fn counter(&mut self, name: &str, ts_us: u64, pid: u64, series: &[(&str, f64)]) {
        let args = series
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", json_escape(k)))
            .collect::<Vec<_>>()
            .join(",");
        self.push(&format!(
            "{{\"name\":\"{}\",\"ph\":\"C\",\"ts\":{ts_us},\"pid\":{pid},\
             \"args\":{{{args}}}}}",
            json_escape(name)
        ));
    }

    /// Closes the event array and returns the JSON document.
    #[must_use]
    pub fn finish(self) -> String {
        format!("{{\"traceEvents\":[{}]}}", self.out)
    }
}

/// Renders interval snapshots as a CSV time-series.
///
/// Columns: `cycle,sm` plus cumulative counters and the two derived
/// interval metrics the paper's figures use — interval IPC (issued per
/// cycle since the previous snapshot of the same SM) and cumulative
/// compression ratio (compressed / uncompressed RF bytes).
#[must_use]
pub fn csv_timeseries(records: &[Record]) -> String {
    let mut out = String::from(
        "cycle,sm,issued,scalar,rf_bytes_compressed,rf_bytes_uncompressed,\
         rf_activations,interval_ipc,scalar_rate,compression_ratio\n",
    );
    // Previous (cycle, issued) per SM for interval IPC.
    let mut prev: Vec<(u64, u64)> = Vec::new();
    for r in records {
        if let TraceEvent::Snapshot {
            sm,
            issued,
            scalar,
            rf_bytes_compressed,
            rf_bytes_uncompressed,
            rf_activations,
        } = &r.ev
        {
            let idx = *sm as usize;
            if prev.len() <= idx {
                prev.resize(idx + 1, (0, 0));
            }
            let (pc, pi) = prev[idx];
            let dcyc = r.now.saturating_sub(pc);
            let dissued = issued.saturating_sub(pi);
            let ipc = if dcyc > 0 {
                dissued as f64 / dcyc as f64
            } else {
                0.0
            };
            let scalar_rate = if *issued > 0 {
                *scalar as f64 / *issued as f64
            } else {
                0.0
            };
            let ratio = if *rf_bytes_uncompressed > 0 {
                *rf_bytes_compressed as f64 / *rf_bytes_uncompressed as f64
            } else {
                1.0
            };
            out.push_str(&format!(
                "{},{sm},{issued},{scalar},{rf_bytes_compressed},\
                 {rf_bytes_uncompressed},{rf_activations},{ipc:.4},\
                 {scalar_rate:.4},{ratio:.4}\n",
                r.now
            ));
            prev[idx] = (r.now, *issued);
        }
    }
    out
}

/// Renders a human-readable per-warp waterfall of issue events.
///
/// One line per issue, grouped by SM and warp, showing the cycle, PC,
/// unit, execution mode, and active mask — a quick way to eyeball
/// divergence and scalarization without opening Perfetto.
#[must_use]
pub fn waterfall(records: &[Record]) -> String {
    // (sm, warp) -> lines
    let mut groups: Vec<((u32, u32), Vec<String>)> = Vec::new();
    for r in records {
        if let TraceEvent::Issue {
            sm,
            sched,
            warp,
            pc,
            unit,
            mode,
            mask,
        } = &r.ev
        {
            let key = (*sm, *warp);
            let line = format!(
                "    cycle {:>8}  pc {:>4}  {:<3} {:<6} sched {}  mask {:#010x}",
                r.now,
                pc,
                unit.label(),
                mode.label(),
                sched,
                mask
            );
            match groups.iter_mut().find(|(k, _)| *k == key) {
                Some((_, lines)) => lines.push(line),
                None => groups.push((key, vec![line])),
            }
        }
    }
    groups.sort_by_key(|(k, _)| *k);
    let mut out = String::new();
    for ((sm, warp), lines) in groups {
        out.push_str(&format!("SM {sm} warp {warp} ({} issues)\n", lines.len()));
        for l in lines {
            out.push_str(&l);
            out.push('\n');
        }
    }
    out
}

/// Renders a stall-breakdown report.
///
/// `idle_cycles` is the scheduler idle-cycle count the breakdown must
/// sum to; the report prints both so a mismatch is visible at a glance.
#[must_use]
pub fn stall_report(breakdown: &StallBreakdown, idle_cycles: u64, issued: u64) -> String {
    let total = breakdown.total();
    let slots = issued + idle_cycles;
    let mut out = String::from("scheduler-slot stall breakdown\n");
    out.push_str(&format!(
        "  issue slots: {slots}  issued: {issued}  idle: {idle_cycles}\n"
    ));
    for (reason, cycles) in breakdown.iter() {
        let pct = if idle_cycles > 0 {
            100.0 * cycles as f64 / idle_cycles as f64
        } else {
            0.0
        };
        out.push_str(&format!(
            "  {:<18} {:>12}  {:>6.2}% of idle\n",
            reason.label(),
            cycles,
            pct
        ));
    }
    out.push_str(&format!(
        "  sum(reasons) = {total}  scheduler_idle_cycles = {idle_cycles}  {}\n",
        if total == idle_cycles {
            "OK"
        } else {
            "MISMATCH"
        }
    ));
    out
}

/// Summarizes memory events per hierarchy level (for the trace binary).
#[must_use]
pub fn mem_level_counts(records: &[Record]) -> Vec<(MemLevel, u64)> {
    let levels = [
        MemLevel::L1Hit,
        MemLevel::MshrMerge,
        MemLevel::L2Hit,
        MemLevel::Dram,
        MemLevel::Shared,
    ];
    let mut counts = vec![0u64; levels.len()];
    for r in records {
        if let TraceEvent::Mem { level, .. } = &r.ev {
            let i = levels.iter().position(|l| l == level).expect("known level");
            counts[i] += 1;
        }
    }
    levels.into_iter().zip(counts).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ModeKind, StallReason, UnitKind};

    fn sample_records() -> Vec<Record> {
        vec![
            Record {
                now: 1,
                ev: TraceEvent::Issue {
                    sm: 0,
                    sched: 0,
                    warp: 3,
                    pc: 0,
                    unit: UnitKind::Alu,
                    mode: ModeKind::Scalar,
                    mask: 0xFFFF_FFFF,
                },
            },
            Record {
                now: 2,
                ev: TraceEvent::ExecSpan {
                    sm: 0,
                    warp: 3,
                    pc: 0,
                    unit: UnitKind::Alu,
                    mode: ModeKind::Scalar,
                    end: 10,
                },
            },
            Record {
                now: 3,
                ev: TraceEvent::Stall {
                    sm: 0,
                    sched: 1,
                    warp: Some(4),
                    reason: StallReason::MemPending,
                },
            },
            Record {
                now: 100,
                ev: TraceEvent::Snapshot {
                    sm: 0,
                    issued: 50,
                    scalar: 10,
                    rf_bytes_compressed: 400,
                    rf_bytes_uncompressed: 1600,
                    rf_activations: 90,
                },
            },
            Record {
                now: 200,
                ev: TraceEvent::Snapshot {
                    sm: 0,
                    issued: 150,
                    scalar: 30,
                    rf_bytes_compressed: 900,
                    rf_bytes_uncompressed: 3200,
                    rf_activations: 180,
                },
            },
            Record {
                now: 5,
                ev: TraceEvent::Mem {
                    sm: 0,
                    addr: 0x1000,
                    store: false,
                    level: MemLevel::Dram,
                    done: 300,
                },
            },
        ]
    }

    /// A minimal structural JSON check: balanced braces/brackets outside
    /// strings, and no trailing commas before closers.
    fn assert_json_shape(s: &str) {
        let mut depth = 0i64;
        let mut in_str = false;
        let mut prev = ' ';
        for c in s.chars() {
            if in_str {
                if c == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match c {
                    '"' => in_str = true,
                    '{' | '[' => depth += 1,
                    '}' | ']' => {
                        assert_ne!(prev, ',', "trailing comma before closer");
                        depth -= 1;
                        assert!(depth >= 0, "unbalanced closers");
                    }
                    _ => {}
                }
            }
            prev = c;
        }
        assert_eq!(depth, 0, "unbalanced JSON nesting");
        assert!(!in_str, "unterminated string");
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let json = chrome_json(&sample_records());
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_json_shape(&json);
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("\"pid\":0"));
    }

    #[test]
    fn chrome_json_empty_input() {
        let json = chrome_json(&[]);
        assert_eq!(json, "{\"traceEvents\":[]}");
        assert_json_shape(&json);
    }

    #[test]
    fn trace_builder_escapes_and_balances() {
        let mut b = ChromeTraceBuilder::new();
        b.complete("span \"quoted\"\n", "cat\\x", 10, 0, 1, 2);
        b.instant("mark", 11, 1, 2);
        b.counter("c", 12, 1, &[("a", 1.5), ("b", 2.0)]);
        let json = b.finish();
        assert_json_shape(&json);
        assert!(json.contains("\\\"quoted\\\""));
        assert!(json.contains("\"dur\":1")); // zero-length span clamped
        assert!(json.contains("\"a\":1.5"));
        assert_eq!(
            ChromeTraceBuilder::new().finish(),
            "{\"traceEvents\":[]}",
            "empty builder"
        );
    }

    #[test]
    fn csv_reports_interval_ipc_and_ratio() {
        let csv = csv_timeseries(&sample_records());
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3); // header + 2 snapshots
        assert!(lines[0].starts_with("cycle,sm,issued"));
        // First snapshot: 50 issued over 100 cycles.
        assert!(lines[1].contains("0.5000"));
        // Second: 100 more issued over 100 cycles → interval IPC 1.0.
        assert!(lines[2].contains("1.0000"));
        // Scalar rate 30/150 = 0.2.
        assert!(lines[2].contains("0.2000"));
    }

    #[test]
    fn waterfall_groups_by_warp() {
        let text = waterfall(&sample_records());
        assert!(text.contains("SM 0 warp 3 (1 issues)"));
        assert!(text.contains("pc    0"));
        assert!(text.contains("scalar"));
    }

    #[test]
    fn stall_report_flags_mismatch() {
        let mut b = StallBreakdown::default();
        b.add(StallReason::Barrier);
        let ok = stall_report(&b, 1, 10);
        assert!(ok.contains("OK"));
        assert!(!ok.contains("MISMATCH"));
        let bad = stall_report(&b, 2, 10);
        assert!(bad.contains("MISMATCH"));
    }

    #[test]
    fn mem_counts_by_level() {
        let counts = mem_level_counts(&sample_records());
        let dram = counts
            .iter()
            .find(|(l, _)| *l == MemLevel::Dram)
            .expect("dram row");
        assert_eq!(dram.1, 1);
        let l1 = counts
            .iter()
            .find(|(l, _)| *l == MemLevel::L1Hit)
            .expect("l1 row");
        assert_eq!(l1.1, 0);
    }
}
