//! Host-side self-profiling for the simulator process itself.
//!
//! `gscalar-trace`/`gscalar-metrics`/`gscalar-profile` give the
//! *simulated* GPU its observability; this crate is the same idea
//! pointed at the *host*: where does wall-clock time go while the
//! simulator runs? It provides:
//!
//! * [`phase`] — scoped monotonic phase timers (RAII guards over
//!   [`Instant`]) with **exclusive** (self-time) attribution: a nested
//!   phase pauses its parent, so the per-phase totals sum to the
//!   instrumented wall time instead of double-counting.
//! * [`counter_add`] / [`hist_record`] — pool telemetry (steals,
//!   failed steals, epochs) and log₂ histograms (per-epoch barrier
//!   wait, work-stealing queue depth) reusing
//!   [`gscalar_metrics::Histogram`].
//! * [`timeline_scope`] — coarse named wall-time spans exported as
//!   Chrome trace-event JSON ([`chrome_timeline_json`]) so a host-time
//!   timeline loads in `chrome://tracing` next to the simulated-cycle
//!   trace.
//! * [`snapshot`] — a consistent read of everything above, exportable
//!   into a [`MetricsRegistry`] under `host/...` paths (which the
//!   regression comparator treats as informational, never a hard
//!   gate).
//!
//! # The off-path contract
//!
//! Profiling is **globally disabled by default**. Every entry point
//! first checks one relaxed atomic load and returns a no-op guard (or
//! does nothing) when disabled — no clock reads, no locks, no
//! thread-local access — so instrumented code paths cost on the order
//! of a nanosecond per probe until someone opts in with
//! [`set_enabled`]. Enabled or not, the profiler only *reads* clocks
//! and *writes* its own accumulators: it can never perturb simulation
//! results (`tests/parallel_determinism.rs` proves manifests, traces,
//! and profiles stay byte-identical with profiling on).
//!
//! Accumulation is thread-local and lock-free on the hot path; a
//! thread's totals flush into process-wide atomics when the thread
//! exits (scoped pool workers) or when [`flush`] / [`snapshot`] runs
//! on it.
//!
//! # Examples
//!
//! ```
//! use gscalar_hostprof as hp;
//!
//! hp::reset();
//! hp::set_enabled(true);
//! {
//!     let _outer = hp::phase(hp::Phase::Execute);
//!     let _inner = hp::phase(hp::Phase::Compressor); // pauses Execute
//! }
//! hp::set_enabled(false);
//! let snap = hp::snapshot();
//! assert_eq!(snap.phase(hp::Phase::Execute).calls, 1);
//! assert_eq!(snap.phase(hp::Phase::Compressor).calls, 1);
//! ```

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use gscalar_metrics::{Histogram, MetricsRegistry};
use gscalar_trace::export::ChromeTraceBuilder;

/// One slice of the host-time taxonomy. Variants mirror the
/// simulator's per-cycle pipeline stages plus the engine-level work
/// around them; see DESIGN.md "Host-side observability" for what each
/// covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Draining finished executions and releasing scoreboards.
    Writeback,
    /// Operand-collector bank arbitration.
    OperandCollect,
    /// Dispatching ready instructions to functional units.
    Dispatch,
    /// Scheduler warp picks and stall classification.
    Scheduler,
    /// Instruction execution (exclusive of the nested phases below).
    Execute,
    /// Register compression/decompression: `regmeta` reads and writes,
    /// the byte-wise/BDI comparison chains.
    Compressor,
    /// Memory-hierarchy accesses (L1/MSHR/L2/DRAM model).
    Memsys,
    /// SIMT reconvergence-stack operations on control flow.
    Simt,
    /// CTA scheduling: initial fill and refills.
    CtaLaunch,
    /// The idle-warp polling loop: scanning SMs for the next event.
    IdleScan,
    /// Interval snapshot and observer-sample emission.
    Snapshot,
    /// The parallel engine's serial barrier section (trace replay,
    /// pending-memory resolution, epoch advance).
    Barrier,
    /// Pool threads waiting at the epoch barrier.
    PoolIdle,
    /// Harness overhead: everything inside an instrumented region not
    /// claimed by a more specific phase.
    Harness,
}

/// Number of [`Phase`] variants.
pub const PHASE_COUNT: usize = 14;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::Writeback,
        Phase::OperandCollect,
        Phase::Dispatch,
        Phase::Scheduler,
        Phase::Execute,
        Phase::Compressor,
        Phase::Memsys,
        Phase::Simt,
        Phase::CtaLaunch,
        Phase::IdleScan,
        Phase::Snapshot,
        Phase::Barrier,
        Phase::PoolIdle,
        Phase::Harness,
    ];

    /// Stable snake_case name (used in metric paths).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Phase::Writeback => "writeback",
            Phase::OperandCollect => "operand_collect",
            Phase::Dispatch => "dispatch",
            Phase::Scheduler => "scheduler",
            Phase::Execute => "execute",
            Phase::Compressor => "compressor",
            Phase::Memsys => "memsys",
            Phase::Simt => "simt",
            Phase::CtaLaunch => "cta_launch",
            Phase::IdleScan => "idle_scan",
            Phase::Snapshot => "snapshot",
            Phase::Barrier => "barrier",
            Phase::PoolIdle => "pool_idle",
            Phase::Harness => "harness",
        }
    }
}

/// A process-wide event counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Counter {
    /// Successful steals in the work-stealing pool.
    PoolSteals,
    /// Steal probes that found an empty victim queue.
    PoolFailedSteals,
    /// Barrier-synchronized epochs completed by the gang executor.
    PoolEpochs,
}

/// Number of [`Counter`] variants.
pub const COUNTER_COUNT: usize = 3;

impl Counter {
    /// Every counter, in display order.
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::PoolSteals,
        Counter::PoolFailedSteals,
        Counter::PoolEpochs,
    ];

    /// Stable snake_case name (used in metric paths).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Counter::PoolSteals => "steals",
            Counter::PoolFailedSteals => "failed_steals",
            Counter::PoolEpochs => "epochs",
        }
    }
}

/// A process-wide log₂ histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Hist {
    /// Nanoseconds the epoch coordinator waits at each barrier.
    BarrierWaitNs,
    /// Own-queue depth observed at each work-stealing pop.
    QueueDepth,
}

/// Number of [`Hist`] variants.
pub const HIST_COUNT: usize = 2;

impl Hist {
    /// Every histogram, in display order.
    pub const ALL: [Hist; HIST_COUNT] = [Hist::BarrierWaitNs, Hist::QueueDepth];

    /// Stable snake_case name (used in metric paths).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Hist::BarrierWaitNs => "barrier_wait_ns",
            Hist::QueueDepth => "queue_depth",
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static PHASE_NS: [AtomicU64; PHASE_COUNT] = [const { AtomicU64::new(0) }; PHASE_COUNT];
static PHASE_CALLS: [AtomicU64; PHASE_COUNT] = [const { AtomicU64::new(0) }; PHASE_COUNT];
static COUNTERS: [AtomicU64; COUNTER_COUNT] = [const { AtomicU64::new(0) }; COUNTER_COUNT];
static HISTS: Mutex<Option<Vec<Histogram>>> = Mutex::new(None);
static TIMELINE: Mutex<Vec<SpanRec>> = Mutex::new(Vec::new());
static ORIGIN: Mutex<Option<Instant>> = Mutex::new(None);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);

/// Cap on retained timeline spans; further spans are counted but
/// dropped, keeping memory bounded on long runs.
const TIMELINE_CAP: usize = 1 << 16;

/// Globally enables or disables profiling. Cheap to call; takes effect
/// on the next probe. Flip only at quiescent points (no live guards on
/// other threads) if phase totals must stay exactly consistent —
/// mid-flight flips are safe, merely attributing partial scopes.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the timeline origin before the first span can be taken.
        let mut o = ORIGIN.lock().expect("origin lock");
        if o.is_none() {
            *o = Some(Instant::now());
        }
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether profiling is currently enabled.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Per-thread accumulator. Flushes into the process-wide atomics when
/// the thread exits or on an explicit [`flush`].
struct Local {
    ns: [u64; PHASE_COUNT],
    calls: [u64; PHASE_COUNT],
    /// Stack of active phase indices (exclusive-time bookkeeping).
    stack: Vec<usize>,
    /// Clock reading at the last enter/exit on this thread.
    last: Option<Instant>,
}

impl Local {
    const fn new() -> Self {
        Local {
            ns: [0; PHASE_COUNT],
            calls: [0; PHASE_COUNT],
            stack: Vec::new(),
            last: None,
        }
    }

    /// Charges time since `last` to the phase on top of the stack.
    fn charge_top(&mut self, now: Instant) {
        if let (Some(last), Some(&top)) = (self.last, self.stack.last()) {
            self.ns[top] += u64::try_from((now - last).as_nanos()).unwrap_or(u64::MAX);
        }
    }

    fn flush_into_globals(&mut self) {
        for i in 0..PHASE_COUNT {
            if self.ns[i] > 0 {
                PHASE_NS[i].fetch_add(self.ns[i], Ordering::Relaxed);
                self.ns[i] = 0;
            }
            if self.calls[i] > 0 {
                PHASE_CALLS[i].fetch_add(self.calls[i], Ordering::Relaxed);
                self.calls[i] = 0;
            }
        }
    }
}

impl Drop for Local {
    fn drop(&mut self) {
        self.flush_into_globals();
    }
}

thread_local! {
    static LOCAL: RefCell<Local> = const { RefCell::new(Local::new()) };
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

/// RAII guard returned by [`phase`]; charges elapsed time on drop.
#[must_use = "dropping the guard immediately records a zero-length phase"]
pub struct PhaseGuard {
    active: bool,
}

/// Enters `p` on the calling thread. While the returned guard lives,
/// elapsed wall time is charged to `p` — except time spent under a
/// nested [`phase`] guard, which is charged to the inner phase
/// (exclusive/self-time semantics). When profiling is disabled this is
/// a no-op costing one relaxed atomic load.
#[inline]
pub fn phase(p: Phase) -> PhaseGuard {
    if !enabled() {
        return PhaseGuard { active: false };
    }
    let _ = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        let now = Instant::now();
        l.charge_top(now);
        l.stack.push(p as usize);
        l.calls[p as usize] += 1;
        l.last = Some(now);
    });
    PhaseGuard { active: true }
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if !self.active {
            return;
        }
        let _ = LOCAL.try_with(|l| {
            let mut l = l.borrow_mut();
            let now = Instant::now();
            if let (Some(last), Some(top)) = (l.last, l.stack.pop()) {
                l.ns[top] += u64::try_from((now - last).as_nanos()).unwrap_or(u64::MAX);
            }
            l.last = Some(now);
        });
    }
}

/// Adds `n` to counter `c`. No-op when disabled.
#[inline]
pub fn counter_add(c: Counter, n: u64) {
    if enabled() {
        COUNTERS[c as usize].fetch_add(n, Ordering::Relaxed);
    }
}

/// Records `v` into histogram `h`. No-op when disabled. Takes a
/// process-wide lock, so call at coarse boundaries (per epoch, per
/// task) — not per instruction.
pub fn hist_record(h: Hist, v: u64) {
    if !enabled() {
        return;
    }
    let mut g = HISTS.lock().expect("hist lock");
    g.get_or_insert_with(|| vec![Histogram::default(); HIST_COUNT])[h as usize].record(v);
}

/// RAII guard returned by [`timeline_scope`]; records a Chrome-trace
/// span on drop.
#[must_use = "dropping the guard immediately ends the span"]
pub struct TimelineGuard {
    name: Option<String>,
    start: Instant,
}

/// One recorded timeline span, nanoseconds relative to the profiling
/// origin.
#[derive(Debug, Clone)]
struct SpanRec {
    name: String,
    start_ns: u64,
    end_ns: u64,
    tid: u64,
}

fn origin() -> Option<Instant> {
    *ORIGIN.lock().expect("origin lock")
}

/// Opens a named wall-time span for the Chrome timeline (coarse
/// granularity: one per workload or per run, not per cycle). No-op
/// when disabled.
pub fn timeline_scope(name: &str) -> TimelineGuard {
    TimelineGuard {
        name: enabled().then(|| name.to_string()),
        start: Instant::now(),
    }
}

impl Drop for TimelineGuard {
    fn drop(&mut self) {
        let Some(name) = self.name.take() else {
            return;
        };
        let Some(origin) = origin() else { return };
        let start_ns = u64::try_from(self.start.saturating_duration_since(origin).as_nanos())
            .unwrap_or(u64::MAX);
        let end_ns = u64::try_from(origin.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let tid = TID.try_with(|t| *t).unwrap_or(0);
        let mut tl = TIMELINE.lock().expect("timeline lock");
        if tl.len() < TIMELINE_CAP {
            tl.push(SpanRec {
                name,
                start_ns,
                end_ns,
                tid,
            });
        }
    }
}

/// Flushes the calling thread's phase accumulators into the
/// process-wide totals. Worker threads flush automatically on exit;
/// long-lived threads (e.g. `main`) call this — or just [`snapshot`],
/// which flushes first — before reading totals.
pub fn flush() {
    let _ = LOCAL.try_with(|l| l.borrow_mut().flush_into_globals());
}

/// Zeroes all process-wide totals, histograms, and the timeline, plus
/// the calling thread's local accumulators. Call at quiescent points
/// only (no live guards anywhere); other threads' unflushed locals are
/// untouched and will still flush on their exit.
pub fn reset() {
    let _ = LOCAL.try_with(|l| {
        let mut l = l.borrow_mut();
        l.ns = [0; PHASE_COUNT];
        l.calls = [0; PHASE_COUNT];
        l.stack.clear();
        l.last = None;
    });
    for i in 0..PHASE_COUNT {
        PHASE_NS[i].store(0, Ordering::Relaxed);
        PHASE_CALLS[i].store(0, Ordering::Relaxed);
    }
    for c in &COUNTERS {
        c.store(0, Ordering::Relaxed);
    }
    *HISTS.lock().expect("hist lock") = None;
    TIMELINE.lock().expect("timeline lock").clear();
}

/// Accumulated totals for one [`Phase`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseStat {
    /// Exclusive (self) wall time, nanoseconds.
    pub ns: u64,
    /// Number of guard entries.
    pub calls: u64,
}

/// A consistent read of every accumulator, taken by [`snapshot`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Per-phase totals, indexed like [`Phase::ALL`].
    pub phases: [PhaseStat; PHASE_COUNT],
    /// Counter totals, indexed like [`Counter::ALL`].
    pub counters: [u64; COUNTER_COUNT],
    /// Histograms, indexed like [`Hist::ALL`].
    pub hists: Vec<Histogram>,
}

impl Snapshot {
    /// Totals for one phase.
    #[must_use]
    pub fn phase(&self, p: Phase) -> PhaseStat {
        self.phases[p as usize]
    }

    /// Total for one counter.
    #[must_use]
    pub fn counter(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// One histogram.
    #[must_use]
    pub fn hist(&self, h: Hist) -> &Histogram {
        &self.hists[h as usize]
    }

    /// Sum of exclusive phase time — the instrumented wall time.
    #[must_use]
    pub fn total_ns(&self) -> u64 {
        self.phases.iter().map(|p| p.ns).sum()
    }

    /// Exports everything under `host/...` paths: per-phase
    /// `host/phase/<name>/ns` and `/calls`, pool counters under
    /// `host/pool/<name>`, and histograms merged at
    /// `host/pool/<name>` (flattened to `/count`..`/max` by the
    /// registry). The `host/` prefix is what keeps these informational
    /// in `report compare`.
    pub fn export(&self, reg: &mut MetricsRegistry) {
        for (i, p) in Phase::ALL.iter().enumerate() {
            reg.counter_add(&format!("host/phase/{}/ns", p.name()), self.phases[i].ns);
            reg.counter_add(
                &format!("host/phase/{}/calls", p.name()),
                self.phases[i].calls,
            );
        }
        for (i, c) in Counter::ALL.iter().enumerate() {
            reg.counter_add(&format!("host/pool/{}", c.name()), self.counters[i]);
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            reg.histogram_merge(&format!("host/pool/{}", h.name()), &self.hists[i]);
        }
    }

    /// Flat `(path, value)` pairs, as [`Self::export`] would produce.
    #[must_use]
    pub fn flatten(&self) -> Vec<(String, f64)> {
        let mut reg = MetricsRegistry::new();
        self.export(&mut reg);
        reg.flatten()
    }

    /// Renders a human-readable phase table plus pool telemetry.
    /// `wall_s`, when positive, adds a percent-of-total-wall column.
    #[must_use]
    pub fn render(&self, wall_s: f64) -> String {
        let total = self.total_ns();
        let mut out = String::from("host wall-time phase breakdown (exclusive)\n");
        out.push_str(&format!(
            "  {:<16} {:>12} {:>8} {:>8} {:>12}\n",
            "phase", "time", "% instr", "% wall", "calls"
        ));
        let mut rows: Vec<(usize, PhaseStat)> = self
            .phases
            .iter()
            .copied()
            .enumerate()
            .filter(|(_, p)| p.calls > 0 || p.ns > 0)
            .collect();
        rows.sort_by_key(|row| std::cmp::Reverse(row.1.ns));
        for (i, p) in rows {
            let pct_instr = if total > 0 {
                100.0 * p.ns as f64 / total as f64
            } else {
                0.0
            };
            let pct_wall = if wall_s > 0.0 {
                100.0 * p.ns as f64 / (wall_s * 1e9)
            } else {
                0.0
            };
            out.push_str(&format!(
                "  {:<16} {:>10.3}ms {:>7.2}% {:>7.2}% {:>12}\n",
                Phase::ALL[i].name(),
                p.ns as f64 / 1e6,
                pct_instr,
                pct_wall,
                p.calls
            ));
        }
        out.push_str(&format!(
            "  {:<16} {:>10.3}ms\n",
            "total(instr)",
            total as f64 / 1e6
        ));
        if self.counters.iter().any(|&c| c > 0) {
            out.push_str("pool counters\n");
            for (i, c) in Counter::ALL.iter().enumerate() {
                out.push_str(&format!("  {:<16} {:>12}\n", c.name(), self.counters[i]));
            }
        }
        for (i, h) in Hist::ALL.iter().enumerate() {
            let hist = &self.hists[i];
            if hist.count() == 0 {
                continue;
            }
            out.push_str(&format!(
                "{} histogram: count {}  mean {:.1}  min {}  max {}\n",
                h.name(),
                hist.count(),
                hist.mean(),
                hist.min().unwrap_or(0),
                hist.max().unwrap_or(0)
            ));
            for b in 0..65 {
                let n = hist.bucket(b);
                if n > 0 {
                    out.push_str(&format!("  2^{b:<2} {n:>10}\n"));
                }
            }
        }
        out
    }
}

/// Takes a consistent snapshot of every accumulator, flushing the
/// calling thread's locals first. Other still-running threads'
/// unflushed time is not included — snapshot after joining workers
/// (the pool's scoped threads always join before returning).
#[must_use]
pub fn snapshot() -> Snapshot {
    flush();
    let mut phases = [PhaseStat::default(); PHASE_COUNT];
    for (i, p) in phases.iter_mut().enumerate() {
        p.ns = PHASE_NS[i].load(Ordering::Relaxed);
        p.calls = PHASE_CALLS[i].load(Ordering::Relaxed);
    }
    let mut counters = [0u64; COUNTER_COUNT];
    for (i, c) in counters.iter_mut().enumerate() {
        *c = COUNTERS[i].load(Ordering::Relaxed);
    }
    let hists = HISTS
        .lock()
        .expect("hist lock")
        .clone()
        .unwrap_or_else(|| vec![Histogram::default(); HIST_COUNT]);
    Snapshot {
        phases,
        counters,
        hists,
    }
}

/// Renders the recorded timeline spans plus per-phase aggregate bars
/// as Chrome trace-event JSON (open in `chrome://tracing` or
/// Perfetto). Span tracks use `pid` 0 with one `tid` per host thread;
/// the aggregate per-phase bars are laid end-to-end on `pid` 1.
#[must_use]
pub fn chrome_timeline_json() -> String {
    let snap = snapshot();
    let mut b = ChromeTraceBuilder::new();
    {
        let tl = TIMELINE.lock().expect("timeline lock");
        for s in tl.iter() {
            b.complete(
                &s.name,
                "host",
                s.start_ns / 1000,
                (s.end_ns.saturating_sub(s.start_ns)) / 1000,
                0,
                s.tid,
            );
        }
    }
    // Aggregate self-time bars: one track, phases laid end-to-end, so
    // relative widths read as a flame-style summary.
    let mut at = 0u64;
    for (i, p) in Phase::ALL.iter().enumerate() {
        let ns = snap.phases[i].ns;
        if ns == 0 {
            continue;
        }
        b.complete(
            &format!("phase:{}", p.name()),
            "host-agg",
            at / 1000,
            ns / 1000,
            1,
            0,
        );
        at += ns;
    }
    b.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The accumulators are process-wide; serialize tests that touch
    /// them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> std::sync::MutexGuard<'static, ()> {
        TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn spin(us: u64) {
        let t0 = Instant::now();
        while t0.elapsed().as_micros() < u128::from(us) {
            std::hint::spin_loop();
        }
    }

    #[test]
    fn disabled_probes_record_nothing() {
        let _l = lock();
        reset();
        set_enabled(false);
        {
            let _g = phase(Phase::Execute);
            spin(50);
        }
        counter_add(Counter::PoolSteals, 5);
        hist_record(Hist::QueueDepth, 3);
        let _t = timeline_scope("x");
        drop(_t);
        let s = snapshot();
        assert_eq!(s.total_ns(), 0);
        assert_eq!(s.phase(Phase::Execute).calls, 0);
        assert_eq!(s.counter(Counter::PoolSteals), 0);
        assert_eq!(s.hist(Hist::QueueDepth).count(), 0);
        assert_eq!(TIMELINE.lock().unwrap().len(), 0);
    }

    #[test]
    fn nested_phases_attribute_exclusive_time() {
        let _l = lock();
        reset();
        set_enabled(true);
        {
            let _outer = phase(Phase::Execute);
            spin(200);
            {
                let _inner = phase(Phase::Compressor);
                spin(200);
            }
            spin(200);
        }
        set_enabled(false);
        let s = snapshot();
        let exec = s.phase(Phase::Execute);
        let comp = s.phase(Phase::Compressor);
        assert_eq!(exec.calls, 1);
        assert_eq!(comp.calls, 1);
        assert!(exec.ns >= 300_000, "outer self time {} ns", exec.ns);
        assert!(comp.ns >= 150_000, "inner self time {} ns", comp.ns);
        // Exclusive semantics: outer self-time excludes the inner span,
        // so both are individually < total and sum ≈ total.
        assert_eq!(s.total_ns(), exec.ns + comp.ns);
    }

    #[test]
    fn counters_hists_and_timeline_accumulate_when_enabled() {
        let _l = lock();
        reset();
        set_enabled(true);
        counter_add(Counter::PoolSteals, 2);
        counter_add(Counter::PoolSteals, 3);
        counter_add(Counter::PoolEpochs, 1);
        hist_record(Hist::BarrierWaitNs, 1024);
        hist_record(Hist::BarrierWaitNs, 7);
        {
            let _t = timeline_scope("workload BP");
            spin(50);
        }
        set_enabled(false);
        let s = snapshot();
        assert_eq!(s.counter(Counter::PoolSteals), 5);
        assert_eq!(s.counter(Counter::PoolEpochs), 1);
        assert_eq!(s.hist(Hist::BarrierWaitNs).count(), 2);
        assert_eq!(s.hist(Hist::BarrierWaitNs).max(), Some(1024));
        let json = chrome_timeline_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert!(json.contains("workload BP"));
        reset();
        assert_eq!(snapshot().counter(Counter::PoolSteals), 0);
    }

    #[test]
    fn worker_thread_totals_flush_on_exit() {
        let _l = lock();
        reset();
        set_enabled(true);
        std::thread::scope(|s| {
            s.spawn(|| {
                let _g = phase(Phase::PoolIdle);
                spin(100);
            });
        });
        set_enabled(false);
        let s = snapshot();
        assert_eq!(s.phase(Phase::PoolIdle).calls, 1);
        assert!(s.phase(Phase::PoolIdle).ns > 0);
    }

    #[test]
    fn export_uses_host_prefixed_paths() {
        let _l = lock();
        reset();
        set_enabled(true);
        {
            let _g = phase(Phase::Scheduler);
        }
        counter_add(Counter::PoolFailedSteals, 4);
        hist_record(Hist::QueueDepth, 9);
        set_enabled(false);
        let flat = snapshot().flatten();
        let get = |k: &str| {
            flat.iter()
                .find(|(p, _)| p == k)
                .unwrap_or_else(|| panic!("missing {k}"))
                .1
        };
        assert_eq!(get("host/phase/scheduler/calls"), 1.0);
        assert_eq!(get("host/pool/failed_steals"), 4.0);
        assert_eq!(get("host/pool/queue_depth/count"), 1.0);
        assert_eq!(get("host/pool/queue_depth/max"), 9.0);
        assert!(flat.iter().all(|(k, _)| k.starts_with("host/")));
        let text = snapshot().render(1.0);
        assert!(text.contains("scheduler"));
        assert!(text.contains("failed_steals"));
        reset();
    }

    #[test]
    fn render_sorts_and_sums() {
        let _l = lock();
        reset();
        set_enabled(true);
        {
            let _g = phase(Phase::Memsys);
            spin(50);
        }
        set_enabled(false);
        let s = snapshot();
        let text = s.render(0.0);
        assert!(text.contains("memsys"));
        assert!(text.contains("total(instr)"));
        reset();
    }
}
