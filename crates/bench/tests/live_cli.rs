//! End-to-end CLI contract for `--live`: attaching a telemetry stream
//! to `probe` must leave the written manifest **byte-identical** to a
//! run without it — serially and at `--sim-threads 4` — and the
//! resulting stream must satisfy `watch check` and render via
//! `watch --once`. This is the same gate ci.sh runs.

use std::path::{Path, PathBuf};
use std::process::Command;

fn bin(exe: &str) -> &'static str {
    match exe {
        "probe" => env!("CARGO_BIN_EXE_probe"),
        "watch" => env!("CARGO_BIN_EXE_watch"),
        _ => unreachable!(),
    }
}

fn run(exe: &str, args: &[&str]) -> std::process::Output {
    let out = Command::new(bin(exe))
        .args(args)
        .output()
        .unwrap_or_else(|e| panic!("spawning {exe}: {e}"));
    assert!(
        out.status.success(),
        "{exe} {args:?} failed:\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn read(path: &Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

#[test]
fn live_stream_leaves_probe_manifest_byte_identical() {
    let dir = std::env::temp_dir().join("gscalar-live-cli");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let p = |name: &str| -> PathBuf { dir.join(name) };
    let s = |path: &PathBuf| path.to_str().unwrap().to_string();

    // Baseline: deterministic probe without telemetry.
    let base = p("base.json");
    run(
        "probe",
        &["--scale", "test", "--deterministic", "--json", &s(&base)],
    );

    // Same run with a live stream attached, serial.
    let live1 = p("live1.json");
    let stream1 = p("live1.ndjson");
    run(
        "probe",
        &[
            "--scale",
            "test",
            "--deterministic",
            "--json",
            &s(&live1),
            "--live",
            &s(&stream1),
            "--live-interval",
            "64",
        ],
    );
    assert_eq!(
        read(&base),
        read(&live1),
        "manifest changed when --live was attached (serial)"
    );

    // And with the parallel execution engine inside each simulation.
    let live4 = p("live4.json");
    let stream4 = p("live4.ndjson");
    run(
        "probe",
        &[
            "--scale",
            "test",
            "--deterministic",
            "--sim-threads",
            "4",
            "--json",
            &s(&live4),
            "--live",
            &s(&stream4),
            "--live-interval",
            "64",
        ],
    );
    assert_eq!(
        read(&base),
        read(&live4),
        "manifest changed when --live was attached (--sim-threads 4)"
    );

    // The stream passes strict validation: every line parses, at least
    // one snapshot and one terminal record.
    let check = run("watch", &["check", &s(&stream1)]);
    let stdout = String::from_utf8_lossy(&check.stdout);
    assert!(stdout.contains("snapshot"), "check output: {stdout}");
    assert!(stdout.contains("ok:"), "check output: {stdout}");

    // And the dashboard renders from the finished file.
    let once = run("watch", &[&s(&stream1), "--once"]);
    let rendered = String::from_utf8_lossy(&once.stdout);
    assert!(rendered.contains("records"), "dashboard render: {rendered}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn watch_renders_from_sse_endpoint() {
    use gscalar_live::{LiveHandle, LiveRecord, StreamConfig};
    let (handle, addr) = LiveHandle::serve(
        "127.0.0.1:0".parse().unwrap(),
        StreamConfig {
            deterministic: true,
            ..StreamConfig::default()
        },
    )
    .expect("bind SSE server");
    handle.emit(&LiveRecord::RunStart {
        run: 1,
        workload: "backprop".into(),
        arch: "G-Scalar".into(),
        sms: 4,
        t_s: 0.0,
    });
    handle.emit(&LiveRecord::RunEnd {
        run: 1,
        cycle: 5000,
        ipc: 3.5,
        warp_instrs: 900,
        t_s: 0.0,
    });
    // Closing marks the stream ended: the SSE endpoint replays history
    // to late subscribers and terminates with an `end` event, so the
    // watch subprocess below exits deterministically.
    handle.close();
    let out = run("watch", &[&addr.to_string(), "--once"]);
    let rendered = String::from_utf8_lossy(&out.stdout);
    assert!(rendered.contains("backprop"), "render: {rendered}");
    assert!(rendered.contains("records"), "render: {rendered}");
}
