//! End-to-end properties of the sweep subsystem, driven through the
//! `sweep` binary and the standalone experiment binaries:
//!
//! * **Determinism** — the manifests a sweep writes are byte-identical
//!   whether the grid ran on 1 thread or 4, and identical to what the
//!   standalone binary produces serially with `--deterministic`.
//! * **Resume** — rerunning over the same results directory executes
//!   nothing and still renders identical output; corrupting one job
//!   manifest re-executes exactly that job.
//! * **Fault isolation** — a panicking job is contained, recorded as a
//!   machine-readable failure, and replaced by a success on rerun
//!   (library-level, with an injected faulty grid).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn sweep(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_sweep"))
        .args(args)
        .output()
        .expect("sweep binary runs")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

fn fresh_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(name);
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn sweep_manifests_are_thread_count_invariant_and_match_serial() {
    let root = fresh_dir("gscalar-sweep-cli-det");
    let one = root.join("t1");
    let four = root.join("t4");
    for (out, threads) in [(&one, "1"), (&four, "4")] {
        let o = sweep(&[
            "probe",
            "fig11_power_efficiency",
            "--scale",
            "test",
            "--threads",
            threads,
            "--out",
            out.to_str().unwrap(),
        ]);
        assert!(
            o.status.success(),
            "sweep failed: {}",
            String::from_utf8_lossy(&o.stderr)
        );
    }
    for name in ["probe", "fig11_power_efficiency"] {
        assert_eq!(
            read(&one.join(format!("{name}.json"))),
            read(&four.join(format!("{name}.json"))),
            "{name}.json differs between 1 and 4 threads"
        );
        assert_eq!(
            read(&one.join(format!("{name}.txt"))),
            read(&four.join(format!("{name}.txt"))),
            "{name}.txt differs between 1 and 4 threads"
        );
    }
    assert_eq!(
        read(&one.join("BENCH_sweep.json")),
        read(&four.join("BENCH_sweep.json"))
    );

    // The standalone binary, run serially with --deterministic,
    // produces the same bytes as the sweep pipeline.
    let serial = root.join("serial_fig11.json");
    let o = Command::new(env!("CARGO_BIN_EXE_fig11_power_efficiency"))
        .args([
            "--scale",
            "test",
            "--deterministic",
            "--json",
            serial.to_str().unwrap(),
        ])
        .output()
        .expect("fig11 binary runs");
    assert!(o.status.success());
    assert_eq!(
        read(&serial),
        read(&one.join("fig11_power_efficiency.json")),
        "standalone --deterministic output differs from sweep output"
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn sweep_resumes_completed_jobs_and_reexecutes_corrupted_ones() {
    let root = fresh_dir("gscalar-sweep-cli-resume");
    let out = root.join("results");
    let args = [
        "probe",
        "--scale",
        "test",
        "--threads",
        "2",
        "--out",
        out.to_str().unwrap(),
    ];
    assert!(sweep(&args).status.success());
    let first = read(&out.join("probe.json"));

    // Second run: everything resumes, nothing executes.
    let o = sweep(&args);
    assert!(o.status.success());
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(
        err.contains("0 executed"),
        "rerun must execute nothing: {err}"
    );
    assert_eq!(first, read(&out.join("probe.json")));

    // Corrupt one job manifest: exactly that job re-executes and the
    // rendered output is unchanged. (`.host.json` timing side channels
    // are not resume state — corrupting one would re-execute nothing.)
    let jobs: Vec<PathBuf> = std::fs::read_dir(out.join("jobs/probe"))
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "json"))
        .filter(|p| {
            !p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".host.json"))
        })
        .collect();
    assert!(!jobs.is_empty());
    std::fs::write(&jobs[0], "{trunc").unwrap();
    let o = sweep(&args);
    assert!(o.status.success());
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(err.contains("1 executed"), "one corrupt job re-runs: {err}");
    assert_eq!(first, read(&out.join("probe.json")));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corrupt_host_side_channels_neither_crash_nor_reexecute_on_resume() {
    let root = fresh_dir("gscalar-sweep-cli-hostside");
    let out = root.join("results");
    let args = [
        "probe",
        "--scale",
        "test",
        "--threads",
        "2",
        "--out",
        out.to_str().unwrap(),
    ];
    assert!(sweep(&args).status.success());
    let first = read(&out.join("probe.json"));

    // Mangle every `.host.json` timing side channel: truncate one
    // mid-JSON, fill another with garbage, empty a third. They are not
    // resume state, so the rerun must resume every job (0 executed) and
    // render byte-identical output — without crashing on the bad files.
    let sides: Vec<PathBuf> = std::fs::read_dir(out.join("jobs/probe"))
        .unwrap()
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(".host.json"))
        })
        .collect();
    assert!(
        !sides.is_empty(),
        "jobs must write .host.json side channels"
    );
    for (i, side) in sides.iter().enumerate() {
        let text = read(side);
        match i % 3 {
            0 => std::fs::write(side, &text[..text.len() / 2]).unwrap(),
            1 => std::fs::write(side, "definitely not json").unwrap(),
            _ => std::fs::write(side, "").unwrap(),
        }
    }
    // The top-level render side channel too.
    std::fs::write(out.join("probe.host.json"), "{trunc").unwrap();

    let o = sweep(&args);
    assert!(
        o.status.success(),
        "resume over corrupt side channels crashed: {}",
        String::from_utf8_lossy(&o.stderr)
    );
    let err = String::from_utf8_lossy(&o.stderr);
    assert!(
        err.contains("0 executed"),
        "side channels must not be resume state: {err}"
    );
    assert_eq!(first, read(&out.join("probe.json")));
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn panicking_job_is_recorded_and_replaced_on_rerun() {
    use gscalar_sweep::{run_sweep, FailureRecord, JobId, JobOutput, JobSpec, SweepConfig};

    let root = fresh_dir("gscalar-sweep-cli-fault");
    let attempts = Arc::new(AtomicU32::new(0));
    let grid = |fail: bool, attempts: Arc<AtomicU32>| {
        vec![
            JobSpec::new(JobId::new("exp", "good"), |_| {
                let mut out = JobOutput::default();
                out.metric("v", 1.0);
                Ok(out)
            }),
            JobSpec::new(JobId::new("exp", "flaky"), move |_| {
                attempts.fetch_add(1, Ordering::SeqCst);
                assert!(!fail, "injected fault");
                let mut out = JobOutput::default();
                out.metric("v", 2.0);
                Ok(out)
            }),
        ]
    };
    let cfg = SweepConfig {
        threads: 2,
        out_dir: Some(root.clone()),
        max_retries: 1,
        ..SweepConfig::default()
    };

    // First run: the flaky job panics (original + 1 retry), the sweep
    // still completes and persists both the good result and a failure
    // record.
    let outcome = run_sweep(&grid(true, attempts.clone()), &cfg);
    assert!(!outcome.all_completed());
    assert_eq!(outcome.failures.len(), 1);
    assert_eq!(attempts.load(Ordering::SeqCst), 2, "one retry happened");
    assert!(root.join("jobs/exp/good.json").exists());
    let failure_path = root.join("jobs/exp/flaky.failure.json");
    let rec = FailureRecord::from_json(&read(&failure_path)).unwrap();
    assert_eq!(rec.kind, "panic");
    assert!(
        rec.message.contains("injected fault"),
        "got: {}",
        rec.message
    );

    // Rerun with the fault fixed: the good job resumes from disk, the
    // flaky one re-executes, and its failure record is replaced.
    let outcome = run_sweep(&grid(false, attempts.clone()), &cfg);
    assert!(outcome.all_completed());
    assert_eq!(outcome.resumed, 1);
    assert_eq!(outcome.executed, 1);
    assert!(!failure_path.exists(), "failure record cleared on success");
    assert_eq!(outcome.results.metric("exp", "flaky", "v"), 2.0);
    std::fs::remove_dir_all(&root).ok();
}
